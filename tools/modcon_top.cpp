// modcon-top — live fleet view over modcon-telemetry JSONL streams.
//
//   modcon-top [--once] [--interval MS] [--perfetto-out F] TELEMETRY.jsonl...
//
// The inputs are --telemetry-out files from any mix of bench processes
// (scripts/grid_runner.py --telemetry-merge writes one per shard).  Each
// refresh re-reads every file, takes its latest complete line (lines are
// cumulative, so only the newest matters), sums counters and merges
// histograms across files, and redraws one screen: fleet trials/sec,
// ETA, fault/audit/slot counters, batch lane occupancy, and a per-cell
// heat table.  Files that do not exist yet are treated as empty (their
// shard has not started); partial trailing lines are skipped and picked
// up on the next refresh.
//
//   --once          render a single frame and exit (CI, scripts)
//   --interval MS   refresh cadence (default 1000)
//   --perfetto-out F  on exit, export every snapshot of every file as
//                     Perfetto counter tracks (one process row per file)
//
// Exits 0 once every input's stream is final (or after one frame with
// --once), 1 when --once finds no parsable telemetry, 2 on bad usage.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/json_writer.h"
#include "obs/perfetto.h"
#include "obs/telemetry.h"

namespace {

using modcon::analysis::json;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--once] [--interval MS] [--perfetto-out F] "
               "TELEMETRY.jsonl...\n"
            << "  live fleet view over modcon-telemetry JSONL streams\n";
  return 2;
}

// One parsed telemetry line, reduced to what the view needs.
struct snapshot {
  double elapsed_ms = 0;
  bool final_line = false;
  std::string source;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, modcon::obs::log_histogram> hists;
  std::vector<std::pair<std::string, modcon::obs::cell_totals>> cells;
};

bool parse_snapshot(const std::string& line, snapshot& out) {
  json doc;
  try {
    doc = json::parse(line);
  } catch (...) {
    return false;  // partial trailing line mid-write; next refresh gets it
  }
  if (!doc.is_object()) return false;
  const json* schema = doc.find("schema");
  if (!schema || schema->as_string() != modcon::obs::kTelemetrySchemaName)
    return false;
  if (const json* v = doc.find("elapsed_ms")) out.elapsed_ms = v->as_double();
  if (const json* v = doc.find("final")) out.final_line = v->as_bool();
  if (const json* v = doc.find("source")) out.source = v->as_string();
  if (const json* v = doc.find("shard")) out.shard_index = v->as_uint();
  if (const json* v = doc.find("shard_count")) out.shard_count = v->as_uint();
  if (const json* c = doc.find("counters"); c && c->is_object())
    for (const auto& [name, val] : c->members())
      out.counters[name] = val.as_uint();
  if (const json* hs = doc.find("hists"); hs && hs->is_object()) {
    for (const auto& [name, h] : hs->members()) {
      modcon::obs::log_histogram lh;
      if (const json* v = h.find("count")) lh.count = v->as_uint();
      if (const json* v = h.find("sum")) lh.sum = v->as_uint();
      if (const json* v = h.find("max")) lh.max = v->as_uint();
      if (const json* bs = h.find("buckets"); bs && bs->is_array())
        for (std::size_t i = 0; i < bs->size(); ++i) {
          const json& pair = bs->at(i);
          if (!pair.is_array() || pair.size() != 2) continue;
          const std::uint64_t idx = pair.at(0).as_uint();
          if (idx < modcon::obs::kHistBuckets)
            lh.buckets[idx] = pair.at(1).as_uint();
        }
      out.hists[name] = lh;
    }
  }
  if (const json* cs = doc.find("cells"); cs && cs->is_object())
    for (const auto& [label, cell] : cs->members()) {
      modcon::obs::cell_totals t;
      if (const json* v = cell.find("trials")) t.trials = v->as_uint();
      if (const json* v = cell.find("steps")) t.steps = v->as_uint();
      out.cells.emplace_back(label, t);
    }
  return true;
}

// All parsed lines of one file, newest last.
struct stream_state {
  std::string path;
  std::vector<snapshot> lines;
  bool has_data() const { return !lines.empty(); }
  const snapshot& latest() const { return lines.back(); }
  // Trials/sec over the newest interval this stream covers.
  double rate() const {
    if (lines.size() < 2) return 0;
    const snapshot& a = lines[lines.size() - 2];
    const snapshot& b = lines.back();
    const double dt = b.elapsed_ms - a.elapsed_ms;
    if (dt <= 0) return 0;
    const auto get = [](const snapshot& s) {
      const auto it = s.counters.find("trials_completed");
      return it == s.counters.end() ? std::uint64_t{0} : it->second;
    };
    return static_cast<double>(get(b) - get(a)) * 1000.0 / dt;
  }
};

void reload(stream_state& st) {
  st.lines.clear();
  std::ifstream in(st.path);
  if (!in) return;  // shard not started yet
  std::string line;
  while (std::getline(in, line)) {
    snapshot s;
    if (parse_snapshot(line, s)) st.lines.push_back(std::move(s));
  }
}

std::string commas(std::uint64_t v) {
  std::string s = std::to_string(v);
  for (std::size_t i = s.size(); i > 3; i -= 3) s.insert(i - 3, 1, ',');
  return s;
}

std::uint64_t counter(const snapshot& s, const char* name) {
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

// The merged fleet view: counters summed, histograms merged per bucket,
// cells merged by label — the same reduction grid_runner.py applies.
struct fleet_view {
  double elapsed_ms = 0;
  bool all_final = true;
  std::size_t sources_reporting = 0;
  snapshot merged;

  void fold(const stream_state& st) {
    if (!st.has_data()) {
      all_final = false;
      return;
    }
    ++sources_reporting;
    const snapshot& s = st.latest();
    elapsed_ms = std::max(elapsed_ms, s.elapsed_ms);
    if (!s.final_line) all_final = false;
    for (const auto& [name, v] : s.counters) merged.counters[name] += v;
    for (const auto& [name, h] : s.hists) merged.hists[name] += h;
    for (const auto& [label, t] : s.cells) {
      auto it = std::find_if(
          merged.cells.begin(), merged.cells.end(),
          [&](const auto& e) { return e.first == label; });
      if (it == merged.cells.end()) {
        merged.cells.emplace_back(label, t);
      } else {
        it->second.trials += t.trials;
        it->second.steps += t.steps;
      }
    }
  }
};

void render(std::ostream& os, const fleet_view& fleet,
            const std::vector<stream_state>& streams, double fleet_rate) {
  const snapshot& m = fleet.merged;
  const std::uint64_t planned = counter(m, "trials_planned");
  const std::uint64_t done = counter(m, "trials_completed");
  os << "modcon-top — " << fleet.sources_reporting << "/" << streams.size()
     << " source(s) reporting    elapsed "
     << static_cast<std::uint64_t>(fleet.elapsed_ms / 1000.0) << "s    "
     << (fleet.all_final ? "[FINAL]" : "[LIVE]") << "\n\n";
  os << "  trials " << commas(done);
  if (planned) {
    os << " / " << commas(planned);
    char pct[16];
    std::snprintf(pct, sizeof pct, " (%.1f%%)",
                  100.0 * static_cast<double>(done) /
                      static_cast<double>(planned));
    os << pct;
  }
  char rate_buf[32];
  std::snprintf(rate_buf, sizeof rate_buf, "%.1f", fleet_rate);
  os << "    rate " << rate_buf << " trials/s";
  if (planned > done && fleet_rate > 0) {
    os << "    ETA "
       << static_cast<std::uint64_t>(
              static_cast<double>(planned - done) / fleet_rate)
       << "s";
  }
  os << "\n";
  os << "  steps " << commas(counter(m, "steps")) << "    ops "
     << commas(counter(m, "total_ops")) << "    timed-out "
     << commas(counter(m, "trials_timed_out")) << "\n";
  os << "  faults: crashes " << counter(m, "crashes") << "  restarts "
     << counter(m, "restarts") << "  recoveries " << counter(m, "recoveries")
     << "  stale-reads " << counter(m, "stale_reads") << "  omitted-writes "
     << counter(m, "omitted_writes") << "  wipes "
     << counter(m, "volatile_wipes") << "\n";
  os << "  audits: " << counter(m, "audits") << " run, "
     << counter(m, "audit_violations") << " violation(s)\n";
  os << "  multi: proposals " << commas(counter(m, "slot_proposals"))
     << "  decisions " << commas(counter(m, "slot_decisions"))
     << "  fast-path " << commas(counter(m, "slot_fast_path_hits")) << "\n";
  os << "  batch: trials " << commas(counter(m, "batch_trials")) << "  lanes "
     << commas(counter(m, "batch_lanes_retired")) << "  sweeps "
     << commas(counter(m, "batch_sweeps"));
  if (const auto it = m.hists.find("batch_occupancy");
      it != m.hists.end() && it->second.count) {
    char occ[32];
    std::snprintf(occ, sizeof occ, "%.1f", it->second.mean());
    os << "  occupancy avg " << occ << " (max " << it->second.max << ")";
  }
  os << "\n";
  if (const auto it = m.hists.find("trial_latency_us");
      it != m.hists.end() && it->second.count) {
    os << "  latency p50 ~" << commas(it->second.quantile(0.5)) << "us  p99 ~"
       << commas(it->second.quantile(0.99)) << "us";
    if (const auto sp = m.hists.find("steps_per_sec");
        sp != m.hists.end() && sp->second.count)
      os << "    steps/s p50 ~" << commas(sp->second.quantile(0.5));
    os << "\n";
  }

  os << "\n  sources:\n";
  for (const stream_state& st : streams) {
    if (!st.has_data()) {
      os << "    " << st.path << "  (no data yet)\n";
      continue;
    }
    const snapshot& s = st.latest();
    char rbuf[32];
    std::snprintf(rbuf, sizeof rbuf, "%.1f", st.rate());
    os << "    " << s.source;
    if (s.shard_count > 1)
      os << " [shard " << s.shard_index << "/" << s.shard_count << "]";
    os << "  trials " << commas(counter(s, "trials_completed")) << "  rate "
       << rbuf << "/s" << (s.final_line ? "  (final)" : "") << "\n";
  }

  if (!m.cells.empty()) {
    auto cells = m.cells;
    std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
      return a.second.trials > b.second.trials;
    });
    std::uint64_t max_trials = 1;
    for (const auto& [label, t] : cells)
      max_trials = std::max(max_trials, t.trials);
    const std::size_t shown = std::min<std::size_t>(cells.size(), 12);
    os << "\n  cells (top " << shown << " of " << cells.size()
       << " by trials):\n";
    for (std::size_t i = 0; i < shown; ++i) {
      const auto& [label, t] = cells[i];
      const auto bar = static_cast<std::size_t>(
          24.0 * static_cast<double>(t.trials) /
          static_cast<double>(max_trials));
      os << "    " << std::string(bar ? bar : 1, '#')
         << std::string(24 - (bar ? bar : 1), ' ') << "  " << label << "  "
       << commas(t.trials) << " trials, " << commas(t.steps) << " steps\n";
    }
  }
  os.flush();
}

int write_perfetto_export(const std::string& path,
                          const std::vector<stream_state>& streams) {
  std::vector<modcon::obs::telemetry_track> tracks;
  for (const stream_state& st : streams) {
    if (!st.has_data()) continue;
    modcon::obs::telemetry_track track;
    const snapshot& latest = st.latest();
    track.source = latest.source;
    if (latest.shard_count > 1)
      track.source += " shard " + std::to_string(latest.shard_index) + "/" +
                      std::to_string(latest.shard_count);
    std::uint64_t prev_done = 0;
    double prev_ms = 0;
    for (const snapshot& s : st.lines) {
      modcon::obs::telemetry_point p;
      p.elapsed_ms = s.elapsed_ms;
      for (const char* name :
           {"trials_completed", "steps", "crashes", "audit_violations",
            "batch_lanes_retired"})
        p.counters.emplace_back(
            name, static_cast<double>(counter(s, name)));
      const std::uint64_t done = counter(s, "trials_completed");
      const double dt = s.elapsed_ms - prev_ms;
      p.counters.emplace_back(
          "trials_per_sec",
          dt > 0 ? static_cast<double>(done - prev_done) * 1000.0 / dt : 0.0);
      prev_done = done;
      prev_ms = s.elapsed_ms;
      track.points.push_back(std::move(p));
    }
    tracks.push_back(std::move(track));
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "modcon-top: cannot write " << path << "\n";
    return 1;
  }
  modcon::obs::write_telemetry_perfetto(out, tracks);
  if (!out) {
    std::cerr << "modcon-top: error writing " << path << "\n";
    return 1;
  }
  std::cerr << "modcon-top: wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  std::uint32_t interval_ms = 1000;
  std::string perfetto_out;
  std::vector<stream_state> streams;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--interval") {
      if (i + 1 >= argc) return usage(argv[0]);
      interval_ms = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--perfetto-out") {
      if (i + 1 >= argc) return usage(argv[0]);
      perfetto_out = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      streams.push_back(stream_state{arg, {}});
    }
  }
  if (streams.empty()) return usage(argv[0]);

  for (;;) {
    for (stream_state& st : streams) reload(st);
    fleet_view fleet;
    for (const stream_state& st : streams) fleet.fold(st);
    double fleet_rate = 0;
    for (const stream_state& st : streams) fleet_rate += st.rate();
    if (!once) std::cout << "\x1b[2J\x1b[H";  // clear + home
    render(std::cout, fleet, streams, fleet_rate);
    if (once) {
      if (!perfetto_out.empty() &&
          write_perfetto_export(perfetto_out, streams) != 0)
        return 1;
      return fleet.sources_reporting ? 0 : 1;
    }
    if (fleet.all_final && fleet.sources_reporting == streams.size()) {
      if (!perfetto_out.empty() &&
          write_perfetto_export(perfetto_out, streams) != 0)
        return 1;
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
