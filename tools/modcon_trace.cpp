// modcon-trace: replay one deterministic trial of a standard consensus
// stack with full observation on and export its span tree as
// Chrome/Perfetto trace_event JSON.
//
// A bench's --trace-out traces trial 0 of that bench's first cell; this
// app traces *any* (stack, n, m, pattern, trial) coordinate, so a
// surprising seed found in a BENCH_*.json artifact can be replayed and
// opened in https://ui.perfetto.dev without editing bench code:
//
//   modcon-trace --stack impatient --n 16 --trial 42 --out trace.json
//
// The trial seed is splitmix64(base_seed ^ trial), identical to the
// experiment engine's, so span trees line up with artifact records.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/experiment.h"
#include "core/consensus/builder.h"
#include "obs/perfetto.h"
#include "util/bits.h"

namespace {

using namespace modcon;
using sim::sim_env;

std::string stack_menu() {
  std::string menu;
  for (const std::string& name : stack_names()) {
    if (!menu.empty()) menu += " | ";
    menu += name;
  }
  return menu;
}

[[noreturn]] void usage(int rc) {
  (rc == 0 ? std::cout : std::cerr)
      << "usage: modcon-trace [options]\n"
         "  --stack S    " +
             stack_menu() +
             " (default: impatient)\n"
             "  --n N        processes (default: 8)\n"
         "  --m M        input values; m > 2 selects Bollobas quorums "
         "(default: 2)\n"
         "  --pattern P  unanimous | half-half | alternating | random | "
         "distinct (default: half-half)\n"
         "  --trial T    trial index within the cell (default: 0)\n"
         "  --seed S     cell base seed (default: 1)\n"
         "  --out FILE   output path (default: trace.json)\n"
         "  --steps N    step limit (default: engine default)\n";
  std::exit(rc);
}

analysis::input_pattern parse_pattern(const std::string& p) {
  if (p == "unanimous") return analysis::input_pattern::unanimous;
  if (p == "half-half") return analysis::input_pattern::half_half;
  if (p == "alternating") return analysis::input_pattern::alternating;
  if (p == "random") return analysis::input_pattern::random_m;
  if (p == "distinct") return analysis::input_pattern::distinct;
  std::cerr << "unknown --pattern '" << p << "'\n";
  std::exit(2);
}

analysis::sim_object_builder make_stack(const std::string& stack,
                                        std::uint64_t m) {
  const stack_spec* spec = find_stack(stack);
  if (spec == nullptr) {
    std::cerr << "unknown --stack '" << stack << "' (choose from "
              << stack_menu() << ")\n";
    std::exit(2);
  }
  // with_m resolves adaptive quorums: binary for m <= 2, Bollobás above.
  return stack_builder<sim_env>(spec->with_m(m));
}

}  // namespace

int main(int argc, char** argv) {
  std::string stack = "impatient";
  std::string pattern = "half-half";
  std::string out_path = "trace.json";
  std::size_t n = 8;
  std::uint64_t m = 2;
  std::uint64_t trial = 0;
  std::uint64_t base_seed = 1;
  std::uint64_t max_steps = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--stack")
      stack = next("--stack");
    else if (arg == "--n")
      n = std::strtoull(next("--n").c_str(), nullptr, 10);
    else if (arg == "--m")
      m = std::strtoull(next("--m").c_str(), nullptr, 10);
    else if (arg == "--pattern")
      pattern = next("--pattern");
    else if (arg == "--trial")
      trial = std::strtoull(next("--trial").c_str(), nullptr, 10);
    else if (arg == "--seed")
      base_seed = std::strtoull(next("--seed").c_str(), nullptr, 10);
    else if (arg == "--out")
      out_path = next("--out");
    else if (arg == "--steps")
      max_steps = std::strtoull(next("--steps").c_str(), nullptr, 10);
    else if (arg == "--help" || arg == "-h")
      usage(0);
    else {
      std::cerr << "unknown argument '" << arg << "'\n";
      usage(2);
    }
  }
  if (n < 2) {
    std::cerr << "--n must be at least 2\n";
    return 2;
  }
  if (m < 2) {
    std::cerr << "--m must be at least 2\n";
    return 2;
  }

  analysis::trial_grid cell;
  cell.label = stack + "/n=" + std::to_string(n);
  cell.build = make_stack(stack, m);
  cell.pattern = parse_pattern(pattern);
  cell.n = n;
  cell.m = m;
  cell.trials = 1;
  cell.base_seed = base_seed;
  if (max_steps != 0) cell.limits.max_steps = max_steps;

  auto rec = analysis::run_traced_trial(cell, trial);
  if (!rec.result.obs) {
    std::cerr << "trial produced no observation record\n";
    return 1;
  }
  const obs::trial_obs& o = *rec.result.obs;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  obs::perfetto_meta meta;
  meta.label = cell.label;
  meta.backend = "sim";
  meta.seed = rec.seed;
  meta.n = n;
  meta.steps = rec.result.steps;
  obs::write_perfetto(out, o, meta);
  out.close();
  if (!out) {
    std::cerr << "error writing " << out_path << "\n";
    return 1;
  }

  std::cout << "trial " << trial << " (seed " << rec.seed << "): status="
            << (rec.result.completed() ? "all_halted" : "not-completed")
            << " steps=" << rec.result.steps
            << " total_ops=" << rec.result.total_ops
            << " spans=" << o.span_count
            << " agreement=" << (rec.agreement ? "yes" : "no") << "\n"
            << "wrote " << out_path
            << " (open in chrome://tracing or https://ui.perfetto.dev)\n";
  return 0;
}
