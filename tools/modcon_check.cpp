// modcon-check: exhaustive model checking of the registry stacks.
//
// Where modcon-trace replays *one* trial, this tool explores *every*
// adversary choice of a small configuration — scheduling, coin outcomes,
// crash/recovery injection points, regular/safe read resolutions,
// omission outcomes — via check/explorer and reports whether the
// configuration was exhausted and whether any §3 property or trace-audit
// violation exists at all:
//
//   modcon-check --stack bounded --n 2 --semantics regular --json out.json
//   modcon-check --stack all --n 2 --crash-budget 1 --require-exhausted
//
// A cell is one (stack, n, semantics, fault budget, mode) coordinate.
// `--mode both` runs DPOR and the naive oracle on every cell and fails if
// their verdicts disagree — the CI equivalence gate.  The JSON report
// (schema "modcon-check/v1", documented in EXPERIMENTS.md) carries one
// record per cell; `--require-exhausted` / `--require-clean` turn report
// fields into exit-code gates for CI.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/json_writer.h"
#include "check/explorer.h"
#include "core/consensus/stack_spec.h"
#include "sim/world.h"

namespace {

using namespace modcon;
using sim::sim_env;

std::string stack_menu() {
  std::string menu;
  for (const std::string& name : stack_names()) {
    if (!menu.empty()) menu += " | ";
    menu += name;
  }
  return menu;
}

[[noreturn]] void usage(int rc) {
  (rc == 0 ? std::cout : std::cerr)
      << "usage: modcon-check [options]\n"
         "  --stack S            " +
             stack_menu() +
             " | all (default: all)\n"
             "  --n N              processes (default: 2)\n"
         "  --m M                input values (default: 2)\n"
         "  --semantics S        atomic | regular | safe | all (default: "
         "atomic)\n"
         "  --crash-budget K     crash/recovery events per execution "
         "(default: 0)\n"
         "  --recoverable        build recoverable stacks (crash-recovery "
         "with volatile partitions; implies persistent decision pins)\n"
         "  --omission-budget K  transient write omissions per execution "
         "(default: 0)\n"
         "  --coins on|off       branch on coin outcomes (default: off)\n"
         "  --mode M             dpor | naive | both (default: dpor)\n"
         "  --property P         consensus | weak | ratifier (default: "
         "consensus)\n"
         "  --max-choices D      depth cap per execution (default: 48)\n"
         "  --max-executions N   (default: 2000000)\n"
         "  --max-nodes N        decision-node budget (default: 20000000)\n"
         "  --json FILE          write the modcon-check/v1 report\n"
         "  --trace-out FILE     Perfetto trace of the first counterexample\n"
         "  --require-exhausted  exit 1 unless every cell exhausted\n"
         "  --require-clean      exit 1 if any cell found a violation\n";
  std::exit(rc);
}

struct cell_config {
  std::string stack;
  std::size_t n = 2;
  std::uint64_t m = 2;
  sim::register_semantics semantics = sim::register_semantics::atomic;
  bool recoverable = false;
  check::explore_options opts;
  std::string property = "consensus";
};

struct cell_result {
  cell_config cfg;
  std::string mode;
  check::explore_report report;
  double seconds = 0;
};

const char* semantics_name(sim::register_semantics s) {
  switch (s) {
    case sim::register_semantics::atomic: return "atomic";
    case sim::register_semantics::regular: return "regular";
    case sim::register_semantics::safe: return "safe";
  }
  return "?";
}

check::property_checker checker_for(const std::string& property) {
  if (property == "consensus") return check::consensus_checker();
  if (property == "weak") return check::weak_consensus_checker();
  if (property == "ratifier") return check::ratifier_checker();
  std::cerr << "unknown --property '" << property << "'\n";
  std::exit(2);
}

cell_result run_cell(const cell_config& cfg, check::reduction mode,
                     const std::string& trace_out) {
  stack_spec spec = stack_for(cfg.stack).with_m(cfg.m);
  if (cfg.recoverable) spec = spec.with_recovery();
  auto build = stack_builder<sim_env>(spec);
  std::vector<value_t> inputs(cfg.n);
  for (std::size_t i = 0; i < cfg.n; ++i)
    inputs[i] = static_cast<value_t>(i % cfg.m);
  check::explore_options opts = cfg.opts;
  opts.mode = mode;
  auto check_fn = checker_for(cfg.property);

  cell_result res;
  res.cfg = cfg;
  res.mode = mode == check::reduction::dpor ? "dpor" : "naive";
  auto t0 = std::chrono::steady_clock::now();
  res.report = check::explore_all(build, inputs, check_fn, opts);
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  if (!res.report.ok() && !trace_out.empty()) {
    std::ofstream out(trace_out);
    if (out) {
      std::string label = cfg.stack + "/n=" + std::to_string(cfg.n) +
                          " counterexample";
      check::replay_witness(build, inputs, check_fn, opts,
                            res.report.witness, &out, label);
      std::cerr << "wrote counterexample trace to " << trace_out << "\n";
    }
  }
  return res;
}

analysis::json cell_json(const cell_result& r) {
  analysis::json c = analysis::json::object();
  c["stack"] = r.cfg.stack;
  c["n"] = static_cast<std::uint64_t>(r.cfg.n);
  c["m"] = r.cfg.m;
  c["semantics"] = semantics_name(r.cfg.semantics);
  c["recoverable"] = r.cfg.recoverable;
  c["crash_budget"] = static_cast<std::uint64_t>(r.cfg.opts.crash_budget);
  c["omission_budget"] = r.cfg.opts.omission_budget;
  c["coins"] = r.cfg.opts.branch_coins;
  c["mode"] = r.mode;
  c["property"] = r.cfg.property;
  c["max_choices"] = static_cast<std::uint64_t>(r.cfg.opts.max_choices);
  c["executions"] = r.report.executions;
  c["truncated"] = r.report.truncated;
  c["violations"] = r.report.violations;
  c["pruned"] = r.report.pruned;
  c["sleep_blocked"] = r.report.sleep_blocked;
  c["nodes"] = r.report.nodes;
  c["reduced"] = r.report.reduced;
  c["exhausted"] = r.report.exhausted;
  c["seconds"] = r.seconds;
  if (!r.report.ok()) {
    c["first_violation"] = r.report.first_violation;
    analysis::json w = analysis::json::array();
    for (std::uint32_t choice : r.report.witness)
      w.push_back(static_cast<std::uint64_t>(choice));
    c["witness"] = std::move(w);
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stack = "all";
  std::string semantics = "atomic";
  std::string mode = "dpor";
  std::string property = "consensus";
  std::string json_path;
  std::string trace_out;
  std::size_t n = 2;
  std::uint64_t m = 2;
  bool recoverable = false;
  bool require_exhausted = false;
  bool require_clean = false;
  check::explore_options base;
  base.branch_coins = false;
  base.max_choices = 48;
  base.max_executions = 2'000'000;
  base.max_nodes = 20'000'000;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--stack")
      stack = next("--stack");
    else if (arg == "--n")
      n = std::strtoull(next("--n").c_str(), nullptr, 10);
    else if (arg == "--m")
      m = std::strtoull(next("--m").c_str(), nullptr, 10);
    else if (arg == "--semantics")
      semantics = next("--semantics");
    else if (arg == "--crash-budget")
      base.crash_budget = static_cast<std::uint32_t>(
          std::strtoull(next("--crash-budget").c_str(), nullptr, 10));
    else if (arg == "--recoverable")
      recoverable = true;
    else if (arg == "--omission-budget")
      base.omission_budget =
          std::strtoull(next("--omission-budget").c_str(), nullptr, 10);
    else if (arg == "--coins")
      base.branch_coins = next("--coins") == "on";
    else if (arg == "--mode")
      mode = next("--mode");
    else if (arg == "--property")
      property = next("--property");
    else if (arg == "--max-choices")
      base.max_choices =
          std::strtoull(next("--max-choices").c_str(), nullptr, 10);
    else if (arg == "--max-executions")
      base.max_executions =
          std::strtoull(next("--max-executions").c_str(), nullptr, 10);
    else if (arg == "--max-nodes")
      base.max_nodes =
          std::strtoull(next("--max-nodes").c_str(), nullptr, 10);
    else if (arg == "--json")
      json_path = next("--json");
    else if (arg == "--trace-out")
      trace_out = next("--trace-out");
    else if (arg == "--require-exhausted")
      require_exhausted = true;
    else if (arg == "--require-clean")
      require_clean = true;
    else if (arg == "--help" || arg == "-h")
      usage(0);
    else {
      std::cerr << "unknown argument '" << arg << "'\n";
      usage(2);
    }
  }
  if (n < 2) {
    std::cerr << "--n must be at least 2\n";
    return 2;
  }
  if (mode != "dpor" && mode != "naive" && mode != "both") {
    std::cerr << "unknown --mode '" << mode << "'\n";
    return 2;
  }

  std::vector<std::string> stacks;
  if (stack == "all") {
    stacks = stack_names();
  } else if (find_stack(stack) != nullptr) {
    stacks.push_back(stack);
  } else {
    std::cerr << "unknown --stack '" << stack << "' (choose from "
              << stack_menu() << " | all)\n";
    return 2;
  }
  std::vector<sim::register_semantics> sems;
  if (semantics == "all") {
    sems = {sim::register_semantics::atomic, sim::register_semantics::regular,
            sim::register_semantics::safe};
  } else if (semantics == "atomic") {
    sems = {sim::register_semantics::atomic};
  } else if (semantics == "regular") {
    sems = {sim::register_semantics::regular};
  } else if (semantics == "safe") {
    sems = {sim::register_semantics::safe};
  } else {
    std::cerr << "unknown --semantics '" << semantics << "'\n";
    return 2;
  }

  std::vector<cell_result> results;
  bool any_unexhausted = false;
  bool any_violation = false;
  bool verdict_mismatch = false;
  for (const std::string& s : stacks) {
    for (sim::register_semantics sem : sems) {
      cell_config cfg;
      cfg.stack = s;
      cfg.n = n;
      cfg.m = m;
      cfg.semantics = sem;
      cfg.recoverable = recoverable;
      cfg.opts = base;
      cfg.opts.semantics = sem;
      cfg.property = property;

      std::vector<cell_result> cell_runs;
      if (mode == "dpor" || mode == "both")
        cell_runs.push_back(run_cell(cfg, check::reduction::dpor, trace_out));
      if (mode == "naive" || mode == "both")
        cell_runs.push_back(run_cell(cfg, check::reduction::naive, trace_out));
      if (cell_runs.size() == 2 &&
          cell_runs[0].report.ok() != cell_runs[1].report.ok()) {
        verdict_mismatch = true;
        std::cerr << "VERDICT MISMATCH: " << s << " n=" << n << " "
                  << semantics_name(sem) << ": dpor "
                  << (cell_runs[0].report.ok() ? "clean" : "violating")
                  << " vs naive "
                  << (cell_runs[1].report.ok() ? "clean" : "violating")
                  << "\n";
      }
      for (cell_result& r : cell_runs) {
        std::cout << r.cfg.stack << " n=" << r.cfg.n << " "
                  << semantics_name(sem)
                  << " crash=" << r.cfg.opts.crash_budget
                  << " omit=" << r.cfg.opts.omission_budget << " ["
                  << r.mode << "] executions=" << r.report.executions
                  << " truncated=" << r.report.truncated
                  << " pruned=" << r.report.pruned
                  << " nodes=" << r.report.nodes
                  << " exhausted=" << (r.report.exhausted ? "yes" : "NO")
                  << " violations=" << r.report.violations << " ("
                  << r.seconds << "s)\n";
        if (!r.report.ok()) {
          any_violation = true;
          std::cout << "  first violation: " << r.report.first_violation
                    << "\n";
        }
        if (!r.report.exhausted) any_unexhausted = true;
        results.push_back(std::move(r));
      }
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    analysis::json doc = analysis::json::object();
    doc["schema"] = "modcon-check/v1";
    analysis::json cells = analysis::json::array();
    for (const cell_result& r : results) cells.push_back(cell_json(r));
    doc["cells"] = std::move(cells);
    out << doc.dump(2) << "\n";
    out.close();
    if (!out) {
      std::cerr << "error writing " << json_path << "\n";
      return 1;
    }
    std::cerr << "wrote " << json_path << "\n";
  }

  if (verdict_mismatch) return 1;
  if (require_exhausted && any_unexhausted) {
    std::cerr << "FAIL: --require-exhausted and at least one cell did not "
                 "exhaust\n";
    return 1;
  }
  if (require_clean && any_violation) {
    std::cerr << "FAIL: --require-clean and a violation was found\n";
    return 1;
  }
  return 0;
}
