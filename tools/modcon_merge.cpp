// modcon-merge — deterministic merge of sharded bench artifacts.
//
//   modcon-merge [-o OUT.json] SHARD0.json SHARD1.json ...
//
// The inputs are the --shard I/N artifacts of one bench invocation
// (scripts/grid_runner.py writes one per shard process); the output is
// the single-process document: every sharded cell is rebuilt from the
// union of the per-trial records (analysis/shard.h), so an N-way merge
// is byte-identical to the same bench run with --shard 0/1.  Shards may
// be given in any order; the headers carry their indices.
//
// Exit codes: 0 on success, 1 on malformed/mismatched artifacts or I/O
// failure, 2 on bad usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/json_writer.h"
#include "analysis/shard.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [-o OUT.json] SHARD.json...\n"
            << "  merges --shard I/N bench artifacts into the\n"
            << "  single-process document (stdout unless -o is given)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" || arg == "--out") {
      if (i + 1 >= argc) return usage(argv[0]);
      out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  try {
    std::vector<modcon::analysis::json> shards;
    shards.reserve(inputs.size());
    for (const std::string& path : inputs) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "modcon-merge: cannot read " << path << "\n";
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      shards.push_back(modcon::analysis::json::parse(text.str()));
    }
    const modcon::analysis::json merged =
        modcon::analysis::merge_shard_reports(shards);
    // Same serialization as bench_harness::finish, so the artifact can be
    // diffed byte for byte against a --shard 0/1 run.
    const std::string doc = merged.dump(2) + "\n";
    if (out_path.empty()) {
      std::cout << doc;
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "modcon-merge: cannot write " << out_path << "\n";
        return 1;
      }
      out << doc;
      if (!out) {
        std::cerr << "modcon-merge: error writing " << out_path << "\n";
        return 1;
      }
      std::cout << "wrote " << out_path << " (" << inputs.size()
                << " shard" << (inputs.size() == 1 ? "" : "s") << ")\n";
    }
  } catch (const modcon::analysis::json_error& e) {
    std::cerr << "modcon-merge: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
