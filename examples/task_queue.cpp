// A wait-free shared task queue from consensus — the applications layer.
//
// Herlihy's universality result [22] (which the paper's consensus objects
// plug into) says consensus buys you a linearizable version of ANY
// sequential object.  Here: a FIFO task queue shared by producer and
// consumer threads, replicated through a log of modcon consensus
// instances.  No locks, no CAS loops in user code — just consensus.
//
// Each worker enqueues a batch of tagged tasks and then drains the queue;
// at the end we verify conservation (every task enqueued was dequeued
// exactly once) and per-producer FIFO order.
#include <iostream>
#include <map>
#include <vector>

#include "apps/objects.h"
#include "apps/universal.h"
#include "core/modcon.h"
#include "rt/runner.h"

namespace {

using namespace modcon;
using apps::consensus_log;
using apps::seq_queue;
using apps::universal_object;

constexpr std::size_t kWorkers = 3;
constexpr std::size_t kTasksPerWorker = 6;

proc<word> worker(rt::rt_env& env, consensus_log<rt::rt_env>& log,
                  std::vector<word>* taken) {
  universal_object<rt::rt_env, seq_queue> queue(log);
  // Produce: task ids tagged with the worker id.
  for (std::size_t t = 0; t < kTasksPerWorker; ++t) {
    word task = env.pid() * 100 + t;
    co_await queue.perform(env, task + 1);  // op v+1 = enqueue v
  }
  // Consume: drain our share (the queue never underflows here because
  // every worker enqueues before it dequeues).
  for (std::size_t t = 0; t < kTasksPerWorker; ++t) {
    word task = co_await queue.perform(env, 0);  // op 0 = dequeue
    taken->push_back(task);
  }
  co_return 0;
}

}  // namespace

int main() {
  rt::arena mem;
  consensus_log<rt::rt_env> log(
      mem, [&mem]() -> std::unique_ptr<deciding_object<rt::rt_env>> {
        // The log agrees on packed (pid, op) words; give the ratifier a
        // value space big enough for them.
        return make_impatient_consensus<rt::rt_env>(
            mem, make_bollobas_quorums(word{1} << 44));
      });

  std::vector<std::vector<word>> taken(kWorkers);
  auto res = rt::run_threads(mem, kWorkers, /*seed=*/5, [&](rt::rt_env& env) {
    return worker(env, log, &taken[env.pid()]);
  });

  std::cout << "shared FIFO task queue via " << log.slots_built()
            << " consensus slots (" << res.total_ops
            << " register operations)\n";
  std::map<word, int> seen;
  std::map<word, std::vector<word>> per_producer;
  for (std::size_t wkr = 0; wkr < kWorkers; ++wkr) {
    std::cout << "  worker " << wkr << " executed:";
    for (word t : taken[wkr]) {
      std::cout << " " << t;
      ++seen[t];
      per_producer[t / 100].push_back(t);
    }
    std::cout << "\n";
  }

  // Conservation: every task exactly once.
  for (std::size_t p = 0; p < kWorkers; ++p) {
    for (std::size_t t = 0; t < kTasksPerWorker; ++t) {
      if (seen[p * 100 + t] != 1) {
        std::cerr << "task " << p * 100 + t << " executed "
                  << seen[p * 100 + t] << " times — queue broken\n";
        return 1;
      }
    }
  }
  std::cout << "every task executed exactly once — the queue linearizes\n";
  return 0;
}
