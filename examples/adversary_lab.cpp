// Adversary lab: watch a conciliator execution unfold, step by step,
// under schedulers of different strengths.
//
// Prints the full operation trace of one small execution per scheduler
// (who moved, what they did, whether a probabilistic write landed), then
// a quick agreement-frequency comparison — a miniature of experiment E5
// meant for poking at interactively.
#include <iostream>

#include "analysis/runner.h"
#include "core/conciliator/impatient.h"
#include "sim/adversaries/adversaries.h"
#include "util/stats.h"

namespace {

using namespace modcon;
using sim::sim_env;

void show_trace(const char* title, sim::adversary& adv,
                std::uint64_t seed) {
  std::cout << "\n--- " << title << " (seed " << seed << ") ---\n";
  sim::world_options wopts;
  wopts.trace_enabled = true;
  sim::sim_world world(3, adv, seed, wopts);
  impatient_conciliator<sim_env> conciliator(world);
  const value_t inputs[3] = {10, 20, 20};
  for (process_id p = 0; p < 3; ++p) {
    world.spawn([&conciliator, v = inputs[p]](sim_env& env) {
      return invoke_encoded(conciliator, env, v);
    });
  }
  world.run(1000);
  world.execution_trace().dump(std::cout);
  std::cout << "outputs: ";
  for (process_id p = 0; p < 3; ++p) {
    decided d = decode_decided(*world.output_of(p));
    std::cout << "p" << p << "->" << d.value << " ";
  }
  std::cout << "\n";
}

double agreement_frequency(const analysis::sim_object_builder& build,
                           const std::function<std::unique_ptr<sim::adversary>()>& mk,
                           std::size_t trials) {
  std::size_t agreed = 0;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    auto adv = mk();
    analysis::trial_options opts;
    opts.seed = seed;
    auto res = analysis::run_object_trial(
        build,
        analysis::make_inputs(analysis::input_pattern::half_half, 16, 2,
                              seed),
        *adv, opts);
    agreed += res.completed() && res.agreement();
  }
  return static_cast<double>(agreed) / static_cast<double>(trials);
}

}  // namespace

int main() {
  std::cout << "impatient first-mover conciliator, 3 processes, inputs "
               "{10, 20, 20}\n(⊥-reads keep a process writing; a 'missed' "
               "write is a probabilistic write whose coin came up tails)\n";

  {
    sim::round_robin adv;
    show_trace("round-robin scheduler", adv, 7);
  }
  {
    sim::fixed_order adv(sim::fixed_order::mode::sequential);
    show_trace("sequential scheduler (solo run wins instantly)", adv, 7);
  }
  {
    sim::greedy_overwrite adv(0);
    show_trace("greedy-overwrite attacker (location-oblivious)", adv, 7);
  }

  std::cout << "\nagreement frequency over 400 executions (n = 16):\n";
  auto build = [](modcon::address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
  struct row {
    const char* name;
    std::function<std::unique_ptr<sim::adversary>()> mk;
  };
  const row rows[] = {
      {"random scheduler  ",
       [] { return std::make_unique<sim::random_oblivious>(); }},
      {"greedy-overwrite  ",
       [] { return std::make_unique<sim::greedy_overwrite>(0); }},
      {"omniscient splitter (cheats: sees coins)",
       [] { return std::make_unique<sim::omniscient_splitter>(0); }},
  };
  for (const auto& r : rows) {
    std::cout << "  " << r.name << "  "
              << agreement_frequency(build, r.mk, 400) << "\n";
  }
  std::cout << "\nTheorem 7 floor for in-model schedulers: 0.0553. The "
               "omniscient row shows why the model restriction matters.\n";
  return 0;
}
