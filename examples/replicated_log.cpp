// Replicated log (state-machine replication) on repeated consensus.
//
// The classic use of consensus: n replicas each receive local commands
// and must apply the SAME command sequence.  Slot i of the log is decided
// by consensus instance i — here an m-valued instance of the paper's
// stack (Bollobás ratifier, impatient conciliator), so commands do not
// need to be pre-reduced to bits.
//
// Each replica proposes its own pending command for every slot; whatever
// the instance decides is appended to that replica's log.  At the end all
// logs must be identical, and every entry must be a command some replica
// actually proposed (validity).
#include <iostream>
#include <vector>

#include "core/modcon.h"
#include "rt/runner.h"

namespace {

using namespace modcon;

constexpr std::size_t kReplicas = 4;
constexpr std::size_t kSlots = 16;
constexpr std::uint64_t kCommandSpace = 256;  // command ids are 8-bit here

// One consensus object per log slot, all pre-built in the shared arena.
struct log_service {
  std::vector<std::unique_ptr<unbounded_consensus<rt::rt_env>>> slots;

  explicit log_service(rt::arena& mem) {
    auto qs = make_bollobas_quorums(kCommandSpace);
    slots.reserve(kSlots);
    for (std::size_t i = 0; i < kSlots; ++i)
      slots.push_back(make_impatient_consensus<rt::rt_env>(mem, qs));
  }
};

// A replica runs through the slots, proposing its local command stream.
proc<word> replica_main(rt::rt_env& env, log_service& service,
                        std::vector<value_t> local_commands,
                        std::vector<value_t>* log_out) {
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    value_t proposal = local_commands[slot];
    decided d = co_await service.slots[slot]->invoke(env, proposal);
    log_out->push_back(d.value);
  }
  co_return 0;
}

}  // namespace

int main() {
  rt::arena mem;
  log_service service(mem);

  // Each replica has its own command stream (replica r proposes command
  // ids r*16 + slot — all distinct, so every slot is contended).
  std::vector<std::vector<value_t>> logs(kReplicas);
  auto result = rt::run_threads(mem, kReplicas, /*seed=*/7, [&](rt::rt_env& env) {
    std::vector<value_t> commands;
    for (std::size_t s = 0; s < kSlots; ++s)
      commands.push_back((env.pid() * 16 + s) % kCommandSpace);
    return replica_main(env, service, std::move(commands),
                        &logs[env.pid()]);
  });

  std::cout << "replicated log after " << kSlots << " slots, " << kReplicas
            << " replicas (" << result.total_ops
            << " register operations):\n";
  for (std::size_t r = 0; r < kReplicas; ++r) {
    std::cout << "  replica " << r << ": ";
    for (value_t c : logs[r]) std::cout << c << " ";
    std::cout << "\n";
  }

  for (std::size_t r = 1; r < kReplicas; ++r) {
    if (logs[r] != logs[0]) {
      std::cerr << "LOGS DIVERGED — impossible if consensus is correct\n";
      return 1;
    }
  }
  // Validity: every decided command was proposed by some replica for that
  // slot.
  for (std::size_t s = 0; s < kSlots; ++s) {
    bool proposed = false;
    for (std::size_t r = 0; r < kReplicas; ++r)
      proposed |= logs[0][s] == (r * 16 + s) % kCommandSpace;
    if (!proposed) {
      std::cerr << "slot " << s << " decided an unproposed command\n";
      return 1;
    }
  }
  std::cout << "all replicas applied the identical, valid command "
               "sequence\n";
  return 0;
}
