// Leader election with crash failures, on the simulator.
//
// n workers elect a leader by running n-valued consensus with their own
// pid as input (m = n, distinct inputs — the maximally contended case).
// We inject crashes into a majority of the workers mid-protocol: because
// the protocol is wait-free, the survivors still elect a single leader,
// and validity guarantees the leader is a real pid.
//
// This example also shows the simulator-side API: build a world, pick a
// scheduler, inject crashes, inspect per-process metrics.
#include <iostream>

#include "analysis/runner.h"
#include "core/modcon.h"
#include "sim/adversaries/adversaries.h"

int main() {
  using namespace modcon;
  using sim::sim_env;

  constexpr std::size_t kWorkers = 10;

  auto build = [](address_space& mem, std::size_t n) {
    return make_impatient_consensus<sim_env>(mem,
                                             make_bollobas_quorums(n));
  };

  // Everyone proposes itself.
  std::vector<value_t> inputs;
  for (std::size_t p = 0; p < kWorkers; ++p) inputs.push_back(p);

  // Crash workers 0-5 after a few operations each.
  analysis::trial_options opts;
  opts.seed = 42;
  for (process_id p = 0; p < 6; ++p)
    opts.faults.crashes.push_back({p, 3 + p});

  sim::random_oblivious adv;
  auto res = analysis::run_object_trial(build, inputs, adv, opts);

  std::cout << "workers: " << kWorkers << ", crashed: 6 (pids 0-5)\n";
  for (std::size_t i = 0; i < res.outputs.size(); ++i) {
    std::cout << "  worker " << res.halted_pids[i]
              << " elected leader " << res.outputs[i].value << "\n";
  }
  std::cout << "total operations: " << res.total_ops
            << ", max per worker: " << res.max_individual_ops << "\n";

  if (res.outputs.empty()) {
    std::cerr << "no survivors?\n";
    return 1;
  }
  for (const decided& d : res.outputs) {
    if (!d.decide || d.value != res.outputs[0].value ||
        d.value >= kWorkers) {
      std::cerr << "election failed — impossible if consensus is correct\n";
      return 1;
    }
  }
  std::cout << "survivors unanimously elected worker "
            << res.outputs[0].value << " (wait-freedom despite "
            << "a majority crashing)\n";
  return 0;
}
