// Quickstart: agree on one value among 8 real threads.
//
//   $ ./quickstart
//
// Builds the paper's consensus stack (impatient first-mover conciliators
// + binary quorum ratifiers, §4.1 + §5.2 + §6), hands every thread an
// input, and prints the agreed decision.  This is the whole public API
// surface a typical user needs: an arena, a builder, run_threads.
#include <iostream>

#include "core/modcon.h"
#include "rt/runner.h"

int main() {
  using namespace modcon;

  constexpr std::size_t kThreads = 8;

  // 1. A register arena (the shared memory).
  rt::arena mem;

  // 2. The consensus object.  Binary values; use make_bollobas_quorums(m)
  //    for m-valued consensus.
  auto consensus = make_impatient_consensus<rt::rt_env>(
      mem, make_binary_quorums());

  // 3. Every thread invokes it once with its input (here: pid parity).
  auto result = rt::run_threads(mem, kThreads, /*seed=*/2024,
                                [&](rt::rt_env& env) {
                                  value_t my_input = env.pid() % 2;
                                  return invoke_encoded(*consensus, env,
                                                        my_input);
                                });

  std::cout << "inputs:    ";
  for (std::size_t p = 0; p < kThreads; ++p) std::cout << p % 2 << " ";
  std::cout << "\ndecisions: ";
  for (word w : result.outputs) {
    decided d = decode_decided(w);
    std::cout << d.value << " ";
  }
  std::cout << "\ntotal shared-memory operations: " << result.total_ops
            << "\nmax per-thread operations:      "
            << result.max_individual_ops << "\n";

  decided first = decode_decided(result.outputs[0]);
  for (word w : result.outputs) {
    if (decode_decided(w).value != first.value) {
      std::cerr << "DISAGREEMENT — this should be impossible\n";
      return 1;
    }
  }
  std::cout << "all " << kThreads << " threads agreed on " << first.value
            << "\n";
  return 0;
}
