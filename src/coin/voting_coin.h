// Voting-based weak shared coin in the style of Aspnes–Herlihy [9].
//
// Each process repeatedly flips a fair local coin and adds the ±1 vote to
// its own tally register (n single-writer registers, so no register is
// ever contended).  Every `period` votes it collects all n tallies (n
// individual reads — no snapshot assumption) and decides sign(total) once
// |total| exceeds threshold_factor · n.
//
// The random walk of the total vote needs Θ((threshold_factor · n)²)
// votes to escape the threshold, and the adversary can hide at most
// (period - 1) · n unwritten votes plus n - 1 pending writes — a vanishing
// fraction of the threshold — so both outcomes retain constant
// probability against even an adaptive adversary.  Total work is
// Θ(n²·threshold_factor²·(1 + n/period)); this coin is the expensive
// classic the probabilistic-write conciliator of Theorem 7 sidesteps.
#pragma once

#include <cstdint>

#include "coin/shared_coin.h"
#include "exec/address_space.h"
#include "exec/environment.h"
#include "util/assertx.h"

namespace modcon {

template <typename Env>
class voting_coin final : public shared_coin<Env> {
 public:
  voting_coin(address_space& mem, std::size_t n, unsigned threshold_factor = 4,
              unsigned period = 2)
      : n_(n),
        threshold_(static_cast<std::int64_t>(threshold_factor) *
                   static_cast<std::int64_t>(n)),
        period_(period),
        base_(mem.alloc_block(static_cast<std::uint32_t>(n), encode(0))) {
    MODCON_CHECK(threshold_factor >= 1 && period >= 1);
  }

  proc<value_t> toss(Env& env) override {
    MODCON_CHECK_MSG(env.n() == n_, "coin sized for a different n");
    std::int64_t mine = 0;
    for (;;) {
      for (unsigned i = 0; i < period_; ++i) {
        mine += env.coin() ? 1 : -1;
        co_await env.write(base_ + env.pid(), encode(mine));
      }
      std::int64_t total = 0;
      for (std::uint32_t i = 0; i < n_; ++i)
        total += decode(co_await env.read(base_ + i));
      if (total >= threshold_) co_return 1;
      if (total <= -threshold_) co_return 0;
    }
  }

  std::string name() const override { return "voting-coin"; }

 private:
  // Zigzag encoding of a signed tally into a register word.
  static word encode(std::int64_t v) {
    return (static_cast<word>(v) << 1) ^
           static_cast<word>(v >> 63);
  }
  static std::int64_t decode(word w) {
    return static_cast<std::int64_t>(w >> 1) ^
           -static_cast<std::int64_t>(w & 1);
  }

  std::size_t n_;
  std::int64_t threshold_;
  unsigned period_;
  reg_id base_;
};

}  // namespace modcon
