// First-mover shared coin: one register, three operations.
//
// Toss: read the register; if somebody's flip is already there, return
// it.  Otherwise write your own local flip and return a final read (the
// last write before the readers arrive wins).
//
// As a *weak shared coin* this is honest only against adversaries that
// cannot see the flips in flight (value-oblivious): a location-oblivious
// or adaptive adversary sees the pending values and can order a chosen
// one last, fully controlling the outcome.  But note what Theorem 6
// actually consumes: the CoinConciliator needs agreement probability,
// not unpredictability — a coin whose outcome the adversary controls
// still conciliates, because whichever side wins, everyone tends to win
// together.  The E6 bench shows this cheap coin conciliating orders of
// magnitude cheaper than the voting coin, while the voting coin remains
// the one to use when genuine unpredictability matters.
#pragma once

#include "coin/shared_coin.h"
#include "exec/address_space.h"
#include "exec/environment.h"

namespace modcon {

template <typename Env>
class firstmover_coin final : public shared_coin<Env> {
 public:
  explicit firstmover_coin(address_space& mem) : r_(mem.alloc(kBot)) {}

  proc<value_t> toss(Env& env) override {
    word u = co_await env.read(r_);
    if (u != kBot) co_return u;
    co_await env.write(r_, env.coin() ? 1 : 0);
    co_return co_await env.read(r_);
  }

  std::string name() const override { return "firstmover-coin"; }

 private:
  reg_id r_;
};

}  // namespace modcon
