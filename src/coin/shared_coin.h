// Weak shared coins (§5.1, after Aspnes–Herlihy [9]).
//
// A weak shared coin is a one-shot protocol in which each process decides
// a bit, and for some agreement parameter δ > 0 both Pr[all decide 0] and
// Pr[all decide 1] are at least δ against any adversary in the model.
// Note the two ways this differs from a conciliator (§5.1): it is
// *stronger* in being unpredictable (either outcome has probability >= δ)
// and *weaker* in ignoring validity (the outputs need not relate to any
// input).  Theorem 6 turns any weak shared coin into a binary conciliator.
#pragma once

#include <string>

#include "core/types.h"
#include "exec/proc.h"

namespace modcon {

template <typename Env>
class shared_coin {
 public:
  virtual ~shared_coin() = default;

  // Each process calls this at most once; returns 0 or 1.
  virtual proc<value_t> toss(Env& env) = 0;

  virtual std::string name() const = 0;
};

}  // namespace modcon
