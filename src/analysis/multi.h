// Multi-shot trial engine: batches of slot-log executions (multi/) over
// the same deterministic grid machinery as the one-shot experiments.
//
// A multi-shot trial runs n processes against K independent slot logs
// ("shards"), each process proposing on every slot of every shard in
// slot-major order and advancing its watermark as it goes — so decided
// slots reclaim behind the frontier while the run is still going.  The
// proposal a process makes for (shard, slot) is a deterministic mix of
// the trial seed, so a trial is reproducible from (cell, index) exactly
// like the one-shot engine, and the per-slot auditor can reconstruct the
// full proposal table without recording it.
//
// Results reuse summary_stats: the shared fields (counts, cost
// distributions, perf) mean the same thing, and the multi-specific
// accounting lands in summary_stats::multi — the schema v4 "multi" JSON
// block.  Every field in that block is a deterministic function of the
// cell definition, so e17 artifacts stay byte-identical across engine
// thread counts.
//
// The same trial shape runs on both backends: run_multi_trial drives the
// simulator under an adversary (with fault injection, trace-legality
// audit, and per-slot audit); run_rt_multi_trial drives real threads
// (per-slot audit only — reinit stores are not hb events, so the
// serializability check does not apply to recycled registers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/runner.h"
#include "core/consensus/stack_spec.h"
#include "multi/object_pool.h"

namespace modcon::analysis {

// One cell of a multi-shot grid.  Stacks come exclusively from the
// descriptor registry (core/consensus/stack_spec.h) — there is no
// factory-lambda escape hatch here.
struct multi_grid {
  std::string label;
  stack_spec spec;           // per-slot consensus stack
  std::size_t n = 4;         // processes
  std::uint64_t shards = 4;  // independent slot logs
  std::uint64_t slots = 16;  // slots proposed per shard
  std::uint64_t m = 2;       // proposal alphabet [0, m)
  std::size_t trials = 20;
  std::uint64_t base_seed = 1;
  run_limits limits;
  adversary_factory make_adversary;  // sim backend; null = random scheduler
  fault_plan faults;
  audit_plan audit;  // per-slot + trace-legality audit sampling
  std::uint32_t extent_words = 64;  // object_pool extent size
  bool keep_records = false;
  bool observe = false;
};

// The value process `pid` proposes for (shard, slot) in the trial with
// this seed — shared between the program and the auditor's proposal
// table.
std::uint64_t multi_proposal(std::uint64_t seed, std::uint64_t shard,
                             std::uint64_t slot, process_id pid,
                             std::uint64_t m);

// Result of one multi-shot trial.  `base` carries the backend-level
// outcome (status, cost counters, audit report); outputs hold one
// digest per surviving process — a seeded fold of every slot decision
// the process consumed, so cross-process agreement on the digest is
// agreement on the entire log.
struct multi_trial_result {
  trial_result base;
  std::uint64_t proposals = 0;       // propose() calls that returned
  std::uint64_t decisions = 0;       // slow path: ran the slot object
  std::uint64_t fast_path_hits = 0;  // answered by the pin register
  std::uint64_t slots_reclaimed = 0;
  multi::pool_stats pool;            // summed over shards
  std::vector<double> slot_ops;      // per-proposal individual ops
  bool slots_agree = false;  // every consumed slot decision matched
  bool slots_valid = false;  // every slot decision was proposed for it
};

struct multi_trial_options {
  std::uint64_t seed = 1;
  run_limits limits;
  fault_plan faults;
  audit_options audit;
  bool observe = false;
  perf_counters* perf = nullptr;
  // rt backend only (mirrors rt_trial_options).
  std::uint32_t chaos = 0;
  std::uint32_t watchdog_ms = 10'000;
};

// One simulated multi-shot execution of `cell.spec` over cell.shards
// logs; the grid fields (trials, base_seed, audit sampling) are ignored
// in favor of `opts`.
multi_trial_result run_multi_trial(const multi_grid& cell,
                                   const multi_trial_options& opts);

// One real-thread multi-shot execution (OS scheduling, cooperative
// process faults, no register faults).
multi_trial_result run_rt_multi_trial(const multi_grid& cell,
                                      const multi_trial_options& opts);

// Runs a multi-shot grid through a shared worker pool with the one-shot
// engine's determinism contract: trial t of a cell always uses seed
// derive_trial_seed(base_seed, t), and records reduce in trial order, so
// summaries are identical for every opts.threads.
std::vector<summary_stats> run_multi_grid(const std::vector<multi_grid>& grid,
                                          const experiment_options& opts = {});

summary_stats run_multi_experiment(const multi_grid& cell,
                                   const experiment_options& opts = {});

}  // namespace modcon::analysis
