// Per-phase wall-clock accounting for the trial engines.
//
// Every trial passes through the same four phases:
//
//   schedule   building the trial: adversary construction, input
//              generation, world/object setup;
//   step       the execution itself (sim_world::run or the rt thread run);
//   audit      the optional property-audit replay (check/auditor.h);
//   serialize  aggregation of records into summaries and their JSON form.
//
// `perf_counters` accumulates steady-clock nanoseconds per phase; the
// experiment engine records them per trial, sums them per cell, and
// serializes them into the report's "perf" block (schema minor 1, see
// EXPERIMENTS.md).  Timing fields are measurements, not results: they are
// excluded from the engine's determinism contract, and every timing key
// is spelled `*_ms` / `steps_per_sec_*` so determinism diffs can filter
// them with one pattern.
//
// Overhead budget: two clock reads per phase per *trial* (never per
// step), so the counters stay on unconditionally.
#pragma once

#include <chrono>
#include <cstdint>

namespace modcon::analysis {

enum class perf_phase : std::uint8_t { schedule, step, audit, serialize };
inline constexpr std::size_t kPerfPhaseCount = 4;

const char* to_string(perf_phase p);

inline std::uint64_t perf_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct perf_counters {
  std::uint64_t ns[kPerfPhaseCount] = {};

  void add(perf_phase p, std::uint64_t dt_ns) {
    ns[static_cast<std::size_t>(p)] += dt_ns;
  }
  std::uint64_t get_ns(perf_phase p) const {
    return ns[static_cast<std::size_t>(p)];
  }
  double ms(perf_phase p) const {
    return static_cast<double>(get_ns(p)) / 1e6;
  }
  perf_counters& operator+=(const perf_counters& o) {
    for (std::size_t i = 0; i < kPerfPhaseCount; ++i) ns[i] += o.ns[i];
    return *this;
  }
};

// RAII phase timer: adds the elapsed steady-clock time to `into` on
// destruction.  `into` may be null (timer disabled, near-zero cost).
class phase_timer {
 public:
  phase_timer(perf_counters* into, perf_phase phase)
      : into_(into), phase_(phase), start_(into ? perf_now_ns() : 0) {}
  ~phase_timer() { stop(); }

  phase_timer(const phase_timer&) = delete;
  phase_timer& operator=(const phase_timer&) = delete;

  // Ends the timed region early (idempotent).
  void stop() {
    if (into_ == nullptr) return;
    into_->add(phase_, perf_now_ns() - start_);
    into_ = nullptr;
  }

 private:
  perf_counters* into_;
  perf_phase phase_;
  std::uint64_t start_;
};

}  // namespace modcon::analysis
