// Minimal JSON document model for the experiment engine: build, serialize,
// and parse without external dependencies.
//
// Design constraints, in order:
//   * deterministic output — object members keep insertion order, numbers
//     format identically across runs and thread counts (the bench JSON
//     artifacts are diffed byte-for-byte between --threads 1 and N);
//   * round-trippable — parse(dump(v)) reproduces v, so summaries can be
//     reloaded by tooling and by tests;
//   * small — only what BENCH_*.json needs (null/bool/integers/doubles/
//     strings/arrays/objects; no comments).  JSON has no NaN/Inf tokens,
//     so non-finite doubles serialize as null (degenerate summaries must
//     still produce parseable documents).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace modcon::analysis {

class json_error : public std::exception {
 public:
  explicit json_error(std::string msg) : msg_(std::move(msg)) {}
  const char* what() const noexcept override { return msg_.c_str(); }

 private:
  std::string msg_;
};

class json {
 public:
  enum class kind : std::uint8_t {
    null_t,
    bool_t,
    int_t,     // signed 64-bit
    uint_t,    // unsigned 64-bit (kept distinct so large counters survive)
    double_t,
    string_t,
    array_t,
    object_t,
  };

  json() = default;  // null
  json(std::nullptr_t) {}
  json(bool b) : kind_(kind::bool_t), bool_(b) {}
  json(int v) : kind_(kind::int_t), int_(v) {}
  json(long v) : kind_(kind::int_t), int_(v) {}
  json(long long v) : kind_(kind::int_t), int_(v) {}
  json(unsigned v) : kind_(kind::uint_t), uint_(v) {}
  json(unsigned long v) : kind_(kind::uint_t), uint_(v) {}
  json(unsigned long long v) : kind_(kind::uint_t), uint_(v) {}
  json(double v) : kind_(kind::double_t), double_(v) {}
  json(const char* s) : kind_(kind::string_t), string_(s) {}
  json(std::string s) : kind_(kind::string_t), string_(std::move(s)) {}

  static json array() {
    json j;
    j.kind_ = kind::array_t;
    return j;
  }
  static json object() {
    json j;
    j.kind_ = kind::object_t;
    return j;
  }

  kind type() const { return kind_; }
  bool is_null() const { return kind_ == kind::null_t; }
  bool is_object() const { return kind_ == kind::object_t; }
  bool is_array() const { return kind_ == kind::array_t; }
  bool is_number() const {
    return kind_ == kind::int_t || kind_ == kind::uint_t ||
           kind_ == kind::double_t;
  }
  bool is_string() const { return kind_ == kind::string_t; }

  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;  // any numeric kind
  const std::string& as_string() const;

  // Array access.
  void push_back(json v);
  std::size_t size() const;  // array or object element count
  const json& at(std::size_t i) const;

  // Object access.  operator[] inserts a null member if absent (build
  // path); find() is the lookup that does not mutate.
  json& operator[](std::string_view key);
  const json* find(std::string_view key) const;
  const std::vector<std::pair<std::string, json>>& members() const;

  // Serialization.  indent < 0 emits compact one-line JSON.
  std::string dump(int indent = 2) const;

  // Strict parser (throws json_error on malformed input or trailing
  // garbage).  Numbers with '.', 'e', or 'E' parse as doubles; other
  // numbers parse as int_t/uint_t.
  static json parse(std::string_view text);

  bool operator==(const json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  kind kind_ = kind::null_t;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<json> array_;
  std::vector<std::pair<std::string, json>> object_;
};

}  // namespace modcon::analysis
