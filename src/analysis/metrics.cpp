#include "analysis/metrics.h"

#include <algorithm>

namespace modcon::analysis {

bool check_validity(const std::vector<decided>& outputs,
                    const std::vector<value_t>& inputs) {
  return std::all_of(outputs.begin(), outputs.end(), [&](const decided& d) {
    return std::find(inputs.begin(), inputs.end(), d.value) != inputs.end();
  });
}

bool check_validity_sorted(const std::vector<decided>& outputs,
                           const std::vector<value_t>& sorted_inputs) {
  return std::all_of(outputs.begin(), outputs.end(), [&](const decided& d) {
    return std::binary_search(sorted_inputs.begin(), sorted_inputs.end(),
                              d.value);
  });
}

bool check_coherence(const std::vector<decided>& outputs) {
  // "If any process outputs (1, v), no process outputs (d, v') with
  // v' != v" — equivalently: once some output decides, *every* output
  // must carry the decider's value.  One pass instead of the literal
  // quantifier pair (which was quadratic when all n processes decide).
  const decided* first_decider = nullptr;
  for (const decided& d : outputs) {
    if (d.decide) {
      first_decider = &d;
      break;
    }
  }
  if (first_decider == nullptr) return true;
  for (const decided& e : outputs)
    if (e.value != first_decider->value) return false;
  return true;
}

bool check_agreement(const std::vector<decided>& outputs) {
  return std::all_of(outputs.begin(), outputs.end(), [&](const decided& d) {
    return d.value == outputs.front().value;
  });
}

bool check_acceptance(const std::vector<decided>& outputs, value_t v) {
  return std::all_of(outputs.begin(), outputs.end(), [&](const decided& d) {
    return d.decide && d.value == v;
  });
}

bool all_decided(const std::vector<decided>& outputs) {
  return std::all_of(outputs.begin(), outputs.end(),
                     [](const decided& d) { return d.decide; });
}

}  // namespace modcon::analysis
