#include "analysis/metrics.h"

#include <algorithm>

namespace modcon::analysis {

bool check_validity(const std::vector<decided>& outputs,
                    const std::vector<value_t>& inputs) {
  return std::all_of(outputs.begin(), outputs.end(), [&](const decided& d) {
    return std::find(inputs.begin(), inputs.end(), d.value) != inputs.end();
  });
}

bool check_coherence(const std::vector<decided>& outputs) {
  for (const decided& d : outputs) {
    if (!d.decide) continue;
    for (const decided& e : outputs)
      if (e.value != d.value) return false;
  }
  return true;
}

bool check_agreement(const std::vector<decided>& outputs) {
  return std::all_of(outputs.begin(), outputs.end(), [&](const decided& d) {
    return d.value == outputs.front().value;
  });
}

bool check_acceptance(const std::vector<decided>& outputs, value_t v) {
  return std::all_of(outputs.begin(), outputs.end(), [&](const decided& d) {
    return d.decide && d.value == v;
  });
}

bool all_decided(const std::vector<decided>& outputs) {
  return std::all_of(outputs.begin(), outputs.end(),
                     [](const decided& d) { return d.decide; });
}

}  // namespace modcon::analysis
