// Property predicates over the outputs of a one-shot deciding object,
// matching the definitions of §3 exactly.
#pragma once

#include <vector>

#include "core/types.h"

namespace modcon::analysis {

// Validity: every output value equals some process's input value.
// Pass every decided value that escaped into the execution: the
// survivors' outputs plus any decided-then-crashed values
// (trial_result::all_outputs()); pids that crashed before deciding
// contribute nothing.
bool check_validity(const std::vector<decided>& outputs,
                    const std::vector<value_t>& inputs);

// Same predicate over inputs already sorted ascending: O((k+n) log n)
// membership via binary search instead of the O(k·n) scan.  The batch
// engine sorts each trial's inputs once and uses this form — at n = 4096
// the naive scan was the single largest line in the engine profile.
bool check_validity_sorted(const std::vector<decided>& outputs,
                           const std::vector<value_t>& sorted_inputs);

// Coherence: if any process outputs (1, v), then no process outputs
// (d, v') with v' != v.
bool check_coherence(const std::vector<decided>& outputs);

// Agreement (as measured for probabilistic agreement): all output values
// equal.  Vacuously true for the empty set.
bool check_agreement(const std::vector<decided>& outputs);

// Acceptance (ratifier): if all inputs equal v, all outputs are (1, v).
// Callers assert this only on unanimous-input executions.
bool check_acceptance(const std::vector<decided>& outputs, value_t v);

// All processes decided (consensus termination with decision bits).
bool all_decided(const std::vector<decided>& outputs);

}  // namespace modcon::analysis
