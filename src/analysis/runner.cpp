#include "analysis/runner.h"

#include <algorithm>
#include <sstream>

#include "obs/telemetry.h"
#include "util/rng.h"

namespace modcon::analysis {

namespace {

// Fleet telemetry for one finished trial (obs/telemetry.h).  This is the
// single accounting point for scalar trials on both backends — the
// experiment worker adds only measurement histograms and per-cell
// totals, and the batch interpreter does its own equivalent in
// finalize() — so every counter is bumped exactly once per trial.
void note_trial_telemetry(const trial_result& res) {
  obs::telemetry_sink* ts = obs::tl_sink();
  if (!ts) return;
  ts->add(obs::tcounter::trials_completed);
  ts->add(obs::tcounter::steps, res.steps);
  ts->add(obs::tcounter::total_ops, res.total_ops);
  if (!res.crashed_pids.empty())
    ts->add(obs::tcounter::crashes, res.crashed_pids.size());
  if (res.restarts) ts->add(obs::tcounter::restarts, res.restarts);
  if (res.recoveries) ts->add(obs::tcounter::recoveries, res.recoveries);
  if (res.stale_reads)
    ts->add(obs::tcounter::stale_reads, res.stale_reads);
  if (res.omitted_writes)
    ts->add(obs::tcounter::omitted_writes, res.omitted_writes);
  if (res.volatile_wipes)
    ts->add(obs::tcounter::volatile_wipes, res.volatile_wipes);
  if (res.timed_out()) ts->add(obs::tcounter::trials_timed_out);
  if (res.audit) {
    ts->add(obs::tcounter::audits);
    if (res.audit->status == check::audit_status::violated)
      ts->add(obs::tcounter::audit_violations);
  }
  ts->record(obs::thist::trial_steps, res.steps);
}

// Derives what the auditor may assume from the trial configuration: the
// §3 property checks presume the model's guarantees, which register
// faults void; the legality checks instead *describe* those faults.
check::audit_spec make_audit_spec(const std::vector<value_t>& inputs,
                                  const fault_plan& faults,
                                  const audit_options& audit) {
  check::audit_spec spec;
  spec.n = inputs.size();
  spec.inputs = inputs;
  spec.ratifier = audit.ratifier;
  // Process faults (including crash-recovery) keep the §3 property checks
  // armed: the model's guarantees hold under crashes.  Register faults —
  // probabilistic stale reads, omissions, weakened semantics — void them.
  spec.check_properties = audit.deciding && !faults.registers.enabled();
  spec.regular_registers = faults.registers.regular;
  spec.semantics = faults.registers.semantics;
  spec.write_omission = faults.registers.omit_denominator != 0 &&
                        faults.registers.omit_budget != 0;
  spec.process_faults = !faults.crashes.empty() ||
                        !faults.restarts.empty() ||
                        !faults.recoveries.empty() || !faults.stalls.empty();
  return spec;
}

}  // namespace

std::string to_string(const fault_plan& plan) {
  if (plan.empty()) return "none";
  std::ostringstream os;
  const char* sep = "";
  for (const auto& c : plan.crashes) {
    os << sep << "crash(" << c.pid << "@" << c.after_ops << ")";
    sep = " ";
  }
  for (const auto& r : plan.restarts) {
    os << sep << "restart(" << r.pid << "@" << r.after_ops << ")";
    sep = " ";
  }
  for (const auto& r : plan.recoveries) {
    os << sep << "recover(" << r.pid << "@" << r.after_ops << ")";
    sep = " ";
  }
  for (const auto& s : plan.stalls) {
    os << sep << "stall(" << s.pid << "@" << s.after_ops;
    if (s.resume_after_ms != 0) os << "+" << s.resume_after_ms << "ms";
    os << ")";
    sep = " ";
  }
  if (plan.registers.semantics != sim::register_semantics::atomic) {
    os << sep << "semantics=" << to_string(plan.registers.semantics);
    sep = " ";
  }
  if (plan.fault_seed != 0) {
    os << sep << "fault_seed(" << plan.fault_seed << ")";
    sep = " ";
  }
  if (plan.registers.regular) {
    os << sep << "regular(1/" << plan.registers.stale_denominator << ")";
    sep = " ";
  }
  if (plan.registers.omit_denominator != 0 &&
      plan.registers.omit_budget != 0) {
    os << sep << "omit(1/" << plan.registers.omit_denominator << "x"
       << plan.registers.omit_budget << ")";
    sep = " ";
  }
  return os.str();
}

trial_result run_object_trial(const sim_object_builder& build,
                              const std::vector<value_t>& inputs,
                              sim::adversary& adv,
                              const trial_options& opts) {
  const std::size_t n = inputs.size();
  phase_timer schedule_timer(opts.perf, perf_phase::schedule);
  // Declared before the world: coroutine frames destroyed in ~sim_world
  // still hold span guards, whose close path checks the recorder's sealed
  // flag — so the recorder must be the longer-lived of the two.
  std::optional<obs::trial_recorder> obs_rec;
  if (opts.observe) obs_rec.emplace(n);
  sim::world_options wopts;
  wopts.trace_enabled = opts.trace || opts.audit.enabled || opts.observe;
  wopts.trace_max_events = opts.audit.max_trace_events;
  wopts.register_faults = opts.faults.registers;
  wopts.fault_seed = opts.faults.fault_seed;
  wopts.obs = obs_rec ? &*obs_rec : nullptr;
  sim::sim_world world(n, adv, opts.seed, wopts);

  auto obj = build(world, n);

  for (process_id pid = 0; pid < n; ++pid) {
    world.spawn([&obj, v = inputs[pid]](sim::sim_env& env) {
      return invoke_encoded(*obj, env, v);
    });
  }
  for (const crash_spec& c : opts.faults.crashes)
    world.crash_after(c.pid, c.after_ops);
  for (const restart_spec& r : opts.faults.restarts)
    world.restart_after(r.pid, r.after_ops);
  for (const restart_spec& r : opts.faults.recoveries)
    world.recover_after(r.pid, r.after_ops);
  // A stalled process never takes another step; in an asynchronous model
  // with no fairness assumption that is observationally a crash.
  for (const stall_spec& s : opts.faults.stalls)
    world.crash_after(s.pid, s.after_ops);
  schedule_timer.stop();

  trial_result res;
  {
    phase_timer step_timer(opts.perf, perf_phase::step);
    res.status = world.run(opts.limits.max_steps).status;
  }
  std::vector<check::labeled_output> escaped;  // for the audit below
  for (process_id pid = 0; pid < n; ++pid) {
    auto out = world.output_of(pid);
    if (world.crashed(pid)) {
      // Crashed wins the pid partition; a decided-then-crashed value
      // still feeds the checks via crashed_outputs.
      res.crashed_pids.push_back(pid);
      if (out) res.crashed_outputs.push_back(decode_decided(*out));
    } else if (out) {
      res.outputs.push_back(decode_decided(*out));
      res.halted_pids.push_back(pid);
    }
    if (out) escaped.push_back({pid, decode_decided(*out)});
    if (world.restarts_of(pid) > 0) res.restarted_pids.push_back(pid);
    if (world.recoveries_of(pid) > 0) res.recovered_pids.push_back(pid);
  }
  res.restarts = world.total_restarts();
  res.recoveries = world.total_recoveries();
  res.stale_reads = world.stale_reads();
  res.omitted_writes = world.omitted_writes();
  res.overlap_reads = world.overlap_reads();
  res.volatile_wipes = world.volatile_wipes();
  res.total_ops = world.total_ops();
  res.max_individual_ops = world.max_individual_ops();
  res.steps = world.steps();
  res.registers = world.allocated();
  if (opts.audit.enabled) {
    phase_timer audit_timer(opts.perf, perf_phase::audit);
    check::audit_spec spec =
        make_audit_spec(inputs, opts.faults, opts.audit);
    spec.volatile_regs = world.volatile_registers();
    spec.recovery_steps = world.recovery_steps();
    res.audit =
        check::audit_trial(world.execution_trace(), escaped, {}, spec);
  }
  if (obs_rec) {
    // Close out spans left open by step-limited or crashed processes at
    // the final counters, then seal: guards destroyed later (with the
    // world) become no-ops.
    for (process_id pid = 0; pid < n; ++pid)
      obs_rec->force_close(pid, world.steps(), world.ops_of(pid),
                           world.draws_of(pid));
    obs_rec->seal();
    res.obs = obs::finalize_trial(*obs_rec, &world.execution_trace());
  }
  if (opts.inspect) opts.inspect(world);
  if (opts.inspect_object) opts.inspect_object(world, *obj);
  note_trial_telemetry(res);
  return res;
}

trial_result run_rt_object_trial(const rt_object_builder& build,
                                 const std::vector<value_t>& inputs,
                                 const rt_trial_options& opts) {
  const std::size_t n = inputs.size();
  phase_timer schedule_timer(opts.perf, perf_phase::schedule);
  rt::arena mem;
  auto obj = build(mem, n);

  std::unique_ptr<rt::rt_trace_recorder> recorder;
  if (opts.audit.enabled) {
    recorder = std::make_unique<rt::rt_trace_recorder>(
        n, opts.audit.max_trace_events ? opts.audit.max_trace_events
                                       : sim::kDefaultMaxTraceEvents);
  }

  std::unique_ptr<obs::trial_recorder> obs_rec;
  if (opts.observe) obs_rec = std::make_unique<obs::trial_recorder>(n);

  rt::rt_run_options ropts;
  ropts.chaos = opts.chaos;
  ropts.watchdog_ms = opts.watchdog_ms;
  ropts.recorder = recorder.get();
  ropts.obs = obs_rec.get();
  for (const crash_spec& c : opts.faults.crashes)
    ropts.faults.push_back(
        {c.pid, c.after_ops, rt::fault_action::crash, 0});
  for (const restart_spec& r : opts.faults.restarts)
    ropts.faults.push_back(
        {r.pid, r.after_ops, rt::fault_action::restart, 0});
  for (const restart_spec& r : opts.faults.recoveries)
    ropts.faults.push_back(
        {r.pid, r.after_ops, rt::fault_action::recover, 0});
  for (const stall_spec& s : opts.faults.stalls)
    ropts.faults.push_back(
        {s.pid, s.after_ops, rt::fault_action::stall, s.resume_after_ms});
  // Probabilistic stale reads / omission are ignored here (rt registers
  // are real atomics), but weakened semantics are approximated by
  // read-racing at rate 1/stale_denominator (see rt/env.h).
  ropts.semantics = opts.faults.registers.semantics;
  ropts.race_denominator = static_cast<std::uint32_t>(
      opts.faults.registers.stale_denominator);

  schedule_timer.stop();

  // The inputs vector outlives the threads, so the program lambda may
  // capture it by pointer (invoke_encoded copies the value into the
  // coroutine frame before the lambda dies — CP.51).
  phase_timer step_timer(opts.perf, perf_phase::step);
  auto rres = rt::run_threads_opts(
      mem, n, opts.seed,
      [&obj, &inputs](rt::rt_env& env) {
        return invoke_encoded(*obj, env, inputs[env.pid()]);
      },
      ropts);
  step_timer.stop();

  trial_result res;
  bool any_crashed = false;
  for (process_id pid = 0; pid < n; ++pid) {
    switch (rres.outcomes[pid]) {
      case rt::rt_outcome::halted:
        res.outputs.push_back(decode_decided(rres.outputs[pid]));
        res.halted_pids.push_back(pid);
        break;
      case rt::rt_outcome::crashed:
        res.crashed_pids.push_back(pid);
        any_crashed = true;
        break;
      case rt::rt_outcome::timed_out:
      case rt::rt_outcome::running:
        break;  // still running when aborted: in neither partition
    }
    if (rres.restarts[pid] > 0) res.restarted_pids.push_back(pid);
    if (rres.recoveries[pid] > 0) res.recovered_pids.push_back(pid);
    res.restarts += rres.restarts[pid];
    res.recoveries += rres.recoveries[pid];
  }
  res.races = rres.races;
  res.volatile_wipes = res.recoveries;  // one wipe per recovery
  if (rres.timed_out)
    res.status = sim::run_status::timed_out;
  else if (any_crashed)
    res.status = sim::run_status::no_runnable;
  else
    res.status = sim::run_status::all_halted;
  res.total_ops = rres.total_ops;
  res.max_individual_ops = rres.max_individual_ops;
  res.steps = rres.total_ops;
  res.registers = mem.allocated();

  if (obs_rec) {
    // All coroutine frames unwind before run_threads_opts returns, so
    // every guard has closed; no trace on this backend, so the
    // env-counted operation counters stand.
    obs_rec->seal();
    res.obs = obs::finalize_trial(*obs_rec, nullptr);
  }

  if (opts.audit.enabled) {
    phase_timer audit_timer(opts.perf, perf_phase::audit);
    check::audit_spec spec =
        make_audit_spec(inputs, opts.faults, opts.audit);
    check::audit_report rep;
    std::vector<check::labeled_output> escaped;
    for (std::size_t i = 0; i < res.halted_pids.size(); ++i)
      escaped.push_back({res.halted_pids[i], res.outputs[i]});
    check::audit_outputs(escaped, spec, rep);
    std::vector<check::hb_event> events;
    for (const rt::rt_trace_event& e : recorder->merged())
      events.push_back(
          {e.pid, e.kind, e.reg, e.value, e.applied, e.begin, e.end});
    // Taken after join so registers the object allocated mid-run (the
    // unbounded construction builds stages lazily) carry their true init
    // words — a fresh ratifier board starts at 0, not kBot.  Read-racing
    // semantics are deliberately non-serializable, so the hb check only
    // runs under atomic semantics; the report stays inconclusive there.
    if (opts.faults.registers.semantics == sim::register_semantics::atomic) {
      check::audit_hb(events, spec, mem.initial_values(), rep);
    } else {
      if (rep.status == check::audit_status::clean)
        rep.status = check::audit_status::inconclusive;
      if (!rep.note.empty()) rep.note += "; ";
      rep.note += "hb serializability skipped: read-racing under ";
      rep.note += sim::to_string(opts.faults.registers.semantics);
      rep.note += " semantics is non-serializable by design";
    }
    if (recorder->overflowed()) {
      if (rep.status == check::audit_status::clean)
        rep.status = check::audit_status::inconclusive;
      if (!rep.note.empty()) rep.note += "; ";
      rep.note += "rt recorder overflowed its event cap";
    }
    res.audit = std::move(rep);
  }
  note_trial_telemetry(res);
  return res;
}

std::vector<value_t> make_inputs(input_pattern pattern, std::size_t n,
                                 std::uint64_t m, std::uint64_t seed) {
  MODCON_CHECK(m >= 1);
  std::vector<value_t> inputs(n);
  rng r(seed ^ 0x1217f0a5e0a5e0aULL);
  for (std::size_t i = 0; i < n; ++i) {
    switch (pattern) {
      case input_pattern::unanimous:
        inputs[i] = 0;
        break;
      case input_pattern::half_half:
        inputs[i] = (i < n / 2 ? 0 : 1) % m;
        break;
      case input_pattern::alternating:
        inputs[i] = i % m;
        break;
      case input_pattern::random_m:
        inputs[i] = r.below(m);
        break;
      case input_pattern::distinct:
        MODCON_CHECK_MSG(m >= n, "distinct inputs need m >= n");
        inputs[i] = i;
        break;
    }
  }
  return inputs;
}

const char* to_string(input_pattern p) {
  switch (p) {
    case input_pattern::unanimous: return "unanimous";
    case input_pattern::half_half: return "half-half";
    case input_pattern::alternating: return "alternating";
    case input_pattern::random_m: return "random";
    case input_pattern::distinct: return "distinct";
  }
  return "?";
}

}  // namespace modcon::analysis
