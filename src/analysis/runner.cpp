#include "analysis/runner.h"

#include "util/rng.h"

namespace modcon::analysis {

trial_result run_object_trial(const sim_object_builder& build,
                              const std::vector<value_t>& inputs,
                              sim::adversary& adv,
                              const trial_options& opts) {
  const std::size_t n = inputs.size();
  sim::world_options wopts;
  wopts.trace_enabled = opts.trace;
  sim::sim_world world(n, adv, opts.seed, wopts);

  auto obj = build(world, n);

  for (process_id pid = 0; pid < n; ++pid) {
    world.spawn([&obj, v = inputs[pid]](sim::sim_env& env) {
      return invoke_encoded(*obj, env, v);
    });
  }
  for (const crash_spec& c : opts.faults.crashes)
    world.crash_after(c.pid, c.after_ops);

  trial_result res;
  res.status = world.run(opts.limits.max_steps).status;
  for (process_id pid = 0; pid < n; ++pid) {
    if (auto out = world.output_of(pid)) {
      res.outputs.push_back(decode_decided(*out));
      res.halted_pids.push_back(pid);
    } else if (world.crashed(pid)) {
      res.crashed_pids.push_back(pid);
    }
  }
  res.total_ops = world.total_ops();
  res.max_individual_ops = world.max_individual_ops();
  res.steps = world.steps();
  res.registers = world.allocated();
  if (opts.inspect) opts.inspect(world);
  if (opts.inspect_object) opts.inspect_object(world, *obj);
  return res;
}

trial_result run_rt_object_trial(const rt_object_builder& build,
                                 const std::vector<value_t>& inputs,
                                 const rt_trial_options& opts) {
  const std::size_t n = inputs.size();
  rt::arena mem;
  auto obj = build(mem, n);

  // The inputs vector outlives the threads, so the program lambda may
  // capture it by pointer (invoke_encoded copies the value into the
  // coroutine frame before the lambda dies — CP.51).
  auto rres = rt::run_threads(
      mem, n, opts.seed,
      [&obj, &inputs](rt::rt_env& env) {
        return invoke_encoded(*obj, env, inputs[env.pid()]);
      },
      opts.chaos);

  trial_result res;
  res.status = sim::run_status::all_halted;
  for (process_id pid = 0; pid < n; ++pid) {
    res.outputs.push_back(decode_decided(rres.outputs[pid]));
    res.halted_pids.push_back(pid);
  }
  res.total_ops = rres.total_ops;
  res.max_individual_ops = rres.max_individual_ops;
  res.steps = rres.total_ops;
  res.registers = mem.allocated();
  return res;
}

std::vector<value_t> make_inputs(input_pattern pattern, std::size_t n,
                                 std::uint64_t m, std::uint64_t seed) {
  MODCON_CHECK(m >= 1);
  std::vector<value_t> inputs(n);
  rng r(seed ^ 0x1217f0a5e0a5e0aULL);
  for (std::size_t i = 0; i < n; ++i) {
    switch (pattern) {
      case input_pattern::unanimous:
        inputs[i] = 0;
        break;
      case input_pattern::half_half:
        inputs[i] = (i < n / 2 ? 0 : 1) % m;
        break;
      case input_pattern::alternating:
        inputs[i] = i % m;
        break;
      case input_pattern::random_m:
        inputs[i] = r.below(m);
        break;
      case input_pattern::distinct:
        MODCON_CHECK_MSG(m >= n, "distinct inputs need m >= n");
        inputs[i] = i;
        break;
    }
  }
  return inputs;
}

const char* to_string(input_pattern p) {
  switch (p) {
    case input_pattern::unanimous: return "unanimous";
    case input_pattern::half_half: return "half-half";
    case input_pattern::alternating: return "alternating";
    case input_pattern::random_m: return "random";
    case input_pattern::distinct: return "distinct";
  }
  return "?";
}

}  // namespace modcon::analysis
