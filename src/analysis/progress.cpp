#include "analysis/progress.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>  // isatty, for the carriage-return mode
#endif

namespace modcon::analysis {

void progress_monitor::start(std::string tag, std::size_t total,
                             const progress_counters& counters) {
  stop();
  thread_ = std::jthread([tag = std::move(tag), total,
                          &counters](std::stop_token st) {
#if defined(__unix__) || defined(__APPLE__)
    const bool tty = isatty(fileno(stderr)) != 0;
#else
    const bool tty = false;
#endif
    const auto t0 = std::chrono::steady_clock::now();
    const auto cadence = tty ? std::chrono::milliseconds(250)
                             : std::chrono::milliseconds(2000);
    auto next = t0 + cadence;
    auto emit = [&](bool final_line) {
      const std::size_t d = counters.done.load(std::memory_order_relaxed);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const double rate = secs > 0.0 ? static_cast<double>(d) / secs : 0.0;
      const std::size_t left = total > d ? total - d : 0;
      std::ostringstream os;
      os << "[" << tag << "] " << d << "/" << total << " trials  "
         << std::fixed;
      os.precision(1);
      os << rate << " trials/s";
      if (!final_line && rate > 0.0)
        os << "  ETA " << static_cast<double>(left) / rate << "s";
      os << "  faults "
         << counters.fault_events.load(std::memory_order_relaxed)
         << "  audit-violations "
         << counters.audit_violations.load(std::memory_order_relaxed);
      if (final_line) os << "  done in " << secs << "s";
      std::string line = os.str();
      if (tty && !final_line)
        std::fprintf(stderr, "\r\x1b[2K%s", line.c_str());
      else if (tty)
        std::fprintf(stderr, "\r\x1b[2K%s\n", line.c_str());
      else
        std::fprintf(stderr, "%s\n", line.c_str());
      std::fflush(stderr);
    };
    while (!st.stop_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (std::chrono::steady_clock::now() < next) continue;
      next += cadence;
      emit(false);
    }
    emit(true);
  });
}

void progress_monitor::stop() {
  if (!thread_.joinable()) return;
  thread_.request_stop();
  thread_.join();
}

}  // namespace modcon::analysis
