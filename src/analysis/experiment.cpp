#include "analysis/experiment.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "analysis/progress.h"
#include "obs/telemetry.h"
#include "sim/adversaries/adversaries.h"
#include "util/assertx.h"

namespace modcon::analysis {

namespace {

// Nearest-rank quantile over a sorted sample (matches util/stats.h's
// sample_set convention).
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

trial_record run_one_trial(const trial_grid& cell, std::uint64_t index,
                           bool keep_spans = false) {
  trial_record rec;
  rec.trial_index = index;
  rec.seed = derive_trial_seed(cell.base_seed, index);

  auto adv = cell.make_adversary
                 ? cell.make_adversary()
                 : std::make_unique<sim::random_oblivious>();
  auto inputs = make_inputs(cell.pattern, cell.n, cell.m, rec.seed);

  trial_options opts;
  opts.seed = rec.seed;
  opts.limits = cell.limits;
  opts.faults =
      cell.faults_for ? cell.faults_for(index, rec.seed) : cell.faults;
  opts.audit.enabled = cell.audit.enabled_for(index);
  opts.audit.ratifier = cell.audit.ratifier;
  opts.audit.deciding = cell.audit.deciding;
  opts.audit.max_trace_events = cell.audit.max_trace_events;
  opts.observe = cell.observe || keep_spans;
  if (!cell.probes.empty()) {
    rec.probes.resize(cell.probes.size(), 0.0);
    opts.inspect_object = [&cell, &rec](
                              const sim::sim_world& w,
                              const deciding_object<sim::sim_env>& obj) {
      for (std::size_t i = 0; i < cell.probes.size(); ++i)
        rec.probes[i] = cell.probes[i].eval(w, obj);
    };
  }

  opts.perf = &rec.perf;

  auto t0 = std::chrono::steady_clock::now();
  rec.result = run_object_trial(cell.build, inputs, *adv, opts);
  rec.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  // Bulk trials keep only the aggregate half of the obs record: a span
  // tree per trial across thousands of trials is exporter-only data (see
  // run_traced_trial), and dropping it here bounds engine memory.
  if (rec.result.obs && !keep_spans) rec.result.obs->drop_spans();

  // Evaluate the §3 predicates once, against a single materialization of
  // the escaped outputs, with the inputs sorted for binary-search
  // membership.  reduce() then only reads booleans — the per-record
  // methods on trial_result would rebuild all_outputs() (and rescan the
  // inputs) once per predicate per trial.
  {
    phase_timer audit_timer(&rec.perf, perf_phase::audit);
    std::vector<decided> escaped = rec.result.all_outputs();
    std::vector<value_t> sorted_inputs = inputs;
    std::sort(sorted_inputs.begin(), sorted_inputs.end());
    rec.valid = check_validity_sorted(escaped, sorted_inputs);
    rec.agreement = check_agreement(escaped);
    rec.coherent = check_coherence(escaped);
    rec.decided_all = all_decided(escaped);
  }
  return rec;
}

}  // namespace

cell_meta meta_of(const trial_grid& cell) {
  cell_meta meta;
  meta.label = cell.label;
  meta.n = cell.n;
  meta.m = cell.m;
  meta.pattern = cell.pattern;
  meta.base_seed = cell.base_seed;
  meta.fault_profile =
      cell.faults_for ? std::string("per-trial") : to_string(cell.faults);
  meta.audit_profile = to_string(cell.audit);
  // A cell opts into the recovery block statically (recovery faults or
  // weakened semantics in its plan); individual trials opt in dynamically
  // when a per-trial plan (faults_for) injected either.
  meta.recovery_cell =
      !cell.faults.recoveries.empty() ||
      cell.faults.registers.semantics != sim::register_semantics::atomic;
  meta.semantics = sim::to_string(cell.faults.registers.semantics);
  meta.probe_names.reserve(cell.probes.size());
  for (const probe& p : cell.probes) meta.probe_names.push_back(p.name);
  meta.keep_records = cell.keep_records;
  return meta;
}

summary_stats reduce_records(const cell_meta& meta,
                             std::vector<trial_record> records,
                             bool time_serialize) {
  const std::uint64_t reduce_t0 = time_serialize ? perf_now_ns() : 0;
  summary_stats s;
  s.label = meta.label;
  s.n = meta.n;
  s.m = meta.m;
  s.pattern = meta.pattern;
  s.base_seed = meta.base_seed;
  s.trials = records.size();
  s.fault_profile = meta.fault_profile;
  s.audit_profile = meta.audit_profile;

  const bool recovery_cell = meta.recovery_cell;
  s.recovery.semantics = meta.semantics;

  constexpr std::size_t kMaxAuditExamples = 8;
  std::vector<double> total, indiv, steps, step_rate;
  std::vector<double> obs_stages, obs_spans, recov_to_dec;
  std::vector<std::vector<double>> probe_samples(meta.probe_names.size());
  for (const trial_record& r : records) {
    s.wall_ms += r.wall_ms;
    s.perf += r.perf;
    s.crashed_processes += r.result.crashed_pids.size();
    s.restarted_processes += r.result.restarted_pids.size();
    s.restarts += r.result.restarts;
    s.stale_reads += r.result.stale_reads;
    s.omitted_writes += r.result.omitted_writes;
    const bool recovery_trial =
        recovery_cell || r.result.recoveries > 0 ||
        r.result.volatile_wipes > 0 || r.result.overlap_reads > 0 ||
        r.result.races > 0 || !r.result.recovered_pids.empty();
    if (recovery_trial) {
      ++s.recovery.trials;
      s.recovery.recovered_processes += r.result.recovered_pids.size();
      s.recovery.recoveries += r.result.recoveries;
      s.recovery.volatile_wipes += r.result.volatile_wipes;
      s.recovery.overlap_reads += r.result.overlap_reads;
      s.recovery.races += r.result.races;
    }
    if (r.result.audit) {
      const check::audit_report& a = *r.result.audit;
      ++s.audited;
      switch (a.status) {
        case check::audit_status::clean: ++s.audit_clean; break;
        case check::audit_status::violated: ++s.audit_violated; break;
        case check::audit_status::inconclusive:
          ++s.audit_inconclusive;
          break;
      }
      s.audit_events_checked += a.events_checked;
      s.audit_stale_reads_matched += a.stale_reads_matched;
      for (const check::violation& v : a.violations) {
        if (s.audit_examples.size() >= kMaxAuditExamples) break;
        s.audit_examples.push_back({r.trial_index, r.seed, v});
      }
    }
    if (r.result.obs) {
      const obs::trial_obs& o = *r.result.obs;
      ++s.obs.trials;
      if (o.truncated) ++s.obs.truncated;
      for (std::size_t i = 0; i < obs::kCounterCount; ++i)
        s.obs.counters[i] += o.counters[i];
      s.obs.reg_reads += o.regs.reads;
      s.obs.reg_writes_applied += o.regs.writes_applied;
      s.obs.reg_writes_missed += o.regs.writes_missed;
      s.obs.lost_overwrites += o.regs.lost_overwrites;
      s.obs.conciliator_invocations += o.conciliator_invocations;
      s.obs.conciliator_agreed += o.conciliator_agreed;
      // One sample per trial: the slowest process's stage count is the
      // trial's latency in stages (the paper's "rounds to decide").
      if (!o.stages_to_decision.empty())
        obs_stages.push_back(static_cast<double>(*std::max_element(
            o.stages_to_decision.begin(), o.stages_to_decision.end())));
      obs_spans.push_back(static_cast<double>(o.span_count));
    }
    // "Completed" = terminal: every process halted or crashed.  Runs with
    // crash faults end as no_runnable, and the survivors' outputs are
    // exactly what fault experiments measure; step_limit runs carry no
    // usable cost/agreement data, and timed_out runs (rt watchdog aborts)
    // are counted separately — a hung trial must not poison the
    // distributions of the trials that did finish.
    if (r.result.timed_out()) {
      ++s.timed_out;
      continue;
    }
    if (r.result.status == sim::run_status::step_limit) continue;
    ++s.completed;
    s.agreed += r.agreement;
    s.coherent += r.coherent;
    s.valid += r.valid;
    s.all_decided += r.decided_all;
    if (recovery_trial)
      recov_to_dec.push_back(static_cast<double>(r.result.recoveries));
    total.push_back(static_cast<double>(r.result.total_ops));
    indiv.push_back(static_cast<double>(r.result.max_individual_ops));
    steps.push_back(static_cast<double>(r.result.steps));
    if (r.perf.ns[static_cast<std::size_t>(perf_phase::step)] > 0)
      step_rate.push_back(
          static_cast<double>(r.result.steps) * 1e9 /
          static_cast<double>(
              r.perf.ns[static_cast<std::size_t>(perf_phase::step)]));
    for (std::size_t i = 0; i < r.probes.size(); ++i)
      probe_samples[i].push_back(r.probes[i]);
  }
  s.total_ops = dist_summary::of(std::move(total));
  s.max_individual_ops = dist_summary::of(std::move(indiv));
  s.steps = dist_summary::of(std::move(steps));
  s.steps_per_sec = dist_summary::of(std::move(step_rate));
  s.obs.stages_to_decision = dist_summary::of(std::move(obs_stages));
  s.obs.spans_per_trial = dist_summary::of(std::move(obs_spans));
  s.recovery.recoveries_to_decision = dist_summary::of(std::move(recov_to_dec));
  for (std::size_t i = 0; i < meta.probe_names.size(); ++i)
    s.probes.emplace_back(meta.probe_names[i],
                          dist_summary::of(std::move(probe_samples[i])));
  if (meta.keep_records) s.records = std::move(records);
  // Explicit stop (no RAII into the NRVO-returned struct): the reduction
  // itself is the cell's serialize cost.  The shard merge skips this —
  // its artifact's perf block must be exactly the sum of the shards'.
  if (time_serialize)
    s.perf.ns[static_cast<std::size_t>(perf_phase::serialize)] +=
        perf_now_ns() - reduce_t0;
  return s;
}

const char* to_string(audit_mode m) {
  switch (m) {
    case audit_mode::off: return "off";
    case audit_mode::sample: return "sample";
    case audit_mode::all: return "all";
  }
  return "?";
}

std::string to_string(const audit_plan& plan) {
  std::string out;
  switch (plan.mode) {
    case audit_mode::off: return "off";
    case audit_mode::all: out = "all"; break;
    case audit_mode::sample: {
      std::ostringstream os;
      os << "sample(1/" << plan.sample_every << ")";
      out = os.str();
      break;
    }
  }
  if (!plan.deciding) out += "/legality-only";
  return out;
}

dist_summary dist_summary::of(std::vector<double> xs) {
  dist_summary d;
  d.count = xs.size();
  if (xs.empty()) return d;
  std::sort(xs.begin(), xs.end());
  d.min = xs.front();
  d.max = xs.back();
  d.p50 = quantile_sorted(xs, 0.50);
  d.p90 = quantile_sorted(xs, 0.90);
  d.p99 = quantile_sorted(xs, 0.99);
  double sum = 0.0;
  for (double x : xs) sum += x;
  d.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double m2 = 0.0;
    for (double x : xs) m2 += (x - d.mean) * (x - d.mean);
    d.stddev = std::sqrt(m2 / static_cast<double>(xs.size() - 1));
  }
  return d;
}

const dist_summary* summary_stats::find_probe(const std::string& name) const {
  for (const auto& [k, v] : probes)
    if (k == name) return &v;
  return nullptr;
}

void clear_timing_measurements(summary_stats& s) {
  s.wall_ms = 0.0;
  s.perf = perf_counters{};
  s.steps_per_sec = dist_summary{};
  for (trial_record& r : s.records) {
    r.wall_ms = 0.0;
    r.perf = perf_counters{};
  }
}

summary_stats run_experiment(const trial_grid& cell,
                             const experiment_options& opts) {
  std::vector<trial_grid> grid;
  grid.push_back(cell);
  return run_experiment_grid(grid, opts).front();
}

trial_record run_traced_trial(const trial_grid& cell,
                              std::uint64_t trial_index) {
  MODCON_CHECK_MSG(cell.build != nullptr, "trial_grid cell needs a builder");
  return run_one_trial(cell, trial_index, /*keep_spans=*/true);
}

std::vector<summary_stats> run_experiment_grid(
    const std::vector<trial_grid>& grid, const experiment_options& opts) {
  // Flatten the grid into (cell, slot-range) tasks with preassigned
  // result slots; workers race only on the task cursor, never on
  // results.  A shard runs record slot s of cell c as trial index
  // shard_index + s * shard_count — the round-robin assignment keeps
  // every shard's workload mix representative, and records carry their
  // true trial indices so the merge re-interleaves them exactly.
  struct task {
    std::size_t cell;
    std::uint64_t slot;   // first record slot of this chunk
    std::uint64_t count;  // chunk width (1 on the scalar path)
  };
  const std::uint64_t stride = std::max<std::size_t>(1, opts.shard_count);
  const std::uint64_t offset = opts.shard_index;
  MODCON_CHECK_MSG(offset < stride, "shard_index must be < shard_count");
  std::vector<task> tasks;
  std::vector<std::vector<trial_record>> records(grid.size());
  // Engine choice per cell: the batcher takes the cells it supports when
  // asked; everything else keeps the scalar oracle.
  std::vector<char> batched(grid.size(), 0);
  std::uint64_t total_trials = 0;
  for (std::size_t c = 0; c < grid.size(); ++c) {
    MODCON_CHECK_MSG(grid[c].build != nullptr,
                     "trial_grid cell needs a builder");
    const std::uint64_t slots =
        grid[c].trials > offset ? (grid[c].trials - offset - 1) / stride + 1
                                : 0;
    records[c].resize(slots);
    batched[c] =
        opts.engine != engine_kind::scalar && batch_supported(grid[c]);
    const std::uint64_t chunk =
        batched[c] ? std::max<std::size_t>(1, opts.batch) : 1;
    for (std::uint64_t slot = 0; slot < slots; slot += chunk)
      tasks.push_back({c, slot, std::min<std::uint64_t>(chunk, slots - slot)});
    total_trials += slots;
  }

  std::size_t workers = opts.threads
                            ? opts.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, std::max<std::size_t>(1, tasks.size()));

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  // Progress accounting (relaxed: the monitor tolerates slightly stale
  // values; the final line prints after every worker has joined).
  progress_counters progress;
  std::vector<std::exception_ptr> errors(workers);
  // The fleet learns the denominator up front: each shard plans only its
  // own slice, so trials_planned sums across shards to the grid total
  // and modcon-top's ETA is planned - completed over the live rate.
  if (obs::telemetry_sink* ts = obs::tl_sink())
    ts->add(obs::tcounter::trials_planned, total_trials);
  auto worker = [&](std::size_t wid) {
    try {
      while (!failed.load(std::memory_order_relaxed)) {
        std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) break;
        const task& tk = tasks[i];
        if (obs::telemetry_sink* ts = obs::tl_sink())
          ts->add(obs::tcounter::trials_started, tk.count);
        if (batched[tk.cell]) {
          std::vector<std::uint64_t> idxs(tk.count);
          for (std::uint64_t k = 0; k < tk.count; ++k)
            idxs[k] = offset + (tk.slot + k) * stride;
          // The interpreter retires lanes one by one into the progress
          // counter, so a wide chunk advances the live line smoothly
          // instead of landing as one lump at chunk completion.
          run_batch_trials(grid[tk.cell], *grid[tk.cell].batch_hint,
                           idxs.data(), &records[tk.cell][tk.slot],
                           tk.count,
                           opts.progress ? &progress.done : nullptr);
        } else {
          for (std::uint64_t k = 0; k < tk.count; ++k) {
            records[tk.cell][tk.slot + k] =
                run_one_trial(grid[tk.cell], offset + (tk.slot + k) * stride);
            if (opts.progress)
              progress.done.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (opts.progress) {
          std::uint64_t faults = 0, violations = 0;
          for (std::uint64_t k = 0; k < tk.count; ++k) {
            const trial_record& r = records[tk.cell][tk.slot + k];
            faults += r.result.crashed_pids.size() + r.result.restarts;
            if (r.result.audit &&
                r.result.audit->status == check::audit_status::violated)
              ++violations;
          }
          progress.fault_events.fetch_add(faults, std::memory_order_relaxed);
          progress.audit_violations.fetch_add(violations,
                                              std::memory_order_relaxed);
        }
        if (obs::telemetry_sink* ts = obs::tl_sink()) {
          // Measurement histograms and per-cell totals, engine-uniform.
          // The deterministic per-trial counters were already recorded
          // at trial level (run_object_trial, or the batch finalizer).
          std::uint64_t cell_steps = 0;
          for (std::uint64_t k = 0; k < tk.count; ++k) {
            const trial_record& r = records[tk.cell][tk.slot + k];
            cell_steps += r.result.steps;
            ts->record(obs::thist::trial_latency_us,
                       static_cast<std::uint64_t>(r.wall_ms * 1000.0));
            const std::uint64_t step_ns =
                r.perf.ns[static_cast<std::size_t>(perf_phase::step)];
            if (step_ns > 0)
              ts->record(obs::thist::steps_per_sec,
                         static_cast<std::uint64_t>(
                             static_cast<double>(r.result.steps) * 1e9 /
                             static_cast<double>(step_ns)));
          }
          ts->cell(grid[tk.cell].label, tk.count, cell_steps);
        }
      }
    } catch (...) {
      errors[wid] = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  // Live progress (stderr, reporting only — analysis/progress.h).
  progress_monitor monitor;
  if (opts.progress && !tasks.empty())
    monitor.start("experiment", total_trials, progress);

  if (workers <= 1) {
    worker(0);
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
      pool.emplace_back(worker, w);
  }
  monitor.stop();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);

  std::vector<summary_stats> out;
  out.reserve(grid.size());
  for (std::size_t c = 0; c < grid.size(); ++c)
    out.push_back(reduce_records(meta_of(grid[c]), std::move(records[c])));
  return out;
}

json to_json(const dist_summary& d) {
  json j = json::object();
  j["count"] = json(d.count);
  if (d.count == 0) {
    // No samples: every statistic is undefined.  Emit explicit nulls so a
    // degenerate cell (all trials hung or hit the step limit) still
    // serializes as valid JSON.
    for (const char* k : {"mean", "stddev", "min", "max", "p50", "p90", "p99"})
      j[k] = json();
    return j;
  }
  j["mean"] = json(d.mean);
  j["stddev"] = json(d.stddev);
  j["min"] = json(d.min);
  j["max"] = json(d.max);
  j["p50"] = json(d.p50);
  j["p90"] = json(d.p90);
  j["p99"] = json(d.p99);
  return j;
}

json to_json(const summary_stats& s, bool include_records) {
  json j = json::object();
  j["label"] = json(s.label);

  json cfg = json::object();
  cfg["n"] = json(s.n);
  cfg["m"] = json(s.m);
  cfg["pattern"] = json(to_string(s.pattern));
  cfg["base_seed"] = json(s.base_seed);
  cfg["trials"] = json(s.trials);
  cfg["faults"] = json(s.fault_profile.empty() ? "none" : s.fault_profile);
  cfg["audit"] = json(s.audit_profile.empty() ? "off" : s.audit_profile);
  j["config"] = std::move(cfg);

  json counts = json::object();
  counts["trials"] = json(s.trials);
  counts["completed"] = json(s.completed);
  counts["agreed"] = json(s.agreed);
  counts["coherent"] = json(s.coherent);
  counts["valid"] = json(s.valid);
  counts["all_decided"] = json(s.all_decided);
  counts["timed_out"] = json(s.timed_out);
  counts["crashed_processes"] = json(s.crashed_processes);
  counts["restarted_processes"] = json(s.restarted_processes);
  counts["restarts"] = json(s.restarts);
  counts["stale_reads"] = json(s.stale_reads);
  counts["omitted_writes"] = json(s.omitted_writes);
  j["counts"] = std::move(counts);

  json rates = json::object();
  rates["completion"] = json(s.completion_rate());
  rates["agreement"] = json(s.agreement_rate());
  rates["validity"] = json(s.validity_rate());
  rates["decision"] = json(s.decision_rate());
  auto ci = s.agreement_ci();
  rates["agreement_wilson_lo"] = json(ci.lo);
  rates["agreement_wilson_hi"] = json(ci.hi);
  j["rates"] = std::move(rates);

  // Property-audit block (schema v3): emitted only for audited cells, so
  // v2 consumers of un-audited artifacts see an unchanged document shape.
  if (s.audited > 0 || (!s.audit_profile.empty() && s.audit_profile != "off")) {
    json audit = json::object();
    audit["mode"] = json(s.audit_profile);
    audit["audited"] = json(s.audited);
    audit["clean"] = json(s.audit_clean);
    audit["violated"] = json(s.audit_violated);
    audit["inconclusive"] = json(s.audit_inconclusive);
    audit["events_checked"] = json(s.audit_events_checked);
    audit["stale_reads_matched"] = json(s.audit_stale_reads_matched);
    json viols = json::array();
    for (const auto& ex : s.audit_examples) {
      json v = json::object();
      v["trial"] = json(ex.trial_index);
      v["seed"] = json(ex.seed);
      v["kind"] = json(check::to_string(ex.v.kind));
      if (ex.v.pid != kInvalidProcess) v["pid"] = json(ex.v.pid);
      v["step"] = json(ex.v.step);
      if (ex.v.reg != kInvalidReg) v["reg"] = json(ex.v.reg);
      v["detail"] = json(ex.v.detail);
      json slice = json::array();
      for (const sim::trace_event& e : ex.v.slice) {
        std::ostringstream os;
        os << e;
        slice.push_back(json(os.str()));
      }
      v["trace_slice"] = std::move(slice);
      viols.push_back(std::move(v));
    }
    audit["violations"] = std::move(viols);
    j["audit"] = std::move(audit);
  }

  j["total_ops"] = to_json(s.total_ops);
  j["max_individual_ops"] = to_json(s.max_individual_ops);
  j["steps"] = to_json(s.steps);

  if (!s.probes.empty()) {
    json probes = json::object();
    for (const auto& [name, dist] : s.probes) probes[name] = to_json(dist);
    j["probes"] = std::move(probes);
  }

  j["wall_ms"] = json(s.wall_ms);

  // Perf block (schema v3.1, additive).  Flat keys only, all spelled
  // "*_ms" or "steps_per_sec_*": the determinism tests diff serialized
  // artifacts modulo a line filter on exactly those spellings, and
  // scripts/compare_bench.py keys on steps_per_sec_p50.
  {
    json perf = json::object();
    perf["schedule_ms"] = json(s.perf.ms(perf_phase::schedule));
    perf["step_ms"] = json(s.perf.ms(perf_phase::step));
    perf["audit_ms"] = json(s.perf.ms(perf_phase::audit));
    perf["serialize_ms"] = json(s.perf.ms(perf_phase::serialize));
    perf["steps_per_sec_count"] = json(s.steps_per_sec.count);
    if (s.steps_per_sec.count == 0) {
      for (const char* k : {"steps_per_sec_mean", "steps_per_sec_min",
                            "steps_per_sec_max", "steps_per_sec_p50",
                            "steps_per_sec_p90"})
        perf[k] = json();
    } else {
      perf["steps_per_sec_mean"] = json(s.steps_per_sec.mean);
      perf["steps_per_sec_min"] = json(s.steps_per_sec.min);
      perf["steps_per_sec_max"] = json(s.steps_per_sec.max);
      perf["steps_per_sec_p50"] = json(s.steps_per_sec.p50);
      perf["steps_per_sec_p90"] = json(s.steps_per_sec.p90);
    }
    j["perf"] = std::move(perf);
  }

  // Observability block (schema v3.2, additive): emitted only for cells
  // run with observation on, so existing artifacts — and the determinism
  // goldens — keep their exact shape when tracing is off.
  if (s.obs.trials > 0) {
    json ob = json::object();
    ob["trials"] = json(s.obs.trials);
    ob["truncated"] = json(s.obs.truncated);
    json counters = json::object();
    for (std::size_t i = 0; i < obs::kCounterCount; ++i)
      counters[obs::to_string(static_cast<obs::counter>(i))] =
          json(s.obs.counters[i]);
    ob["counters"] = std::move(counters);
    json regs = json::object();
    regs["reads"] = json(s.obs.reg_reads);
    regs["writes_applied"] = json(s.obs.reg_writes_applied);
    regs["writes_missed"] = json(s.obs.reg_writes_missed);
    regs["lost_overwrites"] = json(s.obs.lost_overwrites);
    ob["registers"] = std::move(regs);
    json coin = json::object();
    coin["conciliator_invocations"] = json(s.obs.conciliator_invocations);
    coin["conciliator_agreed"] = json(s.obs.conciliator_agreed);
    coin["agreement_rate"] =
        s.obs.conciliator_invocations
            ? json(static_cast<double>(s.obs.conciliator_agreed) /
                   static_cast<double>(s.obs.conciliator_invocations))
            : json();
    ob["coin"] = std::move(coin);
    ob["stages_to_decision"] = to_json(s.obs.stages_to_decision);
    ob["spans_per_trial"] = to_json(s.obs.spans_per_trial);
    j["obs"] = std::move(ob);
  }

  // Multi-shot block (schema v4): emitted only for slot-log cells
  // (analysis/multi.h), so one-shot artifacts keep their v3 shape.
  // Deterministic fields only — the thread-count byte-identity contract
  // covers this block.
  if (s.multi.trials > 0) {
    json mu = json::object();
    mu["trials"] = json(s.multi.trials);
    mu["shards"] = json(s.multi.shards);
    mu["slots_per_shard"] = json(s.multi.slots_per_shard);
    mu["proposals"] = json(s.multi.proposals);
    mu["decisions"] = json(s.multi.decisions);
    mu["fast_path_hits"] = json(s.multi.fast_path_hits);
    mu["slots_reclaimed"] = json(s.multi.slots_reclaimed);
    mu["slots_agreed"] = json(s.multi.slots_agreed);
    mu["slots_valid"] = json(s.multi.slots_valid);
    json pool = json::object();
    pool["extents_created"] = json(s.multi.extents_created);
    pool["extents_reused"] = json(s.multi.extents_reused);
    pool["words_served"] = json(s.multi.pool_words_served);
    pool["parent_words"] = json(s.multi.pool_parent_words);
    mu["pool"] = std::move(pool);
    mu["slot_ops"] = to_json(s.multi.slot_ops);
    j["multi"] = std::move(mu);
  }

  // Crash-recovery block (schema v5, additive): emitted only for cells
  // that carried recovery or semantics accounting, so artifacts from
  // cells with neither — including the determinism goldens — keep their
  // exact v4 shape.  Deterministic fields only.
  if (s.recovery.trials > 0) {
    json rc = json::object();
    rc["trials"] = json(s.recovery.trials);
    rc["semantics"] = json(s.recovery.semantics);
    rc["recovered_processes"] = json(s.recovery.recovered_processes);
    rc["recoveries"] = json(s.recovery.recoveries);
    rc["volatile_wipes"] = json(s.recovery.volatile_wipes);
    rc["overlap_reads"] = json(s.recovery.overlap_reads);
    rc["races"] = json(s.recovery.races);
    rc["recoveries_to_decision"] = to_json(s.recovery.recoveries_to_decision);
    j["recovery"] = std::move(rc);
  }

  if (include_records && !s.records.empty()) {
    json recs = json::array();
    for (const trial_record& r : s.records) {
      json rec = json::object();
      rec["trial"] = json(r.trial_index);
      rec["seed"] = json(r.seed);
      rec["completed"] = json(r.result.completed());
      rec["total_ops"] = json(r.result.total_ops);
      rec["max_individual_ops"] = json(r.result.max_individual_ops);
      rec["steps"] = json(r.result.steps);
      recs.push_back(std::move(rec));
    }
    j["trials"] = std::move(recs);
  }
  return j;
}

json make_report_skeleton(const std::string& bench_name) {
  json j = json::object();
  j["schema"] = json(kExperimentSchemaName);
  j["schema_version"] = json(kExperimentSchemaVersion);
  j["schema_minor"] = json(kExperimentSchemaMinor);
  j["bench"] = json(bench_name);
  j["experiments"] = json::array();
  j["tables"] = json::array();
  return j;
}

}  // namespace modcon::analysis
