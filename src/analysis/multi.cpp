#include "analysis/multi.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>

#include "analysis/progress.h"
#include "multi/slot_log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "sim/adversaries/adversaries.h"
#include "util/assertx.h"
#include "util/rng.h"

namespace modcon::analysis {

std::uint64_t multi_proposal(std::uint64_t seed, std::uint64_t shard,
                             std::uint64_t slot, process_id pid,
                             std::uint64_t m) {
  MODCON_CHECK(m >= 1);
  std::uint64_t x = seed ^ (shard * 0x9e3779b97f4a7c15ULL) ^
                    (slot * 0xbf58476d1ce4e5b9ULL) ^
                    (static_cast<std::uint64_t>(pid) * 0x94d049bb133111ebULL);
  return splitmix64(x) % m;
}

namespace {

// Host-side shared state of one multi-shot trial: the shard logs plus
// per-process result rows.  Each process writes only its own rows, so no
// synchronization beyond thread join (rt) / single-threaded stepping
// (sim) is needed.
template <typename Env>
struct multi_ctx {
  std::vector<std::unique_ptr<multi::slot_log<Env>>> logs;
  std::uint64_t shards = 0;
  std::uint64_t slots = 0;
  std::uint64_t seed = 0;
  std::uint64_t m = 2;
  // Crash-recovery trials: every program (re)entry first recovers its
  // watermark from the persistent pin registers.  Off by default so
  // fault-free trials take no extra operations (artifact stability).
  bool recover = false;
  // Row layout: index pid * (shards*slots) + k, where k counts the
  // process's proposals in program order — k maps to
  // (slot = k / shards, shard = k % shards).
  std::vector<word> decisions;
  std::vector<double> ops;
  std::vector<std::uint64_t> progress;  // per pid: proposals completed

  std::uint64_t stride() const { return shards * slots; }
};

// The per-process program: propose on every slot of every shard in
// slot-major order, advancing the watermark behind the frontier.  A
// plain coroutine function (CP.51): parameters are copied into the
// frame, so the spawning lambda may die.  Restart-safe by construction —
// a re-run resets its own progress row and re-proposals land on the pin
// fast path.
template <typename Env>
proc<word> multi_program(multi_ctx<Env>* ctx, Env& env) {
  const process_id pid = env.pid();
  const std::uint64_t stride = ctx->stride();
  ctx->progress[pid] = 0;
  std::uint64_t digest = ctx->seed ^ 0x6d756c7469ULL;
  splitmix64(digest);
  if (ctx->recover) {
    // Crash-recovery rejoin: re-learn the decided frontier from the
    // persistent pins and re-advertise the watermark.  The proposal loop
    // below still walks every slot (the digest folds the whole log), but
    // slots at or below the recovered watermark are guaranteed pin
    // fast-path hits — including slots whose scaffolding was reclaimed.
    for (std::uint64_t shard = 0; shard < ctx->shards; ++shard)
      co_await ctx->logs[shard]->recover_watermark(env, 0);
  }
  for (std::uint64_t slot = 0; slot < ctx->slots; ++slot) {
    for (std::uint64_t shard = 0; shard < ctx->shards; ++shard) {
      word v = static_cast<word>(
          multi_proposal(ctx->seed, shard, slot, pid, ctx->m));
      std::uint64_t before = env.obs_ops();
      word d = co_await ctx->logs[shard]->propose(env, slot, v);
      std::uint64_t k = ctx->progress[pid];
      ctx->decisions[pid * stride + k] = d;
      ctx->ops[pid * stride + k] =
          static_cast<double>(env.obs_ops() - before);
      ctx->progress[pid] = k + 1;
      digest ^= d ^ (shard << 32) ^ slot;
      splitmix64(digest);
    }
    // The frontier moved: this process will never propose on slot again.
    for (std::uint64_t shard = 0; shard < ctx->shards; ++shard)
      ctx->logs[shard]->advance_watermark(pid, slot + 1);
  }
  // The digest folds every consumed decision in order, so cross-process
  // agreement on it is agreement on the entire log (whp) — it feeds the
  // engine's standard output-agreement accounting.
  co_return encode_decided({true, digest & (kDecideBit - 1)});
}

// Per-slot consistency over the host-side rows: every consumed decision
// for (shard, slot) equals every other, and equals some process's
// proposal for that same (shard, slot).  This is the cheap always-on
// check; the auditor pass below re-derives the same facts as reportable
// violations when armed.
template <typename Env>
void judge_slots(const multi_ctx<Env>& ctx, std::size_t n,
                 multi_trial_result& res) {
  res.slots_agree = true;
  res.slots_valid = true;
  const std::uint64_t stride = ctx.stride();
  for (std::uint64_t k = 0; k < stride; ++k) {
    const std::uint64_t slot = k / ctx.shards;
    const std::uint64_t shard = k % ctx.shards;
    word ref = kBot;
    for (process_id pid = 0; pid < static_cast<process_id>(n); ++pid) {
      if (k >= ctx.progress[pid]) continue;
      word d = ctx.decisions[pid * stride + k];
      if (ref == kBot) ref = d;
      if (d != ref) res.slots_agree = false;
      bool proposed = false;
      for (process_id q = 0; q < static_cast<process_id>(n); ++q)
        if (static_cast<word>(
                multi_proposal(ctx.seed, shard, slot, q, ctx.m)) == d)
          proposed = true;
      if (!proposed) res.slots_valid = false;
    }
  }
}

// Folds the shard logs' own accounting into the result.
template <typename Env>
void collect_log_stats(const multi_ctx<Env>& ctx, multi_trial_result& res) {
  for (const auto& log : ctx.logs) {
    multi::slot_log_stats st = log->stats();
    res.decisions += st.decisions;
    res.fast_path_hits += st.fast_path_hits;
    res.slots_reclaimed += st.slots_reclaimed;
    res.pool.extents_created += st.pool.extents_created;
    res.pool.extents_reused += st.pool.extents_reused;
    res.pool.leases_opened += st.pool.leases_opened;
    res.pool.leases_released += st.pool.leases_released;
    res.pool.words_served += st.pool.words_served;
    res.pool.parent_words += st.pool.parent_words;
  }
  for (std::uint64_t p = 0; p < ctx.progress.size(); ++p) {
    res.proposals += ctx.progress[p];
    for (std::uint64_t k = 0; k < ctx.progress[p]; ++k)
      res.slot_ops.push_back(ctx.ops[p * ctx.stride() + k]);
  }
}

// Runs the armed per-slot audit, one slot_audit_spec per shard, into a
// single report.
template <typename Env>
void audit_multi(const multi_ctx<Env>& ctx, std::size_t n,
                 const fault_plan& faults, check::audit_report& rep) {
  const std::uint64_t stride = ctx.stride();
  for (std::uint64_t shard = 0; shard < ctx.shards; ++shard) {
    check::slot_audit_spec spec;
    spec.n = n;
    spec.slots = ctx.slots;
    spec.process_faults = !faults.crashes.empty() ||
                          !faults.restarts.empty() ||
                          !faults.recoveries.empty() ||
                          !faults.stalls.empty();
    spec.proposals.resize(ctx.slots * n, kBot);
    for (std::uint64_t slot = 0; slot < ctx.slots; ++slot)
      for (process_id pid = 0; pid < static_cast<process_id>(n); ++pid)
        spec.proposals[slot * n + pid] = static_cast<word>(
            multi_proposal(ctx.seed, shard, slot, pid, ctx.m));
    std::vector<check::slot_output> outputs;
    for (process_id pid = 0; pid < static_cast<process_id>(n); ++pid) {
      for (std::uint64_t k = 0; k < ctx.progress[pid]; ++k) {
        if (k % ctx.shards != shard) continue;
        outputs.push_back(
            {pid, k / ctx.shards, ctx.decisions[pid * stride + k]});
      }
    }
    check::audit_slots(outputs, spec, rep);
  }
}

}  // namespace

multi_trial_result run_multi_trial(const multi_grid& cell,
                                   const multi_trial_options& opts) {
  const std::size_t n = cell.n;
  MODCON_CHECK(n > 0 && cell.shards > 0 && cell.slots > 0);
  // True-regular semantics are pin-safe: pins map 1:1 to slots and are
  // never recycled, so an overlapping write seen by a regular read is the
  // in-flight decision for that same slot.  The probabilistic stale mode
  // (a one-generation time machine) and safe semantics (arbitrary values)
  // are not — a fabricated pin value could route a proposal into a
  // reclaimed slot — and write omission could lose a pin entirely.
  MODCON_CHECK_MSG(
      !opts.faults.registers.regular &&
          opts.faults.registers.omit_denominator == 0 &&
          opts.faults.registers.semantics != sim::register_semantics::safe,
      "multi-shot trials support only atomic or true-regular register "
      "semantics (stale/safe/omission faults could corrupt a pin)");
  phase_timer schedule_timer(opts.perf, perf_phase::schedule);
  // Recorder before the world: frames destroyed in ~sim_world still hold
  // span guards (see run_object_trial).
  std::optional<obs::trial_recorder> obs_rec;
  if (opts.observe) obs_rec.emplace(n);
  auto adv = cell.make_adversary ? cell.make_adversary()
                                 : std::make_unique<sim::random_oblivious>();
  sim::world_options wopts;
  wopts.trace_enabled = opts.audit.enabled || opts.observe;
  wopts.trace_max_events = opts.audit.max_trace_events;
  wopts.register_faults = opts.faults.registers;
  wopts.fault_seed = opts.faults.fault_seed;
  wopts.obs = obs_rec ? &*obs_rec : nullptr;
  sim::sim_world world(n, *adv, opts.seed, wopts);

  multi_ctx<sim::sim_env> ctx;
  ctx.shards = cell.shards;
  ctx.slots = cell.slots;
  ctx.seed = opts.seed;
  ctx.m = cell.m;
  ctx.recover = !opts.faults.recoveries.empty();
  ctx.decisions.assign(n * ctx.stride(), kBot);
  ctx.ops.assign(n * ctx.stride(), 0.0);
  ctx.progress.assign(n, 0);
  for (std::uint64_t s = 0; s < cell.shards; ++s)
    ctx.logs.push_back(std::make_unique<multi::slot_log<sim::sim_env>>(
        world, n, cell.spec, cell.extent_words));

  for (process_id pid = 0; pid < static_cast<process_id>(n); ++pid)
    world.spawn(
        [&ctx](sim::sim_env& env) { return multi_program(&ctx, env); });
  for (const crash_spec& c : opts.faults.crashes)
    world.crash_after(c.pid, c.after_ops);
  for (const restart_spec& r : opts.faults.restarts)
    world.restart_after(r.pid, r.after_ops);
  for (const restart_spec& r : opts.faults.recoveries)
    world.recover_after(r.pid, r.after_ops);
  for (const stall_spec& s : opts.faults.stalls)
    world.crash_after(s.pid, s.after_ops);  // async model: stall = crash
  schedule_timer.stop();

  multi_trial_result res;
  {
    phase_timer step_timer(opts.perf, perf_phase::step);
    res.base.status = world.run(opts.limits.max_steps).status;
  }
  for (process_id pid = 0; pid < static_cast<process_id>(n); ++pid) {
    auto out = world.output_of(pid);
    if (world.crashed(pid)) {
      res.base.crashed_pids.push_back(pid);
      if (out) res.base.crashed_outputs.push_back(decode_decided(*out));
    } else if (out) {
      res.base.outputs.push_back(decode_decided(*out));
      res.base.halted_pids.push_back(pid);
    }
    if (world.restarts_of(pid) > 0) res.base.restarted_pids.push_back(pid);
    if (world.recoveries_of(pid) > 0) res.base.recovered_pids.push_back(pid);
  }
  res.base.restarts = world.total_restarts();
  res.base.recoveries = world.total_recoveries();
  res.base.stale_reads = world.stale_reads();
  res.base.overlap_reads = world.overlap_reads();
  res.base.volatile_wipes = world.volatile_wipes();
  res.base.total_ops = world.total_ops();
  res.base.max_individual_ops = world.max_individual_ops();
  res.base.steps = world.steps();
  res.base.registers = world.allocated();

  collect_log_stats(ctx, res);
  judge_slots(ctx, n, res);

  if (opts.audit.enabled) {
    phase_timer audit_timer(opts.perf, perf_phase::audit);
    check::audit_report rep;
    // Per-slot §3 properties presume atomic registers; under true-regular
    // semantics a slot's agreement is only probabilistic, so the property
    // pass is skipped and only trace legality runs.
    if (opts.faults.registers.semantics == sim::register_semantics::atomic)
      audit_multi(ctx, n, opts.faults, rep);
    // Trace legality always applies: recycling must look like ordinary
    // applied writes to the replay (sim_world::reinit records it so).
    check::audit_spec tspec;
    tspec.n = n;
    tspec.check_properties = false;  // outputs are digests, not §3 outputs
    tspec.semantics = opts.faults.registers.semantics;
    tspec.volatile_regs = world.volatile_registers();
    tspec.recovery_steps = world.recovery_steps();
    tspec.process_faults = !opts.faults.crashes.empty() ||
                           !opts.faults.restarts.empty() ||
                           !opts.faults.recoveries.empty() ||
                           !opts.faults.stalls.empty();
    check::audit_trace(world.execution_trace(), tspec, rep);
    res.base.audit = std::move(rep);
  }

  if (obs_rec) {
    for (process_id pid = 0; pid < static_cast<process_id>(n); ++pid)
      obs_rec->force_close(pid, world.steps(), world.ops_of(pid),
                           world.draws_of(pid));
    obs_rec->seal();
    res.base.obs = obs::finalize_trial(*obs_rec, &world.execution_trace());
  }
  return res;
}

multi_trial_result run_rt_multi_trial(const multi_grid& cell,
                                      const multi_trial_options& opts) {
  const std::size_t n = cell.n;
  MODCON_CHECK(n > 0 && cell.shards > 0 && cell.slots > 0);
  // The rt backend approximates weak semantics by read-racing, which can
  // return kBot for a pin that is in fact set — the slow path would then
  // trip the watermark invariant.  Multi-shot rt trials are atomic-only.
  MODCON_CHECK_MSG(
      opts.faults.registers.semantics == sim::register_semantics::atomic,
      "rt multi-shot trials support only atomic register semantics "
      "(read-racing could miss a set pin and break the watermark "
      "invariant)");
  phase_timer schedule_timer(opts.perf, perf_phase::schedule);
  rt::arena mem;

  multi_ctx<rt::rt_env> ctx;
  ctx.shards = cell.shards;
  ctx.slots = cell.slots;
  ctx.seed = opts.seed;
  ctx.m = cell.m;
  ctx.recover = !opts.faults.recoveries.empty();
  ctx.decisions.assign(n * ctx.stride(), kBot);
  ctx.ops.assign(n * ctx.stride(), 0.0);
  ctx.progress.assign(n, 0);
  for (std::uint64_t s = 0; s < cell.shards; ++s)
    ctx.logs.push_back(std::make_unique<multi::slot_log<rt::rt_env>>(
        mem, n, cell.spec, cell.extent_words));

  std::unique_ptr<obs::trial_recorder> obs_rec;
  if (opts.observe) obs_rec = std::make_unique<obs::trial_recorder>(n);

  rt::rt_run_options ropts;
  ropts.chaos = opts.chaos;
  ropts.watchdog_ms = opts.watchdog_ms;
  ropts.obs = obs_rec.get();
  for (const crash_spec& c : opts.faults.crashes)
    ropts.faults.push_back({c.pid, c.after_ops, rt::fault_action::crash, 0});
  for (const restart_spec& r : opts.faults.restarts)
    ropts.faults.push_back(
        {r.pid, r.after_ops, rt::fault_action::restart, 0});
  for (const restart_spec& r : opts.faults.recoveries)
    ropts.faults.push_back(
        {r.pid, r.after_ops, rt::fault_action::recover, 0});
  for (const stall_spec& s : opts.faults.stalls)
    ropts.faults.push_back(
        {s.pid, s.after_ops, rt::fault_action::stall, s.resume_after_ms});
  schedule_timer.stop();

  phase_timer step_timer(opts.perf, perf_phase::step);
  auto rres = rt::run_threads_opts(
      mem, n, opts.seed,
      [&ctx](rt::rt_env& env) { return multi_program(&ctx, env); }, ropts);
  step_timer.stop();

  multi_trial_result res;
  bool any_crashed = false;
  for (process_id pid = 0; pid < static_cast<process_id>(n); ++pid) {
    switch (rres.outcomes[pid]) {
      case rt::rt_outcome::halted:
        res.base.outputs.push_back(decode_decided(rres.outputs[pid]));
        res.base.halted_pids.push_back(pid);
        break;
      case rt::rt_outcome::crashed:
        res.base.crashed_pids.push_back(pid);
        any_crashed = true;
        break;
      case rt::rt_outcome::timed_out:
      case rt::rt_outcome::running:
        break;
    }
    if (rres.restarts[pid] > 0) res.base.restarted_pids.push_back(pid);
    if (rres.recoveries[pid] > 0) res.base.recovered_pids.push_back(pid);
    res.base.restarts += rres.restarts[pid];
    res.base.recoveries += rres.recoveries[pid];
  }
  res.base.volatile_wipes = res.base.recoveries;
  if (rres.timed_out)
    res.base.status = sim::run_status::timed_out;
  else if (any_crashed)
    res.base.status = sim::run_status::no_runnable;
  else
    res.base.status = sim::run_status::all_halted;
  res.base.total_ops = rres.total_ops;
  res.base.max_individual_ops = rres.max_individual_ops;
  res.base.steps = rres.total_ops;
  res.base.registers = mem.allocated();

  collect_log_stats(ctx, res);
  judge_slots(ctx, n, res);

  if (obs_rec) {
    obs_rec->seal();
    res.base.obs = obs::finalize_trial(*obs_rec, nullptr);
  }

  if (opts.audit.enabled) {
    phase_timer audit_timer(opts.perf, perf_phase::audit);
    check::audit_report rep;
    audit_multi(ctx, n, opts.faults, rep);
    // No trace-legality / hb pass on this backend: pool recycling is a
    // host-side release store with no recorded interval, so the
    // serializability check's event stream would be incomplete by
    // construction.  The per-slot checks above are the rt audit.
    res.base.audit = std::move(rep);
  }
  return res;
}

namespace {

struct multi_record {
  std::uint64_t trial_index = 0;
  std::uint64_t seed = 0;
  multi_trial_result result;
  double wall_ms = 0.0;
  perf_counters perf;
};

multi_record run_one_multi_trial(const multi_grid& cell,
                                 std::uint64_t index) {
  multi_record rec;
  rec.trial_index = index;
  rec.seed = derive_trial_seed(cell.base_seed, index);

  multi_trial_options opts;
  opts.seed = rec.seed;
  opts.limits = cell.limits;
  opts.faults = cell.faults;
  opts.audit.enabled = cell.audit.enabled_for(index);
  opts.audit.max_trace_events = cell.audit.max_trace_events;
  opts.observe = cell.observe;
  opts.perf = &rec.perf;

  auto t0 = std::chrono::steady_clock::now();
  rec.result = run_multi_trial(cell, opts);
  rec.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (rec.result.base.obs) rec.result.base.obs->drop_spans();
  return rec;
}

// Serial, trial-ordered reduction — the one-shot engine's determinism
// contract, restated for multi cells.
summary_stats reduce_multi(const multi_grid& cell,
                           std::vector<multi_record> records) {
  const std::uint64_t reduce_t0 = perf_now_ns();
  summary_stats s;
  s.label = cell.label;
  s.n = cell.n;
  s.m = cell.m;
  s.pattern = input_pattern::random_m;  // proposals: seeded uniform [0, m)
  s.base_seed = cell.base_seed;
  s.trials = records.size();
  s.fault_profile = to_string(cell.faults);
  s.audit_profile = to_string(cell.audit);
  s.multi.shards = cell.shards;
  s.multi.slots_per_shard = cell.slots;

  const bool recovery_cell =
      !cell.faults.recoveries.empty() ||
      cell.faults.registers.semantics != sim::register_semantics::atomic;
  s.recovery.semantics = sim::to_string(cell.faults.registers.semantics);

  constexpr std::size_t kMaxAuditExamples = 8;
  std::vector<double> total, indiv, steps, step_rate, slot_ops;
  std::vector<double> obs_stages, obs_spans, recov_to_dec;
  for (multi_record& r : records) {
    const trial_result& base = r.result.base;
    s.wall_ms += r.wall_ms;
    s.perf += r.perf;
    s.crashed_processes += base.crashed_pids.size();
    s.restarted_processes += base.restarted_pids.size();
    s.restarts += base.restarts;
    s.stale_reads += base.stale_reads;
    const bool recovery_trial =
        recovery_cell || base.recoveries > 0 || base.volatile_wipes > 0 ||
        base.overlap_reads > 0 || base.races > 0 ||
        !base.recovered_pids.empty();
    if (recovery_trial) {
      ++s.recovery.trials;
      s.recovery.recovered_processes += base.recovered_pids.size();
      s.recovery.recoveries += base.recoveries;
      s.recovery.volatile_wipes += base.volatile_wipes;
      s.recovery.overlap_reads += base.overlap_reads;
      s.recovery.races += base.races;
    }
    if (base.audit) {
      const check::audit_report& a = *base.audit;
      ++s.audited;
      switch (a.status) {
        case check::audit_status::clean: ++s.audit_clean; break;
        case check::audit_status::violated: ++s.audit_violated; break;
        case check::audit_status::inconclusive:
          ++s.audit_inconclusive;
          break;
      }
      s.audit_events_checked += a.events_checked;
      s.audit_stale_reads_matched += a.stale_reads_matched;
      for (const check::violation& v : a.violations) {
        if (s.audit_examples.size() >= kMaxAuditExamples) break;
        s.audit_examples.push_back({r.trial_index, r.seed, v});
      }
    }
    if (base.obs) {
      const obs::trial_obs& o = *base.obs;
      ++s.obs.trials;
      if (o.truncated) ++s.obs.truncated;
      for (std::size_t i = 0; i < obs::kCounterCount; ++i)
        s.obs.counters[i] += o.counters[i];
      s.obs.reg_reads += o.regs.reads;
      s.obs.reg_writes_applied += o.regs.writes_applied;
      s.obs.reg_writes_missed += o.regs.writes_missed;
      s.obs.lost_overwrites += o.regs.lost_overwrites;
      s.obs.conciliator_invocations += o.conciliator_invocations;
      s.obs.conciliator_agreed += o.conciliator_agreed;
      obs_spans.push_back(static_cast<double>(o.span_count));
    }
    ++s.multi.trials;
    s.multi.proposals += r.result.proposals;
    s.multi.decisions += r.result.decisions;
    s.multi.fast_path_hits += r.result.fast_path_hits;
    s.multi.slots_reclaimed += r.result.slots_reclaimed;
    s.multi.extents_created += r.result.pool.extents_created;
    s.multi.extents_reused += r.result.pool.extents_reused;
    s.multi.pool_words_served += r.result.pool.words_served;
    s.multi.pool_parent_words += r.result.pool.parent_words;
    s.multi.slots_agreed += r.result.slots_agree;
    s.multi.slots_valid += r.result.slots_valid;
    slot_ops.insert(slot_ops.end(), r.result.slot_ops.begin(),
                    r.result.slot_ops.end());

    if (base.timed_out()) {
      ++s.timed_out;
      continue;
    }
    if (base.status == sim::run_status::step_limit) continue;
    ++s.completed;
    if (recovery_trial)
      recov_to_dec.push_back(static_cast<double>(base.recoveries));
    // Output agreement over the digests is whole-log agreement; validity
    // is the per-slot judgement (digests are not §3 values).
    std::vector<decided> escaped = base.all_outputs();
    s.agreed += check_agreement(escaped);
    s.coherent += check_coherence(escaped);
    s.valid += r.result.slots_valid && r.result.slots_agree;
    s.all_decided += all_decided(escaped);
    total.push_back(static_cast<double>(base.total_ops));
    indiv.push_back(static_cast<double>(base.max_individual_ops));
    steps.push_back(static_cast<double>(base.steps));
    if (r.perf.ns[static_cast<std::size_t>(perf_phase::step)] > 0)
      step_rate.push_back(
          static_cast<double>(base.steps) * 1e9 /
          static_cast<double>(
              r.perf.ns[static_cast<std::size_t>(perf_phase::step)]));
  }
  s.total_ops = dist_summary::of(std::move(total));
  s.max_individual_ops = dist_summary::of(std::move(indiv));
  s.steps = dist_summary::of(std::move(steps));
  s.steps_per_sec = dist_summary::of(std::move(step_rate));
  s.multi.slot_ops = dist_summary::of(std::move(slot_ops));
  s.obs.spans_per_trial = dist_summary::of(std::move(obs_spans));
  s.obs.stages_to_decision = dist_summary::of(std::move(obs_stages));
  s.recovery.recoveries_to_decision = dist_summary::of(std::move(recov_to_dec));
  s.perf.ns[static_cast<std::size_t>(perf_phase::serialize)] +=
      perf_now_ns() - reduce_t0;
  return s;
}

}  // namespace

std::vector<summary_stats> run_multi_grid(const std::vector<multi_grid>& grid,
                                          const experiment_options& opts) {
  struct task {
    std::size_t cell;
    std::uint64_t trial;
  };
  std::vector<task> tasks;
  std::vector<std::vector<multi_record>> records(grid.size());
  for (std::size_t c = 0; c < grid.size(); ++c) {
    records[c].resize(grid[c].trials);
    for (std::uint64_t t = 0; t < grid[c].trials; ++t) tasks.push_back({c, t});
  }

  std::size_t workers =
      opts.threads ? opts.threads
                   : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, std::max<std::size_t>(1, tasks.size()));

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  progress_counters progress;
  std::vector<std::exception_ptr> errors(workers);
  if (obs::telemetry_sink* ts = obs::tl_sink())
    ts->add(obs::tcounter::trials_planned, tasks.size());
  auto worker = [&](std::size_t wid) {
    try {
      while (!failed.load(std::memory_order_relaxed)) {
        std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) break;
        const task& tk = tasks[i];
        if (obs::telemetry_sink* ts = obs::tl_sink())
          ts->add(obs::tcounter::trials_started);
        const multi_record& r = records[tk.cell][tk.trial] =
            run_one_multi_trial(grid[tk.cell], tk.trial);
        const trial_result& base = r.result.base;
        if (opts.progress) {
          progress.fault_events.fetch_add(
              base.crashed_pids.size() + base.restarts,
              std::memory_order_relaxed);
          if (base.audit &&
              base.audit->status == check::audit_status::violated)
            progress.audit_violations.fetch_add(1, std::memory_order_relaxed);
          progress.done.fetch_add(1, std::memory_order_relaxed);
        }
        // Multi trials drive the world directly (no run_object_trial),
        // so the whole fleet-telemetry contribution is recorded here.
        if (obs::telemetry_sink* ts = obs::tl_sink()) {
          ts->add(obs::tcounter::trials_completed);
          ts->add(obs::tcounter::steps, base.steps);
          ts->add(obs::tcounter::total_ops, base.total_ops);
          if (!base.crashed_pids.empty())
            ts->add(obs::tcounter::crashes, base.crashed_pids.size());
          if (base.restarts) ts->add(obs::tcounter::restarts, base.restarts);
          if (base.recoveries)
            ts->add(obs::tcounter::recoveries, base.recoveries);
          if (base.stale_reads)
            ts->add(obs::tcounter::stale_reads, base.stale_reads);
          if (base.omitted_writes)
            ts->add(obs::tcounter::omitted_writes, base.omitted_writes);
          if (base.volatile_wipes)
            ts->add(obs::tcounter::volatile_wipes, base.volatile_wipes);
          if (base.timed_out()) ts->add(obs::tcounter::trials_timed_out);
          if (base.audit) {
            ts->add(obs::tcounter::audits);
            if (base.audit->status == check::audit_status::violated)
              ts->add(obs::tcounter::audit_violations);
          }
          ts->add(obs::tcounter::slot_proposals, r.result.proposals);
          ts->add(obs::tcounter::slot_decisions, r.result.decisions);
          ts->add(obs::tcounter::slot_fast_path_hits,
                  r.result.fast_path_hits);
          ts->record(obs::thist::trial_steps, base.steps);
          for (double ops : r.result.slot_ops)
            ts->record(obs::thist::slot_ops,
                       static_cast<std::uint64_t>(ops));
          ts->record(obs::thist::trial_latency_us,
                     static_cast<std::uint64_t>(r.wall_ms * 1000.0));
          const std::uint64_t step_ns =
              r.perf.ns[static_cast<std::size_t>(perf_phase::step)];
          if (step_ns > 0)
            ts->record(obs::thist::steps_per_sec,
                       static_cast<std::uint64_t>(
                           static_cast<double>(base.steps) * 1e9 /
                           static_cast<double>(step_ns)));
          ts->cell(grid[tk.cell].label, 1, base.steps);
        }
      }
    } catch (...) {
      errors[wid] = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  // Live --progress, same line format as the one-shot engine's
  // (analysis/progress.h) with a "multi" tag.
  progress_monitor monitor;
  if (opts.progress && !tasks.empty())
    monitor.start("multi", tasks.size(), progress);

  if (workers <= 1) {
    worker(0);
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  }
  monitor.stop();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);

  std::vector<summary_stats> out;
  out.reserve(grid.size());
  for (std::size_t c = 0; c < grid.size(); ++c)
    out.push_back(reduce_multi(grid[c], std::move(records[c])));
  return out;
}

summary_stats run_multi_experiment(const multi_grid& cell,
                                   const experiment_options& opts) {
  std::vector<multi_grid> grid;
  grid.push_back(cell);
  return run_multi_grid(grid, opts).front();
}

}  // namespace modcon::analysis
