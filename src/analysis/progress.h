// Live progress reporting shared by the experiment engines.
//
// One monitor thread per grid run, stderr only, reporting only — results
// are unaffected.  The engines bump the relaxed atomics in
// progress_counters as work retires (per trial on the scalar and multi
// paths, per *lane* inside the batch interpreter, so chunked cells
// advance smoothly); the monitor folds them into a trials/sec + ETA +
// fault/audit line.  On a terminal the line redraws in place; piped
// output gets a full line at a slower cadence so logs stay readable.
//
// Extracted from run_experiment_grid so run_multi_grid (and anything
// else that pools trials) reports identically.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>

namespace modcon::analysis {

struct progress_counters {
  std::atomic<std::size_t> done{0};
  std::atomic<std::uint64_t> fault_events{0};
  std::atomic<std::uint64_t> audit_violations{0};
};

class progress_monitor {
 public:
  progress_monitor() = default;
  ~progress_monitor() { stop(); }
  progress_monitor(const progress_monitor&) = delete;
  progress_monitor& operator=(const progress_monitor&) = delete;

  // Starts the reporting thread.  `tag` brands the line ("experiment",
  // "multi"); `counters` must outlive the monitor.
  void start(std::string tag, std::size_t total,
             const progress_counters& counters);

  // Emits the final "done in" line and joins.  Idempotent; safe when
  // start was never called.
  void stop();

 private:
  std::jthread thread_;
};

}  // namespace modcon::analysis
