#include "analysis/shard.h"

#include <algorithm>
#include <sstream>
#include <string>

#include "core/types.h"
#include "util/assertx.h"

namespace modcon::analysis {

namespace {

[[noreturn]] void fail(const std::string& msg) { throw json_error(msg); }

const json& need(const json& obj, std::string_view key,
                 const char* context) {
  const json* v = obj.find(key);
  if (v == nullptr)
    fail(std::string("shard artifact: missing \"") + std::string(key) +
         "\" in " + context);
  return *v;
}

json pids_to_json(const std::vector<process_id>& pids) {
  json arr = json::array();
  for (process_id pid : pids) arr.push_back(json(pid));
  return arr;
}

json decided_to_json(const std::vector<decided>& ds) {
  json arr = json::array();
  for (const decided& d : ds) arr.push_back(json(encode_decided(d)));
  return arr;
}

std::vector<process_id> pids_from_json(const json& arr) {
  std::vector<process_id> out;
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i)
    out.push_back(static_cast<process_id>(arr.at(i).as_uint()));
  return out;
}

std::vector<decided> decided_from_json(const json& arr) {
  std::vector<decided> out;
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i)
    out.push_back(decode_decided(arr.at(i).as_uint()));
  return out;
}

}  // namespace

json shard_cell_to_json(const summary_stats& s, const cell_meta& meta) {
  MODCON_CHECK_MSG(s.audited == 0 && s.obs.trials == 0 && s.multi.trials == 0,
                   "shard_cell_to_json: cell '"
                       << s.label << "' carries non-shardable accounting");
  json cell = to_json(s, /*include_records=*/false);

  json cm = json::object();
  cm["n"] = json(meta.n);
  cm["m"] = json(meta.m);
  cm["pattern"] = json(static_cast<unsigned>(meta.pattern));
  cm["base_seed"] = json(meta.base_seed);
  cm["fault_profile"] = json(meta.fault_profile);
  cm["audit_profile"] = json(meta.audit_profile);
  cm["recovery_cell"] = json(meta.recovery_cell);
  cm["semantics"] = json(meta.semantics);
  json probes = json::array();
  for (const std::string& name : meta.probe_names) probes.push_back(json(name));
  cm["probes"] = std::move(probes);
  cm["keep_records"] = json(meta.keep_records);
  cell["cell_meta"] = std::move(cm);

  json recs = json::array();
  for (const trial_record& r : s.records) {
    json rec = json::object();
    rec["trial"] = json(r.trial_index);
    rec["seed"] = json(r.seed);
    rec["status"] = json(static_cast<unsigned>(r.result.status));
    rec["outputs"] = decided_to_json(r.result.outputs);
    rec["halted"] = pids_to_json(r.result.halted_pids);
    rec["crashed"] = pids_to_json(r.result.crashed_pids);
    rec["crashed_outputs"] = decided_to_json(r.result.crashed_outputs);
    rec["restarted"] = pids_to_json(r.result.restarted_pids);
    rec["recovered"] = pids_to_json(r.result.recovered_pids);
    rec["restarts"] = json(r.result.restarts);
    rec["recoveries"] = json(r.result.recoveries);
    rec["stale_reads"] = json(r.result.stale_reads);
    rec["omitted_writes"] = json(r.result.omitted_writes);
    rec["overlap_reads"] = json(r.result.overlap_reads);
    rec["volatile_wipes"] = json(r.result.volatile_wipes);
    rec["races"] = json(r.result.races);
    rec["total_ops"] = json(r.result.total_ops);
    rec["max_individual_ops"] = json(r.result.max_individual_ops);
    rec["steps"] = json(r.result.steps);
    rec["registers"] = json(r.result.registers);
    rec["valid"] = json(r.valid);
    rec["agreement"] = json(r.agreement);
    rec["coherent"] = json(r.coherent);
    rec["decided_all"] = json(r.decided_all);
    json pr = json::array();
    for (double v : r.probes) pr.push_back(json(v));
    rec["probes"] = std::move(pr);
    rec["wall_ms"] = json(r.wall_ms);
    json perf = json::array();
    for (std::size_t i = 0; i < kPerfPhaseCount; ++i)
      perf.push_back(json(r.perf.ns[i]));
    rec["perf_ns"] = std::move(perf);
    recs.push_back(std::move(rec));
  }
  cell["records"] = std::move(recs);
  return cell;
}

cell_meta cell_meta_from_json(const json& cell) {
  const json& cm = need(cell, "cell_meta", "cell");
  cell_meta meta;
  meta.label = need(cell, "label", "cell").as_string();
  meta.n = need(cm, "n", "cell_meta").as_uint();
  meta.m = need(cm, "m", "cell_meta").as_uint();
  meta.pattern = static_cast<input_pattern>(
      need(cm, "pattern", "cell_meta").as_uint());
  meta.base_seed = need(cm, "base_seed", "cell_meta").as_uint();
  meta.fault_profile = need(cm, "fault_profile", "cell_meta").as_string();
  meta.audit_profile = need(cm, "audit_profile", "cell_meta").as_string();
  meta.recovery_cell = need(cm, "recovery_cell", "cell_meta").as_bool();
  meta.semantics = need(cm, "semantics", "cell_meta").as_string();
  const json& probes = need(cm, "probes", "cell_meta");
  for (std::size_t i = 0; i < probes.size(); ++i)
    meta.probe_names.push_back(probes.at(i).as_string());
  meta.keep_records = need(cm, "keep_records", "cell_meta").as_bool();
  return meta;
}

std::vector<trial_record> records_from_json(const json& cell) {
  const json& recs = need(cell, "records", "cell");
  std::vector<trial_record> out;
  out.reserve(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const json& rec = recs.at(i);
    trial_record r;
    r.trial_index = need(rec, "trial", "record").as_uint();
    r.seed = need(rec, "seed", "record").as_uint();
    r.result.status = static_cast<sim::run_status>(
        need(rec, "status", "record").as_uint());
    r.result.outputs = decided_from_json(need(rec, "outputs", "record"));
    r.result.halted_pids = pids_from_json(need(rec, "halted", "record"));
    r.result.crashed_pids = pids_from_json(need(rec, "crashed", "record"));
    r.result.crashed_outputs =
        decided_from_json(need(rec, "crashed_outputs", "record"));
    r.result.restarted_pids =
        pids_from_json(need(rec, "restarted", "record"));
    r.result.recovered_pids =
        pids_from_json(need(rec, "recovered", "record"));
    r.result.restarts = need(rec, "restarts", "record").as_uint();
    r.result.recoveries = need(rec, "recoveries", "record").as_uint();
    r.result.stale_reads = need(rec, "stale_reads", "record").as_uint();
    r.result.omitted_writes =
        need(rec, "omitted_writes", "record").as_uint();
    r.result.overlap_reads = need(rec, "overlap_reads", "record").as_uint();
    r.result.volatile_wipes =
        need(rec, "volatile_wipes", "record").as_uint();
    r.result.races = need(rec, "races", "record").as_uint();
    r.result.total_ops = need(rec, "total_ops", "record").as_uint();
    r.result.max_individual_ops =
        need(rec, "max_individual_ops", "record").as_uint();
    r.result.steps = need(rec, "steps", "record").as_uint();
    r.result.registers = static_cast<std::uint32_t>(
        need(rec, "registers", "record").as_uint());
    r.valid = need(rec, "valid", "record").as_bool();
    r.agreement = need(rec, "agreement", "record").as_bool();
    r.coherent = need(rec, "coherent", "record").as_bool();
    r.decided_all = need(rec, "decided_all", "record").as_bool();
    const json& probes = need(rec, "probes", "record");
    for (std::size_t k = 0; k < probes.size(); ++k)
      r.probes.push_back(probes.at(k).as_double());
    r.wall_ms = need(rec, "wall_ms", "record").as_double();
    const json& perf = need(rec, "perf_ns", "record");
    if (perf.size() != kPerfPhaseCount)
      fail("shard artifact: record perf_ns arity mismatch");
    for (std::size_t k = 0; k < kPerfPhaseCount; ++k)
      r.perf.ns[k] = perf.at(k).as_uint();
    out.push_back(std::move(r));
  }
  return out;
}

json merge_shard_reports(const std::vector<json>& shards) {
  if (shards.empty()) fail("merge: no shard artifacts given");

  // Validate headers and recover each shard's declared index.
  const std::size_t count = shards.size();
  std::vector<const json*> by_index(count, nullptr);
  const std::string schema =
      need(shards[0], "schema", "report").as_string();
  const std::uint64_t version =
      need(shards[0], "schema_version", "report").as_uint();
  const std::string bench = need(shards[0], "bench", "report").as_string();
  for (const json& doc : shards) {
    if (need(doc, "schema", "report").as_string() != schema ||
        need(doc, "schema_version", "report").as_uint() != version)
      fail("merge: shard schema mismatch");
    if (need(doc, "bench", "report").as_string() != bench)
      fail("merge: shards come from different benches");
    const json& sh = need(doc, "shard", "report");
    const std::uint64_t idx = need(sh, "index", "shard").as_uint();
    const std::uint64_t n = need(sh, "count", "shard").as_uint();
    if (n != count) {
      std::ostringstream os;
      os << "merge: shard declares count " << n << " but " << count
         << " artifacts were given";
      fail(os.str());
    }
    if (idx >= count || by_index[idx] != nullptr)
      fail("merge: shard indices are not exactly 0..count-1");
    by_index[idx] = &doc;
  }

  // The merged document is shard 0's, with the shard header collapsed to
  // the single-process identity and each sharded cell re-reduced from the
  // union of the per-trial records.
  json out = *by_index[0];
  out["shard"]["index"] = json(0u);
  out["shard"]["count"] = json(1u);

  const json& base_exps = need(*by_index[0], "experiments", "report");
  json merged_exps = json::array();
  for (std::size_t e = 0; e < base_exps.size(); ++e) {
    const json& cell0 = base_exps.at(e);
    if (cell0.find("cell_meta") == nullptr) {
      // Non-shardable cell: ran whole on shard 0 only.
      merged_exps.push_back(cell0);
      continue;
    }
    const std::string& label = need(cell0, "label", "cell").as_string();
    const cell_meta meta = cell_meta_from_json(cell0);
    std::vector<trial_record> records;
    for (std::size_t i = 0; i < count; ++i) {
      const json& exps = need(*by_index[i], "experiments", "report");
      const json* cell = nullptr;
      for (std::size_t k = 0; k < exps.size(); ++k)
        if (const json* l = exps.at(k).find("label");
            l != nullptr && l->as_string() == label) {
          cell = &exps.at(k);
          break;
        }
      if (cell == nullptr)
        fail("merge: cell '" + label + "' missing from shard " +
             std::to_string(i));
      std::vector<trial_record> part = records_from_json(*cell);
      records.insert(records.end(),
                     std::make_move_iterator(part.begin()),
                     std::make_move_iterator(part.end()));
    }
    // Restore the single-process record order; the round-robin shard
    // assignment never duplicates an index.
    std::sort(records.begin(), records.end(),
              [](const trial_record& a, const trial_record& b) {
                return a.trial_index < b.trial_index;
              });
    // No serialize self-timing: every timing field in the merged cell
    // must derive from the shards' serialized measurements alone.
    summary_stats s =
        reduce_records(meta, std::move(records), /*time_serialize=*/false);
    merged_exps.push_back(shard_cell_to_json(s, meta));
  }
  out["experiments"] = std::move(merged_exps);
  return out;
}

}  // namespace modcon::analysis
