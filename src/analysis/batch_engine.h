// Lockstep-batched trial engine: runs B independent sim trials of one
// grid cell side by side through a direct interpreter, with per-trial
// world state laid out struct-of-arrays across trials (sim/batch_soa.h).
//
// The batcher is an *engine substitution*, not a new semantics: for the
// cells it supports it reproduces the scalar coroutine engine bit for
// bit — the same splitmix64 per-trial seed derivation, the same
// per-process rng streams (seeded exactly as sim_world::spawn does), the
// same uniform-scheduler draw sequence (one rng_block draw per executed
// step over the same runnable ordering), the same posting-time coin
// draws, and the same trial_result fields.  tests/batch_engine_test.cpp
// and the CI batch-equivalence step hold it to that contract; the scalar
// engine stays the oracle and the fallback for everything the batcher
// does not cover (adversaries other than random_oblivious, fault plans,
// audits, probes, observation, rt cells).
//
// What it covers today (atomic registers, fault-free):
//   * the bare impatient first-mover conciliator (Theorem 7), and
//   * the unbounded impatient consensus stack over binary quorums
//     (R₋₁; R₀; C₁; R₁; … with quorum ratifiers, §4.1 + §6.2),
// each described by a `batch_program` attached to the cell as
// trial_grid::batch_hint.  The hint is a *claim* that the cell's builder
// constructs exactly that object graph; the equivalence tests are what
// keep the claim honest.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "core/conciliator/impatient.h"
#include "core/consensus/stack_spec.h"

namespace modcon::analysis {

struct trial_grid;
struct trial_record;

// Engine selection for the experiment layer and the bench --engine flag.
// `scalar` is the library default (existing callers and the determinism
// goldens are untouched); `auto_select` uses the batcher exactly for the
// cells that qualify (batch_supported) and falls back otherwise; `batch`
// is auto_select with intent — unsupported cells still fall back, which
// is what makes `--engine scalar` vs `--engine batch` artifacts
// comparable byte-for-byte across a grid with a faulted cell in it.
enum class engine_kind : std::uint8_t { scalar, batch, auto_select };

const char* to_string(engine_kind e);
std::optional<engine_kind> engine_from_string(std::string_view name);

// The two interpreter programs the batcher implements.
enum class batch_family : std::uint8_t {
  impatient_conciliator,  // bare Theorem 7 conciliator, one register
  unbounded_impatient,    // unbounded stack, binary quorum ratifiers
};

struct batch_program {
  batch_family family = batch_family::impatient_conciliator;
  impatience_schedule schedule{};
  bool detect_success = false;  // Theorem 7 footnote detecting writes

  friend bool operator==(const batch_program&, const batch_program&) =
      default;
};

// Hint for a cell whose builder is a bare
// `impatient_conciliator<sim_env>(mem, sched, detect)`.
inline batch_program batch_impatient(impatience_schedule sched = {},
                                     bool detect = false) {
  return {batch_family::impatient_conciliator, sched, detect};
}

// Hint for a cell built from a stack_spec, or nullopt when the spec is
// outside the batcher's coverage (non-unbounded protocols, the
// fixed-probability conciliator, m > 2 / non-binary quorums, recoverable
// stacks).
inline std::optional<batch_program> batch_for(const stack_spec& spec) {
  if (spec.protocol != protocol_kind::unbounded) return std::nullopt;
  if (spec.conciliator != conciliator_kind::impatient) return std::nullopt;
  if (spec.recoverable) return std::nullopt;
  if (spec.m > 2) return std::nullopt;
  if (spec.quorums != quorum_kind::adaptive &&
      spec.quorums != quorum_kind::binary)
    return std::nullopt;
  return batch_program{batch_family::unbounded_impatient, spec.schedule,
                       spec.detect_success};
}

// True iff the batcher can run this cell bit-identically: it carries a
// batch_hint and uses the neutral scheduler with no faults, audits,
// probes, or observation (the modes the scalar oracle keeps).
bool batch_supported(const trial_grid& cell);

// Runs `count` trials of `cell` (trial indices `trial_indices[0..count)`)
// in lockstep and fills `out[0..count)` with records byte-identical to
// what run_experiment's scalar path produces for the same indices
// (timing fields excepted — those are measurements).  Thread-safe across
// disjoint chunks: all state is local to the call.
//
// `retired`, when non-null, is incremented once per lane as it leaves
// the active set (halt or step limit) — live progress accounting for
// chunked cells, reporting only.  The interpreter also feeds the
// telemetry bus (obs/telemetry.h) when one is installed: lane
// retirements, sweep count, and the divergence-mask occupancy histogram.
void run_batch_trials(const trial_grid& cell, const batch_program& prog,
                      const std::uint64_t* trial_indices, trial_record* out,
                      std::size_t count,
                      std::atomic<std::size_t>* retired = nullptr);

}  // namespace modcon::analysis
