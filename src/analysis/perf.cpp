#include "analysis/perf.h"

namespace modcon::analysis {

const char* to_string(perf_phase p) {
  switch (p) {
    case perf_phase::schedule: return "schedule";
    case perf_phase::step: return "step";
    case perf_phase::audit: return "audit";
    case perf_phase::serialize: return "serialize";
  }
  return "?";
}

}  // namespace modcon::analysis
