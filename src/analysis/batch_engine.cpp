// The lockstep batch interpreter (see batch_engine.h for the contract).
//
// Bit-identity with the scalar engine rests on reproducing four streams
// and one ordering exactly:
//
//   * trial seed:      derive_trial_seed(base_seed, trial_index);
//   * scheduler:       rng_block over rng(seed ^ 0xadadadadadadadadULL),
//                      one below(runnable_count) draw per executed step
//                      (none when the lane is quiescent) — exactly
//                      sim_world::run's uniform fast path;
//   * process coins:   per pid, rng(splitmix64(seed') ^ (phi * (pid+1)))
//                      with seed' advancing once per spawn, drawn only at
//                      posting time of a nontrivial probabilistic write
//                      (sim_env::draw_coin short-circuits certain and
//                      impossible probabilities without a draw);
//   * impatience:      impatience_schedule::stepper, stepped once per
//                      conciliator read that observed ⊥ — the write that
//                      read posts carries the pre-drawn coin;
//   * runnable order:  spawn order 0..n-1 with sim_world's swap-remove on
//                      halt (soa_runnable::remove).
//
// Each pc state below is one suspension point of the scalar coroutines;
// a step executes the pending operation *and* runs the resume that posts
// the next one (impatience advance + coin draw for a conciliator read of
// ⊥, lazy part construction when a process moves to the next round),
// which is exactly where sim_world::execute does that work.
//
// The hot loop earns its speed from four structural moves, none of which
// touch the draw sequences:
//   * the stepper's k-th output is a pure function of (schedule, n, k)
//     and its saturation is monotone in k, so the per-process 48-byte
//     stepper state collapses to a u32 attempt counter over one shared
//     probability table per batch;
//   * the pre-drawn coin folds into the pc word (write-hit and write-miss
//     are distinct states), so a step is one switch on one u32 — and the
//     pc is a u32 precisely so its stores cannot alias-clobber the
//     compiler's view of every other array the way byte stores would;
//   * everything a burst touches is hoisted to a raw local pointer; cold
//     transitions (halts, part changes) go through member functions and
//     the few invalidated locals are re-hoisted after;
//   * the scheduler stream is a struct-local replica of rng_block (same
//     source stream, same 64-draw refill order, same Lemire mapping), so
//     its cursor lives in a register across a burst.
#include "analysis/batch_engine.h"

#include <algorithm>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/metrics.h"
#include "analysis/perf.h"
#include "core/types.h"
#include "obs/telemetry.h"
#include "sim/batch_soa.h"
#include "util/assertx.h"
#include "util/prob.h"
#include "util/rng.h"

namespace modcon::analysis {

const char* to_string(engine_kind e) {
  switch (e) {
    case engine_kind::scalar: return "scalar";
    case engine_kind::batch: return "batch";
    case engine_kind::auto_select: return "auto";
  }
  return "?";
}

std::optional<engine_kind> engine_from_string(std::string_view name) {
  if (name == "scalar") return engine_kind::scalar;
  if (name == "batch") return engine_kind::batch;
  if (name == "auto") return engine_kind::auto_select;
  return std::nullopt;
}

bool batch_supported(const trial_grid& cell) {
  if (!cell.batch_hint) return false;
  // The batcher implements exactly the neutral uniform scheduler; any
  // custom adversary keeps the scalar oracle.
  if (cell.make_adversary) return false;
  // Fault-free, unaudited, unobserved cells only (atomic semantics are
  // implied: a weakened-semantics plan is a non-empty fault plan).
  if (!cell.faults.empty() || cell.faults_for) return false;
  if (cell.audit.mode != audit_mode::off) return false;
  if (!cell.probes.empty() || cell.observe) return false;
  if (cell.n == 0) return false;
  // Binary quorum ratifiers hold values {0, 1} only.
  if (cell.batch_hint->family == batch_family::unbounded_impatient &&
      cell.m > 2)
    return false;
  return true;
}

namespace {

// Interpreter pc: each value is one suspension point of the scalar
// coroutine programs, with the pending probabilistic write's pre-drawn
// coin folded into the state (miss and hit are adjacent so the posting
// side computes `kPcConcWriteMiss + coin`).
enum : std::uint32_t {
  kPcConcRead = 0,   // conciliator: read r pending
  kPcConcWriteMiss,  // conciliator: prob-write pending, coin = 0
  kPcConcWriteHit,   // conciliator: prob-write pending, coin = 1
  kPcRatAnnounce,    // ratifier: announce write base+v <- 1 pending
  kPcRatReadProp,    // ratifier: read proposal pending
  kPcRatWriteProp,   // ratifier: write proposal <- pref pending
  kPcRatReadQuorum,  // ratifier: read base+(1-pref) pending
};

// unbounded_consensus part schedule: R₋₁, R₀, then C_j, R_j alternating
// (parts 0 and 1 are ratifiers; from 2 on, even = conciliator, odd =
// ratifier).  Register footprint per part matches the scalar allocation
// order exactly: a quorum_ratifier allocates its 2-register announce
// block then the proposal register (3 cells), an impatient_conciliator
// allocates 1.
constexpr bool part_is_ratifier(std::size_t i) {
  return i < 2 || i % 2 == 1;
}
constexpr std::uint32_t part_size(std::size_t i) {
  return part_is_ratifier(i) ? 3 : 1;
}

// One shared impatience-table entry: the k-th stepper output for this
// batch's (schedule, n).  num == den encodes certainty (prob::certain),
// which mirrors sim_env::draw_coin's short-circuit — a certain write
// consumes no rng draw.  (The stepper floors its numerator to 1 on every
// renormalization, so no entry is ever impossible; init() checks that
// invariant.)
struct coin_entry {
  std::uint64_t num = 0;
  std::uint64_t den = 1;
};

// Per-process xoshiro256** state, laid out flat so the hot loop can
// advance a local copy speculatively and commit it by mask (a coin draw
// must consume state exactly when the scalar engine draws — on a
// conciliator read of ⊥ with a non-certain probability — and a branch on
// that data-dependent condition would mispredict half the time).
struct xo_state {
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
};

constexpr std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// rng::next, verbatim (util/rng.h) — replicated so the state can live in
// plain locals.
inline std::uint64_t xo_next(xo_state& g) {
  const std::uint64_t result = rotl64(g.s1 * 5, 7) * 9;
  const std::uint64_t t = g.s1 << 17;
  g.s2 ^= g.s0;
  g.s3 ^= g.s1;
  g.s1 ^= g.s2;
  g.s0 ^= g.s3;
  g.s2 ^= t;
  g.s3 = rotl64(g.s3, 45);
  return result;
}

// rng's constructor, verbatim: four sequential splitmix64 draws.
inline xo_state xo_seed(std::uint64_t seed) {
  xo_state g;
  g.s0 = splitmix64(seed);
  g.s1 = splitmix64(seed);
  g.s2 = splitmix64(seed);
  g.s3 = splitmix64(seed);
  return g;
}

// Struct-local replica of rng_block (util/rng.h): same source stream,
// same 64-draw refill order, same Lemire below() mapping — so its draws
// are position-for-position the scalar adversary's — but with the layout
// owned here so the burst loop can keep the cursor in a register.
struct sched_stream {
  rng src{0};
  std::array<std::uint64_t, 64> buf{};
  std::uint32_t pos = 64;
};

class batch_interpreter {
 public:
  batch_interpreter(const trial_grid& cell, const batch_program& prog,
                    const std::uint64_t* trial_indices, trial_record* out,
                    std::size_t count, std::atomic<std::size_t>* retired)
      : cell_(cell),
        prog_(prog),
        idx_(trial_indices),
        out_(out),
        lanes_(count),
        n_(static_cast<std::uint32_t>(cell.n)),
        max_steps_(cell.limits.max_steps),
        table_stepper_(prog.schedule, cell.n),
        retired_(retired) {}

  void run() {
    init();
    const std::uint64_t t0 = perf_now_ns();
    if (prog_.family == batch_family::impatient_conciliator) {
      if (prog_.detect_success)
        interpret<false, true>();
      else
        interpret<false, false>();
    } else {
      if (prog_.detect_success)
        interpret<true, true>();
      else
        interpret<true, false>();
    }
    loop_ns_ = perf_now_ns() - t0;
    finalize();
  }

 private:
  static constexpr std::uint64_t kBurst = 256;

  std::size_t at(std::size_t lane, std::uint32_t pid) const {
    return lane * n_ + pid;
  }

  // --- spawn-equivalent setup (the scalar engine's schedule phase) ----
  void init() {
    const bool stacked = prog_.family == batch_family::unbounded_impatient;
    const std::size_t total = lanes_ * n_;
    sched_.resize(lanes_);
    steps_.assign(lanes_, 0);
    status_.assign(lanes_, sim::run_status::step_limit);
    parts_built_.assign(lanes_, 0);
    alloc_count_.assign(lanes_, 0);
    inputs_.assign(total, 0);
    prng_.assign(total, xo_state{});
    ops_.assign(total, 0);
    pc_.assign(total, kPcConcRead);
    cnt_.assign(total, 0);
    val_.assign(total, 0);
    pref_.assign(total, 0);
    out_word_.assign(total, 0);
    halted_.assign(total, 0);
    part_.assign(total, 0);
    base_.assign(total, 0);
    regs_.reset(lanes_);
    run_.init(lanes_, n_);

    // Shared impatience table: entry k is the k-th next() of a fresh
    // stepper — exactly what every per-process stepper returns on its
    // k-th call, so one table serves all (lane, pid) attempt counters.
    // Saturation is monotone in k (the stepper latches), so the table is
    // complete once it ends in a fixed point: a certain entry, or any
    // entry of the constant g = 1 schedule.  The doubling schedule
    // saturates within lg n + O(1) entries, so the eager build below
    // almost always reaches the fixed point; degenerate slow-growth
    // schedules extend on demand (table_overflow).
    constant_tail_ = prog_.schedule.numer == prog_.schedule.denom;
    table_.clear();
    append_coin_entry();
    while (!table_fixed_point() && table_.size() < 64) append_coin_entry();

    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      const std::uint64_t t0 = perf_now_ns();
      trial_record& rec = out_[lane];
      rec = trial_record{};
      rec.trial_index = idx_[lane];
      rec.seed = derive_trial_seed(cell_.base_seed, idx_[lane]);

      // Adversary stream: random_oblivious::reset.
      sched_[lane].src = rng(rec.seed ^ 0xadadadadadadadadULL);
      sched_[lane].pos = 64;

      // Workload: same generator as the scalar path.
      const std::vector<value_t> inputs =
          make_inputs(cell_.pattern, n_, cell_.m, rec.seed);
      std::copy(inputs.begin(), inputs.end(),
                inputs_.begin() + static_cast<std::ptrdiff_t>(lane * n_));

      // Process streams: sim_world::spawn seeds pid's rng from
      // splitmix64(seed_) ^ (phi * (pid+1)) with the member seed_
      // advancing once per spawn — replayed here on a local copy.
      std::uint64_t seed_state = rec.seed;
      for (std::uint32_t pid = 0; pid < n_; ++pid)
        prng_[at(lane, pid)] = xo_seed(splitmix64(seed_state) ^
                                      (0x9e3779b97f4a7c15ULL * (pid + 1)));

      if (!stacked) {
        // Bare conciliator: its register is allocated at build time,
        // before any spawn; every process starts at the read.
        regs_.ensure_rows(1);
        regs_.row(0)[lane] = kBot;
        alloc_count_[lane] = 1;
        for (std::uint32_t pid = 0; pid < n_; ++pid) {
          const std::size_t i = at(lane, pid);
          val_[i] = inputs[pid];
          base_[i] = 0;
          pc_[i] = kPcConcRead;
        }
      } else {
        // Unbounded stack: part 0 (the first ratifier) materializes when
        // the first spawned process reaches it — i.e. during pid 0's
        // spawn — and later pids reuse it, exactly as part() does.
        for (std::uint32_t pid = 0; pid < n_; ++pid)
          enter_part(lane, at(lane, pid), 0, inputs[pid]);
      }
      out_[lane].perf.ns[static_cast<std::size_t>(perf_phase::schedule)] +=
          perf_now_ns() - t0;
    }
  }

  bool table_fixed_point() const {
    return table_.back().num == table_.back().den || constant_tail_;
  }

  void append_coin_entry() {
    const prob p = table_stepper_.next();
    MODCON_CHECK(!p.impossible());
    table_.push_back({p.num(), p.den()});
  }

  // Cold: a process's attempt counter ran past the table.  Extends to
  // cover k or to the fixed point, whichever comes first, and returns
  // the entry index to use (the fixed point repeats forever).
  std::uint32_t table_overflow(std::uint32_t k) {
    while (table_.size() <= k && !table_fixed_point()) append_coin_entry();
    return static_cast<std::uint32_t>(
        std::min<std::size_t>(k, table_.size() - 1));
  }

  // Builds parts [parts_built_, i] of this lane's stack, in order — the
  // batched image of unbounded_consensus::part's build-all-up-to-i loop
  // plus the registers each part's constructor allocates.
  void ensure_built(std::size_t lane, std::uint32_t i) {
    while (parts_built_[lane] <= i) {
      const std::uint32_t p = parts_built_[lane];
      if (part_base_.size() <= p) {
        const std::uint32_t next_base =
            part_base_.empty()
                ? 0
                : part_base_.back() + part_size(part_base_.size() - 1);
        part_base_.push_back(next_base);
      }
      const std::uint32_t b = part_base_[p];
      regs_.ensure_rows(b + part_size(p));
      if (part_is_ratifier(p)) {
        regs_.row(b)[lane] = 0;         // announce board r0
        regs_.row(b + 1)[lane] = 0;     // announce board r1
        regs_.row(b + 2)[lane] = kBot;  // proposal
      } else {
        regs_.row(b)[lane] = kBot;  // conciliator register
      }
      alloc_count_[lane] = b + part_size(p);
      parts_built_[lane] = p + 1;
    }
  }

  void enter_part(std::size_t lane, std::size_t i, std::uint32_t part,
                  word value) {
    ensure_built(lane, part);
    part_[i] = part;
    base_[i] = part_base_[part];
    val_[i] = value;
    if (part_is_ratifier(part)) {
      pc_[i] = kPcRatAnnounce;
    } else {
      // Fresh attempt counter per conciliator invocation, as the scalar
      // invoke constructs a fresh stepper at entry.
      cnt_[i] = 0;
      pc_[i] = kPcConcRead;
    }
  }

  void halt(std::size_t lane, std::uint32_t pid, std::size_t i, word w) {
    out_word_[i] = w;
    halted_[i] = 1;
    run_.remove(lane, pid);
  }

  // Cold: a part of the composition returned (decide, value).  The bare
  // conciliator halts its process; the stack decides or advances to the
  // next part (unbounded_consensus's ++i loop).
  template <bool Stacked>
  void part_return(std::size_t lane, std::uint32_t pid, std::size_t i,
                   bool decide, word value) {
    if constexpr (!Stacked) {
      halt(lane, pid, i, encode_decided({false, value}));
      return;
    }
    if (decide) {
      halt(lane, pid, i, encode_decided({true, value}));
      return;
    }
    enter_part(lane, i, part_[i] + 1, value);
  }

  // Hoisted per-lane cursor block for the interleaved hot loop.  Every
  // pointer is pre-offset to the lane's slice; the few cold transitions
  // (halts, part changes) refresh `len` and `regs0` through the owning
  // members.
  struct lane_ctx {
    std::uint64_t quota = 0;
    std::uint64_t len = 0;
    std::uint64_t steps = 0;
    std::uint32_t spos = 0;
    std::uint32_t lane = 0;
    std::size_t pb = 0;
    std::size_t stride = 0;
    word rv = 0;  // family A's single register cell, cached
    const std::uint32_t* list = nullptr;
    std::uint32_t* pc = nullptr;
    std::uint32_t* cnt = nullptr;
    std::uint64_t* ops = nullptr;
    const word* val = nullptr;
    word* pref = nullptr;
    const std::uint32_t* rbase = nullptr;
    xo_state* xs = nullptr;
    const std::uint64_t* sbuf = nullptr;
    sched_stream* ss = nullptr;
    word* regs0 = nullptr;
  };

  // Snapshot of the shared impatience table, hoisted out of the loop so
  // its data pointer is not reloaded around every store; refreshed by
  // the cold growth path.
  struct coin_table_view {
    const coin_entry* tbl = nullptr;
    std::uint32_t size = 0;
    bool fixed = false;
  };

  coin_table_view table_view() {
    return {table_.data(), static_cast<std::uint32_t>(table_.size()),
            table_fixed_point()};
  }

  template <bool Stacked>
  void load_ctx(lane_ctx& c, std::size_t lane) {
    c.lane = static_cast<std::uint32_t>(lane);
    c.pb = lane * n_;
    c.stride = lanes_;
    c.quota = std::min<std::uint64_t>(kBurst, max_steps_ - steps_[lane]);
    c.len = run_.count(lane);
    c.steps = steps_[lane];
    c.list = run_.lane_list(lane);
    c.pc = pc_.data() + c.pb;
    c.cnt = cnt_.data() + c.pb;
    c.ops = ops_.data() + c.pb;
    c.val = val_.data() + c.pb;
    c.pref = pref_.data() + c.pb;
    c.rbase = base_.data() + c.pb;
    c.xs = prng_.data() + c.pb;
    c.ss = &sched_[lane];
    c.sbuf = c.ss->buf.data();
    c.spos = c.ss->pos;
    c.regs0 = regs_.row(0) + lane;
    if constexpr (!Stacked) c.rv = *c.regs0;
  }

  template <bool Stacked>
  void save_ctx(lane_ctx& c) {
    c.ss->pos = c.spos;
    steps_[c.lane] = c.steps;
    if constexpr (!Stacked) *c.regs0 = c.rv;
  }

  // The lockstep loop: lanes run in interleaved groups of kGroup, each
  // lane taking one step per pass.  A single lane's step is one long
  // dependency chain (scheduler draw -> runnable slot -> pid state ->
  // rng); interleaving independent lanes lets those chains overlap in
  // the pipeline.  Lanes that quiesce or exhaust their budget drop out
  // of their group and are swap-compacted from the active set (the
  // divergence mask); lanes swapped in from the tail mid-sweep simply
  // wait for the next sweep.  Lanes are independent, so none of this
  // ordering is observable.
  template <bool Stacked, bool Detect>
  void interpret() {
    constexpr std::size_t kGroup = 4;
    active_.init(lanes_);
    coin_table_view tv = table_view();
    static_assert(kGroup == 4);
    while (active_.size() > 0) {
      // Divergence-mask occupancy, one sample per sweep over the active
      // set: how full the lockstep lanes still are.  Sweeps are an
      // engine-layout metric (they follow the chunking), not a
      // deterministic per-trial quantity.
      ++sweeps_;
      occupancy_.record(active_.size());
      for (std::size_t pos = 0; pos < active_.size(); pos += kGroup) {
        const std::size_t g =
            std::min<std::size_t>(kGroup, active_.size() - pos);
        // Named locals (not an indexed array) so the hot cursors can be
        // promoted to registers; slots >= g keep quota = 0 and are never
        // stepped.
        lane_ctx c0, c1, c2, c3;
        if (g > 0) load_ctx<Stacked>(c0, active_[pos]);
        if (g > 1) load_ctx<Stacked>(c1, active_[pos + 1]);
        if (g > 2) load_ctx<Stacked>(c2, active_[pos + 2]);
        if (g > 3) load_ctx<Stacked>(c3, active_[pos + 3]);
        // A step that enters a new part can grow the register matrix and
        // move its storage; the transitioning lane reloads its own
        // pointers inside step_one, but its groupmates must be refreshed
        // here before they step again.  (Family A never grows regs_.)
        const word* rbase0 = regs_.row(0);
        const auto resync = [&]() {
          if constexpr (Stacked) {
            if (regs_.row(0) != rbase0) [[unlikely]] {
              rbase0 = regs_.row(0);
              c0.regs0 = regs_.row(0) + c0.lane;
              c1.regs0 = regs_.row(0) + c1.lane;
              c2.regs0 = regs_.row(0) + c2.lane;
              c3.regs0 = regs_.row(0) + c3.lane;
            }
          }
        };
        bool live = true;
        while (live) {
          live = false;
          if (c0.quota > 0 && c0.len > 0) {
            step_one<Stacked, Detect>(c0, tv);
            live = true;
            resync();
          }
          if (c1.quota > 0 && c1.len > 0) {
            step_one<Stacked, Detect>(c1, tv);
            live = true;
            resync();
          }
          if (c2.quota > 0 && c2.len > 0) {
            step_one<Stacked, Detect>(c2, tv);
            live = true;
            resync();
          }
          if (c3.quota > 0 && c3.len > 0) {
            step_one<Stacked, Detect>(c3, tv);
            live = true;
            resync();
          }
        }
        if (g > 0) save_ctx<Stacked>(c0);
        if (g > 1) save_ctx<Stacked>(c1);
        if (g > 2) save_ctx<Stacked>(c2);
        if (g > 3) save_ctx<Stacked>(c3);
        // Deactivate finished lanes, highest group slot first so the
        // lower positions stay valid across the swap-removes.
        const lane_ctx* slots[kGroup] = {&c0, &c1, &c2, &c3};
        for (std::size_t j = g; j-- > 0;) {
          const std::size_t lane = slots[j]->lane;
          if (run_.count(lane) == 0) {
            // Fault-free: quiescent means every process halted.  Checked
            // before the budget, as sim_world::run reports all_halted
            // even when quiescence lands on the last budgeted step.
            status_[lane] = sim::run_status::all_halted;
            active_.deactivate(pos + j);
            if (retired_)
              retired_->fetch_add(1, std::memory_order_relaxed);
          } else if (steps_[lane] >= max_steps_) {
            status_[lane] = sim::run_status::step_limit;
            active_.deactivate(pos + j);
            if (retired_)
              retired_->fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
  }

  // One executed operation of one lane.
  //
  // The conciliator step — the vast majority of all steps — is written
  // branch-free: the scheduler picks pids at random, so the pc state of
  // the scheduled process is data-random and any branch on it would
  // mispredict nearly every step.  Instead the step always loads the
  // register, always advances a local copy of the process's rng, and
  // selects the observable effects (register store, counter bump, rng
  // commit, next pc) by mask/select, so that exactly the scalar engine's
  // draws are consumed.  The remaining branches are genuinely rare or
  // phase-coherent: halts, detecting-write returns, buffer refills,
  // Lemire rejections, and table growth.
  template <bool Stacked, bool Detect>
  [[gnu::always_inline]] inline void step_one(lane_ctx& c,
                                              coin_table_view& tv) {
    // One scheduler draw per executed step (rng_block::below's Lemire
    // mapping) over the lane's current runnable ordering.
    std::uint64_t x = sched_next(c);
    unsigned __int128 m = static_cast<unsigned __int128>(x) * c.len;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < c.len) [[unlikely]] {
      const std::uint64_t threshold = (0 - c.len) % c.len;
      while (lo < threshold) {
        x = sched_next(c);
        m = static_cast<unsigned __int128>(x) * c.len;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    const std::uint32_t pid = c.list[static_cast<std::uint64_t>(m >> 64)];
    ++c.ops[pid];
    ++c.steps;
    --c.quota;

    const std::uint32_t state = c.pc[pid];
    [[maybe_unused]] word* cell = nullptr;
    word u;
    if constexpr (!Stacked) {
      // &rv is never taken: the cached cell value lives in a register,
      // not a stack slot the store-forwarder has to chase.
      u = c.rv;
    } else {
      const std::size_t i = c.pb + pid;
      if (state > kPcConcWriteHit) {
        // Ratifier phase (the minority of steps): a small switch.
        const std::uint32_t b = c.rbase[pid];
        switch (state) {
          case kPcRatAnnounce:
            c.regs0[(b + c.val[pid]) * c.stride] = 1;
            c.pc[pid] = kPcRatReadProp;
            break;
          case kPcRatReadProp: {
            const word w = c.regs0[(b + 2) * c.stride];
            if (w != kBot) {
              c.pref[pid] = w;
              c.pc[pid] = kPcRatReadQuorum;
            } else {
              c.pref[pid] = c.val[pid];
              c.pc[pid] = kPcRatWriteProp;
            }
            break;
          }
          case kPcRatWriteProp:
            c.regs0[(b + 2) * c.stride] = c.pref[pid];
            c.pc[pid] = kPcRatReadQuorum;
            break;
          default: {  // kPcRatReadQuorum
            const word w = c.regs0[(b + (1 - c.pref[pid])) * c.stride];
            part_return<Stacked>(c.lane, pid, i, w == 0, c.pref[pid]);
            c.regs0 = regs_.row(0) + c.lane;
            c.len = run_.count(c.lane);
            break;
          }
        }
        return;
      }
      cell = c.regs0 + c.rbase[pid] * c.stride;
      u = *cell;
    }

    // Conciliator step, branch-free modulo the rare exits.
    const bool is_read = state == kPcConcRead;
    if (is_read && u != kBot) [[unlikely]] {
      // First-mover observed: the conciliator returns (0, u).
      part_return<Stacked>(c.lane, pid, c.pb + pid, false, u);
      if constexpr (Stacked) c.regs0 = regs_.row(0) + c.lane;
      c.len = run_.count(c.lane);
      return;
    }
    const bool hit = state == kPcConcWriteHit;
    // The pending write, applied iff hit (select, not branch).
    if constexpr (!Stacked)
      c.rv = hit ? c.val[pid] : c.rv;
    else
      *cell = hit ? c.val[pid] : u;
    if constexpr (Detect) {
      if (hit) {
        // Detecting write: the result slot reports the pre-drawn coin
        // (fault-free, coin == applied) and the invocation returns its
        // own value.
        part_return<Stacked>(c.lane, pid, c.pb + pid, false, c.val[pid]);
        if constexpr (Stacked) c.regs0 = regs_.row(0) + c.lane;
        c.len = run_.count(c.lane);
        return;
      }
    }

    // Posting side of the read's resume: impatience advance plus coin
    // draw — executed speculatively, committed iff this step was a read
    // (write steps post the next read, which draws nothing).
    const std::uint32_t k = c.cnt[pid];
    c.cnt[pid] = k + (is_read & (k != UINT32_MAX));  // saturating, cf. table
    std::uint32_t ti = k < tv.size ? k : tv.size - 1;
    if (is_read && k >= tv.size && !tv.fixed) [[unlikely]] {
      ti = table_overflow(k);
      tv = table_view();
    }
    const coin_entry e = tv.tbl[ti];
    const bool certain = e.num == e.den;
    const xo_state o = c.xs[pid];
    xo_state g = o;
    std::uint64_t r = xo_next(g);
    unsigned __int128 cm = static_cast<unsigned __int128>(r) * e.den;
    auto clo = static_cast<std::uint64_t>(cm);
    bool coin_draw = static_cast<std::uint64_t>(cm >> 64) < e.num;
    const bool consume = is_read & !certain;
    if (clo < e.den) [[unlikely]] {
      // rng::below's rejection loop; only a consumed draw may advance
      // the stream further.
      if (consume) {
        const std::uint64_t threshold = (0 - e.den) % e.den;
        while (clo < threshold) {
          r = xo_next(g);
          cm = static_cast<unsigned __int128>(r) * e.den;
          clo = static_cast<std::uint64_t>(cm);
        }
        coin_draw = static_cast<std::uint64_t>(cm >> 64) < e.num;
      }
    }
    xo_state* const gs = c.xs + pid;
    gs->s0 = consume ? g.s0 : o.s0;
    gs->s1 = consume ? g.s1 : o.s1;
    gs->s2 = consume ? g.s2 : o.s2;
    gs->s3 = consume ? g.s3 : o.s3;
    const auto coin = static_cast<std::uint32_t>(certain | coin_draw);
    c.pc[pid] = is_read ? kPcConcWriteMiss + coin : kPcConcRead;
  }

  // rng_block::next over the lane's scheduler stream: refill is 64
  // source draws in order, consumed in order.
  [[gnu::always_inline]] inline std::uint64_t sched_next(lane_ctx& c) {
    if (c.spos == 64) [[unlikely]] {
      rng s = c.ss->src;
      for (auto& w : c.ss->buf) w = s.next();
      c.ss->src = s;
      c.spos = 0;
    }
    return c.sbuf[c.spos++];
  }

  void finalize() {
    std::uint64_t total_steps = 0;
    for (std::size_t lane = 0; lane < lanes_; ++lane)
      total_steps += steps_[lane];
    // Batched trials bypass run_object_trial, so their share of the
    // fleet counters is recorded here (the experiment worker adds only
    // the per-record measurement histograms + cell accounting, for both
    // engines uniformly — no double counting).
    if (obs::telemetry_sink* ts = obs::tl_sink()) {
      ts->add(obs::tcounter::trials_completed, lanes_);
      ts->add(obs::tcounter::batch_trials, lanes_);
      ts->add(obs::tcounter::batch_lanes_retired, lanes_);
      ts->add(obs::tcounter::batch_sweeps, sweeps_);
      ts->add(obs::tcounter::steps, total_steps);
      ts->add(obs::tcounter::total_ops, total_steps);
      for (std::size_t lane = 0; lane < lanes_; ++lane)
        ts->record(obs::thist::trial_steps, steps_[lane]);
      ts->merge(obs::thist::batch_occupancy, occupancy_);
    }
    std::vector<value_t> sorted_inputs(n_);
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      trial_record& rec = out_[lane];
      rec.result.status = status_[lane];
      rec.result.total_ops = steps_[lane];
      rec.result.steps = steps_[lane];
      rec.result.registers = alloc_count_[lane];
      std::uint64_t max_ops = 0;
      for (std::uint32_t pid = 0; pid < n_; ++pid) {
        const std::size_t i = at(lane, pid);
        max_ops = std::max(max_ops, ops_[i]);
        if (halted_[i]) {
          rec.result.outputs.push_back(decode_decided(out_word_[i]));
          rec.result.halted_pids.push_back(pid);
        }
      }
      rec.result.max_individual_ops = max_ops;
      // The interpreter loop's time, attributed per trial by its share of
      // executed steps (floored to 1ns for a trial that stepped at all,
      // so its step-rate sample exists like the scalar engine's).
      if (steps_[lane] > 0 && total_steps > 0) {
        const auto share = static_cast<std::uint64_t>(
            static_cast<unsigned __int128>(loop_ns_) * steps_[lane] /
            total_steps);
        rec.perf.ns[static_cast<std::size_t>(perf_phase::step)] =
            std::max<std::uint64_t>(1, share);
      }
      rec.wall_ms =
          static_cast<double>(
              rec.perf.ns[static_cast<std::size_t>(perf_phase::schedule)] +
              rec.perf.ns[static_cast<std::size_t>(perf_phase::step)]) /
          1e6;
      {
        phase_timer audit_timer(&rec.perf, perf_phase::audit);
        const std::vector<decided> escaped = rec.result.all_outputs();
        std::copy(inputs_.begin() + static_cast<std::ptrdiff_t>(lane * n_),
                  inputs_.begin() +
                      static_cast<std::ptrdiff_t>((lane + 1) * n_),
                  sorted_inputs.begin());
        std::sort(sorted_inputs.begin(), sorted_inputs.end());
        rec.valid = check_validity_sorted(escaped, sorted_inputs);
        rec.agreement = check_agreement(escaped);
        rec.coherent = check_coherence(escaped);
        rec.decided_all = all_decided(escaped);
      }
    }
  }

  const trial_grid& cell_;
  batch_program prog_;
  const std::uint64_t* idx_;
  trial_record* out_;
  std::size_t lanes_;
  std::uint32_t n_;
  std::uint64_t max_steps_;

  // Shared impatience table (one per batch: same schedule, same n for
  // every lane and process).
  impatience_schedule::stepper table_stepper_;
  std::vector<coin_entry> table_;
  bool constant_tail_ = false;

  // Per-lane state.
  std::vector<sched_stream> sched_;
  std::vector<std::uint64_t> steps_;
  std::vector<sim::run_status> status_;
  std::vector<std::uint32_t> parts_built_;
  std::vector<std::uint32_t> alloc_count_;
  std::vector<value_t> inputs_;  // lane-major, n_ per lane

  // Per-(lane, process) state, lane-major.
  std::vector<xo_state> prng_;
  std::vector<std::uint64_t> ops_;
  std::vector<std::uint32_t> pc_;
  std::vector<std::uint32_t> cnt_;  // impatience attempt counter
  std::vector<word> val_;
  std::vector<word> pref_;
  std::vector<word> out_word_;
  std::vector<std::uint8_t> halted_;
  std::vector<std::uint32_t> part_;
  std::vector<std::uint32_t> base_;

  sim::lane_matrix<word> regs_;  // register-major across lanes
  sim::soa_runnable run_;
  sim::lane_mask active_;
  std::vector<std::uint32_t> part_base_;  // shared part -> register base

  std::atomic<std::size_t>* retired_ = nullptr;  // live progress, optional
  std::uint64_t sweeps_ = 0;
  obs::log_histogram occupancy_;
  std::uint64_t loop_ns_ = 0;
};

}  // namespace

void run_batch_trials(const trial_grid& cell, const batch_program& prog,
                      const std::uint64_t* trial_indices, trial_record* out,
                      std::size_t count, std::atomic<std::size_t>* retired) {
  if (count == 0) return;
  MODCON_CHECK_MSG(batch_supported(cell),
                   "run_batch_trials on an unsupported cell '" << cell.label
                                                              << "'");
  batch_interpreter interp(cell, prog, trial_indices, out, count, retired);
  interp.run();
}

}  // namespace modcon::analysis
