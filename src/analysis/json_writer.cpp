#include "analysis/json_writer.h"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace modcon::analysis {

namespace {

[[noreturn]] void fail(const std::string& what) { throw json_error(what); }

// Shortest representation that round-trips a double exactly; integral
// values gain a ".0" suffix so they re-parse as doubles.
std::string format_double(double v) {
  if (!std::isfinite(v)) fail("json: NaN/Inf not representable");
  std::array<char, 32> buf;
  auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc{}) fail("json: double format failure");
  std::string s(buf.data(), end);
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  json run() {
    json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("json parse: trailing characters");
    return v;
  }

 private:
  char peek() {
    if (pos_ >= text_.size()) fail("json parse: unexpected end of input");
    return text_[pos_];
  }
  char get() {
    char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (get() != c)
      fail(std::string("json parse: expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }
  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  json value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return json(string());
      case 't':
        if (consume_literal("true")) return json(true);
        fail("json parse: bad literal");
      case 'f':
        if (consume_literal("false")) return json(false);
        fail("json parse: bad literal");
      case 'n':
        if (consume_literal("null")) return json();
        fail("json parse: bad literal");
      default: return number();
    }
  }

  json object() {
    expect('{');
    json obj = json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj[key] = value();
      skip_ws();
      char c = get();
      if (c == '}') return obj;
      if (c != ',') fail("json parse: expected ',' or '}'");
    }
  }

  json array() {
    expect('[');
    json arr = json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(value());
      skip_ws();
      char c = get();
      if (c == ']') return arr;
      if (c != ',') fail("json parse: expected ',' or ']'");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      char c = get();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      char e = get();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = get();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("json parse: bad \\u escape");
          }
          // Only the control-character escapes we emit; anything else in
          // the BMP encodes as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("json parse: bad escape");
      }
    }
  }

  json number() {
    std::size_t start = pos_;
    bool negative = false;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("json parse: bad number");
    if (is_double) {
      double d = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
      if (ec != std::errc{} || p != tok.data() + tok.size())
        fail("json parse: bad number");
      return json(d);
    }
    if (negative) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec != std::errc{} || p != tok.data() + tok.size())
        fail("json parse: bad number");
      return json(v);
    }
    std::uint64_t v = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc{} || p != tok.data() + tok.size())
      fail("json parse: bad number");
    return json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json::as_bool() const {
  if (kind_ != kind::bool_t) fail("json: not a bool");
  return bool_;
}

std::int64_t json::as_int() const {
  if (kind_ == kind::int_t) return int_;
  if (kind_ == kind::uint_t) return static_cast<std::int64_t>(uint_);
  fail("json: not an integer");
}

std::uint64_t json::as_uint() const {
  if (kind_ == kind::uint_t) return uint_;
  if (kind_ == kind::int_t && int_ >= 0)
    return static_cast<std::uint64_t>(int_);
  fail("json: not an unsigned integer");
}

double json::as_double() const {
  switch (kind_) {
    case kind::double_t: return double_;
    case kind::int_t: return static_cast<double>(int_);
    case kind::uint_t: return static_cast<double>(uint_);
    default: fail("json: not a number");
  }
}

const std::string& json::as_string() const {
  if (kind_ != kind::string_t) fail("json: not a string");
  return string_;
}

void json::push_back(json v) {
  if (kind_ == kind::null_t) kind_ = kind::array_t;
  if (kind_ != kind::array_t) fail("json: push_back on non-array");
  array_.push_back(std::move(v));
}

std::size_t json::size() const {
  if (kind_ == kind::array_t) return array_.size();
  if (kind_ == kind::object_t) return object_.size();
  fail("json: size() on non-container");
}

const json& json::at(std::size_t i) const {
  if (kind_ != kind::array_t) fail("json: at() on non-array");
  if (i >= array_.size()) fail("json: index out of range");
  return array_[i];
}

json& json::operator[](std::string_view key) {
  if (kind_ == kind::null_t) kind_ = kind::object_t;
  if (kind_ != kind::object_t) fail("json: operator[] on non-object");
  for (auto& [k, v] : object_)
    if (k == key) return v;
  object_.emplace_back(std::string(key), json());
  return object_.back().second;
}

const json* json::find(std::string_view key) const {
  if (kind_ != kind::object_t) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const std::vector<std::pair<std::string, json>>& json::members() const {
  if (kind_ != kind::object_t) fail("json: members() on non-object");
  return object_;
}

void json::dump_to(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case kind::null_t: out += "null"; break;
    case kind::bool_t: out += bool_ ? "true" : "false"; break;
    case kind::int_t: out += std::to_string(int_); break;
    case kind::uint_t: out += std::to_string(uint_); break;
    case kind::double_t:
      // JSON has no NaN/Inf tokens; degenerate statistics (e.g. a mean
      // over zero completed trials) serialize as null rather than
      // producing an unparseable document.
      if (!std::isfinite(double_)) {
        out += "null";
        break;
      }
      out += format_double(double_);
      break;
    case kind::string_t: append_escaped(out, string_); break;
    case kind::array_t: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case kind::object_t: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

json json::parse(std::string_view text) { return parser(text).run(); }

bool json::operator==(const json& other) const {
  if (is_number() && other.is_number()) {
    // int 3 == uint 3 == double 3.0; exact doubles round-trip, so
    // comparing through double is safe for our magnitudes except huge
    // integers, which compare kind-exactly first.
    if (kind_ == other.kind_) {
      switch (kind_) {
        case kind::int_t: return int_ == other.int_;
        case kind::uint_t: return uint_ == other.uint_;
        default: return double_ == other.double_;
      }
    }
    return as_double() == other.as_double();
  }
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case kind::null_t: return true;
    case kind::bool_t: return bool_ == other.bool_;
    case kind::string_t: return string_ == other.string_;
    case kind::array_t: return array_ == other.array_;
    case kind::object_t: return object_ == other.object_;
    default: return false;  // unreachable
  }
}

}  // namespace modcon::analysis
