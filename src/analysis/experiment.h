// Batch trial engine: fans a grid of (builder × adversary × input-pattern
// × seed-range) cells out over a thread pool and aggregates per-cell
// summary statistics.
//
// Every experiment in the paper is "aggregate many trials over seeds" —
// expected-cost distributions over adversary strategies (Theorem 7's 6n
// envelope, the Attiya–Censor tail, ...).  This engine makes that the
// first-class unit of measurement:
//
//   * deterministic — trial t of a cell always runs with seed
//     splitmix64(base_seed ^ t), and records are aggregated in trial
//     order after all workers finish, so `threads = 1` and `threads = N`
//     produce byte-identical per-trial results and summaries;
//   * parallel — trials are independent executions over private worlds;
//     workers pull (cell, trial) tasks from a shared atomic cursor;
//   * machine-readable — summaries serialize to versioned JSON
//     (analysis/json_writer.h) consumable as BENCH_*.json artifacts.
//
// Thread-safety contract for cell definitions: `build`, `make_adversary`,
// `faults_for`, and every probe may be called concurrently from worker
// threads and must not share mutable state (capture by value, allocate
// per call).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/batch_engine.h"
#include "analysis/json_writer.h"
#include "analysis/runner.h"
#include "util/rng.h"
#include "util/stats.h"

namespace modcon::analysis {

// JSON schema version stamped into every serialized summary/report.
// v2 added fault-injection accounting: counts.timed_out,
// counts.restarted_processes, counts.restarts, counts.stale_reads,
// counts.omitted_writes, and config.faults.  v3 added the per-cell
// property-audit block: config.audit plus an optional top-level "audit"
// object with per-status counts and example violations (see
// EXPERIMENTS.md).  Minor 1 (additive, v3.1) added the per-cell "perf"
// block: per-phase wall-clock totals plus the per-trial steps/sec
// distribution (analysis/perf.h) — measurement fields, excluded from
// the determinism contract.  Minor 2 (additive, v3.2) added the per-cell
// "obs" block: protocol counters, register-contention statistics, coin
// agreement, and the stages-to-decision / spans-per-trial distributions,
// emitted only when the cell ran with observation on (obs/metrics.h).
// v4 added the per-cell "multi" block for multi-shot slot-log cells
// (analysis/multi.h): proposal/decision/fast-path counts, reclamation
// and register-pool accounting, and the per-proposal ops distribution —
// deterministic fields only, emitted only when multi.trials > 0, so
// one-shot cells keep their exact v3 shape.  v5 added the per-cell
// "recovery" block (additive): crash-recovery and register-semantics
// accounting — recovered processes, volatile wipes, overlap reads, rt
// read-races, the cell's semantics echo, and the recoveries-to-decision
// distribution — emitted only when recovery.trials > 0, so cells with
// neither recovery faults nor weakened semantics keep their v4 shape.
inline constexpr int kExperimentSchemaVersion = 5;
inline constexpr int kExperimentSchemaMinor = 0;
inline constexpr const char* kExperimentSchemaName = "modcon-bench";

// Deterministic per-trial seed: SplitMix64 of base_seed ^ trial_index.
// Identical for serial and parallel runs by construction.
inline std::uint64_t derive_trial_seed(std::uint64_t base_seed,
                                       std::uint64_t trial_index) {
  std::uint64_t state = base_seed ^ trial_index;
  return splitmix64(state);
}

using adversary_factory = std::function<std::unique_ptr<sim::adversary>()>;

// A named per-trial measurement evaluated while the trial's world and
// object are still alive (register write counts, protocol-internal
// counters, ...).  Aggregated into a distribution over completed trials.
struct probe {
  std::string name;
  std::function<double(const sim::sim_world&,
                       const deciding_object<sim::sim_env>&)>
      eval;
};

// Which trials of a cell run under the property auditor
// (check/auditor.h).  `off` costs nothing; `all` traces and replays every
// trial; `sample` audits every sample_every-th trial index — the same
// trials regardless of thread count, so summaries stay deterministic.
enum class audit_mode : std::uint8_t { off, sample, all };

const char* to_string(audit_mode m);

struct audit_plan {
  audit_mode mode = audit_mode::off;
  std::uint64_t sample_every = 10;  // mode sample: audit index % this == 0
  bool ratifier = false;            // arm the acceptance check
  // The object under audit is a deciding object (§3), so validity,
  // coherence, and composition apply.  A cell measuring a bare shared
  // coin sets this false — a coin legitimately outputs a value nobody
  // proposed — and keeps only the legality/serializability checks.
  bool deciding = true;
  std::uint64_t max_trace_events = 0;  // 0 = backend default cap

  bool enabled_for(std::uint64_t trial_index) const {
    switch (mode) {
      case audit_mode::off: return false;
      case audit_mode::sample:
        return sample_every == 0 || trial_index % sample_every == 0;
      case audit_mode::all: return true;
    }
    return false;
  }
};

// Compact echo for the JSON config block: "off", "all", "sample(1/10)".
std::string to_string(const audit_plan& plan);

// One cell of an experiment grid: a builder, a scheduler family, an input
// workload, and a seed range.  Designated-initializer friendly; only
// `build` is mandatory (the default adversary is the neutral random
// scheduler).
struct trial_grid {
  std::string label;
  sim_object_builder build;
  adversary_factory make_adversary;  // null = sim::random_oblivious
  input_pattern pattern = input_pattern::half_half;
  std::size_t n = 2;
  std::uint64_t m = 2;
  std::size_t trials = 100;
  std::uint64_t base_seed = 1;
  run_limits limits;
  // Static fault plan applied to every trial; `faults_for`, when set,
  // derives a per-trial plan instead (E10's seed-dependent crashes).
  fault_plan faults;
  std::function<fault_plan(std::uint64_t trial_index, std::uint64_t seed)>
      faults_for;
  audit_plan audit;
  std::vector<probe> probes;
  // Retain per-trial records in the summary (needed for custom joint
  // statistics and the determinism tests; costs memory).
  bool keep_records = false;
  // Record per-trial observability metrics (obs/metrics.h) and aggregate
  // them into summary_stats::obs / the schema v3.2 "obs" JSON block.
  // Span trees are dropped after each trial (only their counts survive);
  // use run_traced_trial for a single trial with the full tree.
  bool observe = false;
  // Claim that this cell's builder constructs exactly the object graph of
  // one of the batch interpreter's programs (analysis/batch_engine.h).
  // Only consulted when experiment_options::engine asks for batching and
  // batch_supported() agrees; the scalar engine ignores it.
  std::optional<batch_program> batch_hint;
};

// Everything measured about one trial.  Fields other than wall_ms and
// perf are deterministic functions of (cell definition, trial index).
struct trial_record {
  std::uint64_t trial_index = 0;
  std::uint64_t seed = 0;
  trial_result result;
  // The §3 predicates over this trial's escaped outputs, computed once
  // while the inputs are at hand (the per-record methods on trial_result
  // recompute them from scratch; the engine must not pay that per trial).
  bool valid = false;        // check_validity against this trial's inputs
  bool agreement = false;    // check_agreement
  bool coherent = false;     // check_coherence
  bool decided_all = false;  // all_decided
  std::vector<double> probes;  // parallel to trial_grid::probes
  double wall_ms = 0.0;        // measurement only; excluded from determinism
  perf_counters perf;          // measurement only; excluded from determinism
};

// Distribution summary over completed trials: the moments and order
// statistics every experiment table reports.
struct dist_summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  static dist_summary of(std::vector<double> xs);
};

// Aggregated result of one grid cell.
struct summary_stats {
  std::string label;
  // Cell configuration echo (for the JSON artifact).
  std::size_t n = 0;
  std::uint64_t m = 0;
  input_pattern pattern = input_pattern::half_half;
  std::uint64_t base_seed = 0;

  std::size_t trials = 0;
  // Terminal: halted or crashed — not step_limit, not timed_out.
  std::size_t completed = 0;
  std::size_t agreed = 0;       // completed && all outputs equal
  std::size_t coherent = 0;     // completed && coherence holds
  std::size_t valid = 0;        // completed && validity holds
  std::size_t all_decided = 0;  // completed && every output has decide=1
  std::size_t timed_out = 0;    // rt watchdog aborts (hung trials)
  std::size_t crashed_processes = 0;  // sum of |crashed_pids| over trials
  // Fault-injection accounting, summed over all trials.
  std::size_t restarted_processes = 0;  // sum of |restarted_pids|
  std::uint64_t restarts = 0;
  std::uint64_t stale_reads = 0;
  std::uint64_t omitted_writes = 0;
  // Echo of the cell's fault plan ("none", a to_string(fault_plan), or
  // "per-trial" when faults_for derives plans per trial).
  std::string fault_profile;

  // Property-audit accounting (schema v3).  Counts cover every audited
  // trial, including ones excluded from the cost distributions
  // (step-limit / timed-out runs still get their traces judged).
  std::string audit_profile;  // to_string(audit_plan) echo
  std::size_t audited = 0;
  std::size_t audit_clean = 0;
  std::size_t audit_violated = 0;
  std::size_t audit_inconclusive = 0;
  std::uint64_t audit_events_checked = 0;
  std::uint64_t audit_stale_reads_matched = 0;
  // First few violations across the cell, in trial order, each pinned to
  // the seed that reproduces it.
  struct audit_example {
    std::uint64_t trial_index;
    std::uint64_t seed;
    check::violation v;
  };
  std::vector<audit_example> audit_examples;

  bool audit_ok() const { return audit_violated == 0; }

  dist_summary total_ops;
  dist_summary max_individual_ops;
  dist_summary steps;
  std::vector<std::pair<std::string, dist_summary>> probes;

  // Observability aggregation (schema v3.2 "obs" block), filled only for
  // cells run with trial_grid::observe; obs.trials == 0 means absent.
  struct obs_summary {
    std::uint64_t trials = 0;     // trials that carried an obs record
    std::uint64_t truncated = 0;  // trials that hit the span cap
    std::array<std::uint64_t, obs::kCounterCount> counters{};
    std::uint64_t reg_reads = 0;
    std::uint64_t reg_writes_applied = 0;
    std::uint64_t reg_writes_missed = 0;
    std::uint64_t lost_overwrites = 0;
    std::uint64_t conciliator_invocations = 0;
    std::uint64_t conciliator_agreed = 0;
    dist_summary stages_to_decision;  // per-trial max over processes
    dist_summary spans_per_trial;
  } obs;

  // Multi-shot slot-log aggregation (schema v4 "multi" block), filled
  // only by the multi-shot engine (analysis/multi.h); multi.trials == 0
  // means absent.  Every field is deterministic for sim cells.
  struct multi_summary {
    std::uint64_t trials = 0;  // trials that carried multi accounting
    std::uint64_t shards = 0;
    std::uint64_t slots_per_shard = 0;
    std::uint64_t proposals = 0;       // propose() calls that returned
    std::uint64_t decisions = 0;       // slow path: ran the slot object
    std::uint64_t fast_path_hits = 0;  // answered by the pin register
    std::uint64_t slots_reclaimed = 0;
    std::uint64_t extents_created = 0;
    std::uint64_t extents_reused = 0;
    std::uint64_t pool_words_served = 0;
    std::uint64_t pool_parent_words = 0;
    std::size_t slots_agreed = 0;  // trials with all slot decisions equal
    std::size_t slots_valid = 0;   // trials with all decisions proposed
    dist_summary slot_ops;         // per-proposal individual ops
  } multi;

  // Crash-recovery / register-semantics aggregation (schema v5
  // "recovery" block), filled for every trial of a cell that injects
  // recovery faults or runs under non-atomic semantics (and for any
  // trial that recovered regardless); recovery.trials == 0 means absent,
  // so cells with neither keep their exact v4 shape.
  struct recovery_summary {
    std::uint64_t trials = 0;  // trials that carried recovery accounting
    std::size_t recovered_processes = 0;  // sum of |recovered_pids|
    std::uint64_t recoveries = 0;         // crash-recover events
    std::uint64_t volatile_wipes = 0;     // volatile cells reinitialized
    std::uint64_t overlap_reads = 0;      // regular/safe reads w/ overlap
    std::uint64_t races = 0;              // rt read-racing events
    std::string semantics;                // cell semantics echo
    // Per completed trial: how many crash-recover events it absorbed
    // before every survivor decided (E18's resilience metric).
    dist_summary recoveries_to_decision;
  } recovery;

  double wall_ms = 0.0;  // summed trial wall time (not deterministic)
  // Per-phase wall-clock totals and the per-trial step-rate distribution
  // (steps / step-phase seconds, completed trials only).  Measurements:
  // excluded from the determinism contract; serialized into the "perf"
  // block (schema v3.1) that scripts/compare_bench.py gates on.
  perf_counters perf;
  dist_summary steps_per_sec;

  // Retained iff trial_grid::keep_records.
  std::vector<trial_record> records;

  double completion_rate() const {
    return trials ? static_cast<double>(completed) / trials : 0.0;
  }
  double agreement_rate() const {
    return trials ? static_cast<double>(agreed) / trials : 0.0;
  }
  double validity_rate() const {
    return trials ? static_cast<double>(valid) / trials : 0.0;
  }
  double decision_rate() const {
    return trials ? static_cast<double>(all_decided) / trials : 0.0;
  }
  proportion_ci agreement_ci() const {
    return wilson_interval(agreed, trials);
  }
  const dist_summary* find_probe(const std::string& name) const;
};

struct experiment_options {
  // 0 = one worker per hardware thread.  Results are identical for every
  // value; only wall-clock changes.
  std::size_t threads = 0;
  // Live progress on stderr while the grid runs: completed/total trials,
  // trials/sec, ETA, fault and audit-violation counts.  Reporting only —
  // results are unaffected.
  bool progress = false;
  // Engine selection (analysis/batch_engine.h).  The library default
  // stays `scalar` so existing callers — including the determinism
  // goldens — are untouched; batch/auto_select route cells that satisfy
  // batch_supported() through the lockstep interpreter (bit-identical by
  // contract) and fall back to scalar for everything else.
  engine_kind engine = engine_kind::scalar;
  // Lockstep batch width for the batch engine: each worker task runs up
  // to this many trials of one cell side by side.  Any value ≥ 1 gives
  // identical results; only throughput changes.
  std::size_t batch = 64;
  // Shard selection for multi-process grid runs (scripts/grid_runner.py):
  // this invocation runs the trials whose index ≡ shard_index (mod
  // shard_count) of every cell.  The default 0/1 runs everything.
  // Records keep their true trial indices, so a deterministic merge
  // (analysis/shard.h) of all shards reproduces the single-process
  // summary byte for byte.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
};

// The slice of a trial_grid cell that reduction and serialization need —
// everything except the builder and the callbacks, so a merge tool can
// reconstitute summaries from serialized shard records without the cell
// definition in hand (analysis/shard.h).
struct cell_meta {
  std::string label;
  std::size_t n = 0;
  std::uint64_t m = 0;
  input_pattern pattern = input_pattern::half_half;
  std::uint64_t base_seed = 0;
  std::string fault_profile;
  std::string audit_profile;
  // Cell-level opt-in to the recovery block (recovery faults or weakened
  // semantics in the static plan).
  bool recovery_cell = false;
  std::string semantics;
  std::vector<std::string> probe_names;
  bool keep_records = false;
};

cell_meta meta_of(const trial_grid& cell);

// Serial, trial-ordered reduction of one cell's records — the shared
// aggregation path under run_experiment_grid and the shard merge.
// `time_serialize` self-times the reduction into perf.serialize_ms; the
// merge passes false so a merged artifact's perf block is exactly the
// sum of its shards' measurements.
summary_stats reduce_records(const cell_meta& meta,
                             std::vector<trial_record> records,
                             bool time_serialize = true);

// Zeroes every timing measurement in a summary and its retained records
// (wall_ms, the perf counters, the steps/sec distribution), leaving only
// the deterministic fields.  Byte-for-byte comparisons across thread
// counts or engine versions pin timings with this before serializing.
void clear_timing_measurements(summary_stats& s);

// Runs one cell.
summary_stats run_experiment(const trial_grid& cell,
                             const experiment_options& opts = {});

// Runs a whole grid through one shared pool: all trials of all cells are
// scheduled together, so short cells do not serialize behind long ones.
std::vector<summary_stats> run_experiment_grid(
    const std::vector<trial_grid>& grid, const experiment_options& opts = {});

// Runs exactly one trial of `cell` with observation on and the span tree
// retained (record.result.obs carries the merged forest), for the
// Perfetto exporter (--trace-out) and the modcon-trace replay app.
trial_record run_traced_trial(const trial_grid& cell,
                              std::uint64_t trial_index);

// --- JSON serialization (schema "modcon-bench", version 2) -------------
// A dist_summary over zero samples serializes its moments and order
// statistics as null (JSON has no NaN/Inf).
json to_json(const dist_summary& d);
json to_json(const summary_stats& s, bool include_records = false);

// Root document for a BENCH_*.json artifact: schema header plus empty
// "experiments" and "tables" arrays for the caller to fill.
json make_report_skeleton(const std::string& bench_name);

}  // namespace modcon::analysis
