// Sharded grid artifacts and their deterministic merge.
//
// A sharded run (scripts/grid_runner.py) launches N bench processes, each
// with experiment_options{shard_index = i, shard_count = N}: shard i runs
// the trials of every cell whose index ≡ i (mod N) and serializes its
// summary *with* the per-trial records (shard_cell_to_json), so the
// merge can rebuild the cell from first principles instead of combining
// pre-aggregated statistics — summed counts are summed exactly, and
// percentiles are re-derived from the union of the serialized per-trial
// samples, never approximated from per-shard quantiles.
//
// merge_shard_reports reorders shards by index, concatenates each cell's
// records, sorts them by trial index (restoring the single-process record
// order), and re-runs the same reduce_records path the engine itself
// uses.  That construction — not a parallel implementation of it — is
// what makes an N-way merged artifact byte-identical to the
// single-process (--shard 0/1) artifact: both documents are
// shard_cell_to_json over the same record sequence.  CI diffs exactly
// that (with --deterministic pinning the timing fields to zero).
#pragma once

#include <vector>

#include "analysis/experiment.h"
#include "analysis/json_writer.h"

namespace modcon::analysis {

// Serializes one cell summary for a shard artifact: the regular
// to_json(s) document plus a "cell_meta" echo (enough to re-reduce
// without the cell definition in hand) and a "records" array carrying
// every deterministic trial_record field plus the timing measurements.
// Requires s.records to be retained (trial_grid::keep_records) and the
// cell to be shard-clean: no audit reports, obs records, or multi
// accounting (the bench harness only shards such cells).
json shard_cell_to_json(const summary_stats& s, const cell_meta& meta);

// Inverse halves of shard_cell_to_json, used by the merge (and by tests
// that want to inspect shard artifacts).
cell_meta cell_meta_from_json(const json& cell);
std::vector<trial_record> records_from_json(const json& cell);

// Merges N shard artifacts (any order) into the single-process document.
// Validates the headers (same schema/bench, shard counts equal to N,
// indices exactly 0..N-1) and that every sharded cell appears in every
// shard; throws json_error on any mismatch.  Cells without a "cell_meta"
// block (non-shardable cells, run whole on shard 0) are copied verbatim
// from shard 0.
json merge_shard_reports(const std::vector<json>& shards);

}  // namespace modcon::analysis
