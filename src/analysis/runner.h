// Trial driver: builds a world, instantiates one deciding object, runs
// every process through it under a chosen adversary, and reports outputs
// plus the paper's two cost measures.
//
// This is the workhorse of both the test suites and the experiment
// benches: a "trial" is one execution; experiments aggregate many trials
// over seeds (see analysis/experiment.h for the batch engine).
//
// The same trial vocabulary covers both backends: an `object_builder<Env>`
// constructs one deciding object from an address space, for any
// Environment — `sim::sim_env` trials run under an explicit adversary via
// run_object_trial, `rt::rt_env` trials run on real threads via
// run_rt_object_trial.  One builder definition (a template lambda or a
// templated factory) serves both.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analysis/metrics.h"
#include "core/deciding.h"
#include "rt/env.h"
#include "rt/runner.h"
#include "sim/adversary.h"
#include "sim/world.h"

namespace modcon::analysis {

// Constructs the (single, shared) deciding object for one trial.  Called
// once per trial with the trial's address space and process count; must
// be safe to call concurrently from the experiment engine's worker
// threads (capture only immutable state).
template <typename Env>
using object_builder =
    std::function<std::unique_ptr<deciding_object<Env>>(address_space& mem,
                                                        std::size_t n)>;

// Backend-specific aliases.  `sim_object_builder` predates the unified
// template and is kept for source compatibility.
using sim_object_builder = object_builder<sim::sim_env>;
using rt_object_builder = object_builder<rt::rt_env>;

struct crash_spec {
  process_id pid;
  std::uint64_t after_ops;
};

// Execution budget for one trial (designated-initializer friendly:
// `.limits = {.max_steps = 400'000}`).
struct run_limits {
  std::uint64_t max_steps = 50'000'000;
};

// Crash-fault injection plan for one trial.
struct fault_plan {
  std::vector<crash_spec> crashes;

  fault_plan& crash(process_id pid, std::uint64_t after_ops) {
    crashes.push_back({pid, after_ops});
    return *this;
  }
  bool empty() const { return crashes.empty(); }
};

struct trial_options {
  std::uint64_t seed = 1;
  run_limits limits;
  fault_plan faults;
  bool trace = false;
  // Called after the run with the finished world, for metrics the
  // summary below does not carry (register write counts, traces, ...).
  std::function<void(const sim::sim_world&)> inspect;
  // Like `inspect`, but also handed the deciding object, so callers can
  // read protocol-internal counters (fallback entries, rounds built, ...)
  // without wrapping the object in an observer.
  std::function<void(const sim::sim_world&,
                     const deciding_object<sim::sim_env>&)>
      inspect_object;
};

struct trial_result {
  sim::run_status status = sim::run_status::all_halted;
  // One entry per process that halted (crashed processes excluded);
  // parallel to `halted_pids`.
  std::vector<decided> outputs;
  std::vector<process_id> halted_pids;
  // Processes removed by the fault plan before they could halt.  A pid
  // appears in exactly one of halted_pids / crashed_pids unless the run
  // hit its step limit, in which case it may appear in neither ("still
  // running").
  std::vector<process_id> crashed_pids;
  std::uint64_t total_ops = 0;
  std::uint64_t max_individual_ops = 0;
  std::uint64_t steps = 0;
  std::uint32_t registers = 0;

  bool completed() const { return status == sim::run_status::all_halted; }
  bool agreement() const { return check_agreement(outputs); }
  bool coherent() const { return check_coherence(outputs); }
  bool valid(const std::vector<value_t>& inputs) const {
    return check_validity(outputs, inputs);
  }
};

// Runs one execution: every process invokes the object built by `build`
// exactly once with its input.  inputs.size() == n.
trial_result run_object_trial(const sim_object_builder& build,
                              const std::vector<value_t>& inputs,
                              sim::adversary& adv,
                              const trial_options& opts = {});

// Real-thread trial options.  There is no adversary (the OS schedules)
// and no fault plan (threads cannot be crashed mid-run); `chaos` injects
// random yields for interleaving stress (see rt::rt_env).
struct rt_trial_options {
  std::uint64_t seed = 1;
  std::uint32_t chaos = 0;
};

// Runs one real-thread execution of the object built by `build` over a
// fresh arena: process pid gets input inputs[pid].  The result uses the
// same shape as the simulated trial: status is always all_halted (the
// run blocks until every thread returns), every pid is in halted_pids,
// and `steps` equals total_ops (one operation per step, no scheduler).
trial_result run_rt_object_trial(const rt_object_builder& build,
                                 const std::vector<value_t>& inputs,
                                 const rt_trial_options& opts = {});

// Input workload patterns used across experiments.
enum class input_pattern {
  unanimous,     // all v = 0
  half_half,     // first half 0, second half 1 (mod m)
  alternating,   // pid % m
  random_m,      // uniform over [0, m)
  distinct,      // pid (all different; requires m >= n)
};

std::vector<value_t> make_inputs(input_pattern pattern, std::size_t n,
                                 std::uint64_t m, std::uint64_t seed);

const char* to_string(input_pattern p);

}  // namespace modcon::analysis
