// Trial driver: builds a world, instantiates one deciding object, runs
// every process through it under a chosen adversary, and reports outputs
// plus the paper's two cost measures.
//
// This is the workhorse of both the test suites and the experiment
// benches: a "trial" is one execution; experiments aggregate many trials
// over seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analysis/metrics.h"
#include "core/deciding.h"
#include "sim/adversary.h"
#include "sim/world.h"

namespace modcon::analysis {

using sim_object_builder =
    std::function<std::unique_ptr<deciding_object<sim::sim_env>>(
        address_space& mem, std::size_t n)>;

struct crash_spec {
  process_id pid;
  std::uint64_t after_ops;
};

struct trial_options {
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 50'000'000;
  bool trace = false;
  std::vector<crash_spec> crashes;
  // Called after the run with the finished world, for metrics the
  // summary below does not carry (register write counts, traces, ...).
  std::function<void(const sim::sim_world&)> inspect;
};

struct trial_result {
  sim::run_status status = sim::run_status::all_halted;
  // One entry per process that halted (crashed processes excluded);
  // parallel to `halted_pids`.
  std::vector<decided> outputs;
  std::vector<process_id> halted_pids;
  std::uint64_t total_ops = 0;
  std::uint64_t max_individual_ops = 0;
  std::uint64_t steps = 0;
  std::uint32_t registers = 0;

  bool completed() const { return status == sim::run_status::all_halted; }
  bool agreement() const { return check_agreement(outputs); }
  bool coherent() const { return check_coherence(outputs); }
  bool valid(const std::vector<value_t>& inputs) const {
    return check_validity(outputs, inputs);
  }
};

// Runs one execution: every process invokes the object built by `build`
// exactly once with its input.  inputs.size() == n.
trial_result run_object_trial(const sim_object_builder& build,
                              const std::vector<value_t>& inputs,
                              sim::adversary& adv,
                              const trial_options& opts = {});

// Input workload patterns used across experiments.
enum class input_pattern {
  unanimous,     // all v = 0
  half_half,     // first half 0, second half 1 (mod m)
  alternating,   // pid % m
  random_m,      // uniform over [0, m)
  distinct,      // pid (all different; requires m >= n)
};

std::vector<value_t> make_inputs(input_pattern pattern, std::size_t n,
                                 std::uint64_t m, std::uint64_t seed);

const char* to_string(input_pattern p);

}  // namespace modcon::analysis
