// Trial driver: builds a world, instantiates one deciding object, runs
// every process through it under a chosen adversary, and reports outputs
// plus the paper's two cost measures.
//
// This is the workhorse of both the test suites and the experiment
// benches: a "trial" is one execution; experiments aggregate many trials
// over seeds (see analysis/experiment.h for the batch engine).
//
// The same trial vocabulary covers both backends: an `object_builder<Env>`
// constructs one deciding object from an address space, for any
// Environment — `sim::sim_env` trials run under an explicit adversary via
// run_object_trial, `rt::rt_env` trials run on real threads via
// run_rt_object_trial.  One builder definition (a template lambda or a
// templated factory) serves both.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/metrics.h"
#include "analysis/perf.h"
#include "check/auditor.h"
#include "core/deciding.h"
#include "obs/metrics.h"
#include "rt/env.h"
#include "rt/runner.h"
#include "sim/adversary.h"
#include "sim/world.h"

namespace modcon::analysis {

// Constructs the (single, shared) deciding object for one trial.  Called
// once per trial with the trial's address space and process count; must
// be safe to call concurrently from the experiment engine's worker
// threads (capture only immutable state).
template <typename Env>
using object_builder =
    std::function<std::unique_ptr<deciding_object<Env>>(address_space& mem,
                                                        std::size_t n)>;

// Backend-specific aliases.  `sim_object_builder` predates the unified
// template and is kept for source compatibility.
using sim_object_builder = object_builder<sim::sim_env>;
using rt_object_builder = object_builder<rt::rt_env>;

struct crash_spec {
  process_id pid;
  std::uint64_t after_ops;
};

// Crash-restart: the process loses its local state after `after_ops`
// operations and re-runs its program from the start with its original
// input; shared registers persist.
struct restart_spec {
  process_id pid;
  std::uint64_t after_ops;
};

// Stall: the process stops taking steps after `after_ops` operations.
// On the rt backend it parks the OS thread, resuming after
// `resume_after_ms` (0 = never — a hung trial for the watchdog to
// reclaim).  On the sim backend a stalled process is indistinguishable
// from a crashed one (the model is asynchronous: no fairness, no
// clocks), so stalls map to crashes there.
struct stall_spec {
  process_id pid;
  std::uint64_t after_ops;
  std::uint32_t resume_after_ms = 0;
};

// Execution budget for one trial (designated-initializer friendly:
// `.limits = {.max_steps = 400'000}`).
struct run_limits {
  std::uint64_t max_steps = 50'000'000;
};

// Fault-injection plan for one trial: crash-stop, crash-restart,
// crash-recovery, and stall process faults plus register-level faults
// (stale reads / write omission / weakened register semantics).  All
// injected randomness derives from the trial seed (or from `fault_seed`
// when overridden), so any failure reproduces exactly from
// (seed, fault_plan).
struct fault_plan {
  std::vector<crash_spec> crashes;
  std::vector<restart_spec> restarts;
  // Crash-recovery: like a restart, but the volatile register partition
  // is wiped too (see exec::durability); persistent registers survive.
  std::vector<restart_spec> recoveries;
  std::vector<stall_spec> stalls;
  sim::register_fault_config registers;
  // Overrides the seed of the fault-injection RNG stream (0 = derive from
  // the trial seed, the default — artifacts are byte-identical when
  // unset).
  std::uint64_t fault_seed = 0;

  fault_plan& crash(process_id pid, std::uint64_t after_ops) {
    crashes.push_back({pid, after_ops});
    return *this;
  }
  fault_plan& restart(process_id pid, std::uint64_t after_ops) {
    restarts.push_back({pid, after_ops});
    return *this;
  }
  fault_plan& recover(process_id pid, std::uint64_t after_ops) {
    recoveries.push_back({pid, after_ops});
    return *this;
  }
  fault_plan& stall(process_id pid, std::uint64_t after_ops,
                    std::uint32_t resume_after_ms = 0) {
    stalls.push_back({pid, after_ops, resume_after_ms});
    return *this;
  }
  fault_plan& regular_registers(std::uint64_t stale_denominator = 4) {
    registers.regular = true;
    registers.stale_denominator = stale_denominator;
    return *this;
  }
  // True register semantics (Lamport's hierarchy; see
  // sim/register_file.h).  Mutually exclusive with regular_registers'
  // probabilistic stale mode.  On the rt backend the semantics are
  // approximated by read-racing with rate 1/stale_denominator.
  fault_plan& with_semantics(sim::register_semantics s) {
    registers.semantics = s;
    return *this;
  }
  fault_plan& with_fault_seed(std::uint64_t seed) {
    fault_seed = seed;
    return *this;
  }
  fault_plan& omit_writes(std::uint64_t denominator, std::uint64_t budget) {
    registers.omit_denominator = denominator;
    registers.omit_budget = budget;
    return *this;
  }
  sim::register_semantics semantics() const { return registers.semantics; }
  bool empty() const {
    return crashes.empty() && restarts.empty() && recoveries.empty() &&
           stalls.empty() && !registers.enabled();
  }
};

// Compact human-readable echo of a plan, e.g.
// "crash(1@3) restart(0@2) regular(1/4)"; "none" when empty.  Used by
// the experiment engine's fault_profile summary field.
std::string to_string(const fault_plan& plan);

// Per-trial property audit (check/auditor.h).  When enabled, the sim
// runner forces tracing and replays the finished execution through the
// auditor; the rt runner records operation intervals and runs the
// happens-before serializability check.  The audit_spec is derived from
// the trial configuration: object-property checks are disarmed
// automatically when register faults void the model's guarantees, while
// fault-semantics legality is always checked.
struct audit_options {
  bool enabled = false;
  // The object under audit guarantees acceptance (it is a ratifier):
  // unanimous-input trials must ratify.
  bool ratifier = false;
  // The object is a deciding object (§3); false for bare shared coins,
  // which keep only the legality/serializability checks.
  bool deciding = true;
  // Trace/recorder event cap (0 = backend default); an overflowing trial
  // audits as inconclusive rather than exhausting memory.
  std::uint64_t max_trace_events = 0;
};

struct trial_options {
  std::uint64_t seed = 1;
  run_limits limits;
  fault_plan faults;
  bool trace = false;
  // Record algorithm-level spans and counters (obs/obs.h) and finalize
  // them into trial_result::obs.  Forces the execution trace on (register
  // statistics replay it).
  bool observe = false;
  audit_options audit;
  // When set, the runner charges its phases (schedule = world/object
  // setup, step = the execution, audit = the property replay) to these
  // counters; see analysis/perf.h.  Timing only — never affects results.
  perf_counters* perf = nullptr;
  // Called after the run with the finished world, for metrics the
  // summary below does not carry (register write counts, traces, ...).
  std::function<void(const sim::sim_world&)> inspect;
  // Like `inspect`, but also handed the deciding object, so callers can
  // read protocol-internal counters (fallback entries, rounds built, ...)
  // without wrapping the object in an observer.
  std::function<void(const sim::sim_world&,
                     const deciding_object<sim::sim_env>&)>
      inspect_object;
};

struct trial_result {
  sim::run_status status = sim::run_status::all_halted;
  // One entry per process that halted as a survivor (crashed processes
  // excluded); parallel to `halted_pids`.
  std::vector<decided> outputs;
  std::vector<process_id> halted_pids;
  // Processes removed by the fault plan before they could halt.  A pid
  // appears in exactly one of halted_pids / crashed_pids unless the run
  // hit its step limit or timed out, in which case it may appear in
  // neither ("still running").
  std::vector<process_id> crashed_pids;
  // Decided values of processes that crashed on the very operation where
  // they decided: the value escaped into the execution, so it must feed
  // the agreement/coherence/validity checks, but the pid is reported
  // through crashed_pids, not halted_pids.
  std::vector<decided> crashed_outputs;
  // Processes that suffered at least one crash-restart fault (they may
  // also appear in halted_pids/crashed_pids — restarts are not terminal).
  std::vector<process_id> restarted_pids;
  // Processes that suffered at least one crash-*recovery* fault (a subset
  // of restarted_pids: every recovery is also a restart).
  std::vector<process_id> recovered_pids;
  std::uint64_t restarts = 0;        // total restarts across processes
  std::uint64_t recoveries = 0;      // total crash-recoveries (subset)
  std::uint64_t stale_reads = 0;     // regular-register fault injections
  std::uint64_t omitted_writes = 0;  // write-omission fault injections
  // Weakened-semantics accounting: sim reads answered from the overlap
  // set / value history, volatile-partition wipes, and (rt backend)
  // racing reads that observed two distinct values.
  std::uint64_t overlap_reads = 0;
  std::uint64_t volatile_wipes = 0;
  std::uint64_t races = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t max_individual_ops = 0;
  std::uint64_t steps = 0;
  std::uint32_t registers = 0;
  // Present iff the trial ran with audit_options.enabled.
  std::optional<check::audit_report> audit;
  // Present iff the trial ran with observe set: spans, counters, and
  // register statistics (obs/metrics.h).
  std::optional<obs::trial_obs> obs;

  // Every decided value that escaped into the execution, survivors first.
  std::vector<decided> all_outputs() const {
    std::vector<decided> all = outputs;
    all.insert(all.end(), crashed_outputs.begin(), crashed_outputs.end());
    return all;
  }

  bool completed() const { return status == sim::run_status::all_halted; }
  bool timed_out() const { return status == sim::run_status::timed_out; }
  bool agreement() const { return check_agreement(all_outputs()); }
  bool coherent() const { return check_coherence(all_outputs()); }
  bool valid(const std::vector<value_t>& inputs) const {
    return check_validity(all_outputs(), inputs);
  }
};

// Runs one execution: every process invokes the object built by `build`
// exactly once with its input.  inputs.size() == n.
trial_result run_object_trial(const sim_object_builder& build,
                              const std::vector<value_t>& inputs,
                              sim::adversary& adv,
                              const trial_options& opts = {});

// Real-thread trial options.  There is no adversary (the OS schedules);
// `chaos` injects random yields for interleaving stress (see rt::rt_env).
// Process faults in `faults` are applied cooperatively at operation
// boundaries (crash/restart/stall; register faults are ignored — rt
// registers are real hardware).  The watchdog bounds the trial's wall
// clock: a hung run (e.g. an injected stall with no resume) is aborted
// and reported as status timed_out instead of wedging the suite.
struct rt_trial_options {
  std::uint64_t seed = 1;
  std::uint32_t chaos = 0;
  fault_plan faults;
  std::uint32_t watchdog_ms = 10'000;
  // Record spans/counters into trial_result::obs (see trial_options).
  // Register statistics stay zero on this backend (no global trace).
  bool observe = false;
  audit_options audit;
  perf_counters* perf = nullptr;  // see trial_options::perf
};

// Runs one real-thread execution of the object built by `build` over a
// fresh arena: process pid gets input inputs[pid].  The result uses the
// same shape as the simulated trial: a fault-free run reports all_halted
// with every pid in halted_pids; injected crashes report no_runnable with
// the victims in crashed_pids; a watchdog abort reports timed_out.
// `steps` equals total_ops (one operation per step, no scheduler).
trial_result run_rt_object_trial(const rt_object_builder& build,
                                 const std::vector<value_t>& inputs,
                                 const rt_trial_options& opts = {});

// Input workload patterns used across experiments.
enum class input_pattern {
  unanimous,     // all v = 0
  half_half,     // first half 0, second half 1 (mod m)
  alternating,   // pid % m
  random_m,      // uniform over [0, m)
  distinct,      // pid (all different; requires m >= n)
};

std::vector<value_t> make_inputs(input_pattern pattern, std::size_t n,
                                 std::uint64_t m, std::uint64_t seed);

const char* to_string(input_pattern p);

}  // namespace modcon::analysis
