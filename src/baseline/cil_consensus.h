// Chor–Israeli–Li-style racing consensus [20] for the probabilistic-write
// model — the classic protocol family the paper's framework generalizes,
// used here both as a baseline (E9) and as the bounded-space fallback K
// required by Theorem 5.
//
// Shared data: n single-writer registers, reg[p] = (round, value),
// initially ⊥.  Each process publishes (1, input) and then loops:
//
//   1. collect all n registers (n individual reads);
//   2. DECIDE its value v if no conflicting entry is anywhere near it:
//      every register with a value != v has round <= my round - 2, and
//      (while my round < 3) no register is still ⊥ — an unstarted
//      process will publish at round 1, so ⊥ counts as a potential
//      round-1 conflict until my round is at least 3;
//   3. if strictly behind the maximum round: try to ADOPT the maximum
//      entry — a probabilistic write of (max_round, max_value) to its
//      own register with probability 1/2, then a read of its own
//      register;
//   4. otherwise (at the front): try to ADVANCE — a probabilistic write
//      of (round+1, value) with probability 1/(2n), then a read of its
//      own register.
//
// Safety sketch.  Per-register rounds are strictly monotone (publish
// ⊥→1, adopt goes to a strictly larger round, advance is +1), so the
// global maximum round never decreases.  Suppose p decides v at round r.
// At p's collect every conflicting entry sat at round <= r-2, strictly
// below the top.  A process can only attempt an advance away from round
// x after a collect in which x was still the maximum, so the only
// conflicting writes still in flight land at <= r-1 and cannot take the
// top; after they land, every later collect by their owners sees a
// strictly higher top and forces adoption.  Hence no conflicting value
// ever reaches the top again, every other process adopts v before it
// could decide (a conflicting decider would need the v-top itself to
// trail its own round by 2 — impossible while it holds a conflicting
// value below the top), and coherence/agreement follow.  The ⊥ guard
// covers the one entry type that enters at a fixed low round.
//
// Liveness.  Both adoption and advancement are probabilistic writes whose
// coins the adversary cannot observe (this is exactly the
// probabilistic-write assumption; with deterministic adoption a lockstep
// scheduler could keep two camps tied forever).  Once some advance
// succeeds, the chasing pack adopts the leader's value within a constant
// expected number of its own cycles, after which every process's decide
// test passes.
//
// Space: n registers, bounded.  Work: Θ(n) per cycle (the collect), a
// constant expected number of cycles after contention resolves — the
// Θ(n)-individual-work shape whose improvement to O(log n) is the
// paper's headline (E9).
#pragma once

#include <string>

#include "core/deciding.h"
#include "exec/address_space.h"
#include "exec/environment.h"
#include "util/assertx.h"
#include "util/prob.h"

namespace modcon {

template <typename Env>
class cil_consensus final : public deciding_object<Env> {
 public:
  cil_consensus(address_space& mem, std::size_t n)
      : n_(static_cast<std::uint32_t>(n)),
        base_(mem.alloc_block(n_, kBot)) {}

  proc<decided> invoke(Env& env, value_t input) override {
    MODCON_CHECK_MSG(env.n() == n_, "protocol sized for a different n");
    MODCON_CHECK_MSG(input < (word{1} << 32), "value too large to pack");
    const process_id me = env.pid();
    const prob advance_p(1, 2 * static_cast<std::uint64_t>(n_));
    const prob adopt_p(1, 2);

    std::uint32_t round = 1;
    value_t value = input;
    co_await env.write(base_ + me, pack(round, value));

    for (;;) {
      // Collect.
      std::uint32_t max_round = 0;
      value_t max_value = kBot;
      bool blocked = false;
      for (std::uint32_t i = 0; i < n_; ++i) {
        word w = co_await env.read(base_ + i);
        if (w == kBot) {
          // An unstarted process will publish at round 1.
          if (round < 3) blocked = true;
          continue;
        }
        auto [r, v] = unpack(w);
        if (r > max_round) {
          max_round = r;
          max_value = v;
        }
        if (v != value && r + 2 > round) blocked = true;
      }

      if (!blocked) co_return decided{true, value};

      if (round < max_round) {
        // Behind: follow the leader, behind a coin the adversary cannot
        // see (a deterministic catch-up would let a lockstep scheduler
        // pin the race forever).
        co_await env.prob_write(base_ + me, pack(max_round, max_value),
                                adopt_p);
      } else {
        // At the front: try to pull ahead.
        co_await env.prob_write(base_ + me, pack(round + 1, value),
                                advance_p);
      }
      auto [r, v] = unpack(co_await env.read(base_ + me));
      round = r;
      value = v;
    }
  }

  proc<value_t> decide(Env& env, value_t input) {
    decided d = co_await invoke(env, input);
    co_return d.value;
  }

  std::string name() const override { return "cil-racing-consensus"; }

 private:
  static word pack(std::uint32_t round, value_t value) {
    return (static_cast<word>(round) << 32) | value;
  }
  static std::pair<std::uint32_t, value_t> unpack(word w) {
    return {static_cast<std::uint32_t>(w >> 32), w & 0xffffffffULL};
  }

  std::uint32_t n_;
  reg_id base_;
};

}  // namespace modcon
