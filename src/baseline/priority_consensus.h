// One-register consensus for the priority-scheduling model (§4.2's
// pointer to Ramamurthy–Moir–Anderson [27], simplified).
//
// Under priority-based scheduling the highest-priority process with a
// pending operation always runs, so processes execute effectively one
// after another.  Then a single register suffices: look, adopt if
// somebody already wrote, otherwise write yourself.  Two operations per
// process, one register — compare the ratifier-only ladder's O(log m)
// per round (E7).  ([27]'s actual protocol spends 2 registers and 6
// operations to handle a more general priority model; this is the
// textbook special case.)
//
// OUTSIDE the priority model this is not consensus at all: two processes
// can interleave read-⊥/write and decide different values.  The
// exhaustive explorer demonstrates the violation (see baseline_test),
// which is precisely why the paper's framework pays for ratifiers and
// conciliators under weaker schedulers.
#pragma once

#include "core/deciding.h"
#include "exec/address_space.h"
#include "exec/environment.h"

namespace modcon {

template <typename Env>
class priority_consensus final : public deciding_object<Env> {
 public:
  explicit priority_consensus(address_space& mem) : r_(mem.alloc(kBot)) {}

  proc<decided> invoke(Env& env, value_t v) override {
    MODCON_CHECK_MSG(v < kBot, "⊥ is not a valid input");
    word u = co_await env.read(r_);
    if (u != kBot) co_return decided{true, u};
    co_await env.write(r_, v);
    co_return decided{true, v};
  }

  std::string name() const override { return "priority-consensus"; }

 private:
  reg_id r_;
};

}  // namespace modcon
