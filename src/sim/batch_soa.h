// Struct-of-arrays views for lockstep trial batches.
//
// The batch engine (analysis/batch_engine.h) runs B independent trials of
// one cell side by side, with every piece of per-trial world state laid
// out *across* trials: register cells, runnable sets, pc/stage cursors.
// These are the shared layout primitives:
//
//   * lane_matrix<T>    — register-major storage: row r is the B copies
//     of register r, one per lane, contiguous.  Growing by rows (lazy
//     part allocation in the unbounded stack) appends, so existing
//     (register, lane) addresses never move mid-run.
//   * soa_runnable      — per-lane runnable sets with exactly the
//     swap-remove discipline of sim_world::remove_runnable, so the
//     scheduler's `runnable[below(size)]` pick hits the same pid in lane
//     L as the scalar engine does in trial L.
//   * lane_mask         — the divergence mask over lanes: trials that
//     halt or exhaust their budget early are swap-compacted out of the
//     active set, so the lockstep loop only visits live lanes (the same
//     shape a batched inference engine uses for finished sequences).
//
// All three are plain data over flat vectors — no per-step allocation,
// no pointers into growable storage except row bases recomputed per use.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assertx.h"

namespace modcon::sim {

// Register-major matrix: element (row, lane) at data[row * lanes + lane].
// Rows added by ensure_rows are value-initialized; lanes (re)initialize
// their own cells when they allocate a row, so one lane building deeper
// than another never leaks state across trials.
template <typename T>
class lane_matrix {
 public:
  void reset(std::size_t lanes) {
    lanes_ = lanes;
    rows_ = 0;
    data_.clear();
  }

  void ensure_rows(std::size_t rows) {
    if (rows <= rows_) return;
    rows_ = rows;
    data_.resize(rows_ * lanes_);
  }

  std::size_t rows() const { return rows_; }

  T* row(std::size_t r) { return data_.data() + r * lanes_; }
  const T* row(std::size_t r) const { return data_.data() + r * lanes_; }

 private:
  std::size_t lanes_ = 0;
  std::size_t rows_ = 0;
  std::vector<T> data_;
};

// Per-lane runnable sets over a fixed process count, flat across lanes.
// remove() replicates sim_world::remove_runnable exactly (swap the last
// element into the vacated slot); the resulting ordering is part of the
// bit-identity contract — the uniform scheduler indexes into it.
class soa_runnable {
 public:
  void init(std::size_t lanes, std::uint32_t n) {
    n_ = n;
    list_.assign(lanes * n, 0);
    index_.assign(lanes * n, 0);
    len_.assign(lanes, n);
    for (std::size_t lane = 0; lane < lanes; ++lane)
      for (std::uint32_t pid = 0; pid < n; ++pid) {
        list_[lane * n + pid] = pid;
        index_[lane * n + pid] = pid;
      }
  }

  std::uint32_t count(std::size_t lane) const { return len_[lane]; }

  // The pid in slot `slot` of lane `lane`'s runnable list.
  std::uint32_t at(std::size_t lane, std::uint64_t slot) const {
    return list_[lane * n_ + slot];
  }

  // Raw base of lane `lane`'s runnable list (n_ slots; the first count()
  // are live).  The pointer stays valid across remove() — the hot loop
  // hoists it once per burst.
  const std::uint32_t* lane_list(std::size_t lane) const {
    return list_.data() + lane * n_;
  }

  void remove(std::size_t lane, std::uint32_t pid) {
    std::uint32_t* list = list_.data() + lane * n_;
    std::uint32_t* index = index_.data() + lane * n_;
    const std::uint32_t slot = index[pid];
    if (slot == UINT32_MAX) return;
    const std::uint32_t last = list[len_[lane] - 1];
    list[slot] = last;
    index[last] = slot;
    --len_[lane];
    index[pid] = UINT32_MAX;
  }

 private:
  std::uint32_t n_ = 0;
  std::vector<std::uint32_t> list_;   // lane-major runnable lists
  std::vector<std::uint32_t> index_;  // pid -> slot, UINT32_MAX = removed
  std::vector<std::uint32_t> len_;
};

// Compacted active-lane set: the lockstep loop iterates ids()[0..size),
// and a lane that finishes is swap-removed without disturbing the
// iteration position of the lanes before it.
class lane_mask {
 public:
  void init(std::size_t lanes) {
    ids_.resize(lanes);
    for (std::size_t i = 0; i < lanes; ++i) ids_[i] = i;
    size_ = lanes;
  }

  std::size_t size() const { return size_; }
  std::size_t operator[](std::size_t pos) const { return ids_[pos]; }

  // Deactivates the lane at iteration position `pos` (not the lane id).
  void deactivate(std::size_t pos) {
    MODCON_CHECK(pos < size_);
    ids_[pos] = ids_[size_ - 1];
    --size_;
  }

 private:
  std::vector<std::size_t> ids_;
  std::size_t size_ = 0;
};

}  // namespace modcon::sim
