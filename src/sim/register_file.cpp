#include "sim/register_file.h"

namespace modcon::sim {

reg_id register_file::alloc(word init) {
  cells_.push_back({init, init, init, 0});
  return static_cast<reg_id>(cells_.size() - 1);
}

reg_id register_file::alloc_block(std::uint32_t count, word init) {
  MODCON_CHECK(count > 0);
  reg_id first = static_cast<reg_id>(cells_.size());
  cells_.resize(cells_.size() + count, {init, init, init, 0});
  return first;
}

std::uint64_t register_file::writes_applied(reg_id r) const {
  MODCON_CHECK_MSG(r < cells_.size(), "unallocated register " << r);
  return cells_[r].writes;
}

void register_file::enable_faults(const register_fault_config& cfg,
                                  std::uint64_t seed) {
  faults_ = cfg;
  faults_enabled_ = cfg.enabled();
  stale_armed_ =
      faults_enabled_ && cfg.regular && cfg.stale_denominator != 0;
  omit_armed_ = faults_enabled_ && cfg.omit_denominator != 0;
  fault_seed_ = seed;
  fault_rng_ = rng(seed);
  omissions_left_ = cfg.omit_budget;
  stale_reads_ = 0;
  omitted_writes_ = 0;
}

word register_file::faulty_read(reg_id r, word v) {
  // One coin draw per read, whether or not the stale value differs —
  // the injection *schedule* is a function of the seed alone.
  if (fault_rng_.below(faults_.stale_denominator) == 0) {
    ++stale_reads_;
    return cells_[r].previous;
  }
  return v;
}

bool register_file::faulty_write(reg_id r, word v) {
  if (fault_rng_.below(faults_.omit_denominator) == 0) {
    --omissions_left_;
    ++omitted_writes_;
    return false;
  }
  write(r, v);
  return true;
}

void register_file::reset() {
  for (cell& c : cells_) {
    c.value = c.initial;
    c.previous = c.initial;
    c.writes = 0;
  }
  if (faults_enabled_) {
    fault_rng_ = rng(fault_seed_);
    omissions_left_ = faults_.omit_budget;
    stale_reads_ = 0;
    omitted_writes_ = 0;
  }
}

}  // namespace modcon::sim
