#include "sim/register_file.h"

#include "util/assertx.h"

namespace modcon::sim {

reg_id register_file::alloc(word init) {
  values_.push_back(init);
  initial_.push_back(init);
  previous_.push_back(init);
  write_counts_.push_back(0);
  return static_cast<reg_id>(values_.size() - 1);
}

reg_id register_file::alloc_block(std::uint32_t count, word init) {
  MODCON_CHECK(count > 0);
  reg_id first = static_cast<reg_id>(values_.size());
  values_.resize(values_.size() + count, init);
  initial_.resize(initial_.size() + count, init);
  previous_.resize(previous_.size() + count, init);
  write_counts_.resize(write_counts_.size() + count, 0);
  return first;
}

std::uint64_t register_file::writes_applied(reg_id r) const {
  MODCON_CHECK_MSG(r < write_counts_.size(), "unallocated register " << r);
  return write_counts_[r];
}

word register_file::read(reg_id r) const {
  MODCON_CHECK_MSG(r < values_.size(), "read of unallocated register " << r);
  return values_[r];
}

void register_file::write(reg_id r, word v) {
  MODCON_CHECK_MSG(r < values_.size(), "write of unallocated register " << r);
  previous_[r] = values_[r];
  values_[r] = v;
  ++write_counts_[r];
}

void register_file::enable_faults(const register_fault_config& cfg,
                                  std::uint64_t seed) {
  faults_ = cfg;
  faults_enabled_ = cfg.enabled();
  fault_seed_ = seed;
  fault_rng_ = rng(seed);
  omissions_left_ = cfg.omit_budget;
  stale_reads_ = 0;
  omitted_writes_ = 0;
}

word register_file::process_read(reg_id r) {
  word v = read(r);
  if (!faults_enabled_ || !faults_.regular || faults_.stale_denominator == 0)
    return v;
  // One coin draw per read, whether or not the stale value differs —
  // the injection *schedule* is a function of the seed alone.
  if (fault_rng_.below(faults_.stale_denominator) == 0) {
    ++stale_reads_;
    return previous_[r];
  }
  return v;
}

bool register_file::process_write(reg_id r, word v) {
  if (faults_enabled_ && omissions_left_ > 0 && faults_.omit_denominator != 0 &&
      fault_rng_.below(faults_.omit_denominator) == 0) {
    --omissions_left_;
    ++omitted_writes_;
    return false;
  }
  write(r, v);
  return true;
}

void register_file::reset() {
  values_ = initial_;
  previous_ = initial_;
  write_counts_.assign(write_counts_.size(), 0);
  if (faults_enabled_) {
    fault_rng_ = rng(fault_seed_);
    omissions_left_ = faults_.omit_budget;
    stale_reads_ = 0;
    omitted_writes_ = 0;
  }
}

}  // namespace modcon::sim
