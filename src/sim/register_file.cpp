#include "sim/register_file.h"

#include "util/assertx.h"

namespace modcon::sim {

reg_id register_file::alloc(word init) {
  values_.push_back(init);
  initial_.push_back(init);
  write_counts_.push_back(0);
  return static_cast<reg_id>(values_.size() - 1);
}

reg_id register_file::alloc_block(std::uint32_t count, word init) {
  MODCON_CHECK(count > 0);
  reg_id first = static_cast<reg_id>(values_.size());
  values_.resize(values_.size() + count, init);
  initial_.resize(initial_.size() + count, init);
  write_counts_.resize(write_counts_.size() + count, 0);
  return first;
}

std::uint64_t register_file::writes_applied(reg_id r) const {
  MODCON_CHECK_MSG(r < write_counts_.size(), "unallocated register " << r);
  return write_counts_[r];
}

word register_file::read(reg_id r) const {
  MODCON_CHECK_MSG(r < values_.size(), "read of unallocated register " << r);
  return values_[r];
}

void register_file::write(reg_id r, word v) {
  MODCON_CHECK_MSG(r < values_.size(), "write of unallocated register " << r);
  values_[r] = v;
  ++write_counts_[r];
}

void register_file::reset() {
  values_ = initial_;
  write_counts_.assign(write_counts_.size(), 0);
}

}  // namespace modcon::sim
