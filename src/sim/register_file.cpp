#include "sim/register_file.h"

#include <algorithm>

namespace modcon::sim {

reg_id register_file::alloc(word init, bool volatile_cell) {
  cells_.push_back({init, init, init, 0, volatile_cell});
  reg_id r = static_cast<reg_id>(cells_.size() - 1);
  if (volatile_cell) volatile_regs_.push_back(r);
  if (track_history_) history_.push_back({init});
  return r;
}

reg_id register_file::alloc_block(std::uint32_t count, word init,
                                  bool volatile_cell) {
  MODCON_CHECK(count > 0);
  reg_id first = static_cast<reg_id>(cells_.size());
  cells_.resize(cells_.size() + count, {init, init, init, 0, volatile_cell});
  if (volatile_cell)
    for (std::uint32_t i = 0; i < count; ++i)
      volatile_regs_.push_back(first + i);
  if (track_history_) history_.resize(cells_.size(), {init});
  return first;
}

std::uint64_t register_file::writes_applied(reg_id r) const {
  MODCON_CHECK_MSG(r < cells_.size(), "unallocated register " << r);
  return cells_[r].writes;
}

void register_file::enable_faults(const register_fault_config& cfg,
                                  std::uint64_t seed) {
  MODCON_CHECK_MSG(
      cfg.semantics == register_semantics::atomic || !cfg.regular,
      "pick either the probabilistic stale mode or a true semantics mode, "
      "not both");
  faults_ = cfg;
  faults_enabled_ = cfg.enabled();
  stale_armed_ =
      faults_enabled_ && cfg.regular && cfg.stale_denominator != 0;
  omit_armed_ = faults_enabled_ && cfg.omit_denominator != 0;
  semantics_armed_ = cfg.semantics != register_semantics::atomic;
  track_history_ = cfg.semantics == register_semantics::safe;
  if (track_history_) {
    history_.clear();
    history_.reserve(cells_.size());
    for (const cell& c : cells_) history_.push_back({c.initial});
  }
  fault_seed_ = seed;
  fault_rng_ = rng(seed);
  omissions_left_ = cfg.omit_budget;
  stale_reads_ = 0;
  omitted_writes_ = 0;
  overlap_reads_ = 0;
  volatile_wipes_ = 0;
}

word register_file::faulty_read(reg_id r, word v) {
  // One coin draw per read, whether or not the stale value differs —
  // the injection *schedule* is a function of the seed alone.
  if (fault_rng_.below(faults_.stale_denominator) == 0) {
    ++stale_reads_;
    return cells_[r].previous;
  }
  return v;
}

word register_file::semantic_read(reg_id r, std::span<const word> pending) {
  word v = read(r);
  if (faults_.semantics == register_semantics::regular) {
    // Regular: last complete write, or any overlapping one.  The draw
    // happens even with no overlap (below(1) == 0) so the coin stream is
    // the same function of the schedule either way.
    std::uint64_t pick = fault_rng_.below(pending.size() + 1);
    if (pick == 0) return v;
    ++overlap_reads_;
    return pending[pick - 1];
  }
  // Safe: truthful without overlap; arbitrary from the value history
  // under overlap.
  if (pending.empty()) return v;
  const std::vector<word>& h = history_[r];
  word picked = h[fault_rng_.below(h.size())];
  if (picked != v) ++overlap_reads_;
  return picked;
}

void register_file::note_history(reg_id r, word v) {
  if (r >= history_.size()) history_.resize(cells_.size(), {});
  std::vector<word>& h = history_[r];
  if (std::find(h.begin(), h.end(), v) == h.end()) h.push_back(v);
}

bool register_file::faulty_write(reg_id r, word v) {
  if (fault_rng_.below(faults_.omit_denominator) == 0) {
    --omissions_left_;
    ++omitted_writes_;
    return false;
  }
  write(r, v);
  return true;
}

void register_file::wipe_volatile() {
  for (reg_id r : volatile_regs_) {
    cell& c = cells_[r];
    c.previous = c.value;
    c.value = c.initial;
    ++c.writes;
  }
  ++volatile_wipes_;
}

void register_file::reset() {
  for (cell& c : cells_) {
    c.value = c.initial;
    c.previous = c.initial;
    c.writes = 0;
  }
  if (faults_enabled_) {
    fault_rng_ = rng(fault_seed_);
    omissions_left_ = faults_.omit_budget;
    stale_reads_ = 0;
    omitted_writes_ = 0;
    overlap_reads_ = 0;
    volatile_wipes_ = 0;
    if (track_history_) {
      history_.clear();
      for (const cell& c : cells_) history_.push_back({c.initial});
    }
  }
}

}  // namespace modcon::sim
