// The simulated multiwriter-register memory.
//
// Registers are atomic by construction here: the simulator executes one
// operation at a time, so every read returns the last value written —
// exactly the model of §2.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/types.h"

namespace modcon::sim {

class register_file {
 public:
  reg_id alloc(word init);
  reg_id alloc_block(std::uint32_t count, word init);

  word read(reg_id r) const;
  void write(reg_id r, word v);

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(values_.size());
  }

  // Number of writes applied to r so far (missed probabilistic writes
  // excluded).  The Theorem 7 analysis is a statement about this count
  // on the conciliator's register — "with constant probability only one
  // write occurs" — so the E1 bench reads it directly.
  std::uint64_t writes_applied(reg_id r) const;

  // Restores every register to its initial value (fresh execution of the
  // same object graph; used by the replay-based explorer).
  void reset();

 private:
  std::vector<word> values_;
  std::vector<word> initial_;
  std::vector<std::uint64_t> write_counts_;
};

}  // namespace modcon::sim
