// The simulated multiwriter-register memory.
//
// Registers are atomic by construction here: the simulator executes one
// operation at a time, so every read returns the last value written —
// exactly the model of §2.
//
// Fault injection (optional, off by default): `enable_faults` weakens the
// semantics *as observed by processes* while keeping the ground truth
// intact for the adversary, the trace, and test peeks:
//
//   * regular mode — a process read may return the register's previous
//     value instead of the current one (a stale read).  This is the
//     observable difference between an atomic and a regular register in a
//     one-op-at-a-time schedule: a reader overlapping a write may see
//     either the old or the new value (Hadzilacos–Hu–Toueg 2020 study
//     consensus under exactly this weakening).
//   * bounded transient write omission — while a budget lasts, a process
//     write may be silently dropped.
//
// Register *semantics* (Lamport's hierarchy, also optional and off by
// default): the probabilistic stale mode above approximates regularity
// with a one-generation history; `register_semantics` models the real
// thing.  The world passes each process read the set of writes pending
// on the same cell (posted to the scheduler but not yet executed — the
// sim's notion of an overlapping write):
//
//   * regular — the read returns the last complete write or the value of
//     any overlapping write (one fault-coin draw per read picks which).
//   * safe    — a read overlapping any write returns an arbitrary value
//     from the cell's value history (every value the cell ever held);
//     non-overlapping reads stay truthful.  Drawing from the history
//     rather than all 2^64 words keeps "arbitrary" inside the domain the
//     protocols encode into the cell, per the model in MODEL.md.
//
// Both faults and semantics are driven by a private RNG seeded from the
// trial seed, so every injected schedule reproduces exactly from
// (seed, fault config).
//
// Durability: each cell is tagged persistent (default) or volatile at
// allocation time, from the owning address_space's allocation scope.  A
// crash-*recovery* event (as opposed to a plain restart) calls
// `wipe_volatile`, which reinitializes every volatile cell — persistent
// cells are the model's non-volatile memory and survive.
//
// Layout: one `cell` struct per register (value/previous/initial/write
// count together), so the write path touches a single cache line instead
// of four parallel arrays, and the fault-free fast paths are inline
// single-branch functions — this is the innermost loop of every sim
// trial.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/types.h"
#include "util/assertx.h"
#include "util/rng.h"

namespace modcon::sim {

// Lamport's register hierarchy, weakest first.  Atomic is the paper's
// model and the default; regular and safe are the semantics modes of the
// file comment.
enum class register_semantics : std::uint8_t { atomic, regular, safe };

const char* to_string(register_semantics s);

inline const char* to_string(register_semantics s) {
  switch (s) {
    case register_semantics::atomic: return "atomic";
    case register_semantics::regular: return "regular";
    case register_semantics::safe: return "safe";
  }
  return "?";
}

// Configuration for injected register faults (see file comment).  Part of
// the analysis-layer fault_plan; designated-initializer friendly.
struct register_fault_config {
  // Regular-register mode: each process read returns the previous value
  // with probability 1/stale_denominator.
  bool regular = false;
  std::uint64_t stale_denominator = 4;
  // Transient write omission: while omit_budget lasts, each process write
  // is dropped with probability 1/omit_denominator (0 disables).
  std::uint64_t omit_denominator = 0;
  std::uint64_t omit_budget = 0;
  // True register semantics (see file comment).  Mutually exclusive with
  // the probabilistic stale mode above — enable_faults asserts.
  register_semantics semantics = register_semantics::atomic;

  bool enabled() const {
    return regular || (omit_denominator != 0 && omit_budget != 0) ||
           semantics != register_semantics::atomic;
  }
};

class register_file {
 public:
  reg_id alloc(word init, bool volatile_cell = false);
  reg_id alloc_block(std::uint32_t count, word init,
                     bool volatile_cell = false);

  word read(reg_id r) const {
    MODCON_CHECK_MSG(r < cells_.size(), "read of unallocated register " << r);
    return cells_[r].value;
  }

  void write(reg_id r, word v) {
    MODCON_CHECK_MSG(r < cells_.size(), "write of unallocated register " << r);
    cell& c = cells_[r];
    c.previous = c.value;
    c.value = v;
    ++c.writes;
    if (track_history_) [[unlikely]]
      note_history(r, v);
  }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(cells_.size());
  }

  // Number of writes applied to r so far (missed probabilistic writes and
  // omitted writes excluded).  The Theorem 7 analysis is a statement
  // about this count on the conciliator's register — "with constant
  // probability only one write occurs" — so the E1 bench reads it
  // directly.
  std::uint64_t writes_applied(reg_id r) const;

  // --- fault injection -------------------------------------------------
  // Arms the fault config with a deterministic RNG stream.  Must be
  // called before any process operation; `read`/`write` above stay
  // truthful (they serve the adversary view, the trace, and tests), while
  // the process-facing accessors below apply the configured faults.
  void enable_faults(const register_fault_config& cfg, std::uint64_t seed);

  // Process-facing read: returns the previous value instead of the
  // current one when the fault coin says stale (regular mode).
  word process_read(reg_id r) {
    word v = read(r);
    if (!stale_armed_) [[likely]]
      return v;
    return faulty_read(r, v);
  }

  // Process-facing write: returns false (register unchanged) if the write
  // was omitted; true if applied.
  bool process_write(reg_id r, word v) {
    // The coin-draw gate must match enable_faults' arming exactly: the
    // injection *schedule* is a function of the seed alone.
    if (omit_armed_ && omissions_left_ > 0) [[unlikely]]
      return faulty_write(r, v);
    write(r, v);
    return true;
  }

  // Process-facing read under a true semantics mode (enable_faults with
  // semantics != atomic).  `pending` holds the values of writes to r that
  // are posted but not yet executed by *other* processes — the overlap
  // set.  One fault-coin draw per read with a nonempty choice, so the
  // schedule reproduces from the seed.
  word semantic_read(reg_id r, std::span<const word> pending);

  bool semantics_armed() const { return semantics_armed_; }
  register_semantics semantics() const { return faults_.semantics; }

  // --- model-checker hooks (check/explorer) ----------------------------
  // The explorer resolves fault outcomes by enumeration instead of coin
  // draws; these expose the state it needs to build the option sets and
  // to apply a chosen outcome without consuming the fault RNG stream.
  bool omission_armed() const { return omit_armed_; }
  std::uint64_t omissions_left() const { return omissions_left_; }
  // Applies an explicitly chosen omission: the write is dropped, the
  // budget decremented, exactly as if the fault coin had said omit.
  void force_omit() {
    MODCON_CHECK_MSG(omit_armed_ && omissions_left_ > 0,
                     "forced omission without an armed budget");
    --omissions_left_;
    ++omitted_writes_;
  }
  // The draw domain of an overlapped safe read (every value the cell ever
  // held, deduplicated, insertion order).  Requires safe semantics.
  std::span<const word> history_of(reg_id r) const {
    MODCON_CHECK_MSG(track_history_ && r < history_.size(),
                     "value history requires safe semantics");
    return history_[r];
  }

  std::uint64_t stale_reads() const { return stale_reads_; }
  std::uint64_t omitted_writes() const { return omitted_writes_; }
  // Reads answered from the overlap set (regular) or the value history
  // (safe) instead of the current value.
  std::uint64_t overlap_reads() const { return overlap_reads_; }

  word initial_of(reg_id r) const {
    MODCON_CHECK_MSG(r < cells_.size(), "unallocated register " << r);
    return cells_[r].initial;
  }

  // --- durability ------------------------------------------------------
  bool is_volatile(reg_id r) const {
    MODCON_CHECK_MSG(r < cells_.size(), "unallocated register " << r);
    return cells_[r].volatile_cell;
  }

  const std::vector<reg_id>& volatile_registers() const {
    return volatile_regs_;
  }

  // Crash-recovery: reinitializes every volatile cell (counted as an
  // applied write, like reinit).  Persistent cells are untouched.
  void wipe_volatile();

  std::uint64_t volatile_wipes() const { return volatile_wipes_; }

  // Restores every register to its initial value and the fault machinery
  // to its armed state (fresh execution of the same object graph; used by
  // the replay-based explorer).
  void reset();

 private:
  // One register: current value, the previous value (candidate result of
  // a stale read), the allocation-time value (for reset/replay), the
  // applied-write count, and the durability tag.  The tag rides in the
  // cell so the wipe/query paths stay one lookup; it is cold on the
  // fault-free fast paths.
  struct cell {
    word value;
    word previous;
    word initial;
    std::uint64_t writes;
    bool volatile_cell;
  };

  word faulty_read(reg_id r, word v);
  bool faulty_write(reg_id r, word v);
  void note_history(reg_id r, word v);

  std::vector<cell> cells_;
  std::vector<reg_id> volatile_regs_;
  // Per-cell value history, maintained only under safe semantics (the
  // draw domain of an overlapped safe read).  Deduplicated; registers
  // hold few distinct values in practice.
  std::vector<std::vector<word>> history_;

  register_fault_config faults_;
  bool faults_enabled_ = false;
  // Precomputed fast-path gates, equivalent to the full fault predicates.
  bool stale_armed_ = false;
  bool omit_armed_ = false;
  bool semantics_armed_ = false;
  bool track_history_ = false;  // safe semantics: record the draw domain
  std::uint64_t fault_seed_ = 0;
  rng fault_rng_;
  std::uint64_t omissions_left_ = 0;
  std::uint64_t stale_reads_ = 0;
  std::uint64_t omitted_writes_ = 0;
  std::uint64_t overlap_reads_ = 0;
  std::uint64_t volatile_wipes_ = 0;
};

}  // namespace modcon::sim
