// The simulated multiwriter-register memory.
//
// Registers are atomic by construction here: the simulator executes one
// operation at a time, so every read returns the last value written —
// exactly the model of §2.
//
// Fault injection (optional, off by default): `enable_faults` weakens the
// semantics *as observed by processes* while keeping the ground truth
// intact for the adversary, the trace, and test peeks:
//
//   * regular mode — a process read may return the register's previous
//     value instead of the current one (a stale read).  This is the
//     observable difference between an atomic and a regular register in a
//     one-op-at-a-time schedule: a reader overlapping a write may see
//     either the old or the new value (Hadzilacos–Hu–Toueg 2020 study
//     consensus under exactly this weakening).
//   * bounded transient write omission — while a budget lasts, a process
//     write may be silently dropped.
//
// Both are driven by a private RNG seeded from the trial seed, so every
// injected fault schedule reproduces exactly from (seed, fault config).
//
// Layout: one `cell` struct per register (value/previous/initial/write
// count together), so the write path touches a single cache line instead
// of four parallel arrays, and the fault-free fast paths are inline
// single-branch functions — this is the innermost loop of every sim
// trial.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/types.h"
#include "util/assertx.h"
#include "util/rng.h"

namespace modcon::sim {

// Configuration for injected register faults (see file comment).  Part of
// the analysis-layer fault_plan; designated-initializer friendly.
struct register_fault_config {
  // Regular-register mode: each process read returns the previous value
  // with probability 1/stale_denominator.
  bool regular = false;
  std::uint64_t stale_denominator = 4;
  // Transient write omission: while omit_budget lasts, each process write
  // is dropped with probability 1/omit_denominator (0 disables).
  std::uint64_t omit_denominator = 0;
  std::uint64_t omit_budget = 0;

  bool enabled() const {
    return regular || (omit_denominator != 0 && omit_budget != 0);
  }
};

class register_file {
 public:
  reg_id alloc(word init);
  reg_id alloc_block(std::uint32_t count, word init);

  word read(reg_id r) const {
    MODCON_CHECK_MSG(r < cells_.size(), "read of unallocated register " << r);
    return cells_[r].value;
  }

  void write(reg_id r, word v) {
    MODCON_CHECK_MSG(r < cells_.size(), "write of unallocated register " << r);
    cell& c = cells_[r];
    c.previous = c.value;
    c.value = v;
    ++c.writes;
  }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(cells_.size());
  }

  // Number of writes applied to r so far (missed probabilistic writes and
  // omitted writes excluded).  The Theorem 7 analysis is a statement
  // about this count on the conciliator's register — "with constant
  // probability only one write occurs" — so the E1 bench reads it
  // directly.
  std::uint64_t writes_applied(reg_id r) const;

  // --- fault injection -------------------------------------------------
  // Arms the fault config with a deterministic RNG stream.  Must be
  // called before any process operation; `read`/`write` above stay
  // truthful (they serve the adversary view, the trace, and tests), while
  // the process-facing accessors below apply the configured faults.
  void enable_faults(const register_fault_config& cfg, std::uint64_t seed);

  // Process-facing read: returns the previous value instead of the
  // current one when the fault coin says stale (regular mode).
  word process_read(reg_id r) {
    word v = read(r);
    if (!stale_armed_) [[likely]]
      return v;
    return faulty_read(r, v);
  }

  // Process-facing write: returns false (register unchanged) if the write
  // was omitted; true if applied.
  bool process_write(reg_id r, word v) {
    // The coin-draw gate must match enable_faults' arming exactly: the
    // injection *schedule* is a function of the seed alone.
    if (omit_armed_ && omissions_left_ > 0) [[unlikely]]
      return faulty_write(r, v);
    write(r, v);
    return true;
  }

  std::uint64_t stale_reads() const { return stale_reads_; }
  std::uint64_t omitted_writes() const { return omitted_writes_; }

  // Restores every register to its initial value and the fault machinery
  // to its armed state (fresh execution of the same object graph; used by
  // the replay-based explorer).
  void reset();

 private:
  // One register: current value, the previous value (candidate result of
  // a stale read), the allocation-time value (for reset/replay), and the
  // applied-write count.
  struct cell {
    word value;
    word previous;
    word initial;
    std::uint64_t writes;
  };

  word faulty_read(reg_id r, word v);
  bool faulty_write(reg_id r, word v);

  std::vector<cell> cells_;

  register_fault_config faults_;
  bool faults_enabled_ = false;
  // Precomputed fast-path gates, equivalent to the full fault predicates.
  bool stale_armed_ = false;
  bool omit_armed_ = false;
  std::uint64_t fault_seed_ = 0;
  rng fault_rng_;
  std::uint64_t omissions_left_ = 0;
  std::uint64_t stale_reads_ = 0;
  std::uint64_t omitted_writes_ = 0;
};

}  // namespace modcon::sim
