#include "sim/adversaries/greedy_overwrite.h"

#include "sim/world.h"

#include "util/assertx.h"

namespace modcon::sim {

void greedy_overwrite::reset(std::size_t n, std::uint64_t /*seed*/) {
  learned_inputs_.assign(n, kBot);
}

process_id greedy_overwrite::pick(const sched_view& view) {
  auto runnable = view.runnable();
  MODCON_CHECK(!runnable.empty());

  // Learn inputs from the values of pending writes (visible to a
  // location-oblivious adversary).
  for (process_id p : runnable) {
    if (learned_inputs_[p] == kBot && view.kind_of(p) == op_kind::write)
      learned_inputs_[p] = view.value_of(p);
  }

  const word cur = view.memory(target_);

  if (cur == kBot) {
    // Phase 1: build the stockpile, then release writes one at a time.
    process_id best_write = kInvalidProcess;
    std::uint64_t best_ops = 0;
    for (process_id p : runnable) {
      if (view.kind_of(p) != op_kind::write) return p;  // advance reads
      std::uint64_t ops = view.ops_done(p);
      bool better = best_write == kInvalidProcess ||
                    (impatient_first_ ? ops > best_ops : ops < best_ops);
      if (better) {
        best_write = p;
        best_ops = ops;
      }
    }
    return best_write;
  }

  // Phase 2: lock the landed value into outputs — run every process whose
  // input matches the register (their writes are harmless, their reads
  // retire them).  Processes whose input we never learned are harmless
  // too: their read returns cur.
  for (process_id p : runnable) {
    word input = learned_inputs_[p];
    if (input == cur || (input == kBot && view.kind_of(p) != op_kind::write))
      return p;
  }

  // Phase 3: fire conflicting stockpiled writes, most impatient first.
  process_id best_write = kInvalidProcess;
  std::uint64_t best_ops = 0;
  for (process_id p : runnable) {
    if (view.kind_of(p) != op_kind::write) continue;
    std::uint64_t ops = view.ops_done(p);
    if (best_write == kInvalidProcess || ops > best_ops) {
      best_write = p;
      best_ops = ops;
    }
  }
  if (best_write != kInvalidProcess) return best_write;

  // Only conflicting readers remain and every flip attempt missed: they
  // retire on the winning value (the agreement case the theorem's bound
  // concedes).
  return runnable.front();
}

}  // namespace modcon::sim
