#include "sim/adversaries/random_oblivious.h"

#include "sim/world.h"

#include "util/assertx.h"

namespace modcon::sim {

void random_oblivious::reset(std::size_t /*n*/, std::uint64_t seed) {
  // Derive a stream distinct from every process stream (which are seeded
  // from splitmix64(seed) ^ f(pid)).
  rng_.reseed(rng(seed ^ 0xadadadadadadadadULL));
}

process_id random_oblivious::pick(const sched_view& view) {
  auto runnable = view.runnable();
  MODCON_CHECK(!runnable.empty());
  return runnable[rng_.below(runnable.size())];
}

}  // namespace modcon::sim
