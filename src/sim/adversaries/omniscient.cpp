#include "sim/adversaries/omniscient.h"

#include "sim/world.h"

#include "util/assertx.h"

namespace modcon::sim {

void omniscient_splitter::reset(std::size_t /*n*/, std::uint64_t /*seed*/) {
  phase_ = phase::stockpile;
  driving_ = kInvalidProcess;
  locked_value_ = kBot;
}

// The attack in phases (see header):
//   stockpile   cur == ⊥: advance reads and burn known-failing writes
//               until two known-successful writes with distinct values
//               are pending, then release one (its owner becomes the
//               victim).
//   drive       run the victim alone: its next operation is a read of
//               its own landed value, so it halts returning it.
//   split       flip the register to a different value (a pending
//               success with value != cur), then walk one more process
//               through a cur-preserving write and its read, so it halts
//               with the flipped value — disagreement is then locked in.
process_id omniscient_splitter::pick(const sched_view& view) {
  auto runnable = view.runnable();
  MODCON_CHECK(!runnable.empty());

  if (driving_ != kInvalidProcess) {
    if (view.is_runnable(driving_)) return driving_;
    driving_ = kInvalidProcess;  // it halted; move on
    if (phase_ == phase::drive) phase_ = phase::split;
    else if (phase_ == phase::finish) phase_ = phase::done;
  }

  const word cur = view.memory(target_);

  // Classify pending operations.
  process_id any_read = kInvalidProcess;
  process_id succ_a = kInvalidProcess;       // a pending successful write
  process_id succ_b = kInvalidProcess;       // one with a different value
  process_id failing = kInvalidProcess;      // a write that will miss
  process_id succ_diff_cur = kInvalidProcess;
  process_id succ_same_cur = kInvalidProcess;
  for (process_id p : runnable) {
    if (view.kind_of(p) != op_kind::write) {
      if (any_read == kInvalidProcess) any_read = p;
      continue;
    }
    if (view.reg_of(p) != target_) continue;
    if (!view.coin_of(p)) {
      if (failing == kInvalidProcess) failing = p;
      continue;
    }
    word v = view.value_of(p);
    if (succ_a == kInvalidProcess) {
      succ_a = p;
    } else if (succ_b == kInvalidProcess && v != view.value_of(succ_a)) {
      succ_b = p;
    }
    if (v != cur && succ_diff_cur == kInvalidProcess) succ_diff_cur = p;
    if (v == cur && succ_same_cur == kInvalidProcess) succ_same_cur = p;
  }

  switch (phase_) {
    case phase::stockpile: {
      if (cur != kBot) {
        // A value landed without our blessing (e.g. an unexpected
        // schedule shape): lock in the current value by driving any
        // reader to completion, then split.
        phase_ = phase::split;
        return pick(view);
      }
      if (succ_a != kInvalidProcess && succ_b != kInvalidProcess) {
        // Two distinct-value successes in hand: fire one; its owner's
        // next operation is a read of its own value, making it the
        // victim.
        locked_value_ = view.value_of(succ_a);
        driving_ = succ_a;
        phase_ = phase::drive;
        return succ_a;
      }
      if (any_read != kInvalidProcess) return any_read;  // grow the pile
      if (failing != kInvalidProcess) return failing;    // free move
      if (succ_a != kInvalidProcess) {
        // Only same-valued successes pending; no split is possible this
        // round — release one and keep trying after it lands.
        locked_value_ = view.value_of(succ_a);
        driving_ = succ_a;
        phase_ = phase::drive;
        return succ_a;
      }
      return runnable.front();
    }

    case phase::drive:
      return driving_ != kInvalidProcess ? driving_ : runnable.front();

    case phase::split: {
      if (locked_value_ == kBot) locked_value_ = cur;
      if (cur == locked_value_ || cur == kBot) {
        // Flip the register away from the victim's value.
        if (succ_diff_cur != kInvalidProcess) return succ_diff_cur;
        if (failing != kInvalidProcess) return failing;
        if (any_read != kInvalidProcess) return any_read;
        return runnable.front();
      }
      // Register differs from the victim's output: walk one process to a
      // halt on the current value without disturbing the register.
      if (any_read != kInvalidProcess) {
        driving_ = any_read;
        phase_ = phase::finish;
        return any_read;
      }
      if (failing != kInvalidProcess) return failing;
      if (succ_same_cur != kInvalidProcess) return succ_same_cur;
      // Only value-flipping successes remain; forced to release one.
      if (succ_a != kInvalidProcess) return succ_a;
      return runnable.front();
    }

    case phase::finish:
      return driving_ != kInvalidProcess ? driving_ : runnable.front();

    case phase::done:
      return runnable.front();
  }
  return runnable.front();
}

}  // namespace modcon::sim
