// Umbrella header: every scheduler in the portfolio.
#pragma once

#include "sim/adversaries/fixed_order.h"
#include "sim/adversaries/greedy_overwrite.h"
#include "sim/adversaries/lockstep.h"
#include "sim/adversaries/noisy.h"
#include "sim/adversaries/omniscient.h"
#include "sim/adversaries/priority.h"
#include "sim/adversaries/quantum.h"
#include "sim/adversaries/random_oblivious.h"
#include "sim/adversaries/round_robin.h"
#include "sim/adversaries/scripted.h"
#include "sim/adversaries/stockpiler.h"
