// Out-of-model adversary that can see the outcome of the local coin
// attached to every pending probabilistic write (experiment E5).
//
// No adversary in the paper's models has this power — a location-oblivious
// adversary "cannot choose whether to allow the write operation based on
// the outcome of the coin-flip" (§2.1).  With it, the first-mover
// conciliator can be driven to near-certain disagreement:
//
//   1. stockpile pending writes, then release one that is known to
//      succeed (the "victim"'s value v lands in the register);
//   2. run the victim alone: it reads v and returns v;
//   3. release a stockpiled write known to succeed with a value != v;
//   4. let everyone else read: they return the new value.
//
// Measuring agreement probability under this adversary (it collapses)
// next to the in-model attackers (it stays above δ) demonstrates that
// Theorem 7 genuinely needs the model restriction.
#pragma once

#include "sim/adversary.h"

namespace modcon::sim {

class omniscient_splitter final : public adversary {
 public:
  explicit omniscient_splitter(reg_id target) : target_(target) {}

  adversary_power power() const override {
    return adversary_power::omniscient;
  }
  std::string name() const override { return "omniscient-splitter"; }
  void reset(std::size_t n, std::uint64_t seed) override;
  process_id pick(const sched_view& view) override;

 private:
  enum class phase { stockpile, drive, split, finish, done };

  reg_id target_;
  phase phase_ = phase::stockpile;
  process_id driving_ = kInvalidProcess;
  word locked_value_ = kBot;
};

}  // namespace modcon::sim
