#include "sim/adversaries/round_robin.h"

#include "sim/world.h"

#include "util/assertx.h"

namespace modcon::sim {

void round_robin::reset(std::size_t n, std::uint64_t /*seed*/) {
  n_ = n;
  cursor_ = 0;
}

process_id round_robin::pick(const sched_view& view) {
  MODCON_CHECK(!view.runnable().empty());
  for (std::size_t tries = 0; tries < n_; ++tries) {
    process_id candidate = cursor_;
    cursor_ = static_cast<process_id>((cursor_ + 1) % n_);
    if (view.is_runnable(candidate)) return candidate;
  }
  return view.runnable().front();  // unreachable if runnable ⊆ [0, n)
}

}  // namespace modcon::sim
