#include "sim/adversaries/noisy.h"

#include "sim/world.h"

#include <cmath>

#include "util/assertx.h"

namespace modcon::sim {

void noisy::reset(std::size_t n, std::uint64_t seed) {
  rng_ = rng(seed ^ 0x7015e7015e7015e0ULL);
  next_time_.assign(n, 0.0);
  for (auto& t : next_time_) t = next_interval();
}

double noisy::next_interval() {
  // Box–Muller; one draw per call is plenty here.
  double u1 = rng_.uniform01();
  double u2 = rng_.uniform01();
  if (u1 <= 0.0) u1 = 1e-300;
  double gauss = std::sqrt(-2.0 * std::log(u1)) *
                 std::cos(2.0 * 3.14159265358979323846 * u2);
  return std::exp(sigma_ * gauss);
}

process_id noisy::pick(const sched_view& view) {
  auto runnable = view.runnable();
  MODCON_CHECK(!runnable.empty());
  process_id best = runnable.front();
  for (process_id p : runnable)
    if (next_time_[p] < next_time_[best]) best = p;
  next_time_[best] += next_interval();
  return best;
}

}  // namespace modcon::sim
