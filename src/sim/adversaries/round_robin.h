// Round-robin scheduler: the canonical oblivious adversary.  Processes
// take steps in cyclic pid order; halted/crashed processes are skipped
// (their slots in the a-priori schedule are dropped, as in the model).
#pragma once

#include "sim/adversary.h"

namespace modcon::sim {

class round_robin final : public adversary {
 public:
  adversary_power power() const override {
    return adversary_power::oblivious;
  }
  std::string name() const override { return "round-robin"; }
  void reset(std::size_t n, std::uint64_t seed) override;
  process_id pick(const sched_view& view) override;

 private:
  std::size_t n_ = 0;
  process_id cursor_ = 0;
};

}  // namespace modcon::sim
