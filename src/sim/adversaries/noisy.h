// The noisy scheduler of Aspnes's "Fast deterministic consensus in a
// noisy environment" [5], used by §4.2: the adversary fixes the timing of
// every process's steps in advance, but each inter-step interval is
// perturbed by random noise the adversary does not control.  The
// cumulative noise eventually pushes some process well ahead of the
// others, which is what makes the ratifier-only ladder R₁; R₂; …
// terminate.
//
// Each process p takes its next step at time t_p, initially jittered;
// after each step, t_p increases by a log-normal interval
// exp(sigma · N(0,1)).  sigma = 0 degenerates to (deterministic)
// round-robin; larger sigma separates the processes faster.
#pragma once

#include <vector>

#include "sim/adversary.h"
#include "util/rng.h"

namespace modcon::sim {

class noisy final : public adversary {
 public:
  explicit noisy(double sigma) : sigma_(sigma) {}

  adversary_power power() const override {
    return adversary_power::oblivious;
  }
  std::string name() const override { return "noisy"; }
  void reset(std::size_t n, std::uint64_t seed) override;
  process_id pick(const sched_view& view) override;

  double sigma() const { return sigma_; }

 private:
  double next_interval();

  double sigma_;
  rng rng_;
  std::vector<double> next_time_;
};

}  // namespace modcon::sim
