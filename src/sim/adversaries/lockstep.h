// Lockstep scheduler: always runs a process with the fewest operations
// executed so far (ties by pid).  This is the purest anti-progress
// oblivious strategy — it keeps every process maximally synchronized,
// which is the worst case for protocols that rely on somebody pulling
// ahead (ratifier-only ladders stall forever; racing protocols live or
// die by their hidden coins).  Round-robin approximates it only while
// all programs have identical operation counts.
#pragma once

#include "sim/adversary.h"

namespace modcon::sim {

class lockstep final : public adversary {
 public:
  adversary_power power() const override {
    return adversary_power::oblivious;
  }
  std::string name() const override { return "lockstep"; }
  void reset(std::size_t, std::uint64_t) override {}
  process_id pick(const sched_view& view) override;
};

}  // namespace modcon::sim
