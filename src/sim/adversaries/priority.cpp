#include "sim/adversaries/priority.h"

#include "sim/world.h"

#include <numeric>

#include "util/assertx.h"

namespace modcon::sim {

void priority_sched::reset(std::size_t n, std::uint64_t /*seed*/) {
  if (order_.empty()) {
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), process_id{0});
  }
  MODCON_CHECK_MSG(order_.size() == n, "priority order size != n");
}

process_id priority_sched::pick(const sched_view& view) {
  MODCON_CHECK(!view.runnable().empty());
  for (process_id p : order_)
    if (view.is_runnable(p)) return p;
  return view.runnable().front();  // unreachable
}

}  // namespace modcon::sim
