#include "sim/adversaries/lockstep.h"

#include "sim/world.h"

#include "util/assertx.h"

namespace modcon::sim {

process_id lockstep::pick(const sched_view& view) {
  auto runnable = view.runnable();
  MODCON_CHECK(!runnable.empty());
  process_id best = runnable.front();
  std::uint64_t best_ops = view.ops_done(best);
  for (process_id p : runnable) {
    std::uint64_t ops = view.ops_done(p);
    if (ops < best_ops || (ops == best_ops && p < best)) {
      best = p;
      best_ops = ops;
    }
  }
  return best;
}

}  // namespace modcon::sim
