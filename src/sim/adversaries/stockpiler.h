// The "stockpiler" variant of the greedy overwrite attack: while no value
// has landed it fires the *least* impatient pending write, keeping the
// high-probability writes of impatient processes in reserve for the
// moment a winner appears.  See greedy_overwrite.h for the mechanics.
#pragma once

#include "sim/adversaries/greedy_overwrite.h"

namespace modcon::sim {

class stockpiler final : public adversary {
 public:
  explicit stockpiler(reg_id target) : inner_(target, false) {}

  adversary_power power() const override { return inner_.power(); }
  std::string name() const override { return inner_.name(); }
  void reset(std::size_t n, std::uint64_t seed) override {
    inner_.reset(n, seed);
  }
  process_id pick(const sched_view& view) override {
    return inner_.pick(view);
  }

 private:
  greedy_overwrite inner_;
};

}  // namespace modcon::sim
