// Fixed-permutation oblivious schedulers.
//
// `interleaved` cycles through a fixed permutation of the pids (a general
// oblivious adversary: "schedules processes in a fixed order", §2.1).
//
// `sequential` runs the first process of the permutation until it halts,
// then the next, and so on — the schedule that exercises the fast path of
// §4.1 ("some process finishes R₋₁ before any process with a different
// input arrives").
#pragma once

#include <vector>

#include "sim/adversary.h"

namespace modcon::sim {

class fixed_order final : public adversary {
 public:
  enum class mode { interleaved, sequential };

  // An empty permutation means identity (0, 1, ..., n-1).
  explicit fixed_order(mode m, std::vector<process_id> permutation = {})
      : mode_(m), perm_(std::move(permutation)) {}

  adversary_power power() const override {
    return adversary_power::oblivious;
  }
  std::string name() const override {
    return mode_ == mode::interleaved ? "fixed-interleaved"
                                      : "fixed-sequential";
  }
  void reset(std::size_t n, std::uint64_t seed) override;
  process_id pick(const sched_view& view) override;

 private:
  mode mode_;
  std::vector<process_id> perm_;
  std::size_t cursor_ = 0;
};

}  // namespace modcon::sim
