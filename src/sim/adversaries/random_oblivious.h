// Uniform-random oblivious scheduler.  Each step it picks a uniformly
// random runnable process using its own seed stream, which is independent
// of every process's local coin.  This is the "neutral" scheduler used for
// expected-work measurements.
#pragma once

#include "sim/adversary.h"
#include "util/rng.h"

namespace modcon::sim {

class random_oblivious final : public adversary {
 public:
  adversary_power power() const override {
    return adversary_power::oblivious;
  }
  std::string name() const override { return "random"; }
  void reset(std::size_t n, std::uint64_t seed) override;
  process_id pick(const sched_view& view) override;
  rng_block* uniform_pick_stream() override { return &rng_; }

 private:
  // Block-buffered: one scheduling draw per simulated step is the hottest
  // RNG consumer in the repo.  Sequence-identical to a bare rng (see
  // util/rng.h).
  rng_block rng_;
};

}  // namespace modcon::sim
