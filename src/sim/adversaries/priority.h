// Priority-based scheduling as in Ramamurthy–Moir–Anderson [27], used by
// §4.2: each process has a fixed unique priority, and every step is taken
// by the highest-priority process that has a pending operation.  Under
// this scheduler the highest-priority live process runs alone until it
// halts, so the ratifier-only ladder decides.
#pragma once

#include <vector>

#include "sim/adversary.h"

namespace modcon::sim {

class priority_sched final : public adversary {
 public:
  // `order` lists pids from highest to lowest priority; empty = pid order.
  explicit priority_sched(std::vector<process_id> order = {})
      : order_(std::move(order)) {}

  adversary_power power() const override {
    return adversary_power::oblivious;
  }
  std::string name() const override { return "priority"; }
  void reset(std::size_t n, std::uint64_t seed) override;
  process_id pick(const sched_view& view) override;

 private:
  std::vector<process_id> order_;
};

}  // namespace modcon::sim
