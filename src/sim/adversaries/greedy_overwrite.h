// Location-oblivious attacker for first-mover conciliators (Theorem 7).
//
// The adversary watches the conciliator's register.  It cannot see where
// pending writes go or how their coins will land, but it CAN see the
// values of pending writes (§2.1), so it learns each process's input the
// first time that process holds a pending write.  The attack:
//
//   1. while the register is ⊥: advance reads so every process holds a
//      pending probabilistic write (the stockpile), then release writes
//      one at a time until one lands;
//   2. once a value v has landed: run every process whose input equals v
//      to completion — they read v and return it, locking v into some
//      outputs;
//   3. then release the stockpiled writes of differently-valued
//      processes, most impatient (highest success probability) first; if
//      any lands, the register flips and step 2's logic walks the
//      remaining processes to return the flipped value — disagreement.
//
// This is the worst case the proof of Theorem 7 charges for: agreement
// survives only if none of the stockpiled conflicting writes lands,
// which the Σp_i <= 3/4 argument bounds below by a constant.  Naive
// flush-writes-then-reads schedules (what a round-robin scheduler does)
// produce unanimity instead — everyone reads whatever landed last — so
// without steps 2-3 an "attacker" is no stronger than round-robin.
#pragma once

#include <vector>

#include "sim/adversary.h"

namespace modcon::sim {

class greedy_overwrite final : public adversary {
 public:
  // `target` is the conciliator's register id.  `release_impatient_first`
  // picks which stockpiled write to fire while the register is still ⊥:
  // true fires the most impatient (greedy variant), false the least
  // impatient, holding the high-probability writes in reserve for the
  // overwrite phase (the "stockpiler" variant, see stockpiler.h).
  explicit greedy_overwrite(reg_id target, bool release_impatient_first = true)
      : target_(target), impatient_first_(release_impatient_first) {}

  adversary_power power() const override {
    return adversary_power::location_oblivious;
  }
  std::string name() const override {
    return impatient_first_ ? "greedy-overwrite" : "stockpiler";
  }
  void reset(std::size_t n, std::uint64_t seed) override;
  process_id pick(const sched_view& view) override;

 private:
  reg_id target_;
  bool impatient_first_;
  std::vector<word> learned_inputs_;
};

}  // namespace modcon::sim
