// Scripted scheduler: replays an explicit pid sequence.
//
// This is the replay vehicle of the exhaustive explorer (src/check): a
// schedule prefix is a vector of pids; the explorer re-executes the world
// with successive prefixes to enumerate every interleaving.  After the
// script is exhausted it falls back to lowest-runnable-pid, which the
// explorer uses to complete executions deterministically.
#pragma once

#include "sim/world.h"
#include <vector>

#include "sim/adversary.h"
#include "util/assertx.h"

namespace modcon::sim {

class scripted final : public adversary {
 public:
  explicit scripted(std::vector<process_id> script)
      : script_(std::move(script)) {}

  adversary_power power() const override {
    // Replay needs no information at all; oblivious is the honest label.
    return adversary_power::oblivious;
  }
  std::string name() const override { return "scripted"; }
  void reset(std::size_t /*n*/, std::uint64_t /*seed*/) override {
    cursor_ = 0;
  }
  process_id pick(const sched_view& view) override {
    if (cursor_ < script_.size()) {
      process_id p = script_[cursor_++];
      MODCON_CHECK_MSG(view.is_runnable(p),
                       "scripted schedule names a non-runnable process");
      return p;
    }
    ++past_script_;
    return view.runnable().front();
  }

  // How many picks happened beyond the scripted prefix.
  std::uint64_t picks_past_script() const { return past_script_; }

 private:
  std::vector<process_id> script_;
  std::size_t cursor_ = 0;
  std::uint64_t past_script_ = 0;
};

}  // namespace modcon::sim
