#include "sim/adversaries/fixed_order.h"

#include "sim/world.h"

#include <numeric>

#include "util/assertx.h"

namespace modcon::sim {

void fixed_order::reset(std::size_t n, std::uint64_t /*seed*/) {
  if (perm_.empty()) {
    perm_.resize(n);
    std::iota(perm_.begin(), perm_.end(), process_id{0});
  }
  MODCON_CHECK_MSG(perm_.size() == n, "permutation size != n");
  cursor_ = 0;
}

process_id fixed_order::pick(const sched_view& view) {
  MODCON_CHECK(!view.runnable().empty());
  if (mode_ == mode::sequential) {
    // Stick with the current process until it leaves the runnable set.
    while (!view.is_runnable(perm_[cursor_])) {
      cursor_ = (cursor_ + 1) % perm_.size();
    }
    return perm_[cursor_];
  }
  for (std::size_t tries = 0; tries < perm_.size(); ++tries) {
    process_id candidate = perm_[cursor_];
    cursor_ = (cursor_ + 1) % perm_.size();
    if (view.is_runnable(candidate)) return candidate;
  }
  return view.runnable().front();
}

}  // namespace modcon::sim
