#include "sim/adversaries/quantum.h"

#include "sim/world.h"

#include "util/assertx.h"

namespace modcon::sim {

void quantum_sched::reset(std::size_t n, std::uint64_t /*seed*/) {
  MODCON_CHECK(quantum_ >= 1);
  n_ = n;
  current_ = 0;
  used_ = 0;
}

process_id quantum_sched::pick(const sched_view& view) {
  MODCON_CHECK(!view.runnable().empty());
  if (used_ >= quantum_ || !view.is_runnable(current_)) {
    used_ = 0;
    for (std::size_t tries = 0; tries < n_; ++tries) {
      current_ = static_cast<process_id>((current_ + 1) % n_);
      if (view.is_runnable(current_)) break;
    }
  }
  MODCON_CHECK(view.is_runnable(current_));
  ++used_;
  return current_;
}

}  // namespace modcon::sim
