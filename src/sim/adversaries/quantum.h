// Quantum-based scheduling (Anderson–Jain–Ott / Anderson–Moir, cited in
// §2.1): round-robin where each scheduled process runs for a quantum of q
// consecutive operations before the scheduler rotates.  q = 1 is plain
// round-robin; larger quanta give solo bursts that, like the priority
// scheduler, let the fast-path prefix of §4.1 decide early.
#pragma once

#include "sim/adversary.h"

namespace modcon::sim {

class quantum_sched final : public adversary {
 public:
  explicit quantum_sched(std::uint32_t quantum) : quantum_(quantum) {}

  adversary_power power() const override {
    return adversary_power::oblivious;
  }
  std::string name() const override { return "quantum"; }
  void reset(std::size_t n, std::uint64_t seed) override;
  process_id pick(const sched_view& view) override;

 private:
  std::uint32_t quantum_;
  std::size_t n_ = 0;
  process_id current_ = 0;
  std::uint32_t used_ = 0;
};

}  // namespace modcon::sim
