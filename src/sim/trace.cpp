#include "sim/trace.h"

#include <ostream>

namespace modcon::sim {

std::ostream& operator<<(std::ostream& os, const trace_event& e) {
  os << "#" << e.step << " p" << e.pid << " " << to_string(e.kind) << " r"
     << e.reg;
  if (e.kind != op_kind::read) {
    if (e.value == kBot)
      os << " := ⊥";
    else
      os << " := " << e.value;
    if (!e.applied) os << " (missed)";
  } else {
    if (e.value == kBot)
      os << " -> ⊥";
    else
      os << " -> " << e.value;
  }
  return os;
}

void trace::dump(std::ostream& os) const {
  for (const auto& e : events_) os << e << "\n";
}

}  // namespace modcon::sim
