#include "sim/trace.h"

#include <algorithm>
#include <ostream>

#include "util/assertx.h"

namespace modcon::sim {

std::ostream& operator<<(std::ostream& os, const trace_event& e) {
  os << "#" << e.step << " p" << e.pid << " " << to_string(e.kind) << " r"
     << e.reg;
  if (e.kind != op_kind::read) {
    if (e.value == kBot)
      os << " := ⊥";
    else
      os << " := " << e.value;
    if (!e.applied) os << " (missed)";
  } else {
    if (e.value == kBot)
      os << " -> ⊥";
    else
      os << " -> " << e.value;
  }
  return os;
}

void trace::record_collect(const trace_event& e,
                           std::span<const word> values) {
  if (!enabled_) return;
  if (size_ >= max_events_) {
    overflowed_ = true;
    return;
  }
  collect_index_.push_back(
      {size_, static_cast<std::uint32_t>(collect_pool_.size()),
       static_cast<std::uint32_t>(values.size())});
  collect_pool_.insert(collect_pool_.end(), values.begin(), values.end());
  record(e);
}

std::span<const word> trace::collect_values(std::size_t event_index) const {
  // collect_index_ is ordered by event_index (events are appended in
  // order), so a binary search suffices.
  auto it = std::lower_bound(
      collect_index_.begin(), collect_index_.end(), event_index,
      [](const collect_ref& c, std::size_t i) { return c.event_index < i; });
  if (it == collect_index_.end() || it->event_index != event_index) return {};
  return {collect_pool_.data() + it->offset, it->count};
}

void trace::note_alloc(reg_id first, std::uint32_t count, word init) {
  if (!enabled_) return;
  std::size_t need = static_cast<std::size_t>(first) + count;
  if (initial_.size() < need) {
    initial_.resize(need, 0);
    initial_known_.resize(need, 0);
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    initial_[first + i] = init;
    initial_known_[first + i] = 1;
  }
}

bool trace::has_initial(reg_id r) const {
  return r < initial_known_.size() && initial_known_[r] != 0;
}

word trace::initial_of(reg_id r) const {
  MODCON_CHECK_MSG(has_initial(r), "no recorded initial value for r" << r);
  return initial_[r];
}

std::vector<trace_event> trace::events() const {
  std::vector<trace_event> out;
  out.reserve(static_cast<std::size_t>(size_));
  for (std::uint64_t i = 0; i < size_; ++i) out.push_back(event(i));
  return out;
}

void trace::release_chunks() {
  for (auto& c : chunks_) chunk_pool<trace_chunk>::release(std::move(c));
  chunks_.clear();
}

void trace::clear() {
  release_chunks();
  size_ = 0;
  collect_index_.clear();
  collect_pool_.clear();
  initial_.clear();
  initial_known_.clear();
  overflowed_ = false;
}

void trace::dump(std::ostream& os) const {
  for (std::uint64_t i = 0; i < size_; ++i) os << event(i) << "\n";
  if (overflowed_) os << "... trace overflowed at " << max_events_ << "\n";
}

}  // namespace modcon::sim
