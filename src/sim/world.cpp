#include "sim/world.h"

#include <algorithm>

#include "util/assertx.h"

namespace modcon::sim {

// ---------------------------------------------------------------------
// sim_env awaiters
// ---------------------------------------------------------------------

void sim_env::read_awaiter::await_suspend(std::coroutine_handle<> h) {
  posted_op op;
  op.kind = op_kind::read;
  op.reg = r;
  op.read_slot = &result;
  op.k = h;
  e->w_->post(e->pid_, op);
}

void sim_env::write_awaiter::await_suspend(std::coroutine_handle<> h) {
  posted_op op;
  op.kind = op_kind::write;
  op.reg = r;
  op.value = v;
  op.probabilistic = !p.certain();
  op.coin_prob = p;
  // The coin is drawn from the process's own local coin, up front, so the
  // (out-of-model) omniscient adversary can inspect it.  In-model
  // adversaries cannot see it; drawing now vs. at execution time changes
  // nothing for them.
  op.coin_success = e->w_->sample_coin(e->pid_, p, e->rng_);
  op.k = h;
  e->w_->post(e->pid_, op);
}

void sim_env::detect_write_awaiter::await_suspend(std::coroutine_handle<> h) {
  posted_op op;
  op.kind = op_kind::write;
  op.reg = r;
  op.value = v;
  op.probabilistic = !p.certain();
  op.coin_prob = p;
  op.coin_success = e->w_->sample_coin(e->pid_, p, e->rng_);
  op.read_slot = &result;  // receives 1 if the write applied
  op.k = h;
  e->w_->post(e->pid_, op);
}

void sim_env::collect_awaiter::await_suspend(std::coroutine_handle<> h) {
  posted_op op;
  op.kind = op_kind::collect;
  op.reg = first;
  op.count = count;
  op.collect_slot = &result;
  op.k = h;
  e->w_->post(e->pid_, op);
}

std::size_t sim_env::n() const { return w_->n(); }

// ---------------------------------------------------------------------
// sched_view
// ---------------------------------------------------------------------

namespace {
const char* power_names[] = {"oblivious", "value-oblivious",
                             "location-oblivious", "adaptive", "omniscient"};
}

const char* to_string(adversary_power p) {
  return power_names[static_cast<int>(p)];
}

std::uint64_t sched_view::step() const { return w_->steps(); }
std::size_t sched_view::n() const { return w_->n(); }

std::span<const process_id> sched_view::runnable() const {
  return {w_->runnable_.data(), w_->runnable_.size()};
}

bool sched_view::is_runnable(process_id p) const {
  return p < w_->runnable_index_.size() &&
         w_->runnable_index_[p] != UINT32_MAX;
}

std::uint64_t sched_view::ops_done(process_id p) const {
  return w_->ops_of(p);
}

op_kind sched_view::kind_of(process_id p) const {
  MODCON_CHECK_MSG(caps_for(power_).kinds,
                   to_string(power_) << " adversary may not see op kinds");
  return pending_of(p).kind;
}

bool sched_view::location_visible(process_id p) const {
  const auto caps = caps_for(power_);
  if (!caps.kinds) return false;
  const auto& op = pending_of(p);
  return op.kind == op_kind::write ? caps.write_locations
                                   : caps.read_locations;
}

reg_id sched_view::reg_of(process_id p) const {
  const auto caps = caps_for(power_);
  const auto& op = pending_of(p);
  const bool allowed = op.kind == op_kind::write ? caps.write_locations
                                                 : caps.read_locations;
  MODCON_CHECK_MSG(allowed, to_string(power_)
                                << " adversary may not see the location of a "
                                << to_string(op.kind));
  return op.reg;
}

word sched_view::value_of(process_id p) const {
  MODCON_CHECK_MSG(caps_for(power_).values,
                   to_string(power_) << " adversary may not see values");
  const auto& op = pending_of(p);
  MODCON_CHECK_MSG(op.kind == op_kind::write,
                   "only pending writes carry a value");
  return op.value;
}

word sched_view::memory(reg_id r) const {
  MODCON_CHECK_MSG(caps_for(power_).memory,
                   to_string(power_) << " adversary may not read memory");
  return w_->regs_.read(r);
}

bool sched_view::coin_of(process_id p) const {
  MODCON_CHECK_MSG(caps_for(power_).coins,
                   to_string(power_)
                       << " adversary may not see local-coin outcomes");
  // With a coin override installed the pre-drawn value is a placeholder
  // (the real decision happens at execution time), so an omniscient view
  // would be lying.  The two features are mutually exclusive.
  MODCON_CHECK_MSG(!w_->coin_override_,
                   "coin_of is unavailable while a coin override is set");
  return pending_of(p).coin_success;
}

const posted_op& sched_view::pending_of(process_id p) const {
  MODCON_CHECK_MSG(p < w_->pcbs_.size(), "bad pid in adversary view access");
  const auto& pcb = *w_->pcbs_[p];
  MODCON_CHECK_MSG(pcb.has_op, "process " << p << " has no pending op");
  return pcb.op;
}

// ---------------------------------------------------------------------
// sim_world
// ---------------------------------------------------------------------

sim_world::sim_world(std::size_t n, adversary& adv, std::uint64_t seed,
                     world_options opts)
    : n_(n), adv_(adv), seed_(seed),
      coin_override_(std::move(opts.coin_override)) {
  MODCON_CHECK_MSG(n >= 1, "need at least one process");
  pcbs_.reserve(n);
  runnable_index_.assign(n, UINT32_MAX);
  trace_.enable(opts.trace_enabled);
  trace_.set_max_events(opts.trace_max_events);
  if (opts.register_faults.enabled()) {
    // Derive the fault stream from a *local copy* of the seed: splitmix64
    // advances its argument, and seed_ feeds the per-process rng streams,
    // which must be identical with and without faults armed.
    std::uint64_t fault_seed = seed ^ 0xd1b54a32d192ed03ULL;
    regs_.enable_faults(opts.register_faults, splitmix64(fault_seed));
  }
  adv_.reset(n, seed);
}

sim_world::~sim_world() = default;

process_id sim_world::spawn(
    const std::function<proc<word>(sim_env&)>& main) {
  MODCON_CHECK_MSG(pcbs_.size() < n_, "spawned more than n processes");
  auto pid = static_cast<process_id>(pcbs_.size());
  rng stream(splitmix64(seed_) ^ (0x9e3779b97f4a7c15ULL * (pid + 1)));
  pcbs_.push_back(std::make_unique<pcb>(this, pid, stream));
  pcb& p = *pcbs_.back();
  p.main = main;  // retained for crash-restart re-incarnation
  p.program = main(p.env);
  p.program.start();  // run free local computation to the first shared op
  after_resume(pid);
  if (!p.halted && !p.crashed) {
    runnable_index_[pid] = static_cast<std::uint32_t>(runnable_.size());
    runnable_.push_back(pid);
  }
  return pid;
}

void sim_world::crash_after(process_id pid, std::uint64_t after_ops) {
  MODCON_CHECK(pid < pcbs_.size());
  pcb& p = *pcbs_[pid];
  p.crash_planned = true;
  p.crash_threshold = after_ops;
  // Not gated on halted: a process that already decided at the threshold
  // is marked crashed as well (decided-then-crashed, see world.h).
  if (!p.crashed && p.ops >= after_ops) {
    p.crashed = true;
    remove_runnable(pid);
  }
}

void sim_world::restart_after(process_id pid, std::uint64_t after_ops) {
  MODCON_CHECK(pid < pcbs_.size());
  pcb& p = *pcbs_[pid];
  p.restart_points.push_back(after_ops);
  std::sort(p.restart_points.begin() +
                static_cast<std::ptrdiff_t>(p.next_restart),
            p.restart_points.end());
}

bool sim_world::sample_coin(process_id /*pid*/, const prob& p, rng& local) {
  if (p.certain()) return true;
  if (p.impossible()) return false;
  // With an override installed the pre-drawn value is a placeholder; the
  // real decision happens in execute().
  if (coin_override_) return false;
  return p.sample(local);
}

void sim_world::post(process_id pid, posted_op op) {
  pcb& p = *pcbs_[pid];
  MODCON_CHECK_MSG(!p.has_op, "process posted two operations at once");
  p.op = op;
  p.has_op = true;
}

void sim_world::remove_runnable(process_id pid) {
  std::uint32_t slot = runnable_index_[pid];
  if (slot == UINT32_MAX) return;
  process_id last = runnable_.back();
  runnable_[slot] = last;
  runnable_index_[last] = slot;
  runnable_.pop_back();
  runnable_index_[pid] = UINT32_MAX;
}

void sim_world::execute(process_id pid) {
  pcb& p = *pcbs_[pid];
  MODCON_CHECK_MSG(p.has_op && !p.halted && !p.crashed,
                   "adversary picked a non-runnable process");
  posted_op op = p.op;
  p.has_op = false;

  // Overridden coins are resolved at execution time (see world_options).
  if (op.probabilistic && coin_override_)
    op.coin_success = coin_override_(pid, op.coin_prob);

  // Process-facing accesses go through the fault layer (process_read /
  // process_write); with no faults armed they are plain read/write.  The
  // trace records what the process observed.
  trace_event ev{step_, pid, op.kind, op.reg, op.value, true};
  switch (op.kind) {
    case op_kind::read:
      *op.read_slot = regs_.process_read(op.reg);
      ev.value = *op.read_slot;
      break;
    case op_kind::write:
      if (op.coin_success)
        ev.applied = regs_.process_write(op.reg, op.value);
      else
        ev.applied = false;
      // Detecting writes report their outcome through the result slot.
      // An omitted write is *silent*: the detector still sees success —
      // that is what makes the omission a register fault rather than a
      // miss the algorithm could react to.
      if (op.read_slot != nullptr)
        *op.read_slot = op.coin_success ? 1 : 0;
      break;
    case op_kind::collect: {
      op.collect_slot->resize(op.count);
      for (std::uint32_t i = 0; i < op.count; ++i)
        (*op.collect_slot)[i] = regs_.process_read(op.reg + i);
      break;
    }
  }
  if (op.kind == op_kind::collect)
    trace_.record_collect(ev, *op.collect_slot);
  else
    trace_.record(ev);

  ++p.ops;
  ++total_ops_;
  ++step_;

  op.k.resume();
  after_resume(pid);

  // Crash check is not gated on halted: a process that returns on the very
  // op where its crash threshold is reached is decided-then-crashed (its
  // output escaped, but it is reported through crashed accounting).
  if (!p.crashed && p.crash_planned && p.ops >= p.crash_threshold) {
    p.crashed = true;
    remove_runnable(pid);
  }
  if (!p.halted && !p.crashed) maybe_restart(pid);
}

void sim_world::maybe_restart(process_id pid) {
  pcb& p = *pcbs_[pid];
  if (p.next_restart >= p.restart_points.size()) return;
  if (p.ops < p.restart_points[p.next_restart]) return;
  ++p.next_restart;
  ++p.restarts;
  ++total_restarts_;
  // The incarnation loses all local state: assigning a fresh program
  // destroys the old coroutine frame, including the awaiter holding any
  // pending operation (has_op was copied out; its slot pointers are never
  // dereferenced once cleared).  Shared registers persist, and the op
  // counter keeps accumulating across incarnations.
  p.has_op = false;
  p.output.reset();
  p.program = p.main(p.env);
  p.program.start();
  after_resume(pid);
}

void sim_world::after_resume(process_id pid) {
  pcb& p = *pcbs_[pid];
  if (p.has_op) return;  // suspended on its next operation
  MODCON_CHECK_MSG(p.program.done(),
                   "process suspended without posting an operation");
  p.halted = true;
  remove_runnable(pid);
  p.output = p.program.take_result();  // rethrows process exceptions
}

run_result sim_world::run(std::uint64_t max_steps) {
  MODCON_CHECK_MSG(pcbs_.size() == n_,
                   "run() before all n processes were spawned");
  std::uint64_t budget = max_steps;
  while (budget-- > 0) {
    if (runnable_.empty()) {
      bool all = std::all_of(pcbs_.begin(), pcbs_.end(),
                             [](const auto& p) { return p->halted; });
      return {all ? run_status::all_halted : run_status::no_runnable, step_};
    }
    sched_view view(*this, adv_.power());
    process_id pid = adv_.pick(view);
    MODCON_CHECK_MSG(pid < pcbs_.size() && runnable_index_[pid] != UINT32_MAX,
                     "adversary " << adv_.name()
                                  << " picked non-runnable process " << pid);
    execute(pid);
  }
  if (runnable_.empty()) {
    bool all = std::all_of(pcbs_.begin(), pcbs_.end(),
                           [](const auto& p) { return p->halted; });
    return {all ? run_status::all_halted : run_status::no_runnable, step_};
  }
  return {run_status::step_limit, step_};
}

bool sim_world::halted(process_id pid) const {
  MODCON_CHECK(pid < pcbs_.size());
  return pcbs_[pid]->halted;
}

bool sim_world::crashed(process_id pid) const {
  MODCON_CHECK(pid < pcbs_.size());
  return pcbs_[pid]->crashed;
}

std::uint64_t sim_world::restarts_of(process_id pid) const {
  MODCON_CHECK(pid < pcbs_.size());
  return pcbs_[pid]->restarts;
}

std::optional<word> sim_world::output_of(process_id pid) const {
  MODCON_CHECK(pid < pcbs_.size());
  return pcbs_[pid]->output;
}

std::uint64_t sim_world::ops_of(process_id pid) const {
  MODCON_CHECK(pid < pcbs_.size());
  return pcbs_[pid]->ops;
}

std::uint64_t sim_world::max_individual_ops() const {
  std::uint64_t m = 0;
  for (const auto& p : pcbs_) m = std::max(m, p->ops);
  return m;
}

}  // namespace modcon::sim
