#include "sim/world.h"

#include <algorithm>

#include "util/assertx.h"

namespace modcon::sim {

// ---------------------------------------------------------------------
// sim_env awaiters
// ---------------------------------------------------------------------

std::size_t sim_env::n() const { return w_->n(); }

// ---------------------------------------------------------------------
// sched_view
// ---------------------------------------------------------------------

namespace {
const char* power_names[] = {"oblivious", "value-oblivious",
                             "location-oblivious", "adaptive", "omniscient"};
}

const char* to_string(adversary_power p) {
  return power_names[static_cast<int>(p)];
}

op_kind sched_view::kind_of(process_id p) const {
  MODCON_CHECK_MSG(caps_for(power_).kinds,
                   to_string(power_) << " adversary may not see op kinds");
  return pending_of(p).kind;
}

bool sched_view::location_visible(process_id p) const {
  const auto caps = caps_for(power_);
  if (!caps.kinds) return false;
  const auto& op = pending_of(p);
  return op.kind == op_kind::write ? caps.write_locations
                                   : caps.read_locations;
}

reg_id sched_view::reg_of(process_id p) const {
  const auto caps = caps_for(power_);
  const auto& op = pending_of(p);
  const bool allowed = op.kind == op_kind::write ? caps.write_locations
                                                 : caps.read_locations;
  MODCON_CHECK_MSG(allowed, to_string(power_)
                                << " adversary may not see the location of a "
                                << to_string(op.kind));
  return op.reg;
}

word sched_view::value_of(process_id p) const {
  MODCON_CHECK_MSG(caps_for(power_).values,
                   to_string(power_) << " adversary may not see values");
  const auto& op = pending_of(p);
  MODCON_CHECK_MSG(op.kind == op_kind::write,
                   "only pending writes carry a value");
  return op.value;
}

word sched_view::memory(reg_id r) const {
  MODCON_CHECK_MSG(caps_for(power_).memory,
                   to_string(power_) << " adversary may not read memory");
  return w_->regs_.read(r);
}

bool sched_view::coin_of(process_id p) const {
  MODCON_CHECK_MSG(caps_for(power_).coins,
                   to_string(power_)
                       << " adversary may not see local-coin outcomes");
  // With a coin override installed the pre-drawn value is a placeholder
  // (the real decision happens at execution time), so an omniscient view
  // would be lying.  The two features are mutually exclusive.
  MODCON_CHECK_MSG(!w_->coin_override_,
                   "coin_of is unavailable while a coin override is set");
  return pending_of(p).coin_success;
}

// ---------------------------------------------------------------------
// sim_world
// ---------------------------------------------------------------------

sim_world::sim_world(std::size_t n, adversary& adv, std::uint64_t seed,
                     world_options opts)
    : n_(n), adv_(adv), seed_(seed),
      coin_override_(std::move(opts.coin_override)),
      semantic_choice_(std::move(opts.semantic_choice)),
      omission_choice_(std::move(opts.omission_choice)), obs_(opts.obs) {
  MODCON_CHECK_MSG(n >= 1, "need at least one process");
  pcbs_.reserve(n);
  runnable_index_.assign(n, UINT32_MAX);
  trace_.enable(opts.trace_enabled);
  trace_.set_max_events(opts.trace_max_events);
  if (opts.register_faults.enabled()) {
    // Derive the fault stream from a *local copy* of the seed: splitmix64
    // advances its argument, and seed_ feeds the per-process rng streams,
    // which must be identical with and without faults armed.  An explicit
    // fault_seed replaces the derived one, so fault coin draws can vary
    // independently of the schedule.
    std::uint64_t fault_seed = opts.fault_seed != 0
                                   ? opts.fault_seed
                                   : (seed ^ 0xd1b54a32d192ed03ULL);
    regs_.enable_faults(opts.register_faults, splitmix64(fault_seed));
  }
  adv_.reset(n, seed);
}

sim_world::~sim_world() = default;

process_id sim_world::spawn(
    const std::function<proc<word>(sim_env&)>& main) {
  MODCON_CHECK_MSG(pcbs_.size() < n_, "spawned more than n processes");
  auto pid = static_cast<process_id>(pcbs_.size());
  rng stream(splitmix64(seed_) ^ (0x9e3779b97f4a7c15ULL * (pid + 1)));
  pcb& p = pcbs_.emplace_back(this, pid, stream);
  p.main = main;  // retained for crash-restart re-incarnation
  p.program = main(p.env);
  p.program.start();  // run free local computation to the first shared op
  after_resume(pid);
  if (!p.halted && !p.crashed) {
    runnable_index_[pid] = static_cast<std::uint32_t>(runnable_.size());
    runnable_.push_back(pid);
  }
  return pid;
}

void sim_world::crash_after(process_id pid, std::uint64_t after_ops) {
  MODCON_CHECK(pid < pcbs_.size());
  pcb& p = pcbs_[pid];
  p.crash_planned = true;
  p.fault_armed = true;
  p.crash_threshold = after_ops;
  // Not gated on halted: a process that already decided at the threshold
  // is marked crashed as well (decided-then-crashed, see world.h).
  if (!p.crashed && p.ops >= after_ops) {
    p.crashed = true;
    remove_runnable(pid);
  }
}

void sim_world::restart_after(process_id pid, std::uint64_t after_ops) {
  MODCON_CHECK(pid < pcbs_.size());
  pcb& p = pcbs_[pid];
  p.fault_armed = true;
  p.restart_points.push_back({after_ops, /*recover=*/false});
  std::sort(p.restart_points.begin() +
                static_cast<std::ptrdiff_t>(p.next_restart),
            p.restart_points.end(),
            [](const pcb::restart_point& a, const pcb::restart_point& b) {
              return a.ops < b.ops;
            });
}

void sim_world::recover_after(process_id pid, std::uint64_t after_ops) {
  MODCON_CHECK(pid < pcbs_.size());
  pcb& p = pcbs_[pid];
  p.fault_armed = true;
  p.restart_points.push_back({after_ops, /*recover=*/true});
  std::sort(p.restart_points.begin() +
                static_cast<std::ptrdiff_t>(p.next_restart),
            p.restart_points.end(),
            [](const pcb::restart_point& a, const pcb::restart_point& b) {
              return a.ops < b.ops;
            });
}

void sim_world::remove_runnable(process_id pid) {
  std::uint32_t slot = runnable_index_[pid];
  if (slot == UINT32_MAX) return;
  process_id last = runnable_.back();
  runnable_[slot] = last;
  runnable_index_[last] = slot;
  runnable_.pop_back();
  runnable_index_[pid] = UINT32_MAX;
}

void sim_world::execute(process_id pid) {
  pcb& p = pcbs_[pid];
  MODCON_CHECK_MSG(p.has_op && !p.halted && !p.crashed,
                   "adversary picked a non-runnable process");
  // Work on the posted op in place: every field is consumed before the
  // resume below, and a restart or repost only touches p.op after has_op
  // was cleared (post() asserts it).  The continuation handle is saved
  // because the resume may destroy the frame the awaiter lives in.
  posted_op& op = p.op;
  p.has_op = false;
  const std::coroutine_handle<> k = op.k;

  // Process-facing accesses go through the fault layer (process_read /
  // process_write); with no faults armed they are plain read/write.
  word observed = op.value;
  bool applied = true;
  switch (op.kind) {
    case op_kind::read:
      if (regs_.semantics_armed()) [[unlikely]]
        *op.read_slot = overlap_read(pid, op.reg);
      else
        *op.read_slot = regs_.process_read(op.reg);
      observed = *op.read_slot;
      break;
    case op_kind::write:
      // Overridden coins are resolved at execution time (see
      // world_options).  Only writes carry a coin, so the check lives
      // here rather than ahead of the switch.
      if (op.probabilistic && coin_override_) [[unlikely]]
        op.coin_success = coin_override_(pid, op.coin_prob);
      if (omission_choice_ && regs_.omission_armed() &&
          regs_.omissions_left() > 0) [[unlikely]] {
        // Explorer-resolved omission.  Only a write that would otherwise
        // apply is a choice point — a missed probabilistic write is
        // already a non-write and must not consume the budget.
        applied = false;
        if (op.coin_success) {
          if (omission_choice_(pid, op.reg, op.value)) {
            regs_.force_omit();
          } else {
            regs_.write(op.reg, op.value);
            applied = true;
          }
        }
      } else {
        applied = op.coin_success && regs_.process_write(op.reg, op.value);
      }
      // Detecting writes report their outcome through the result slot.
      // An omitted write is *silent*: the detector still sees success —
      // that is what makes the omission a register fault rather than a
      // miss the algorithm could react to.
      if (op.read_slot != nullptr)
        *op.read_slot = op.coin_success ? 1 : 0;
      break;
    case op_kind::collect: {
      observed = 0;  // the trace's value column for a collect (values are
                     // recorded separately via record_collect)
      op.collect_slot->resize(op.count);
      if (regs_.semantics_armed()) [[unlikely]] {
        for (std::uint32_t i = 0; i < op.count; ++i)
          (*op.collect_slot)[i] = overlap_read(pid, op.reg + i);
      } else {
        for (std::uint32_t i = 0; i < op.count; ++i)
          (*op.collect_slot)[i] = regs_.process_read(op.reg + i);
      }
      break;
    }
  }
  // The trace records what the process observed; recording happens before
  // the resume, while the collect slot is still intact.
  if (trace_.enabled()) [[unlikely]] {
    trace_event ev{step_, pid, op.kind, op.reg, observed, applied};
    if (op.kind == op_kind::collect)
      trace_.record_collect(ev, *op.collect_slot);
    else
      trace_.record(ev);
  }

  ++p.ops;
  ++step_;

  k.resume();
  // after_resume's no-op case (the process posted its next op) is decided
  // right here so the common step skips the call; GCC keeps after_resume
  // out of line because of its cold failure path.
  if (!p.has_op) [[unlikely]] after_resume(pid);

  if (p.fault_armed) [[unlikely]] {
    // Crash check is not gated on halted: a process that returns on the
    // very op where its crash threshold is reached is decided-then-crashed
    // (its output escaped, but it is reported through crashed accounting).
    if (!p.crashed && p.crash_planned && p.ops >= p.crash_threshold) {
      p.crashed = true;
      remove_runnable(pid);
    }
    if (!p.halted && !p.crashed) maybe_restart(pid);
  }
}

void sim_world::maybe_restart(process_id pid) {
  pcb& p = pcbs_[pid];
  if (p.next_restart >= p.restart_points.size()) return;
  if (p.ops < p.restart_points[p.next_restart].ops) return;
  const bool recover = p.restart_points[p.next_restart].recover;
  ++p.next_restart;
  do_restart(pid, recover);
}

void sim_world::do_restart(process_id pid, bool recover) {
  pcb& p = pcbs_[pid];
  ++p.restarts;
  ++total_restarts_;
  record_destroyed_op(pid);
  // The incarnation loses all local state: assigning a fresh program
  // destroys the old coroutine frame, including the awaiter holding any
  // pending operation (p.op's slot pointers dangle into that frame, but
  // they are never dereferenced once has_op is cleared).  Shared registers
  // persist, and the op counter keeps accumulating across incarnations.
  p.has_op = false;
  p.output.reset();
  if (recover) {
    // Crash-recovery: the volatile partition is lost too, before the new
    // incarnation runs its first (free) local computation.
    ++p.recoveries;
    ++total_recoveries_;
    wipe_volatile_now();
  }
  p.program = p.main(p.env);
  p.program.start();
  after_resume(pid);
}

void sim_world::step_process(process_id pid) {
  MODCON_CHECK_MSG(pid < pcbs_.size() && runnable_index_[pid] != UINT32_MAX,
                   "step_process on non-runnable process " << pid);
  execute(pid);
}

void sim_world::restart_now(process_id pid, bool recover) {
  MODCON_CHECK_MSG(pid < pcbs_.size(), "restart_now on unknown pid " << pid);
  pcb& p = pcbs_[pid];
  MODCON_CHECK_MSG(!p.halted && !p.crashed,
                   "restart_now on a finished process");
  do_restart(pid, recover);
}

bool sim_world::all_halted() const {
  return std::all_of(pcbs_.begin(), pcbs_.end(),
                     [](const pcb& p) { return p.halted; });
}

const posted_op& sim_world::pending_op(process_id pid) const {
  MODCON_CHECK_MSG(pid < pcbs_.size() && pcbs_[pid].has_op,
                   "pending_op: process " << pid << " has no pending op");
  return pcbs_[pid].op;
}

word sim_world::overlap_read(process_id pid, reg_id r) {
  // The overlap set of a read executing now: writes to r posted but not
  // yet executed by other processes — in the one-op-at-a-time model these
  // are exactly the operations the read is concurrent with.  Pending
  // probabilistic writes count regardless of their pre-drawn coin: an
  // in-model adversary cannot tell a miss-bound write apart (§2.1), and
  // the trace records it as targeting r either way.
  pending_scratch_.clear();
  for (const pcb& q : pcbs_) {
    if (q.env.pid() == pid) continue;
    if (q.has_op && q.op.kind == op_kind::write && q.op.reg == r)
      pending_scratch_.push_back(q.op.value);
  }
  if (semantic_choice_) [[unlikely]] {
    // Explorer-resolved read: assemble the legal-outcome list (see
    // world_options::semantic_choice) and let the hook pick.  A trivial
    // list — one outcome — is not a choice point.
    legal_scratch_.clear();
    const word cur = regs_.read(r);
    legal_scratch_.push_back(cur);
    if (regs_.semantics() == register_semantics::regular) {
      for (word w : pending_scratch_)
        if (std::find(legal_scratch_.begin(), legal_scratch_.end(), w) ==
            legal_scratch_.end())
          legal_scratch_.push_back(w);
    } else if (!pending_scratch_.empty()) {
      // Safe: an overlapped read may return anything the cell ever held
      // (the history includes the current value, so dedup keeps order).
      for (word w : regs_.history_of(r))
        if (std::find(legal_scratch_.begin(), legal_scratch_.end(), w) ==
            legal_scratch_.end())
          legal_scratch_.push_back(w);
    }
    if (legal_scratch_.size() == 1) return cur;
    return semantic_choice_(pid, r, legal_scratch_);
  }
  return regs_.semantic_read(r, pending_scratch_);
}

void sim_world::wipe_volatile_now() {
  if (trace_.enabled())
    for (reg_id r : regs_.volatile_registers())
      trace_.record({step_, kInvalidProcess, op_kind::write, r,
                     regs_.initial_of(r), /*applied=*/true});
  regs_.wipe_volatile();
  recovery_steps_.push_back(step_);
}

void sim_world::record_destroyed_op(process_id pid) {
  pcb& p = pcbs_[pid];
  if (!p.has_op || p.op.kind != op_kind::write) return;
  if (!regs_.semantics_armed() || !trace_.enabled()) return;
  // Only under a semantics mode: an overlap read may already have
  // returned this value, so the legality replay needs to see the write
  // even though it never executes.  Unapplied, like a missed
  // probabilistic write.
  trace_.record({step_, pid, op_kind::write, p.op.reg, p.op.value,
                 /*applied=*/false});
}

void sim_world::after_resume(process_id pid) {
  pcb& p = pcbs_[pid];
  if (p.has_op) return;  // suspended on its next operation
  MODCON_CHECK_MSG(p.program.done(),
                   "process suspended without posting an operation");
  p.halted = true;
  remove_runnable(pid);
  p.output = p.program.take_result();  // rethrows process exceptions
}

run_result sim_world::run(std::uint64_t max_steps) {
  MODCON_CHECK_MSG(pcbs_.size() == n_,
                   "run() before all n processes were spawned");
  const auto quiescent = [this]() -> run_result {
    bool all = std::all_of(pcbs_.begin(), pcbs_.end(),
                           [](const pcb& p) { return p.halted; });
    return {all ? run_status::all_halted : run_status::no_runnable, step_};
  };
  std::uint64_t budget = max_steps;
  if (rng_block* uniform = adv_.uniform_pick_stream()) {
    // Monomorphic step loop for the uniform-random scheduler (see
    // adversary.h): the draw is inlined — same stream, same mapping, same
    // picks as going through pick() — and a pick of the form
    // runnable_[below(size)] needs no validity re-check.
    while (budget-- > 0) {
      const std::size_t m = runnable_.size();
      if (m == 0) return finish_run(quiescent());
      execute(runnable_[uniform->below(m)]);
    }
    return finish_run(runnable_.empty()
                          ? quiescent()
                          : run_result{run_status::step_limit, step_});
  }
  // The view and the adversary's power are loop-invariant; hoisting them
  // saves a virtual call per step.
  const sched_view view(*this, adv_.power());
  while (budget-- > 0) {
    if (runnable_.empty()) return finish_run(quiescent());
    process_id pid = adv_.pick(view);
    MODCON_CHECK_MSG(pid < pcbs_.size() && runnable_index_[pid] != UINT32_MAX,
                     "adversary " << adv_.name()
                                  << " picked non-runnable process " << pid);
    execute(pid);
  }
  if (runnable_.empty()) return finish_run(quiescent());
  return finish_run({run_status::step_limit, step_});
}

run_result sim_world::finish_run(run_result r) {
  // Writes still pending when the run ends (crashed processes, or a step
  // limit) never execute; under a semantics mode an overlap read may have
  // returned them already, so they join the trace as unapplied writes
  // (record_destroyed_op is a no-op otherwise).
  for (process_id pid = 0; pid < static_cast<process_id>(pcbs_.size()); ++pid)
    record_destroyed_op(pid);
  return r;
}

bool sim_world::halted(process_id pid) const {
  MODCON_CHECK(pid < pcbs_.size());
  return pcbs_[pid].halted;
}

bool sim_world::crashed(process_id pid) const {
  MODCON_CHECK(pid < pcbs_.size());
  return pcbs_[pid].crashed;
}

std::uint64_t sim_world::restarts_of(process_id pid) const {
  MODCON_CHECK(pid < pcbs_.size());
  return pcbs_[pid].restarts;
}

std::uint64_t sim_world::recoveries_of(process_id pid) const {
  MODCON_CHECK(pid < pcbs_.size());
  return pcbs_[pid].recoveries;
}

std::optional<word> sim_world::output_of(process_id pid) const {
  MODCON_CHECK(pid < pcbs_.size());
  return pcbs_[pid].output;
}

std::uint64_t sim_world::ops_of(process_id pid) const {
  MODCON_CHECK(pid < pcbs_.size());
  return pcbs_[pid].ops;
}

std::uint64_t sim_world::max_individual_ops() const {
  std::uint64_t m = 0;
  for (const pcb& p : pcbs_) m = std::max(m, p.ops);
  return m;
}

}  // namespace modcon::sim
