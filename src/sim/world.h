// The simulated world: n coroutine processes, a register file, and an
// adversary that picks which pending operation executes next.
//
// This is a direct implementation of the paper's model (§2): an execution
// is built by repeatedly applying one pending operation, chosen by the
// adversary from the processes that have not halted.  Local computation
// (including local coin flips) is free; every shared-memory operation —
// including a probabilistic write that misses — costs one unit, charged
// to both the total-work and the per-process (individual-work) counters.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "exec/address_space.h"
#include "exec/environment.h"
#include "exec/proc.h"
#include "exec/types.h"
#include "sim/adversary.h"
#include "sim/register_file.h"
#include "sim/trace.h"
#include "util/prob.h"
#include "util/rng.h"

namespace modcon::sim {

class sim_world;

// ---------------------------------------------------------------------
// sim_env: a process's handle onto the world.  Shared-memory operations
// return awaitables that park the coroutine until the adversary schedules
// the pending operation.
// ---------------------------------------------------------------------
class sim_env {
 public:
  struct read_awaiter {
    sim_env* e;
    reg_id r;
    word result = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    word await_resume() const noexcept { return result; }
  };

  struct write_awaiter {
    sim_env* e;
    reg_id r;
    word v;
    prob p;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  // A probabilistic write whose caller learns whether it applied — the
  // model extension in the footnote to Theorem 7 ("if we can detect
  // success, the individual work bound can be reduced").  Still one
  // operation; still invisible to in-model adversaries beforehand.
  struct detect_write_awaiter {
    sim_env* e;
    reg_id r;
    word v;
    prob p;
    word result = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    bool await_resume() const noexcept { return result != 0; }
  };

  struct collect_awaiter {
    sim_env* e;
    reg_id first;
    std::uint32_t count;
    std::vector<word> result;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    std::vector<word> await_resume() noexcept { return std::move(result); }
  };

  read_awaiter read(reg_id r) { return read_awaiter{this, r}; }
  write_awaiter write(reg_id r, word v) {
    return write_awaiter{this, r, v, prob::always()};
  }
  write_awaiter prob_write(reg_id r, word v, prob p) {
    return write_awaiter{this, r, v, p};
  }
  detect_write_awaiter prob_write_detect(reg_id r, word v, prob p) {
    return detect_write_awaiter{this, r, v, p};
  }
  collect_awaiter collect(reg_id first, std::uint32_t count) {
    return collect_awaiter{this, first, count, {}};
  }

  // Local coin: uniform in [0, bound).  Free in the cost model.
  std::uint64_t flip(std::uint64_t bound) { return rng_.below(bound); }
  bool coin() { return rng_.flip(); }
  rng& local_rng() { return rng_; }

  process_id pid() const { return pid_; }
  std::size_t n() const;

 private:
  friend class sim_world;
  sim_env(sim_world* w, process_id pid, rng r)
      : w_(w), pid_(pid), rng_(r) {}
  sim_world* w_;
  process_id pid_;
  rng rng_;
};

// ---------------------------------------------------------------------
// sim_world
// ---------------------------------------------------------------------
enum class run_status : std::uint8_t {
  all_halted,   // every process returned
  step_limit,   // max_steps executions applied without quiescence
  no_runnable,  // live processes exist but all are crashed
  timed_out,    // rt backend only: the trial watchdog aborted a hung run
};

struct run_result {
  run_status status;
  std::uint64_t steps;
  bool ok() const { return status == run_status::all_halted; }
};

struct world_options {
  bool trace_enabled = false;
  // Event cap for the execution trace (0 = kDefaultMaxTraceEvents); see
  // sim/trace.h — an over-long trial sets trace().overflowed() instead of
  // growing without bound.
  std::uint64_t trace_max_events = 0;
  // When set, decides the outcome of every *non-trivial* probabilistic
  // write (0 < p < 1) instead of the process's local coin.  The
  // exhaustive explorer and the exact game evaluator use this to
  // enumerate coin outcomes; it is not part of the model.  Unlike the
  // normal pre-drawn coin, an overridden coin is consulted when the
  // write *executes*: this puts the coin branch after every scheduling
  // decision that could not have observed it, which is exactly the
  // information structure an in-model adversary faces (see
  // check/minimax.h).
  std::function<bool(process_id, const prob&)> coin_override;
  // Injected register faults (stale reads, transient write omission); see
  // sim/register_file.h.  The fault RNG is derived from the world seed,
  // so every injected schedule replays from (seed, config).
  register_fault_config register_faults;
};

// A process's pending shared-memory operation, as parked by an awaiter.
struct posted_op {
  op_kind kind = op_kind::read;
  reg_id reg = kInvalidReg;
  word value = 0;
  std::uint32_t count = 0;  // collect width
  bool probabilistic = false;
  bool coin_success = true;  // pre-drawn from the process's local coin
  prob coin_prob = prob::always();
  word* read_slot = nullptr;
  std::vector<word>* collect_slot = nullptr;
  std::coroutine_handle<> k;
};

class sim_world final : public address_space {
 public:
  // `adv` must outlive the world.
  sim_world(std::size_t n, adversary& adv, std::uint64_t seed,
            world_options opts = {});
  ~sim_world() override;

  sim_world(const sim_world&) = delete;
  sim_world& operator=(const sim_world&) = delete;

  // --- address_space ---
  reg_id alloc(word init) override {
    reg_id r = regs_.alloc(init);
    trace_.note_alloc(r, 1, init);
    return r;
  }
  reg_id alloc_block(std::uint32_t count, word init) override {
    reg_id first = regs_.alloc_block(count, init);
    trace_.note_alloc(first, count, init);
    return first;
  }
  std::uint32_t allocated() const override { return regs_.size(); }

  // --- process setup ---
  // Creates the next process (pids are assigned 0..n-1 in spawn order) and
  // immediately runs it up to its first shared-memory operation; local
  // computation is free and unordered with respect to other processes.
  process_id spawn(const std::function<proc<word>(sim_env&)>& main);

  // Schedules process `pid` to crash permanently once it has executed
  // `after_ops` shared-memory operations (0 = before its first one).  A
  // process whose program *returns* on the very operation where the
  // threshold is reached is marked crashed as well as halted: its decided
  // value is retained (the decision escaped before the crash) but it is
  // reported through crashed accounting, not survivor accounting.
  void crash_after(process_id pid, std::uint64_t after_ops);

  // Schedules a crash-restart fault: at the first operation boundary at
  // or after `after_ops` executed operations, process `pid` loses its
  // local state (the coroutine frame, including any pending operation)
  // and immediately re-runs its program from the start with its original
  // input.  Shared registers persist.  May be called multiple times per
  // pid for repeated restarts; the process's operation counter keeps
  // accumulating across incarnations.
  void restart_after(process_id pid, std::uint64_t after_ops);

  // --- execution ---
  // Applies pending operations, adversary-chosen, until all processes
  // halt or `max_steps` operations have been applied.
  run_result run(std::uint64_t max_steps);

  // --- results & metrics ---
  std::size_t n() const { return n_; }
  bool halted(process_id pid) const;
  bool crashed(process_id pid) const;
  std::uint64_t restarts_of(process_id pid) const;
  std::uint64_t total_restarts() const { return total_restarts_; }
  std::uint64_t stale_reads() const { return regs_.stale_reads(); }
  std::uint64_t omitted_writes() const { return regs_.omitted_writes(); }
  // The return value of process pid's program; empty if it has not halted.
  std::optional<word> output_of(process_id pid) const;
  std::uint64_t ops_of(process_id pid) const;
  std::uint64_t total_ops() const { return total_ops_; }
  std::uint64_t max_individual_ops() const;
  std::uint64_t steps() const { return step_; }

  // Test access to memory and the trace.
  word peek(reg_id r) const { return regs_.read(r); }
  std::uint64_t writes_applied(reg_id r) const {
    return regs_.writes_applied(r);
  }
  const trace& execution_trace() const { return trace_; }
  trace& execution_trace() { return trace_; }

 private:
  friend class sim_env;
  friend class sched_view;

  struct pcb {
    explicit pcb(sim_world* w, process_id pid, rng r)
        : env(w, pid, r) {}
    sim_env env;
    proc<word> program;
    posted_op op;
    bool has_op = false;
    bool halted = false;
    bool crashed = false;
    std::uint64_t ops = 0;
    std::uint64_t crash_threshold = 0;
    bool crash_planned = false;
    std::optional<word> output;
    // Crash-restart support: the program factory is retained so a restart
    // can re-run it from scratch with the original input closed over.
    std::function<proc<word>(sim_env&)> main;
    std::vector<std::uint64_t> restart_points;  // sorted op thresholds
    std::size_t next_restart = 0;
    std::uint64_t restarts = 0;
  };

  void post(process_id pid, posted_op op);
  bool sample_coin(process_id pid, const prob& p, rng& local);
  void execute(process_id pid);
  void after_resume(process_id pid);
  void maybe_restart(process_id pid);
  void remove_runnable(process_id pid);

  std::size_t n_;
  adversary& adv_;
  std::uint64_t seed_;
  std::function<bool(process_id, const prob&)> coin_override_;
  register_file regs_;
  std::vector<std::unique_ptr<pcb>> pcbs_;
  std::vector<process_id> runnable_;
  std::vector<std::uint32_t> runnable_index_;  // pid -> slot in runnable_
  std::uint64_t step_ = 0;
  std::uint64_t total_ops_ = 0;
  std::uint64_t total_restarts_ = 0;
  trace trace_;
};

static_assert(Environment<sim_env>);

}  // namespace modcon::sim
