// The simulated world: n coroutine processes, a register file, and an
// adversary that picks which pending operation executes next.
//
// This is a direct implementation of the paper's model (§2): an execution
// is built by repeatedly applying one pending operation, chosen by the
// adversary from the processes that have not halted.  Local computation
// (including local coin flips) is free; every shared-memory operation —
// including a probabilistic write that misses — costs one unit, charged
// to both the total-work and the per-process (individual-work) counters.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "exec/address_space.h"
#include "exec/environment.h"
#include "exec/proc.h"
#include "exec/types.h"
#include "obs/obs.h"
#include "sim/adversary.h"
#include "sim/register_file.h"
#include "sim/trace.h"
#include "util/assertx.h"
#include "util/prob.h"
#include "util/rng.h"

namespace modcon::sim {

class sim_world;

// ---------------------------------------------------------------------
// sim_env: a process's handle onto the world.  Shared-memory operations
// return awaitables that park the coroutine until the adversary schedules
// the pending operation.
// ---------------------------------------------------------------------
class sim_env {
 public:
  struct read_awaiter {
    sim_env* e;
    reg_id r;
    word result = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    word await_resume() const noexcept { return result; }
  };

  struct write_awaiter {
    sim_env* e;
    reg_id r;
    word v;
    prob p;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  // A probabilistic write whose caller learns whether it applied — the
  // model extension in the footnote to Theorem 7 ("if we can detect
  // success, the individual work bound can be reduced").  Still one
  // operation; still invisible to in-model adversaries beforehand.
  struct detect_write_awaiter {
    sim_env* e;
    reg_id r;
    word v;
    prob p;
    word result = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    bool await_resume() const noexcept { return result != 0; }
  };

  struct collect_awaiter {
    sim_env* e;
    reg_id first;
    std::uint32_t count;
    std::vector<word> result;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    std::vector<word> await_resume() noexcept { return std::move(result); }
  };

  read_awaiter read(reg_id r) { return read_awaiter{this, r}; }
  write_awaiter write(reg_id r, word v) {
    return write_awaiter{this, r, v, prob::always()};
  }
  write_awaiter prob_write(reg_id r, word v, prob p) {
    return write_awaiter{this, r, v, p};
  }
  detect_write_awaiter prob_write_detect(reg_id r, word v, prob p) {
    return detect_write_awaiter{this, r, v, p};
  }
  collect_awaiter collect(reg_id first, std::uint32_t count) {
    return collect_awaiter{this, first, count, {}};
  }

  // Local coin: uniform in [0, bound).  Free in the cost model.
  std::uint64_t flip(std::uint64_t bound) {
    ++draws_;
    return rng_.below(bound);
  }
  bool coin() {
    ++draws_;
    return rng_.flip();
  }
  rng& local_rng() { return rng_; }

  process_id pid() const { return pid_; }
  std::size_t n() const;

  // Observability hooks (obs/obs.h): recorder attachment, timeline tick
  // (= adversary steps), per-process op and RNG-draw counters.
  obs::trial_recorder* obs() const;
  std::uint64_t obs_now() const;
  std::uint64_t obs_ops() const;
  std::uint64_t obs_draws() const { return draws_; }

 private:
  friend class sim_world;
  sim_env(sim_world* w, process_id pid, rng r)
      : w_(w), pid_(pid), rng_(r) {}
  bool draw_coin(const prob& p);
  sim_world* w_;
  process_id pid_;
  rng rng_;
  std::uint64_t draws_ = 0;
};

// ---------------------------------------------------------------------
// sim_world
// ---------------------------------------------------------------------
enum class run_status : std::uint8_t {
  all_halted,   // every process returned
  step_limit,   // max_steps executions applied without quiescence
  no_runnable,  // live processes exist but all are crashed
  timed_out,    // rt backend only: the trial watchdog aborted a hung run
};

struct run_result {
  run_status status;
  std::uint64_t steps;
  bool ok() const { return status == run_status::all_halted; }
};

struct world_options {
  bool trace_enabled = false;
  // Event cap for the execution trace (0 = kDefaultMaxTraceEvents); see
  // sim/trace.h — an over-long trial sets trace().overflowed() instead of
  // growing without bound.
  std::uint64_t trace_max_events = 0;
  // When set, decides the outcome of every *non-trivial* probabilistic
  // write (0 < p < 1) instead of the process's local coin.  The
  // exhaustive explorer and the exact game evaluator use this to
  // enumerate coin outcomes; it is not part of the model.  Unlike the
  // normal pre-drawn coin, an overridden coin is consulted when the
  // write *executes*: this puts the coin branch after every scheduling
  // decision that could not have observed it, which is exactly the
  // information structure an in-model adversary faces (see
  // check/minimax.h).
  std::function<bool(process_id, const prob&)> coin_override;
  // Injected register faults (stale reads, transient write omission, true
  // regular/safe semantics); see sim/register_file.h.  The fault RNG is
  // derived from the world seed, so every injected schedule replays from
  // (seed, config).
  register_fault_config register_faults;
  // Overrides the seed of the fault RNG stream (0 = derive from the world
  // seed, the default).  Lets fault coin draws vary independently of the
  // schedule seed; artifacts are byte-identical when unset.
  std::uint64_t fault_seed = 0;
  // Model-checker hooks (check/explorer), both optional and not part of
  // the model.  `semantic_choice` replaces the fault RNG's resolution of
  // a semantics-mode read whose legal-outcome set is non-trivial: `legal`
  // is the deterministically ordered outcome list (current value first;
  // then, under regular semantics, each overlapping pending write's value
  // in pid order, deduplicated — or, under safe semantics, the cell's
  // value history), and the returned word is observed verbatim, so an
  // exhaustive checker can enumerate every resolution (and a seeded-bug
  // harness can inject an illegal one).  `omission_choice` likewise
  // decides each write's omission outcome while the omission budget
  // lasts (true = drop the write) instead of drawing the fault coin.
  std::function<word(process_id, reg_id, std::span<const word> legal)>
      semantic_choice;
  std::function<bool(process_id, reg_id, word)> omission_choice;
  // When set, algorithm-level spans and counters are recorded into this
  // recorder (obs/obs.h).  Must outlive the world: coroutine frames torn
  // down in ~sim_world still hold span guards, which consult the
  // recorder's sealed flag.
  obs::trial_recorder* obs = nullptr;
};

// A process's pending shared-memory operation, as parked by an awaiter.
// Members are ordered large-to-small so the struct packs into one cache
// line — execute() touches it on every simulated step.
struct posted_op {
  word value = 0;
  prob coin_prob = prob::always();
  word* read_slot = nullptr;
  std::vector<word>* collect_slot = nullptr;
  std::coroutine_handle<> k;
  reg_id reg = kInvalidReg;
  std::uint32_t count = 0;  // collect width
  op_kind kind = op_kind::read;
  bool probabilistic = false;
  bool coin_success = true;  // pre-drawn from the process's local coin
};

class sim_world final : public address_space {
 public:
  // `adv` must outlive the world.
  sim_world(std::size_t n, adversary& adv, std::uint64_t seed,
            world_options opts = {});
  ~sim_world() override;

  sim_world(const sim_world&) = delete;
  sim_world& operator=(const sim_world&) = delete;

  // --- address_space ---
  reg_id alloc(word init) override {
    assert_live();
    reg_id r = regs_.alloc(
        init, alloc_durability() == durability::volatile_mem);
    trace_.note_alloc(r, 1, init);
    return r;
  }
  reg_id alloc_block(std::uint32_t count, word init) override {
    assert_live();
    reg_id first = regs_.alloc_block(
        count, init, alloc_durability() == durability::volatile_mem);
    trace_.note_alloc(first, count, init);
    return first;
  }
  std::uint32_t allocated() const override { return regs_.size(); }

  // Recycling (multi/object_pool.h): reset the register to `init`,
  // bypassing injected register faults (this is pool bookkeeping, not a
  // process operation), and record the reset in the execution trace as an
  // applied write so the auditor's replay tracks the true contents.  The
  // trace replay keeps exactly one initial value per register, so a
  // recycled register's fresh value must arrive as a write, not a second
  // note_alloc.
  bool reinit(reg_id r, word init) override {
    assert_live();
    regs_.write(r, init);
    trace_.record({step_, kInvalidProcess, op_kind::write, r, init,
                   /*applied=*/true});
    return true;
  }

  // --- process setup ---
  // Creates the next process (pids are assigned 0..n-1 in spawn order) and
  // immediately runs it up to its first shared-memory operation; local
  // computation is free and unordered with respect to other processes.
  process_id spawn(const std::function<proc<word>(sim_env&)>& main);

  // Schedules process `pid` to crash permanently once it has executed
  // `after_ops` shared-memory operations (0 = before its first one).  A
  // process whose program *returns* on the very operation where the
  // threshold is reached is marked crashed as well as halted: its decided
  // value is retained (the decision escaped before the crash) but it is
  // reported through crashed accounting, not survivor accounting.
  void crash_after(process_id pid, std::uint64_t after_ops);

  // Schedules a crash-restart fault: at the first operation boundary at
  // or after `after_ops` executed operations, process `pid` loses its
  // local state (the coroutine frame, including any pending operation)
  // and immediately re-runs its program from the start with its original
  // input.  Shared registers persist.  May be called multiple times per
  // pid for repeated restarts; the process's operation counter keeps
  // accumulating across incarnations.
  void restart_after(process_id pid, std::uint64_t after_ops);

  // Schedules a crash-*recovery* fault: like restart_after, but the crash
  // also loses the volatile partition of shared memory — every register
  // allocated under durability::volatile_mem is reinitialized (recorded
  // in the trace as applied writes by kInvalidProcess, like reinit).
  // Persistent registers survive; the process re-reads them to rejoin.
  void recover_after(process_id pid, std::uint64_t after_ops);

  // --- execution ---
  // Applies pending operations, adversary-chosen, until all processes
  // halt or `max_steps` operations have been applied.
  run_result run(std::uint64_t max_steps);

  // --- model-checker interface (check/explorer) ---
  // The exhaustive explorer drives the world one chosen operation at a
  // time instead of going through run()/adversary::pick — scheduling,
  // crash injection, and fault resolution are all *its* choice points.
  // Executes exactly `pid`'s pending operation; pid must be runnable.
  void step_process(process_id pid);
  // Injects a crash-restart (or, with `recover`, a crash-recovery that
  // also wipes the volatile register partition) at the current operation
  // boundary: same semantics as a restart_after/recover_after threshold
  // firing here, but chosen explicitly.  pid must not have halted.
  void restart_now(process_id pid, bool recover);
  bool all_halted() const;
  std::span<const process_id> runnable_processes() const {
    return {runnable_.data(), runnable_.size()};
  }
  // Footprint of pid's pending operation, for the checker's dependence
  // relation.  Requires a pending op (true for every runnable process).
  const posted_op& pending_op(process_id pid) const;

  // --- results & metrics ---
  std::size_t n() const { return n_; }
  bool halted(process_id pid) const;
  bool crashed(process_id pid) const;
  std::uint64_t restarts_of(process_id pid) const;
  std::uint64_t total_restarts() const { return total_restarts_; }
  std::uint64_t recoveries_of(process_id pid) const;
  std::uint64_t total_recoveries() const { return total_recoveries_; }
  std::uint64_t stale_reads() const { return regs_.stale_reads(); }
  std::uint64_t omitted_writes() const { return regs_.omitted_writes(); }
  std::uint64_t overlap_reads() const { return regs_.overlap_reads(); }
  std::uint64_t volatile_wipes() const { return regs_.volatile_wipes(); }
  // Recovery bookkeeping for the auditor: which registers are volatile
  // and at which steps a wipe happened.
  const std::vector<reg_id>& volatile_registers() const {
    return regs_.volatile_registers();
  }
  bool register_is_volatile(reg_id r) const { return regs_.is_volatile(r); }
  const std::vector<std::uint64_t>& recovery_steps() const {
    return recovery_steps_;
  }
  // The return value of process pid's program; empty if it has not halted.
  std::optional<word> output_of(process_id pid) const;
  std::uint64_t ops_of(process_id pid) const;
  std::uint64_t draws_of(process_id pid) const;
  // Every applied step is exactly one shared-memory operation in this
  // model, so total work and execution length coincide.
  std::uint64_t total_ops() const { return step_; }
  std::uint64_t max_individual_ops() const;
  std::uint64_t steps() const { return step_; }

  // Test access to memory and the trace.
  word peek(reg_id r) const { return regs_.read(r); }
  word initial_of(reg_id r) const { return regs_.initial_of(r); }
  std::uint64_t writes_applied(reg_id r) const {
    return regs_.writes_applied(r);
  }
  const trace& execution_trace() const { return trace_; }
  trace& execution_trace() { return trace_; }

 private:
  friend class sim_env;
  friend class sched_view;

  struct alignas(64) pcb {
    explicit pcb(sim_world* w, process_id pid, rng r)
        : env(w, pid, r) {}
    // Per-step state first: execute() reads the posted op and the flag
    // block on every simulated step under a random pid, so keeping them
    // in the pcb's leading cache lines is what bounds the working set at
    // large n (the alignas pins the op to a line boundary).
    posted_op op;
    bool has_op = false;
    bool halted = false;
    bool crashed = false;
    // Set by crash_after/restart_after; gates the per-step fault checks in
    // execute() behind one branch for the (typical) fault-free process.
    bool fault_armed = false;
    std::uint64_t ops = 0;
    sim_env env;
    proc<word> program;
    // Cold: trial setup, fault plumbing, and results.
    std::uint64_t crash_threshold = 0;
    bool crash_planned = false;
    std::optional<word> output;
    // Crash-restart support: the program factory is retained so a restart
    // can re-run it from scratch with the original input closed over.
    std::function<proc<word>(sim_env&)> main;
    // Sorted op thresholds; `recover` additionally wipes the volatile
    // register partition (crash-recovery vs. plain crash-restart).
    struct restart_point {
      std::uint64_t ops;
      bool recover;
    };
    std::vector<restart_point> restart_points;
    std::size_t next_restart = 0;
    std::uint64_t restarts = 0;
    std::uint64_t recoveries = 0;
  };

  // Returns the process's (reset) pending-op slot for an awaiter to fill
  // in place — posting writes the fields once instead of building a
  // posted_op locally and copying it through post().
  posted_op& post_slot(process_id pid);
  void execute(process_id pid);
  void after_resume(process_id pid);
  void maybe_restart(process_id pid);
  // Shared crash-restart/crash-recovery mechanics behind maybe_restart
  // (threshold-planned faults) and restart_now (explorer-injected ones).
  void do_restart(process_id pid, bool recover);
  void remove_runnable(process_id pid);
  // Semantics-mode read: gathers the pending-write overlap set for r and
  // lets the register file pick the observed value.
  word overlap_read(process_id pid, reg_id r);
  // Crash-recovery: reinitialize the volatile partition, recording each
  // wipe in the trace.
  void wipe_volatile_now();
  // A pending write destroyed by a restart/crash (or abandoned at end of
  // run) is still a legal overlap source under regular/safe semantics;
  // record it as an unapplied write so the auditor's replay sees it.
  void record_destroyed_op(process_id pid);
  run_result finish_run(run_result r);

  std::size_t n_;
  adversary& adv_;
  std::uint64_t seed_;
  std::function<bool(process_id, const prob&)> coin_override_;
  std::function<word(process_id, reg_id, std::span<const word>)>
      semantic_choice_;
  std::function<bool(process_id, reg_id, word)> omission_choice_;
  register_file regs_;
  // Flat storage: reserve(n) in the constructor plus the spawn-count check
  // guarantees no reallocation, so &pcbs_[pid].env stays stable for the
  // coroutine frames that capture it.
  std::vector<pcb> pcbs_;
  std::vector<process_id> runnable_;
  std::vector<std::uint32_t> runnable_index_;  // pid -> slot in runnable_
  std::uint64_t step_ = 0;
  std::uint64_t total_restarts_ = 0;
  std::uint64_t total_recoveries_ = 0;
  std::vector<std::uint64_t> recovery_steps_;
  std::vector<word> pending_scratch_;  // overlap_read's reusable buffer
  std::vector<word> legal_scratch_;    // semantic_choice option buffer
  trace trace_;
  obs::trial_recorder* obs_ = nullptr;
};

static_assert(Environment<sim_env>);

// Ungated sched_view accessors, inline: the scheduler consults these once
// per simulated step (runnable() especially), so they must not cost a
// call.  The capability-gated accessors stay out of line in world.cpp.
inline std::uint64_t sched_view::step() const { return w_->steps(); }
inline std::size_t sched_view::n() const { return w_->n(); }

inline std::span<const process_id> sched_view::runnable() const {
  return {w_->runnable_.data(), w_->runnable_.size()};
}

inline bool sched_view::is_runnable(process_id p) const {
  return p < w_->runnable_index_.size() &&
         w_->runnable_index_[p] != UINT32_MAX;
}

inline std::uint64_t sched_view::ops_done(process_id p) const {
  return w_->ops_of(p);
}

inline const posted_op& sched_view::pending_of(process_id p) const {
  MODCON_CHECK_MSG(p < w_->pcbs_.size(), "bad pid in adversary view access");
  const auto& pcb = w_->pcbs_[p];
  MODCON_CHECK_MSG(pcb.has_op, "process " << p << " has no pending op");
  return pcb.op;
}

// Posting an operation happens once per simulated step, from coroutine
// bodies compiled in other translation units, so the whole path — slot
// reset, field stores, coin draw — is defined inline here rather than
// costing an opaque call per step.

inline posted_op& sim_world::post_slot(process_id pid) {
  pcb& p = pcbs_[pid];
  MODCON_CHECK_MSG(!p.has_op, "process posted two operations at once");
  p.has_op = true;
  // Only read_slot must be cleared between operations: a plain write tests
  // it to decide whether it is a detecting write, and a stale pointer from
  // an earlier read would alias a dead awaiter frame.  Every other field
  // execute() consumes is (re)written by the posting awaiter for the op
  // kinds that consume it, so a full posted_op reset per step is wasted
  // work on the hot path.
  p.op.read_slot = nullptr;
  return p.op;
}

// Draws the pre-drawn coin for a probabilistic write from the process's
// local RNG, counting the draw (and, when a recorder is attached, the
// nontrivial probabilistic write) against the process.
inline bool sim_env::draw_coin(const prob& p) {
  if (p.certain()) return true;
  if (p.impossible()) return false;
  if (w_->obs_ != nullptr)
    w_->obs_->count(pid_, obs::counter::prob_writes);
  // With an override installed the pre-drawn value is a placeholder; the
  // real decision happens in execute().
  if (w_->coin_override_) return false;
  ++draws_;
  return p.sample(rng_);
}

inline obs::trial_recorder* sim_env::obs() const { return w_->obs_; }
inline std::uint64_t sim_env::obs_now() const { return w_->steps(); }
inline std::uint64_t sim_env::obs_ops() const {
  return w_->pcbs_[pid_].ops;
}

inline std::uint64_t sim_world::draws_of(process_id pid) const {
  return pcbs_[pid].env.draws_;
}

inline void sim_env::read_awaiter::await_suspend(std::coroutine_handle<> h) {
  posted_op& op = e->w_->post_slot(e->pid_);
  op.kind = op_kind::read;
  op.reg = r;
  op.read_slot = &result;
  op.k = h;
}

inline void sim_env::write_awaiter::await_suspend(std::coroutine_handle<> h) {
  posted_op& op = e->w_->post_slot(e->pid_);
  op.kind = op_kind::write;
  op.reg = r;
  op.value = v;
  op.probabilistic = !p.certain();
  op.coin_prob = p;
  // The coin is drawn from the process's own local coin, up front, so the
  // (out-of-model) omniscient adversary can inspect it.  In-model
  // adversaries cannot see it; drawing now vs. at execution time changes
  // nothing for them.
  op.coin_success = e->draw_coin(p);
  op.k = h;
}

inline void sim_env::detect_write_awaiter::await_suspend(
    std::coroutine_handle<> h) {
  posted_op& op = e->w_->post_slot(e->pid_);
  op.kind = op_kind::write;
  op.reg = r;
  op.value = v;
  op.probabilistic = !p.certain();
  op.coin_prob = p;
  op.coin_success = e->draw_coin(p);
  op.read_slot = &result;  // receives 1 if the write applied
  op.k = h;
}

inline void sim_env::collect_awaiter::await_suspend(
    std::coroutine_handle<> h) {
  posted_op& op = e->w_->post_slot(e->pid_);
  op.kind = op_kind::collect;
  op.reg = first;
  op.count = count;
  op.collect_slot = &result;
  op.k = h;
}

}  // namespace modcon::sim
