// Adversary schedulers and the information they are allowed to see.
//
// The paper models the scheduler as a function from partial executions to
// process ids, with *weak* adversaries restricted to equivalence classes
// of executions (§2.1).  We realize those restrictions capability-by-
// capability: each adversary declares a power level, the world hands it a
// `sched_view` gated to that power, and any attempt to read information
// beyond the declared power throws — so an adversary implementation
// cannot accidentally cheat.
//
// Power levels and their capabilities (paper §2.1):
//
//   oblivious            sees only the execution length and who is still
//                        runnable (scheduling a halted process is a no-op
//                        in the model, so this is a harmless convenience)
//   value_oblivious      + operation kinds and *all* locations, but not
//                        values or register contents
//   location_oblivious   + values and register contents, but NOT the
//                        locations of pending writes (this is what makes
//                        probabilistic writes possible: a probabilistic
//                        write is a write to the real target or a dummy)
//   adaptive             everything about the past and pending operations
//                        (the strong adversary)
//   omniscient           + the outcome of the local coin attached to each
//                        pending probabilistic write.  This is OUTSIDE
//                        every model in the paper; it exists to show the
//                        model restriction is necessary (experiment E5).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "exec/types.h"
#include "util/rng.h"

namespace modcon::sim {

class sim_world;
struct posted_op;  // defined in sim/world.h

enum class adversary_power : std::uint8_t {
  oblivious,
  value_oblivious,
  location_oblivious,
  adaptive,
  omniscient,
};

const char* to_string(adversary_power p);

struct adversary_caps {
  bool kinds = false;            // pending operation kinds
  bool read_locations = false;   // location of pending reads/collects
  bool write_locations = false;  // location of pending writes
  bool values = false;           // values of pending writes
  bool memory = false;           // register contents
  bool coins = false;            // pre-drawn probabilistic-write outcomes
};

constexpr adversary_caps caps_for(adversary_power p) {
  switch (p) {
    case adversary_power::oblivious:
      return {};
    case adversary_power::value_oblivious:
      return {.kinds = true, .read_locations = true, .write_locations = true};
    case adversary_power::location_oblivious:
      return {.kinds = true, .read_locations = true, .values = true,
              .memory = true};
    case adversary_power::adaptive:
      return {.kinds = true, .read_locations = true, .write_locations = true,
              .values = true, .memory = true};
    case adversary_power::omniscient:
      return {.kinds = true, .read_locations = true, .write_locations = true,
              .values = true, .memory = true, .coins = true};
  }
  return {};
}

// A capability-gated window onto the world, built fresh for each pick.
class sched_view {
 public:
  std::uint64_t step() const;
  std::size_t n() const;

  // Processes that are alive and have a pending operation; the adversary
  // must return one of these.
  std::span<const process_id> runnable() const;
  bool is_runnable(process_id p) const;  // O(1)

  // Number of shared-memory operations `p` has executed so far.  This is
  // a function of the adversary's own past choices, so all powers get it.
  std::uint64_t ops_done(process_id p) const;

  // --- gated accessors; throw invariant_error beyond the power level ---
  op_kind kind_of(process_id p) const;   // kinds
  reg_id reg_of(process_id p) const;     // read_locations / write_locations
  word value_of(process_id p) const;     // values (pending writes only)
  word memory(reg_id r) const;           // memory
  bool coin_of(process_id p) const;      // coins (pending prob writes)

  // True when reg_of(p) may be called for p's pending operation under this
  // power (reads are locatable from value_oblivious up; writes only if the
  // power sees write locations).
  bool location_visible(process_id p) const;

  adversary_power power() const { return power_; }

 private:
  friend class sim_world;
  sched_view(const sim_world& w, adversary_power p) : w_(&w), power_(p) {}
  const posted_op& pending_of(process_id p) const;
  const sim_world* w_;
  adversary_power power_;
};

class adversary {
 public:
  virtual ~adversary() = default;

  virtual adversary_power power() const = 0;
  virtual std::string name() const = 0;

  // Called once by the world before an execution starts.
  virtual void reset(std::size_t n, std::uint64_t seed) = 0;

  // Must return an element of view.runnable().
  virtual process_id pick(const sched_view& view) = 0;

  // Monomorphic fast path for the one scheduler the experiment engine
  // drives millions of steps through: an adversary whose pick() is
  // exactly `runnable[stream.below(runnable.size())]` may return its draw
  // stream here, and the world then inlines that draw into its step loop
  // — no virtual dispatch, no view handed over, byte-identical picks
  // (the world consumes the same stream with the same mapping).  Every
  // other adversary keeps the nullptr default and is consulted through
  // pick().
  virtual rng_block* uniform_pick_stream() { return nullptr; }
};

}  // namespace modcon::sim
