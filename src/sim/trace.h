// Execution traces.
//
// When enabled, the world records every executed operation.  Traces back
// the exhaustive explorer (which needs to reconstruct the schedule it just
// ran), the property auditor (check/auditor.h, which replays the trace
// against the register-semantics state machine), debugging, and a handful
// of white-box tests that assert *which* operations an algorithm
// performed, not just its outputs.
//
// Storage is structure-of-arrays in fixed-size chunks drawn from a
// thread-local pool (util/chunk_pool.h): recording an event writes six
// columns and never allocates on the hot path — a fresh chunk is pulled
// from the pool once every kTraceChunkCapacity events, and returns there
// when the trace is cleared or destroyed.  This is what lets audited
// trials run at nearly un-audited speed: the previous AoS vector paid a
// growth reallocation *and* a 32-byte struct copy per event.
//
// Growth is bounded: a trace holds at most `max_events()` events
// (default kDefaultMaxTraceEvents) and sets `overflowed()` instead of
// growing without bound, so long audited trials degrade gracefully — the
// auditor reports such trials as inconclusive rather than OOMing the
// trial pool.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "exec/types.h"
#include "util/chunk_pool.h"

namespace modcon::sim {

inline constexpr std::uint64_t kDefaultMaxTraceEvents = 4'000'000;

struct trace_event {
  std::uint64_t step;
  process_id pid;
  op_kind kind;
  reg_id reg;        // first register for collects
  word value;        // value written, or value observed by a read
  bool applied;      // false only for a probabilistic write that missed
                     // (or a write dropped by injected omission faults)
};

// One column block.  4096 events × 26 bytes ≈ 106 KiB — big enough that
// pool round-trips are rare, small enough that a short audited trial does
// not pin megabytes.
inline constexpr std::size_t kTraceChunkCapacity = 4096;

struct trace_chunk {
  std::uint64_t step[kTraceChunkCapacity];
  word value[kTraceChunkCapacity];
  process_id pid[kTraceChunkCapacity];
  reg_id reg[kTraceChunkCapacity];
  op_kind kind[kTraceChunkCapacity];
  bool applied[kTraceChunkCapacity];
};

static_assert((kTraceChunkCapacity & (kTraceChunkCapacity - 1)) == 0,
              "chunk capacity must be a power of two");

class trace {
 public:
  trace() = default;
  ~trace() { release_chunks(); }
  trace(const trace&) = delete;
  trace& operator=(const trace&) = delete;

  trace(trace&& other) noexcept { *this = std::move(other); }
  trace& operator=(trace&& other) noexcept {
    if (this != &other) {
      release_chunks();
      enabled_ = other.enabled_;
      overflowed_ = other.overflowed_;
      max_events_ = other.max_events_;
      size_ = other.size_;
      chunks_ = std::move(other.chunks_);
      collect_index_ = std::move(other.collect_index_);
      collect_pool_ = std::move(other.collect_pool_);
      initial_ = std::move(other.initial_);
      initial_known_ = std::move(other.initial_known_);
      other.size_ = 0;
      other.overflowed_ = false;
    }
    return *this;
  }

  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Caps the event count; further records are dropped and counted through
  // `overflowed()`.  0 restores the default cap.
  void set_max_events(std::uint64_t cap) {
    max_events_ = cap ? cap : kDefaultMaxTraceEvents;
  }
  std::uint64_t max_events() const { return max_events_; }
  bool overflowed() const { return overflowed_; }

  void record(const trace_event& e) {
    if (!enabled_) return;
    if (size_ >= max_events_) {
      overflowed_ = true;
      return;
    }
    const std::size_t slot = static_cast<std::size_t>(
        size_ & (kTraceChunkCapacity - 1));
    if (slot == 0) chunks_.push_back(chunk_pool<trace_chunk>::acquire());
    trace_chunk& c = *chunks_.back();
    c.step[slot] = e.step;
    c.value[slot] = e.value;
    c.pid[slot] = e.pid;
    c.reg[slot] = e.reg;
    c.kind[slot] = e.kind;
    c.applied[slot] = e.applied;
    ++size_;
  }

  // Records a collect event together with the per-register values the
  // process observed.  Values live in a side pool keyed by event index so
  // the event columns stay flat (schedule-replay consumers are
  // untouched); `collect_values(i)` returns an empty span for non-collect
  // events.
  void record_collect(const trace_event& e, std::span<const word> values);
  std::span<const word> collect_values(std::size_t event_index) const;

  // Registers the initial value of freshly allocated registers, so a
  // trace replay can reconstruct memory from the trace alone (the
  // unbounded construction allocates mid-execution, so this may be called
  // between records).
  void note_alloc(reg_id first, std::uint32_t count, word init);
  bool has_initial(reg_id r) const;
  word initial_of(reg_id r) const;  // requires has_initial(r)

  std::uint64_t size() const { return size_; }

  // Gathers event i out of the columns.  Requires i < size().
  trace_event event(std::uint64_t i) const {
    const trace_chunk& c = *chunks_[static_cast<std::size_t>(
        i / kTraceChunkCapacity)];
    const std::size_t slot =
        static_cast<std::size_t>(i & (kTraceChunkCapacity - 1));
    return {c.step[slot], c.pid[slot],   c.kind[slot],
            c.reg[slot],  c.value[slot], c.applied[slot]};
  }

  // Materializes the whole trace as a flat vector — one allocation, for
  // consumers (auditor replay, white-box tests, dumps) that want the
  // classic AoS view.  The recording path never pays for this.
  std::vector<trace_event> events() const;

  void clear();

  void dump(std::ostream& os) const;

 private:
  struct collect_ref {
    std::uint64_t event_index;
    std::uint32_t offset;
    std::uint32_t count;
  };

  void release_chunks();

  bool enabled_ = false;
  bool overflowed_ = false;
  std::uint64_t max_events_ = kDefaultMaxTraceEvents;
  std::uint64_t size_ = 0;
  std::vector<std::unique_ptr<trace_chunk>> chunks_;
  std::vector<collect_ref> collect_index_;  // ordered by event_index
  std::vector<word> collect_pool_;
  std::vector<word> initial_;       // indexed by reg_id
  std::vector<char> initial_known_;  // parallel to initial_
};

std::ostream& operator<<(std::ostream& os, const trace_event& e);

}  // namespace modcon::sim
