// Execution traces.
//
// When enabled, the world records every executed operation.  Traces back
// the exhaustive explorer (which needs to reconstruct the schedule it just
// ran), debugging, and a handful of white-box tests that assert *which*
// operations an algorithm performed, not just its outputs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "exec/types.h"

namespace modcon::sim {

struct trace_event {
  std::uint64_t step;
  process_id pid;
  op_kind kind;
  reg_id reg;        // first register for collects
  word value;        // value written, or value returned by a read
  bool applied;      // false only for a probabilistic write that missed
};

class trace {
 public:
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(const trace_event& e) {
    if (enabled_) events_.push_back(e);
  }

  const std::vector<trace_event>& events() const { return events_; }
  void clear() { events_.clear(); }

  void dump(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::vector<trace_event> events_;
};

std::ostream& operator<<(std::ostream& os, const trace_event& e);

}  // namespace modcon::sim
