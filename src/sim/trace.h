// Execution traces.
//
// When enabled, the world records every executed operation.  Traces back
// the exhaustive explorer (which needs to reconstruct the schedule it just
// ran), the property auditor (check/auditor.h, which replays the trace
// against the register-semantics state machine), debugging, and a handful
// of white-box tests that assert *which* operations an algorithm
// performed, not just its outputs.
//
// Growth is bounded: a trace holds at most `max_events()` events
// (default kDefaultMaxTraceEvents) and sets `overflowed()` instead of
// growing without bound, so long audited trials degrade gracefully — the
// auditor reports such trials as inconclusive rather than OOMing the
// trial pool.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "exec/types.h"

namespace modcon::sim {

inline constexpr std::uint64_t kDefaultMaxTraceEvents = 4'000'000;

struct trace_event {
  std::uint64_t step;
  process_id pid;
  op_kind kind;
  reg_id reg;        // first register for collects
  word value;        // value written, or value observed by a read
  bool applied;      // false only for a probabilistic write that missed
                     // (or a write dropped by injected omission faults)
};

class trace {
 public:
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Caps the event count; further records are dropped and counted through
  // `overflowed()`.  0 restores the default cap.
  void set_max_events(std::uint64_t cap) {
    max_events_ = cap ? cap : kDefaultMaxTraceEvents;
  }
  std::uint64_t max_events() const { return max_events_; }
  bool overflowed() const { return overflowed_; }

  void record(const trace_event& e) {
    if (!enabled_) return;
    if (events_.size() >= max_events_) {
      overflowed_ = true;
      return;
    }
    events_.push_back(e);
  }

  // Records a collect event together with the per-register values the
  // process observed.  Values live in a side pool keyed by event index so
  // trace_event itself stays flat (schedule-replay consumers are
  // untouched); `collect_values(i)` returns an empty span for non-collect
  // events.
  void record_collect(const trace_event& e, std::span<const word> values);
  std::span<const word> collect_values(std::size_t event_index) const;

  // Registers the initial value of freshly allocated registers, so a
  // trace replay can reconstruct memory from the trace alone (the
  // unbounded construction allocates mid-execution, so this may be called
  // between records).
  void note_alloc(reg_id first, std::uint32_t count, word init);
  bool has_initial(reg_id r) const;
  word initial_of(reg_id r) const;  // requires has_initial(r)

  const std::vector<trace_event>& events() const { return events_; }
  void clear();

  void dump(std::ostream& os) const;

 private:
  struct collect_ref {
    std::uint64_t event_index;
    std::uint32_t offset;
    std::uint32_t count;
  };

  bool enabled_ = false;
  bool overflowed_ = false;
  std::uint64_t max_events_ = kDefaultMaxTraceEvents;
  std::vector<trace_event> events_;
  std::vector<collect_ref> collect_index_;  // ordered by event_index
  std::vector<word> collect_pool_;
  std::vector<word> initial_;       // indexed by reg_id
  std::vector<char> initial_known_;  // parallel to initial_
};

std::ostream& operator<<(std::ostream& os, const trace_event& e);

}  // namespace modcon::sim
