#include "check/auditor.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/assertx.h"

namespace modcon::check {

const char* to_string(violation_kind k) {
  switch (k) {
    case violation_kind::validity: return "validity";
    case violation_kind::coherence: return "coherence";
    case violation_kind::acceptance: return "acceptance";
    case violation_kind::composition: return "composition";
    case violation_kind::illegal_stale_read: return "illegal_stale_read";
    case violation_kind::omitted_write_visible: return "omitted_write_visible";
    case violation_kind::unserializable_read: return "unserializable_read";
    case violation_kind::slot_coherence: return "slot_coherence";
    case violation_kind::slot_prefix: return "slot_prefix";
    case violation_kind::illegal_regular_read: return "illegal_regular_read";
    case violation_kind::illegal_safe_read: return "illegal_safe_read";
    case violation_kind::volatile_state_survival:
      return "volatile_state_survival";
    case violation_kind::persistent_state_loss:
      return "persistent_state_loss";
  }
  return "?";
}

const char* to_string(audit_status s) {
  switch (s) {
    case audit_status::clean: return "clean";
    case audit_status::violated: return "violated";
    case audit_status::inconclusive: return "inconclusive";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const violation& v) {
  os << to_string(v.kind);
  if (v.pid != kInvalidProcess) os << " p" << v.pid;
  if (v.step != 0) os << " step=" << v.step;
  if (v.reg != kInvalidReg) os << " r" << v.reg;
  return os << ": " << v.detail;
}

namespace {

// Violations always win over inconclusive; inconclusive over clean.
void resolve(audit_report& rep) {
  if (!rep.violations.empty()) rep.status = audit_status::violated;
}

void mark_inconclusive(audit_report& rep, const std::string& why) {
  if (rep.status == audit_status::clean)
    rep.status = audit_status::inconclusive;
  if (!rep.note.empty()) rep.note += "; ";
  rep.note += why;
}

std::vector<sim::trace_event> slice_around(
    const std::vector<sim::trace_event>& events, std::size_t i,
    std::size_t radius) {
  std::size_t lo = i > radius ? i - radius : 0;
  std::size_t hi = std::min(events.size(), i + radius + 1);
  return {events.begin() + lo, events.begin() + hi};
}

}  // namespace

void audit_outputs(const std::vector<labeled_output>& outputs,
                   const audit_spec& spec, audit_report& rep) {
  if (!spec.check_properties) return;

  // Validity: every escaped value is some process's input.
  for (const labeled_output& o : outputs) {
    bool proposed = std::find(spec.inputs.begin(), spec.inputs.end(),
                              o.out.value) != spec.inputs.end();
    if (!proposed) {
      std::ostringstream os;
      os << "p" << o.pid << " holds value " << o.out.value
         << " that no process proposed";
      rep.violations.push_back({violation_kind::validity, o.pid, 0,
                                kInvalidReg, o.out.value, os.str(), {}});
    }
  }

  // Coherence: a decided value forbids every other value.
  const labeled_output* first_decided = nullptr;
  for (const labeled_output& o : outputs)
    if (o.out.decide && first_decided == nullptr) first_decided = &o;
  if (first_decided != nullptr) {
    for (const labeled_output& o : outputs) {
      if (o.out.value == first_decided->out.value) continue;
      std::ostringstream os;
      os << "p" << o.pid << " holds (" << o.out.decide << ", " << o.out.value
         << ") although p" << first_decided->pid << " decided "
         << first_decided->out.value;
      rep.violations.push_back({violation_kind::coherence, o.pid, 0,
                                kInvalidReg, o.out.value, os.str(), {}});
    }
  }

  // Acceptance (ratifiers): unanimous input v forces output (1, v)
  // everywhere.
  if (spec.ratifier && !spec.inputs.empty()) {
    bool unanimous = std::all_of(
        spec.inputs.begin(), spec.inputs.end(),
        [&](value_t v) { return v == spec.inputs.front(); });
    if (unanimous) {
      value_t v = spec.inputs.front();
      for (const labeled_output& o : outputs) {
        if (o.out.decide && o.out.value == v) continue;
        std::ostringstream os;
        os << "ratifier with unanimous input " << v << " returned ("
           << o.out.decide << ", " << o.out.value << ") to p" << o.pid;
        rep.violations.push_back({violation_kind::acceptance, o.pid, 0,
                                  kInvalidReg, o.out.value, os.str(), {}});
      }
    }
  }
  resolve(rep);
}

void audit_slots(const std::vector<slot_output>& outputs,
                 const slot_audit_spec& spec, audit_report& rep) {
  MODCON_CHECK(spec.proposals.size() ==
               spec.slots * static_cast<std::uint64_t>(spec.n));

  // Per-slot agreement and validity.  The first decision seen for a slot
  // is the reference; every other decision must match it (agreement is
  // absolute for a slot log — each slot is full consensus, so unlike the
  // one-shot coherence check no undecided outputs exist to excuse).
  std::vector<const slot_output*> first(spec.slots, nullptr);
  for (const slot_output& o : outputs) {
    MODCON_CHECK_MSG(o.slot < spec.slots,
                     "slot output beyond the audited range");
    rep.events_checked++;

    bool proposed = false;
    for (process_id p = 0; p < static_cast<process_id>(spec.n); ++p) {
      if (spec.proposal(o.slot, p) == o.value) {
        proposed = true;
        break;
      }
    }
    if (!proposed) {
      std::ostringstream os;
      os << "slot " << o.slot << ": p" << o.pid << " decided " << o.value
         << ", which no process proposed for that slot";
      rep.violations.push_back({violation_kind::validity, o.pid, o.slot,
                                kInvalidReg, o.value, os.str(), {}});
    }

    const slot_output*& ref = first[o.slot];
    if (ref == nullptr) {
      ref = &o;
    } else if (o.value != ref->value) {
      std::ostringstream os;
      os << "slot " << o.slot << ": p" << o.pid << " decided " << o.value
         << " but p" << ref->pid << " decided " << ref->value;
      rep.violations.push_back({violation_kind::slot_coherence, o.pid, o.slot,
                                kInvalidReg, o.value, os.str(), {}});
    }
  }

  // Per-process prefix completeness: a survivor's decided slots must be
  // exactly [0, k) — a hole means it consumed slot s+1 without ever
  // learning slot s, which breaks the log abstraction (state machines
  // apply decisions in order).  Crash faults legally truncate a process's
  // suffix but still never punch holes.
  std::vector<std::vector<bool>> seen(
      spec.n, std::vector<bool>(static_cast<std::size_t>(spec.slots), false));
  for (const slot_output& o : outputs)
    if (o.pid < static_cast<process_id>(spec.n))
      seen[o.pid][static_cast<std::size_t>(o.slot)] = true;
  for (process_id p = 0; p < static_cast<process_id>(spec.n); ++p) {
    std::uint64_t hole = spec.slots;
    for (std::uint64_t s = 0; s < spec.slots; ++s) {
      if (!seen[p][static_cast<std::size_t>(s)]) {
        if (hole == spec.slots) hole = s;
      } else if (hole != spec.slots) {
        std::ostringstream os;
        os << "p" << p << " decided slot " << s << " but never slot " << hole;
        rep.violations.push_back({violation_kind::slot_prefix, p, s,
                                  kInvalidReg, kBot, os.str(), {}});
        break;
      }
    }
    // A truncated suffix (hole reaches the end) is only legal under
    // process faults.
    if (hole != spec.slots && !spec.process_faults) {
      bool trailing_only = true;
      for (std::uint64_t s = hole; s < spec.slots; ++s)
        if (seen[p][static_cast<std::size_t>(s)]) trailing_only = false;
      if (trailing_only) {
        std::ostringstream os;
        os << "p" << p << " stopped at slot " << hole << " of " << spec.slots
           << " in a fault-free trial";
        rep.violations.push_back({violation_kind::slot_prefix, p, hole,
                                  kInvalidReg, kBot, os.str(), {}});
      }
    }
  }
  resolve(rep);
}

void audit_composition(const std::vector<stage_record>& records,
                       const audit_spec& spec, audit_report& rep) {
  if (records.empty()) return;

  auto flag = [&](const stage_record& r, const std::string& detail) {
    rep.violations.push_back({violation_kind::composition, r.pid, 0,
                              kInvalidReg, r.output.value, detail, {}});
  };

  // Per-process chaining (Lemma 1/2 mechanics): within one attempt the
  // stages run 0, 1, 2, ... with each input equal to the previous carried
  // output, and a decide ends the attempt.  A fresh stage-0 record starts
  // a new attempt (crash-restart re-runs the program from scratch).
  process_id max_pid = 0;
  for (const stage_record& r : records) max_pid = std::max(max_pid, r.pid);
  std::vector<std::vector<const stage_record*>> by_pid(
      static_cast<std::size_t>(max_pid) + 1);
  for (const stage_record& r : records) by_pid[r.pid].push_back(&r);

  for (const auto& recs : by_pid) {
    bool in_attempt = false;
    std::uint32_t prev_stage = 0;
    decided prev_out{false, 0};
    for (const stage_record* r : recs) {
      std::ostringstream os;
      if (r->stage == 0) {
        in_attempt = true;  // new attempt; no constraint on its input
      } else if (!in_attempt) {
        os << "p" << r->pid << " entered stage " << r->stage
           << " without a stage-0 record";
        flag(*r, os.str());
      } else if (prev_out.decide) {
        os << "p" << r->pid << " continued to stage " << r->stage
           << " after deciding " << prev_out.value << " at stage "
           << prev_stage;
        flag(*r, os.str());
      } else if (r->stage != prev_stage + 1) {
        os << "p" << r->pid << " jumped from stage " << prev_stage
           << " to stage " << r->stage;
        flag(*r, os.str());
      } else if (r->input != prev_out.value) {
        os << "p" << r->pid << " entered stage " << r->stage << " with "
           << r->input << " but left stage " << prev_stage << " carrying "
           << prev_out.value;
        flag(*r, os.str());
      }
      prev_stage = r->stage;
      prev_out = r->output;
    }
  }

  if (!spec.check_properties) {
    resolve(rep);
    return;
  }

  // Decided-prefix pinning (Lemma 3 / Corollary 4): once any process
  // decides v at stage i, stage i's coherence plus later stages' validity
  // force every stage-i output and every later-stage input/output to v.
  const stage_record* pin = nullptr;
  for (const stage_record& r : records)
    if (r.output.decide && (pin == nullptr || r.stage < pin->stage)) pin = &r;
  if (pin != nullptr) {
    for (const stage_record& r : records) {
      std::ostringstream os;
      if (r.stage == pin->stage && r.output.value != pin->output.value) {
        os << "stage " << r.stage << " gave p" << r.pid << " value "
           << r.output.value << " although p" << pin->pid << " decided "
           << pin->output.value << " there";
        flag(r, os.str());
      } else if (r.stage > pin->stage && (r.input != pin->output.value ||
                                          r.output.value !=
                                              pin->output.value)) {
        os << "decided prefix (stage " << pin->stage << " -> "
           << pin->output.value << ") failed to pin p" << r.pid
           << " at stage " << r.stage << " (input " << r.input
           << ", output " << r.output.value << ")";
        flag(r, os.str());
      }
    }
  }

  // Stage-level validity: each stage's outputs come from that stage's
  // inputs.  Unsound under process faults (a crashed process's value can
  // survive it without leaving a record), so skipped there.
  if (!spec.process_faults) {
    std::uint32_t max_stage = 0;
    for (const stage_record& r : records)
      max_stage = std::max(max_stage, r.stage);
    std::vector<std::vector<value_t>> stage_inputs(max_stage + 1);
    for (const stage_record& r : records)
      stage_inputs[r.stage].push_back(r.input);
    for (const stage_record& r : records) {
      const auto& ins = stage_inputs[r.stage];
      if (std::find(ins.begin(), ins.end(), r.output.value) != ins.end())
        continue;
      std::ostringstream os;
      os << "stage " << r.stage << " gave p" << r.pid << " value "
         << r.output.value << " that no process carried into that stage";
      flag(r, os.str());
    }
  }
  resolve(rep);
}

namespace {

// Replay state for one simulated register: the truthful current value,
// the value before the most recent applied write (the only legal stale
// result under regular-register faults), and the values of writes that
// did not apply (missed probabilistic writes and injected omissions) —
// which must never surface through a read unless legitimately present.
struct reg_state {
  word current = kBot;
  word previous = kBot;
  bool cur_known = false;
  bool prev_known = false;
  bool init_done = false;
  std::vector<word> unapplied;  // deduplicated
  // Crash-recovery bookkeeping: the value the register held immediately
  // before its most recent recovery wipe (a wipe that surfaces through a
  // later read is a volatile_state_survival), and the trace's initial
  // value (persistent registers reverting to it across a recovery is a
  // persistent_state_loss).
  word pre_wipe = kBot;
  bool wiped = false;
  word initial = kBot;
  bool initial_known = false;
};

}  // namespace

void audit_trace(const sim::trace& tr, const audit_spec& spec,
                 audit_report& rep) {
  const auto& events = tr.events();
  std::vector<reg_state> regs;
  const bool semantic =
      spec.semantics != sim::register_semantics::atomic;
  bool recovery_seen = false;

  std::vector<reg_id> vol = spec.volatile_regs;
  std::sort(vol.begin(), vol.end());
  auto is_volatile = [&](reg_id r) {
    return std::binary_search(vol.begin(), vol.end(), r);
  };

  // Overlap reconstruction for the semantics modes: at the moment event i
  // executed, process q's pending posted operation is exactly q's *next*
  // event in the trace (the sim executes a posted op before the process
  // can post another; a pending write destroyed by a restart or abandoned
  // at end of run is recorded as an unapplied write event).  A q that had
  // not posted yet contributes its later op — a sound over-approximation
  // of the overlap set.
  std::vector<std::vector<std::size_t>> by_pid;
  std::vector<std::size_t> cursor;
  if (semantic) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      process_id p = events[i].pid;
      if (p == kInvalidProcess) continue;
      if (p >= by_pid.size()) by_pid.resize(static_cast<std::size_t>(p) + 1);
      by_pid[p].push_back(i);
    }
    cursor.assign(by_pid.size(), 0);
  }

  // Whether any write to r by a process other than `reader` overlaps
  // event index i, and whether one of them carries value v.  Cursors
  // advance monotonically (check_read is called in trace order).
  auto overlap_at = [&](std::size_t i, process_id reader, reg_id r, word v,
                        bool& any) {
    bool has_v = false;
    any = false;
    for (process_id q = 0; q < static_cast<process_id>(by_pid.size()); ++q) {
      if (q == reader) continue;
      const auto& lst = by_pid[q];
      std::size_t& c = cursor[q];
      while (c < lst.size() && lst[c] <= i) ++c;
      if (c == lst.size()) continue;
      const sim::trace_event& nxt = events[lst[c]];
      if (nxt.kind != op_kind::write || nxt.reg != r) continue;
      any = true;
      if (nxt.value == v) has_v = true;
    }
    return has_v;
  };

  auto state_of = [&](reg_id r) -> reg_state& {
    if (r >= regs.size()) regs.resize(static_cast<std::size_t>(r) + 1);
    reg_state& st = regs[r];
    if (!st.init_done) {
      st.init_done = true;
      if (tr.has_initial(r)) {
        st.current = st.previous = st.initial = tr.initial_of(r);
        st.cur_known = st.prev_known = st.initial_known = true;
      }
    }
    return st;
  };

  auto check_read = [&](const sim::trace_event& e, std::size_t index,
                        reg_id r, word v) {
    reg_state& st = state_of(r);
    ++rep.events_checked;
    // A register whose initial value the trace does not know and that has
    // not been written yet can legally hold anything we can name.
    if (!st.cur_known) return;
    if (v == st.current) return;
    bool any_overlap = false;
    if (semantic) {
      bool from_overlap = overlap_at(index, e.pid, r, v, any_overlap);
      // Regular: the overlap set's values are legal.  Safe: an overlapped
      // read may return anything at all; only a non-overlapped read must
      // stay truthful.
      if ((spec.semantics == sim::register_semantics::regular &&
           from_overlap) ||
          (spec.semantics == sim::register_semantics::safe && any_overlap)) {
        ++rep.stale_reads_matched;
        return;
      }
    }
    if (spec.regular_registers) {
      if (!st.prev_known) return;  // stale of an unknown initial
      if (v == st.previous) {
        ++rep.stale_reads_matched;
        return;
      }
    }
    bool from_unapplied = std::find(st.unapplied.begin(), st.unapplied.end(),
                                    v) != st.unapplied.end();
    std::ostringstream os;
    os << "p" << e.pid << " read r" << r << " -> " << v << " but r" << r
       << " holds " << st.current;
    violation_kind kind;
    if (st.wiped && v == st.pre_wipe && is_volatile(r)) {
      kind = violation_kind::volatile_state_survival;
      os << "; the value predates the volatile register's recovery wipe";
    } else if (recovery_seen && !is_volatile(r) && st.initial_known &&
               v == st.initial) {
      kind = violation_kind::persistent_state_loss;
      os << "; the persistent register reverted to its initial value "
            "across a recovery";
    } else if (spec.semantics == sim::register_semantics::regular) {
      kind = violation_kind::illegal_regular_read;
      os << " and no overlapping write carries " << v;
    } else if (spec.semantics == sim::register_semantics::safe) {
      kind = violation_kind::illegal_safe_read;
      os << " and no write overlaps the read";
    } else {
      kind = from_unapplied ? violation_kind::omitted_write_visible
                            : violation_kind::illegal_stale_read;
      if (spec.regular_registers) os << " (previous " << st.previous << ")";
    }
    if (from_unapplied)
      os << "; the value belongs to a write that did not apply";
    rep.violations.push_back({kind, e.pid, e.step, r, v, os.str(),
                              slice_around(events, index, spec.slice_radius)});
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const sim::trace_event& e = events[i];
    switch (e.kind) {
      case op_kind::read:
        check_read(e, i, e.reg, e.value);
        break;
      case op_kind::write: {
        reg_state& st = state_of(e.reg);
        ++rep.events_checked;
        if (e.applied) {
          // A crash-recovery wipe is recorded as an applied write by
          // kInvalidProcess at a step listed in spec.recovery_steps
          // (reinit/recycle writes share the pid but not the step).
          if (e.pid == kInvalidProcess &&
              std::binary_search(spec.recovery_steps.begin(),
                                 spec.recovery_steps.end(), e.step)) {
            st.pre_wipe = st.current;
            st.wiped = st.cur_known;
            recovery_seen = true;
          }
          st.previous = st.current;
          st.prev_known = st.cur_known;
          st.current = e.value;
          st.cur_known = true;
        } else {
          ++rep.unapplied_writes_seen;
          if (std::find(st.unapplied.begin(), st.unapplied.end(), e.value) ==
              st.unapplied.end())
            st.unapplied.push_back(e.value);
        }
        break;
      }
      case op_kind::collect: {
        auto values = tr.collect_values(i);
        for (std::size_t j = 0; j < values.size(); ++j)
          check_read(e, i, static_cast<reg_id>(e.reg + j), values[j]);
        break;
      }
    }
  }

  if (tr.overflowed()) {
    std::ostringstream os;
    os << "trace overflowed its " << tr.max_events()
       << "-event cap; legality verified only over the recorded prefix";
    mark_inconclusive(rep, os.str());
  }
  resolve(rep);
}

void audit_hb(const std::vector<hb_event>& events, const audit_spec& spec,
              const std::vector<word>& initial, audit_report& rep) {
  if (events.empty()) return;
  MODCON_CHECK(spec.n >= 1);
  hb_report hrep = check_serializable(events, spec.n, initial);
  rep.events_checked += hrep.events;

  // Rebuild the checker's end-sorted order so violation indices map to
  // context slices.
  std::vector<hb_event> sorted = events;
  std::sort(sorted.begin(), sorted.end(),
            [](const hb_event& a, const hb_event& b) {
              return a.end != b.end ? a.end < b.end : a.begin < b.begin;
            });
  auto as_trace_event = [](const hb_event& e) {
    return sim::trace_event{e.end, e.pid, e.kind, e.reg, e.value, e.applied};
  };
  for (const hb_violation& hv : hrep.unserializable) {
    violation v{violation_kind::unserializable_read, hv.event.pid,
                hv.event.end, hv.event.reg, hv.event.value, hv.detail, {}};
    std::size_t lo = hv.event_index > spec.slice_radius
                         ? hv.event_index - spec.slice_radius
                         : 0;
    std::size_t hi =
        std::min(sorted.size(), hv.event_index + spec.slice_radius + 1);
    for (std::size_t i = lo; i < hi; ++i)
      v.slice.push_back(as_trace_event(sorted[i]));
    rep.violations.push_back(std::move(v));
  }
  if (hrep.truncated)
    mark_inconclusive(rep,
                      "hb event stream truncated to bound clock memory");
  resolve(rep);
}

audit_report audit_trial(const sim::trace& tr,
                         const std::vector<labeled_output>& outputs,
                         const std::vector<stage_record>& stages,
                         const audit_spec& spec) {
  audit_report rep;
  audit_outputs(outputs, spec, rep);
  audit_composition(stages, spec, rep);
  if (tr.enabled()) audit_trace(tr, spec, rep);
  resolve(rep);
  return rep;
}

}  // namespace modcon::check
