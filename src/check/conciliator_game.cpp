#include "check/conciliator_game.h"

#include <map>
#include <vector>

#include "util/assertx.h"

namespace modcon::check {

namespace {

// Abstract per-process phase inside the conciliator loop.
enum phase : std::uint8_t { reading = 0, writing = 1 };

// Game state: register content (0 = ⊥, 1 = value A, 2 = value B), which
// output values have already been returned, and a census of active
// processes by (input, k, phase).  Processes with the same summary are
// exchangeable, so the census is the canonical form.
struct state {
  std::uint8_t reg = 0;
  bool out_a = false;
  bool out_b = false;
  // counts[input][k][phase], flattened.
  std::vector<std::uint8_t> counts;
};

class solver {
 public:
  solver(std::size_t n, unsigned k_sat, impatience_schedule schedule)
      : n_(n), k_sat_(k_sat), schedule_(schedule) {
    probs_.reserve(k_sat + 1);
    for (unsigned k = 0; k <= k_sat; ++k) {
      prob p = schedule_.probability(k, n);
      probs_.push_back(p.value());
    }
  }

  std::size_t cell(unsigned input, unsigned k, unsigned ph) const {
    return ((input * (k_sat_ + 1)) + k) * 2 + ph;
  }
  std::size_t cells() const { return 2 * (k_sat_ + 1) * 2; }

  double value(state& s) {
    if (s.out_a && s.out_b) return 0.0;  // disagreement already locked in

    bool any_active = false;
    for (auto c : s.counts) any_active |= c > 0;
    if (!any_active) return 1.0;  // everyone agreed

    auto key = encode(s);
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;

    double best = 2.0;  // adversary minimizes
    for (unsigned input = 0; input < 2; ++input) {
      for (unsigned k = 0; k <= k_sat_; ++k) {
        for (unsigned ph = 0; ph < 2; ++ph) {
          std::size_t c = cell(input, k, ph);
          if (s.counts[c] == 0) continue;
          double v = step(s, input, k, ph);
          if (v < best) best = v;
        }
      }
    }
    MODCON_CHECK_MSG(best <= 1.0, "no runnable process in a live state");
    memo_.emplace(std::move(key), best);
    return best;
  }

  std::size_t states() const { return memo_.size(); }

 private:
  // Executes the pending operation of one process from the given census
  // cell and returns the resulting game value.
  double step(state& s, unsigned input, unsigned k, unsigned ph) {
    std::size_t c = cell(input, k, ph);
    if (ph == reading) {
      if (s.reg == 0) {
        // Read ⊥: the process now holds a pending probabilistic write.
        state t = s;
        --t.counts[c];
        ++t.counts[cell(input, k, writing)];
        return value(t);
      }
      // Read a value: the process returns it.
      state t = s;
      --t.counts[c];
      (t.reg == 1 ? t.out_a : t.out_b) = true;
      return value(t);
    }
    // Pending probabilistic write: chance node.
    unsigned k_next = k < k_sat_ ? k + 1 : k_sat_;
    double q = probs_[k];
    state succ = s;
    --succ.counts[c];
    ++succ.counts[cell(input, k_next, reading)];
    succ.reg = static_cast<std::uint8_t>(1 + input);
    double v_succ = value(succ);
    if (q >= 1.0) return v_succ;
    state fail = s;
    --fail.counts[c];
    ++fail.counts[cell(input, k_next, reading)];
    double v_fail = value(fail);
    return q * v_succ + (1.0 - q) * v_fail;
  }

  std::vector<std::uint8_t> encode(const state& s) const {
    std::vector<std::uint8_t> key;
    key.reserve(s.counts.size() + 1);
    key.push_back(static_cast<std::uint8_t>(s.reg | (s.out_a ? 4 : 0) |
                                            (s.out_b ? 8 : 0)));
    key.insert(key.end(), s.counts.begin(), s.counts.end());
    return key;
  }

  std::size_t n_;
  unsigned k_sat_;
  impatience_schedule schedule_;
  std::vector<double> probs_;
  std::map<std::vector<std::uint8_t>, double> memo_;
};

}  // namespace

game_stats exact_worst_case_agreement(std::size_t n_a, std::size_t n_b,
                                      impatience_schedule schedule) {
  const std::size_t n = n_a + n_b;
  MODCON_CHECK_MSG(n >= 1, "need at least one process");
  MODCON_CHECK_MSG(n_a <= 200 && n_b <= 200, "census counts are bytes");

  // Find the saturation point; require one (growth factor > 1).
  unsigned k_sat = 0;
  while (!schedule.probability(k_sat, n).certain()) {
    ++k_sat;
    MODCON_CHECK_MSG(k_sat <= 4096,
                     "schedule never saturates (growth factor must be > 1)");
  }

  solver sol(n, k_sat, schedule);
  state init;
  init.counts.assign(sol.cells(), 0);
  init.counts[sol.cell(0, 0, reading)] =
      static_cast<std::uint8_t>(n_a);
  init.counts[sol.cell(1, 0, reading)] =
      static_cast<std::uint8_t>(n_b);
  game_stats stats;
  stats.value = sol.value(init);
  stats.states = sol.states();
  return stats;
}

}  // namespace modcon::check
