// Exhaustive model checker: stateless DFS over every adversary choice of
// a small system, with dynamic partial-order reduction.
//
// The paper's correctness properties quantify over all adversaries; for
// small n we can check them against literally every execution instead of
// a random sample.  An execution is identified by its choice sequence: a
// flat vector whose entries are decoded by replay position —
//
//   scheduling   the pid whose pending operation executes next, or an
//                explorer-injected crash (kChoiceRestart + pid for a
//                crash-restart, kChoiceRecover + pid for a crash-recovery
//                that also wipes the volatile register partition);
//   coin         0/1, the outcome of a non-trivial probabilistic write
//                (consulted when the write executes, so the branch sits
//                after every scheduling decision that could not have
//                observed it);
//   semantics    an index into the deterministically ordered legal-value
//                list of a regular/safe read whose overlap set is
//                non-trivial (see world_options::semantic_choice);
//   omission     0 = the write applies, 1 = it is dropped (while the
//                transient-omission budget lasts).
//
// The checker is *stateless* in the model-checking sense: it never
// snapshots the world (coroutine frames are not copyable), it re-executes
// choice prefixes.  Each replay runs to completion, discovering every
// branch point on its path in one pass, so the amortized replay cost per
// tree node is O(1) world steps rather than O(depth).
//
// Reduction (reduction::dpor, the default) follows Flanagan–Godefroid
// dynamic partial-order reduction with sleep sets: two steps commute
// unless their register footprints overlap with at least one write, and
// only non-commuting alternatives are scheduled for exploration.  The
// reduction is sound for the atomic-register, fault-free model; any
// option that makes scheduling nondeterminism observable through shared
// state (regular/safe semantics, crash or omission budgets, seeded bugs)
// automatically degrades to full branching — `explore_report::reduced`
// says which regime actually ran.  `reduction::naive` forces full
// branching and is kept as the cross-check oracle.
//
// Deterministic objects (e.g. the ratifier) have finitely many
// executions; coin-branching objects may not (a fixed-probability
// conciliator can miss forever), so a depth cap turns unbounded suffixes
// into counted "truncated" paths rather than non-termination.
//
// On violation the first offending choice sequence is greedily shrunk
// (delete windows while the violation reproduces, suffixes re-completed
// with default choices) and reported as `explore_report::witness`; feed
// it to `replay_witness` to re-run it, inspect the outputs, and export a
// Perfetto counterexample trace via obs/perfetto.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "analysis/runner.h"
#include "core/types.h"
#include "sim/register_file.h"

namespace modcon::check {

// Scheduling-choice encodings for explorer-injected crash faults.  Plain
// pids stay below kChoiceRestart, so a witness sequence remains a flat
// vector of small integers.
inline constexpr std::uint32_t kChoiceRestart = 0x10000;
inline constexpr std::uint32_t kChoiceRecover = 0x20000;

enum class reduction : std::uint8_t {
  naive,  // full branching over every enabled option (the oracle)
  dpor,   // sleep sets + backtrack points where sound (see file comment)
};

// Seeded-bug hooks for the checker's own test harness: each plants a
// deliberate model violation that an exhaustive run must catch (and a
// clean run must not report).  Arming any hook disables reduction.
struct seeded_bugs {
  // Under regular semantics, adds one extra branch per overlapped read
  // that returns a value outside the legal set — the auditor must flag it
  // as illegal_regular_read.
  bool illegal_read_option = false;
  // A chosen crash-recovery restarts the process but skips the volatile
  // wipe while still claiming the recovery to the auditor — surviving
  // volatile state must surface as volatile_state_survival.
  bool skip_recovery_wipe = false;

  bool any() const { return illegal_read_option || skip_recovery_wipe; }
};

struct explore_options {
  std::uint64_t max_executions = 5'000'000;
  // Decision-node budget (scheduling, coin, semantics, and omission
  // nodes).  Guards against mostly-truncated trees, where max_executions
  // alone would never bind.
  std::uint64_t max_nodes = 2'000'000;
  std::size_t max_choices = 256;  // depth cap per execution
  bool branch_coins = true;       // enumerate coin outcomes too
  reduction mode = reduction::dpor;
  // Register semantics the explored world runs under; regular/safe arm
  // the semantics choice dimension (and the trace auditor).
  sim::register_semantics semantics = sim::register_semantics::atomic;
  // Explorer-injected crash faults: total crash-restart/crash-recovery
  // events enumerable per execution (0 = none).
  std::uint32_t crash_budget = 0;
  // Transient write-omission budget (0 = none); arms the omission choice
  // dimension.
  std::uint64_t omission_budget = 0;
  // Run the trace auditor on every complete execution even when no fault
  // dimension forces it.
  bool audit = false;
  // Shrink the first violating sequence to a minimal witness.
  bool shrink = true;
  seeded_bugs seed_bugs;
};

struct explore_report {
  std::uint64_t executions = 0;  // complete executions checked
  std::uint64_t truncated = 0;   // paths cut off by max_choices
  std::uint64_t violations = 0;
  // Scheduling alternatives pruned by the reduction: enabled transitions
  // never explored at fully-expanded scheduling nodes, plus paths cut by
  // sleep sets.  0 when reduced is false.
  std::uint64_t pruned = 0;
  std::uint64_t sleep_blocked = 0;  // paths cut by sleep sets alone
  std::uint64_t nodes = 0;          // decision nodes materialized
  bool reduced = false;    // DPOR actually ran (mode + soundness gate)
  std::string first_violation;  // description + offending choice sequence
  // Minimal reproducing choice sequence for the first violation (the full
  // effective sequence of the shrunk reproduction; empty when no
  // violation).  Replay with replay_witness.
  std::vector<std::uint32_t> witness;
  bool exhausted = false;  // finished within max_executions/max_nodes

  bool ok() const { return violations == 0; }
};

// Returns an error description if the outputs violate the property.
using property_checker = std::function<std::optional<std::string>(
    const std::vector<decided>& outputs,
    const std::vector<value_t>& inputs)>;

explore_report explore_all(const analysis::sim_object_builder& build,
                           const std::vector<value_t>& inputs,
                           const property_checker& check,
                           const explore_options& opts = {});

// One replayed witness execution.  `effective` is the full choice
// sequence actually taken (the input witness extended with default
// choices if it was a prefix).
struct witness_result {
  bool replayed = false;   // witness was consistent with the world
  bool violation = false;  // property or audit violation reproduced
  std::string description;
  std::vector<decided> outputs;  // valid when replayed
  std::uint64_t steps = 0;
  std::vector<std::uint32_t> effective;
};

// Re-runs one choice sequence under the same configuration the explorer
// used (opts supplies semantics/budgets/seed bugs; mode is irrelevant).
// When `perfetto_out` is set, the execution is recorded and exported as a
// Perfetto counterexample trace.
witness_result replay_witness(const analysis::sim_object_builder& build,
                              const std::vector<value_t>& inputs,
                              const property_checker& check,
                              const explore_options& opts,
                              const std::vector<std::uint32_t>& witness,
                              std::ostream* perfetto_out = nullptr,
                              const std::string& label = "counterexample");

// --- canned property checkers (§3 definitions) ---

// Validity + coherence: every weak consensus object must pass.
property_checker weak_consensus_checker();
// Weak consensus + acceptance (only meaningful on unanimous inputs).
property_checker ratifier_checker();
// Weak consensus + everyone decides + agreement: full consensus.
property_checker consensus_checker();

}  // namespace modcon::check
