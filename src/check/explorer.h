// Exhaustive execution explorer: replay-based DFS over every adversary
// choice (and, optionally, every local-coin outcome) of a small system.
//
// The paper's correctness properties quantify over all adversaries; for
// small n we can check them against literally every execution instead of
// a random sample.  An execution is identified by its choice sequence: a
// pid whenever the scheduler picks, a bit whenever a non-trivial
// probabilistic write needs its coin.  The explorer replays prefixes
// (rebuilding a fresh world and object each time — objects are one-shot),
// discovers the options at the first unspecified choice, and backtracks.
//
// Deterministic objects (e.g. the ratifier) have finitely many
// executions; coin-branching objects may not (a fixed-probability
// conciliator can miss forever), so a depth cap turns unbounded suffixes
// into counted "truncated" paths rather than non-termination.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/runner.h"
#include "core/types.h"

namespace modcon::check {

struct explore_options {
  std::uint64_t max_executions = 5'000'000;
  // Total replay budget (tree nodes, complete or not).  Guards against
  // mostly-truncated trees, where max_executions alone would never bind.
  std::uint64_t max_nodes = 2'000'000;
  std::size_t max_choices = 256;  // depth cap per execution
  bool branch_coins = true;       // enumerate coin outcomes too
};

struct explore_report {
  std::uint64_t executions = 0;  // complete executions checked
  std::uint64_t truncated = 0;   // paths cut off by max_choices
  std::uint64_t violations = 0;
  std::string first_violation;   // description + offending choice sequence
  bool exhausted = false;        // finished within max_executions

  bool ok() const { return violations == 0; }
};

// Returns an error description if the outputs violate the property.
using property_checker = std::function<std::optional<std::string>(
    const std::vector<decided>& outputs,
    const std::vector<value_t>& inputs)>;

explore_report explore_all(const analysis::sim_object_builder& build,
                           const std::vector<value_t>& inputs,
                           const property_checker& check,
                           const explore_options& opts = {});

// --- canned property checkers (§3 definitions) ---

// Validity + coherence: every weak consensus object must pass.
property_checker weak_consensus_checker();
// Weak consensus + acceptance (only meaningful on unanimous inputs).
property_checker ratifier_checker();
// Weak consensus + everyone decides + agreement: full consensus.
property_checker consensus_checker();

}  // namespace modcon::check
