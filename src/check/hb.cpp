#include "check/hb.h"

#include <algorithm>
#include <sstream>

#include "util/assertx.h"

namespace modcon::check {

namespace {

using clock_t_ = std::vector<std::uint32_t>;

void join(clock_t_& into, const clock_t_& from) {
  for (std::size_t i = 0; i < into.size(); ++i)
    into[i] = std::max(into[i], from[i]);
}

bool dominates(const clock_t_& big, const clock_t_& small) {
  for (std::size_t i = 0; i < big.size(); ++i)
    if (big[i] < small[i]) return false;
  return true;
}

struct write_ref {
  std::size_t index;  // position in the end-sorted order
  process_id pid;
  word value;
  bool applied;
  std::uint64_t begin;
  std::uint64_t end;
  clock_t_ clock;       // post-clock of the writer; empty until processed
};

// Bound on vector-clock snapshot entries (events × n); beyond it the
// stream is cut and the report marked truncated.
constexpr std::uint64_t kMaxClockEntries = 32u << 20;

}  // namespace

hb_report check_serializable(std::vector<hb_event> events, std::size_t n,
                             const std::vector<word>& initial) {
  MODCON_CHECK(n >= 1);
  hb_report rep;
  std::sort(events.begin(), events.end(),
            [](const hb_event& a, const hb_event& b) {
              return a.end != b.end ? a.end < b.end : a.begin < b.begin;
            });
  std::size_t limit = events.size();
  if (static_cast<std::uint64_t>(limit) * n > kMaxClockEntries) {
    limit = static_cast<std::size_t>(kMaxClockEntries / n);
    rep.truncated = true;
  }

  // First pass: bucket every write by register, so a read can consider
  // writes whose commit point (end tick) comes after the read's — a write
  // overlapping the read may linearize before it yet be recorded later.
  reg_id max_reg = 0;
  for (std::size_t i = 0; i < limit; ++i)
    if (events[i].reg != kInvalidReg) max_reg = std::max(max_reg, events[i].reg);
  std::vector<std::vector<write_ref>> writes(
      static_cast<std::size_t>(max_reg) + 1);
  for (std::size_t i = 0; i < limit; ++i) {
    const hb_event& e = events[i];
    if (e.kind == op_kind::read) continue;
    writes[e.reg].push_back(
        {i, e.pid, e.value, e.applied, e.begin, e.end, {}});
  }

  auto initial_of = [&](reg_id r) {
    return r < initial.size() ? initial[r] : kBot;
  };

  std::vector<std::uint64_t> ends(limit);
  for (std::size_t i = 0; i < limit; ++i) ends[i] = events[i].end;

  std::vector<clock_t_> clocks(n, clock_t_(n, 0));
  // prefix_join[i] = join of the post-clocks of events[0..i]; gives the
  // real-time frontier "everything that completed before tick b" in one
  // binary search + one join.
  std::vector<clock_t_> prefix_join(limit);

  for (std::size_t i = 0; i < limit; ++i) {
    const hb_event& e = events[i];
    MODCON_CHECK_MSG(e.pid < n, "hb event names pid " << e.pid
                                                      << " outside 0.." << n - 1);
    clock_t_& cp = clocks[e.pid];
    // Real-time edges: every operation that completed before this one
    // began happens-before it.
    std::size_t k = static_cast<std::size_t>(
        std::lower_bound(ends.begin(), ends.end(), e.begin) - ends.begin());
    if (k > 0) join(cp, prefix_join[k - 1]);
    ++cp[e.pid];  // program order
    ++rep.events;

    if (e.kind != op_kind::read) {
      ++rep.writes;
      auto& ws = writes[e.reg];
      for (write_ref& w : ws) {
        if (w.index == i) {
          w.clock = cp;  // post-clock; published for later domination checks
        } else if (w.index < i && w.end > e.begin) {
          ++rep.overlapping_writes;
        }
      }
    } else {
      ++rep.reads;
      static const std::vector<write_ref> no_writes;
      const auto& ws = e.reg < writes.size() ? writes[e.reg] : no_writes;
      // A write w is an admissible source iff it could linearize before
      // the read (w began before the read ended) and it is not provably
      // superseded: no other applied write w' both strictly follows w in
      // real time (w.end < w'.begin) and is known to the reader
      // (dominates(cp, w'.clock)).  A write committed before the read
      // began is always known through the real-time prefix join, so this
      // one rule covers classical overwrite detection AND FastTrack-style
      // reading-backwards through reads-from edges.  Note that end-tick
      // order is NOT linearization order — a writer can be preempted
      // between its store and its end draw — which is exactly why
      // supersession needs w'.begin, never a comparison of end ticks.
      auto superseded = [&](std::uint64_t wend) {
        for (const write_ref& later : ws) {
          if (!later.applied || later.clock.empty()) continue;
          if (wend < later.begin && dominates(cp, later.clock)) return true;
        }
        return false;
      };
      auto known_write_exists = [&] {
        for (const write_ref& later : ws)
          if (later.applied && !later.clock.empty() &&
              dominates(cp, later.clock))
            return true;
        return false;
      };

      bool initial_ok =
          e.value == initial_of(e.reg) && !known_write_exists();
      const write_ref* source = nullptr;
      std::size_t candidates = 0;
      for (const write_ref& w : ws) {
        if (!w.applied || w.value != e.value) continue;
        if (w.begin >= e.end) continue;
        if (superseded(w.end)) continue;
        if (source == nullptr) source = &w;
        ++candidates;
      }
      if (!initial_ok && source == nullptr) {
        hb_violation v;
        v.event_index = i;
        v.event = e;
        std::ostringstream os;
        os << "p" << e.pid << " read r" << e.reg << " -> " << e.value
           << " over [" << e.begin << "," << e.end << ") has no "
           << "admissible source write (initial " << initial_of(e.reg)
           << "); unserializable under atomic registers";
        v.detail = os.str();
        rep.unserializable.push_back(std::move(v));
      }
      // Reads-from edge — but only when the source is unambiguous.  With
      // several same-value candidates (processes often write identical
      // proposals) joining an arbitrary one would over-state the reader's
      // knowledge and could fabricate supersessions downstream; a write
      // that committed before the read is already in cp via the prefix
      // join, so skipping the join only under-approximates.
      if (candidates == 1 && source != nullptr && !source->clock.empty())
        join(cp, source->clock);
    }

    prefix_join[i] = i > 0 ? prefix_join[i - 1] : clock_t_(n, 0);
    join(prefix_join[i], cp);
  }
  return rep;
}

}  // namespace modcon::check
