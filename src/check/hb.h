// Vector-clock happens-before tracking over logical register operations
// (FastTrack-lite), for auditing rt traces.
//
// The rt backend records each operation with a begin/end interval drawn
// from one global atomic sequence (rt::rt_trace_recorder).  Atomic
// multiwriter registers are linearizable, so some serialization of the
// recorded operations must explain every read:
//
//   * a read may return the value of any write that began before the
//     read ended and is not provably superseded — where write w is
//     superseded when another applied write w' strictly follows it in
//     real time (w.end < w'.begin) and the reader knows w' happened
//     (w' completed before the read began, or reached the reader through
//     program-order / reads-from edges);
//   * in particular a read may NOT return a value that was provably
//     overwritten before it began, and a process may not read backwards
//     past a write it already observed.  End ticks are deliberately
//     never compared to each other: a writer can be preempted between
//     its store and its end draw, so end order is not linearization
//     order.
//
// The tracker maintains one vector clock per process (advanced in program
// order, joined across real-time edges — every operation that completed
// before this one began — and reads-from edges) and, per register, the
// clock and interval of every write.  A read with no admissible source
// write is reported as unserializable.  This is deliberately a checker of
// the *environment* (registers + recorder), not of algorithms: a clean
// seq_cst execution can never trip it, a buggy register implementation or
// torn recorder will.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/types.h"

namespace modcon::check {

// One logical register operation with its global-sequence interval.
// Collects are expanded by the caller into one event per register read.
struct hb_event {
  process_id pid = 0;
  op_kind kind = op_kind::read;
  reg_id reg = kInvalidReg;
  word value = 0;      // value written, or value the read observed
  bool applied = true;  // writes only; an unapplied write is never visible
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

struct hb_violation {
  std::size_t event_index;  // into the sorted event order
  hb_event event;
  std::string detail;
};

struct hb_report {
  std::uint64_t events = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  // Concurrent writes to the same register (legal for atomic registers;
  // reported as context, not as violations).
  std::uint64_t overlapping_writes = 0;
  // True when the event stream was cut to bound the tracker's memory
  // (clock snapshots are O(events × n)); a clean verdict is then only
  // over the checked prefix.
  bool truncated = false;
  std::vector<hb_violation> unserializable;

  bool ok() const { return unserializable.empty(); }
};

// Checks that `events` (any order; sorted internally by end) admit a
// linearization over atomic registers, for a system of n processes.
// Register initial values are taken as kBot unless the caller provides
// them via `initial` (indexed by reg id; shorter vectors mean "kBot").
hb_report check_serializable(std::vector<hb_event> events, std::size_t n,
                             const std::vector<word>& initial = {});

}  // namespace modcon::check
