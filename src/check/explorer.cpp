#include "check/explorer.h"

#include <algorithm>
#include <sstream>

#include "sim/world.h"
#include "util/assertx.h"

namespace modcon::check {

namespace {

// A choice is a pid (scheduling) or 0/1 (coin); which one is determined
// by replay position, so a flat vector suffices.
using choice_seq = std::vector<std::uint32_t>;

enum class overflow_kind { none, schedule, coin };

struct replay_outcome {
  bool complete = false;                  // all processes halted
  overflow_kind overflow = overflow_kind::none;
  std::vector<std::uint32_t> options;     // branches at the first gap
  std::vector<decided> outputs;           // valid when complete
};

// Adversary that consumes scheduling choices from the shared cursor.
class replay_adversary final : public sim::adversary {
 public:
  replay_adversary(const choice_seq& choices, std::size_t& cursor,
                   replay_outcome& out)
      : choices_(choices), cursor_(cursor), out_(out) {}

  sim::adversary_power power() const override {
    return sim::adversary_power::oblivious;
  }
  std::string name() const override { return "replay"; }
  void reset(std::size_t, std::uint64_t) override {}

  process_id pick(const sim::sched_view& view) override {
    if (out_.overflow != overflow_kind::none)
      return view.runnable().front();  // draining; result is discarded
    if (cursor_ < choices_.size()) {
      process_id p = choices_[cursor_++];
      MODCON_CHECK_MSG(view.is_runnable(p),
                       "replayed schedule picked a non-runnable process");
      return p;
    }
    out_.overflow = overflow_kind::schedule;
    auto r = view.runnable();
    out_.options.assign(r.begin(), r.end());
    std::sort(out_.options.begin(), out_.options.end());
    return r.front();
  }

 private:
  const choice_seq& choices_;
  std::size_t& cursor_;
  replay_outcome& out_;
};

replay_outcome replay(const analysis::sim_object_builder& build,
                      const std::vector<value_t>& inputs,
                      const choice_seq& choices, bool branch_coins,
                      std::size_t max_choices) {
  replay_outcome out;
  std::size_t cursor = 0;
  replay_adversary adv(choices, cursor, out);

  sim::world_options wopts;
  if (branch_coins) {
    wopts.coin_override = [&](process_id, const prob&) -> bool {
      if (out.overflow != overflow_kind::none) return false;  // draining
      if (cursor < choices.size()) return choices[cursor++] != 0;
      out.overflow = overflow_kind::coin;
      out.options = {0, 1};
      return false;
    };
  }

  const std::size_t n = inputs.size();
  sim::sim_world world(n, adv, /*seed=*/12345, std::move(wopts));
  auto obj = build(world, n);
  for (process_id pid = 0; pid < n; ++pid) {
    world.spawn([&obj, v = inputs[pid]](sim::sim_env& env) {
      return invoke_encoded(*obj, env, v);
    });
  }

  // Step one operation at a time so a choice gap stops the replay at the
  // right spot (the gap may be detected while posting the next op).
  std::size_t step_budget = max_choices + 16;
  while (out.overflow == overflow_kind::none && step_budget-- > 0) {
    auto r = world.run(1);
    if (r.status == sim::run_status::all_halted) {
      out.complete = true;
      break;
    }
    MODCON_CHECK_MSG(r.status != sim::run_status::no_runnable,
                     "explorer does not inject crashes");
  }
  if (out.complete) {
    MODCON_CHECK_MSG(cursor == choices.size(),
                     "execution finished without consuming every choice");
    for (process_id pid = 0; pid < n; ++pid)
      out.outputs.push_back(decode_decided(*world.output_of(pid)));
  } else if (out.overflow == overflow_kind::none) {
    // Ran out of step budget without a gap: treat as truncation.
    out.overflow = overflow_kind::schedule;
    out.options.clear();
  }
  return out;
}

std::string format_choices(const choice_seq& c) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i) os << " ";
    os << c[i];
  }
  os << "]";
  return os.str();
}

}  // namespace

explore_report explore_all(const analysis::sim_object_builder& build,
                           const std::vector<value_t>& inputs,
                           const property_checker& check,
                           const explore_options& opts) {
  explore_report report;
  std::vector<choice_seq> stack;
  stack.emplace_back();

  std::uint64_t nodes = 0;
  while (!stack.empty()) {
    if (report.executions >= opts.max_executions ||
        ++nodes > opts.max_nodes)
      return report;
    choice_seq choices = std::move(stack.back());
    stack.pop_back();

    replay_outcome out =
        replay(build, inputs, choices, opts.branch_coins, opts.max_choices);

    if (out.complete) {
      ++report.executions;
      if (auto err = check(out.outputs, inputs)) {
        ++report.violations;
        if (report.first_violation.empty())
          report.first_violation =
              *err + " on choices " + format_choices(choices);
      }
      continue;
    }
    if (choices.size() >= opts.max_choices || out.options.empty()) {
      ++report.truncated;
      continue;
    }
    // Push branches in reverse so exploration visits them in order.
    for (auto it = out.options.rbegin(); it != out.options.rend(); ++it) {
      choices.push_back(*it);
      stack.push_back(choices);
      choices.pop_back();
    }
  }
  report.exhausted = true;
  return report;
}

property_checker weak_consensus_checker() {
  return [](const std::vector<decided>& outputs,
            const std::vector<value_t>& inputs)
             -> std::optional<std::string> {
    if (!analysis::check_validity(outputs, inputs))
      return "validity violated";
    if (!analysis::check_coherence(outputs)) return "coherence violated";
    return std::nullopt;
  };
}

property_checker ratifier_checker() {
  return [base = weak_consensus_checker()](
             const std::vector<decided>& outputs,
             const std::vector<value_t>& inputs)
             -> std::optional<std::string> {
    if (auto err = base(outputs, inputs)) return err;
    bool unanimous = std::all_of(
        inputs.begin(), inputs.end(),
        [&](value_t v) { return v == inputs.front(); });
    if (unanimous &&
        !analysis::check_acceptance(outputs, inputs.front()))
      return "acceptance violated";
    return std::nullopt;
  };
}

property_checker consensus_checker() {
  return [base = weak_consensus_checker()](
             const std::vector<decided>& outputs,
             const std::vector<value_t>& inputs)
             -> std::optional<std::string> {
    if (auto err = base(outputs, inputs)) return err;
    if (!analysis::all_decided(outputs)) return "a process did not decide";
    if (!analysis::check_agreement(outputs)) return "agreement violated";
    return std::nullopt;
  };
}

}  // namespace modcon::check
