#include "check/explorer.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <optional>
#include <ostream>
#include <sstream>

#include "check/auditor.h"
#include "obs/metrics.h"
#include "obs/perfetto.h"
#include "sim/world.h"
#include "util/assertx.h"

namespace modcon::check {

namespace {

// A choice is decoded by replay position (see explorer.h), so a flat
// vector suffices.
using choice_seq = std::vector<std::uint32_t>;

constexpr std::uint64_t kSeed = 12345;  // world seed; fixed for replay

// The value a seeded illegal-read injects: plausible enough to flow
// through a protocol as an ordinary word, but never written by the small
// systems under test, so the trace auditor must flag the read.
constexpr word kSeededIllegalValue = 1337;

enum class node_kind : std::uint8_t { sched, coin, sem_read, omission };

// Register footprint of one operation: cells [lo, hi) plus whether it
// writes.  A probabilistic write counts as a write regardless of its
// coin — an in-model adversary cannot tell a miss-bound write apart.
struct op_fp {
  reg_id lo = 0;
  reg_id hi = 0;  // lo == hi: no footprint
  bool write = false;
};

bool fp_dependent(const op_fp& a, const op_fp& b) {
  return (a.write || b.write) && a.lo < b.hi && b.lo < a.hi;
}

op_fp footprint(const sim::posted_op& op) {
  switch (op.kind) {
    case op_kind::read:
      return {op.reg, static_cast<reg_id>(op.reg + 1), false};
    case op_kind::write:
      return {op.reg, static_cast<reg_id>(op.reg + 1), true};
    case op_kind::collect:
      return {op.reg, static_cast<reg_id>(op.reg + op.count), false};
  }
  return {};
}

// The explorer drives the world through step_process/restart_now; the
// adversary slot is never consulted.
class null_adversary final : public sim::adversary {
 public:
  sim::adversary_power power() const override {
    return sim::adversary_power::oblivious;
  }
  std::string name() const override { return "model-checker"; }
  void reset(std::size_t, std::uint64_t) override {}
  process_id pick(const sim::sched_view& view) override {
    MODCON_CHECK_MSG(false, "the model checker drives the world directly");
    return view.runnable().front();
  }
};

std::string format_choices(const choice_seq& c) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i) os << " ";
    if (c[i] >= kChoiceRecover)
      os << "R" << (c[i] - kChoiceRecover);
    else if (c[i] >= kChoiceRestart)
      os << "r" << (c[i] - kChoiceRestart);
    else
      os << c[i];
  }
  os << "]";
  return os.str();
}

// One decision point materialized in the DFS tree.
struct node {
  node_kind kind = node_kind::sched;
  // Full-branching state: the option list in exploration order and the
  // cursor of the next unexplored one (options[0] was taken at creation).
  // Unused for sched nodes under an active reduction.
  std::vector<std::uint32_t> options;
  std::uint32_t next = 1;
  // The choice currently taken at this node (kept current on re-branch;
  // the DPOR race scan reads it as the executed transition).
  std::uint32_t chosen = 0;
  // --- DPOR state, sched nodes only (pids as bits; n <= 32) ---
  std::uint32_t enabled = 0;    // runnable pids at this point
  std::uint32_t sleep_in = 0;   // inherited sleep set
  std::uint32_t slept = 0;      // transitions fully explored here
  std::uint32_t backtrack = 0;  // transitions scheduled for exploration
  std::vector<op_fp> pending;   // pending[pid], valid where enabled
};

struct drive_result {
  bool complete = false;  // all processes halted, no cut
  std::uint64_t steps = 0;
  std::vector<decided> outputs;           // valid when complete
  std::optional<std::string> violation;   // valid when complete
};

// Callbacks a replay uses to resolve every decision.  `sched` receives
// the sorted option list (pids, then crash encodings); `pick` receives
// the option count of an index-valued decision (coin / semantics read /
// omission) and returns the index; `stop` cuts the replay.
struct driver_hooks {
  std::function<std::uint32_t(sim::sim_world&,
                              const std::vector<std::uint32_t>&)>
      sched;
  std::function<std::uint32_t(node_kind, std::size_t)> pick;
  std::function<bool()> stop;
};

class engine {
 public:
  engine(const analysis::sim_object_builder& build,
         const std::vector<value_t>& inputs, const property_checker& check,
         const explore_options& opts)
      : build_(build), inputs_(inputs), check_(check), opts_(opts),
        n_(inputs.size()) {
    reduced_ = opts_.mode == reduction::dpor && reduction_sound();
    audit_ = opts_.audit ||
             opts_.semantics != sim::register_semantics::atomic ||
             opts_.omission_budget > 0 || opts_.crash_budget > 0;
  }

  explore_report run();
  witness_result witness_run(const choice_seq& forced, std::ostream* po,
                             const std::string& label);

 private:
  // DPOR is sound only when scheduling nondeterminism is invisible to
  // shared state except through the footprint dependence relation: the
  // atomic-register, fault-free model.  Semantics modes change what a
  // read may return based on the overlap set, crash/omission budgets
  // gate on execution position, and seeded bugs do both — all of them
  // degrade to full branching.  The bitmask machinery also needs pids to
  // fit a word.
  bool reduction_sound() const {
    return opts_.semantics == sim::register_semantics::atomic &&
           opts_.crash_budget == 0 && opts_.omission_budget == 0 &&
           !opts_.seed_bugs.any() && n_ <= 32;
  }

  drive_result drive(const driver_hooks& hooks,
                     std::vector<std::uint64_t>& claimed,
                     obs::trial_recorder* rec = nullptr,
                     std::ostream* perfetto_out = nullptr,
                     const std::string& label = {});
  void sched_options(const sim::sim_world& world, std::uint32_t crash_left,
                     std::vector<std::uint32_t>& out) const;
  void apply_choice(sim::sim_world& world, std::uint32_t c,
                    std::uint32_t& crash_left,
                    std::vector<std::uint64_t>& claimed) const;
  std::optional<std::string> evaluate(
      sim::sim_world& world, const std::vector<std::uint64_t>& claimed,
      std::vector<decided>& outputs) const;

  // Exploring-mode decisions (path/choices bookkeeping + DPOR masks).
  std::uint32_t explore_sched(sim::sim_world& world,
                              const std::vector<std::uint32_t>& options);
  std::uint32_t explore_pick(node_kind kind, std::size_t count);
  std::uint32_t child_sleep(const node& nd, std::uint32_t p) const;
  void apply_dpor_updates();
  std::optional<std::uint32_t> pick_next(node& nd);
  choice_seq shrink(const choice_seq& seq0);

  const analysis::sim_object_builder& build_;
  const std::vector<value_t>& inputs_;
  const property_checker& check_;
  const explore_options& opts_;
  std::size_t n_;
  bool reduced_ = false;
  bool audit_ = false;

  // DFS state.
  std::vector<node> path_;
  choice_seq choices_;
  std::size_t prefix_len_ = 0;  // choices_[0, prefix_len_) are forced
  std::size_t branch_pos_ = 0;  // path index of the last branch point
  // Per-replay state.
  std::size_t pos_ = 0;
  bool overflow_ = false;
  bool blocked_ = false;
  bool node_cap_hit_ = false;
  std::uint32_t pending_sleep_ = 0;  // sleep set for the next sched node
  std::vector<std::uint64_t> claimed_recoveries_;
  // Counters.
  std::uint64_t executions_ = 0;
  std::uint64_t truncated_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t pruned_ = 0;
  std::uint64_t sleep_blocked_ = 0;
  std::uint64_t nodes_created_ = 0;
  std::string first_violation_;
  choice_seq first_bad_;
  bool have_first_ = false;
};

// ---------------------------------------------------------------------
// Replay core, shared by exploration and witness replay.
// ---------------------------------------------------------------------

void engine::sched_options(const sim::sim_world& world,
                           std::uint32_t crash_left,
                           std::vector<std::uint32_t>& out) const {
  auto rp = world.runnable_processes();
  out.assign(rp.begin(), rp.end());
  std::sort(out.begin(), out.end());
  if (crash_left == 0) return;
  const std::size_t np = out.size();
  // A crash-restart of a process with no executed operations is a
  // stutter (the fresh incarnation re-posts the same first op), so it is
  // not offered.  A crash-recovery additionally wipes the volatile
  // partition, which matters on its own once any volatile cell has been
  // written — then it is offered for every runnable process.
  for (std::size_t i = 0; i < np; ++i)
    if (world.ops_of(out[i]) > 0) out.push_back(kChoiceRestart + out[i]);
  if (world.volatile_registers().empty()) return;
  bool wipe_matters = false;
  for (reg_id r : world.volatile_registers())
    if (world.peek(r) != world.initial_of(r)) {
      wipe_matters = true;
      break;
    }
  for (std::size_t i = 0; i < np; ++i)
    if (wipe_matters || world.ops_of(out[i]) > 0)
      out.push_back(kChoiceRecover + out[i]);
}

void engine::apply_choice(sim::sim_world& world, std::uint32_t c,
                          std::uint32_t& crash_left,
                          std::vector<std::uint64_t>& claimed) const {
  if (c < kChoiceRestart) {
    world.step_process(static_cast<process_id>(c));
    return;
  }
  MODCON_CHECK_MSG(crash_left > 0, "crash choice without remaining budget");
  --crash_left;
  if (c < kChoiceRecover) {
    world.restart_now(static_cast<process_id>(c - kChoiceRestart),
                      /*recover=*/false);
    return;
  }
  const process_id p = static_cast<process_id>(c - kChoiceRecover);
  if (opts_.seed_bugs.skip_recovery_wipe) {
    // Seeded bug: claim the recovery — trace wipe events and the
    // recovery step the auditor keys on — but leave memory untouched.
    // Volatile state that then resurfaces is a volatile_state_survival.
    sim::trace& tr = world.execution_trace();
    if (tr.enabled())
      for (reg_id r : world.volatile_registers())
        tr.record({world.steps(), kInvalidProcess, op_kind::write, r,
                   world.initial_of(r), /*applied=*/true});
    claimed.push_back(world.steps());
    world.restart_now(p, /*recover=*/false);
  } else {
    world.restart_now(p, /*recover=*/true);
  }
}

std::optional<std::string> engine::evaluate(
    sim::sim_world& world, const std::vector<std::uint64_t>& claimed,
    std::vector<decided>& outputs) const {
  outputs.clear();
  for (process_id pid = 0; pid < n_; ++pid)
    outputs.push_back(decode_decided(*world.output_of(pid)));
  // Audit first: "is this execution even explainable by the model" is
  // more fundamental than the object property, and a seeded illegal read
  // often breaks validity downstream — the root cause should win.
  if (audit_) {
    audit_spec spec;
    spec.n = n_;
    spec.inputs = inputs_;
    spec.check_properties = false;
    spec.semantics = opts_.semantics;
    spec.write_omission = opts_.omission_budget > 0;
    spec.volatile_regs = world.volatile_registers();
    spec.recovery_steps = world.recovery_steps();
    if (!claimed.empty()) {
      spec.recovery_steps.insert(spec.recovery_steps.end(), claimed.begin(),
                                 claimed.end());
      std::sort(spec.recovery_steps.begin(), spec.recovery_steps.end());
    }
    spec.process_faults = opts_.crash_budget > 0;
    audit_report rep;
    audit_trace(world.execution_trace(), spec, rep);
    if (!rep.violations.empty()) {
      std::ostringstream os;
      os << "audit: " << rep.violations.front();
      return os.str();
    }
  }
  if (auto err = check_(outputs, inputs_)) return err;
  return std::nullopt;
}

drive_result engine::drive(const driver_hooks& hooks,
                           std::vector<std::uint64_t>& claimed,
                           obs::trial_recorder* rec,
                           std::ostream* perfetto_out,
                           const std::string& label) {
  sim::world_options wopts;
  wopts.trace_enabled = audit_ || rec != nullptr;
  wopts.obs = rec;
  sim::register_fault_config fc;
  fc.semantics = opts_.semantics;
  if (opts_.omission_budget > 0) {
    fc.omit_denominator = 2;  // any nonzero arms the budget; outcomes are
                              // the explorer's choice, not coin draws
    fc.omit_budget = opts_.omission_budget;
  }
  wopts.register_faults = fc;
  if (opts_.branch_coins)
    wopts.coin_override = [&](process_id, const prob&) -> bool {
      return hooks.pick(node_kind::coin, 2) != 0;
    };
  if (opts_.semantics != sim::register_semantics::atomic)
    wopts.semantic_choice = [&](process_id, reg_id,
                                std::span<const word> legal) -> word {
      std::size_t count = legal.size();
      if (opts_.seed_bugs.illegal_read_option &&
          opts_.semantics == sim::register_semantics::regular)
        ++count;  // one extra, illegal outcome per overlapped read
      const std::uint32_t c = hooks.pick(node_kind::sem_read, count);
      return c < legal.size() ? legal[c] : kSeededIllegalValue;
    };
  if (opts_.omission_budget > 0)
    wopts.omission_choice = [&](process_id, reg_id, word) -> bool {
      return hooks.pick(node_kind::omission, 2) == 1;
    };

  null_adversary adv;
  sim::sim_world world(n_, adv, kSeed, std::move(wopts));
  auto obj = build_(world, n_);
  for (process_id pid = 0; pid < n_; ++pid)
    world.spawn([&obj, v = inputs_[pid]](sim::sim_env& env) {
      return invoke_encoded(*obj, env, v);
    });

  std::uint32_t crash_left = opts_.crash_budget;
  std::vector<std::uint32_t> options;
  while (!world.all_halted()) {
    if (hooks.stop()) break;
    MODCON_CHECK_MSG(!world.runnable_processes().empty(),
                     "live processes exist but none is runnable");
    sched_options(world, crash_left, options);
    const std::uint32_t c = hooks.sched(world, options);
    if (hooks.stop()) break;
    apply_choice(world, c, crash_left, claimed);
  }

  drive_result out;
  out.steps = world.steps();
  out.complete = world.all_halted() && !hooks.stop();
  if (out.complete) out.violation = evaluate(world, claimed, out.outputs);
  if (rec != nullptr) {
    for (process_id pid = 0; pid < n_; ++pid)
      rec->force_close(pid, world.steps(), world.ops_of(pid),
                       world.draws_of(pid));
    rec->seal();
    if (perfetto_out != nullptr) {
      obs::trial_obs tobs =
          obs::finalize_trial(*rec, &world.execution_trace());
      obs::write_perfetto(
          *perfetto_out, tobs,
          obs::perfetto_meta{label, "sim", kSeed, n_, world.steps()});
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Exploration decisions.
// ---------------------------------------------------------------------

std::uint32_t engine::child_sleep(const node& nd, std::uint32_t p) const {
  // Flanagan–Godefroid sleep propagation: a sleeping transition stays
  // asleep across p's step iff it is independent of p's transition.
  std::uint32_t sleeping = (nd.sleep_in | nd.slept) & nd.enabled;
  sleeping &= ~(1u << p);
  std::uint32_t out = 0;
  while (sleeping != 0) {
    const std::uint32_t q =
        static_cast<std::uint32_t>(std::countr_zero(sleeping));
    sleeping &= sleeping - 1;
    if (!fp_dependent(nd.pending[q], nd.pending[p])) out |= 1u << q;
  }
  return out;
}

std::uint32_t engine::explore_sched(
    sim::sim_world& world, const std::vector<std::uint32_t>& options) {
  const std::size_t d = pos_++;
  if (d < prefix_len_) {
    node& nd = path_[d];
    MODCON_CHECK_MSG(nd.kind == node_kind::sched,
                     "prefix replay diverged at a scheduling point");
    const std::uint32_t c = choices_[d];
    if (reduced_) pending_sleep_ = child_sleep(nd, c);
    return c;
  }
  if (overflow_ || blocked_ || node_cap_hit_) return options.front();
  if (d >= opts_.max_choices) {
    overflow_ = true;
    return options.front();
  }
  if (nodes_created_ >= opts_.max_nodes) {
    node_cap_hit_ = true;
    return options.front();
  }
  node nd;
  nd.kind = node_kind::sched;
  std::uint32_t chosen;
  if (reduced_) {
    for (std::uint32_t c : options) nd.enabled |= 1u << c;
    nd.sleep_in = pending_sleep_;
    nd.pending.assign(n_, {});
    for (std::uint32_t c : options)
      nd.pending[c] = footprint(world.pending_op(c));
    const std::uint32_t cand = nd.enabled & ~nd.sleep_in;
    if (cand == 0) {
      // Every enabled transition is asleep: each continuation from here
      // is a reordering of an execution explored elsewhere.
      ++sleep_blocked_;
      blocked_ = true;
      return options.front();
    }
    chosen = static_cast<std::uint32_t>(std::countr_zero(cand));
    nd.chosen = chosen;
    nd.backtrack = 1u << chosen;
    pending_sleep_ = child_sleep(nd, chosen);
  } else {
    nd.options = options;
    nd.next = 1;
    chosen = options.front();
    nd.chosen = chosen;
  }
  ++nodes_created_;
  path_.push_back(std::move(nd));
  choices_.push_back(chosen);
  return chosen;
}

std::uint32_t engine::explore_pick(node_kind kind, std::size_t count) {
  const std::size_t d = pos_++;
  if (d < prefix_len_) {
    MODCON_CHECK_MSG(path_[d].kind == kind,
                     "prefix replay diverged at a coin/fault point");
    return choices_[d];
  }
  if (overflow_ || blocked_ || node_cap_hit_) return 0;
  if (d >= opts_.max_choices) {
    overflow_ = true;
    return 0;
  }
  if (nodes_created_ >= opts_.max_nodes) {
    node_cap_hit_ = true;
    return 0;
  }
  node nd;
  nd.kind = kind;
  nd.options.resize(count);
  std::iota(nd.options.begin(), nd.options.end(), 0u);
  nd.next = 1;
  nd.chosen = 0;
  ++nodes_created_;
  path_.push_back(std::move(nd));
  choices_.push_back(0);
  return 0;
}

void engine::apply_dpor_updates() {
  // For every enabled transition p at every sched point s on the path
  // just executed, find the last earlier executed step that races with
  // p's pending op there and schedule p for exploration at that step's
  // pre-state (or all its enabled transitions, when p itself was not
  // enabled there).  Points before the branch were processed by earlier
  // replays over an identical prefix, so only s >= branch_pos_ is new;
  // the backward scan still covers the whole prefix.  No happens-before
  // filtering — a conservative (sound, slightly less reducing) variant.
  for (std::size_t s = branch_pos_; s < path_.size(); ++s) {
    if (path_[s].kind != node_kind::sched) continue;
    const node& ns = path_[s];
    std::uint32_t todo = ns.enabled;
    while (todo != 0) {
      const std::uint32_t p =
          static_cast<std::uint32_t>(std::countr_zero(todo));
      todo &= todo - 1;
      const op_fp& fp = ns.pending[p];
      for (std::size_t i = s; i-- > 0;) {
        if (path_[i].kind != node_kind::sched) continue;
        const std::uint32_t q = path_[i].chosen;
        // p's own earlier step is program-ordered with its pending op,
        // never a race.
        if (q == p) continue;
        if (!fp_dependent(path_[i].pending[q], fp)) continue;
        node& nb = path_[i];
        if ((nb.enabled & (1u << p)) != 0)
          nb.backtrack |= 1u << p;
        else
          nb.backtrack |= nb.enabled;
        break;
      }
    }
  }
}

std::optional<std::uint32_t> engine::pick_next(node& nd) {
  if (reduced_ && nd.kind == node_kind::sched) {
    // Reaching back to this node means the chosen transition's subtree
    // is fully explored: move it to the sleep side, then take the next
    // transition the race analysis scheduled.
    nd.slept |= 1u << nd.chosen;
    const std::uint32_t cand =
        nd.backtrack & nd.enabled & ~(nd.sleep_in | nd.slept);
    if (cand == 0) return std::nullopt;
    const std::uint32_t p =
        static_cast<std::uint32_t>(std::countr_zero(cand));
    nd.chosen = p;
    return p;
  }
  if (nd.next < nd.options.size()) {
    const std::uint32_t c = nd.options[nd.next++];
    nd.chosen = c;
    return c;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------
// DFS driver.
// ---------------------------------------------------------------------

explore_report engine::run() {
  driver_hooks hooks;
  hooks.sched = [this](sim::sim_world& w,
                       const std::vector<std::uint32_t>& options) {
    return explore_sched(w, options);
  };
  hooks.pick = [this](node_kind kind, std::size_t count) {
    return explore_pick(kind, count);
  };
  hooks.stop = [this] { return overflow_ || blocked_ || node_cap_hit_; };

  bool capped = false;
  while (true) {
    pos_ = 0;
    overflow_ = false;
    blocked_ = false;
    pending_sleep_ = 0;
    claimed_recoveries_.clear();
    drive_result r = drive(hooks, claimed_recoveries_);
    if (reduced_) apply_dpor_updates();
    if (r.complete) {
      ++executions_;
      if (r.violation) {
        ++violations_;
        if (!have_first_) {
          have_first_ = true;
          first_bad_ = choices_;
          first_violation_ =
              *r.violation + " on choices " + format_choices(choices_);
        }
      }
    } else if (!blocked_) {
      ++truncated_;
    }
    if (node_cap_hit_ || executions_ >= opts_.max_executions) {
      capped = true;
      break;
    }
    // Backtrack to the deepest node with an unexplored alternative.
    bool branched = false;
    while (!path_.empty()) {
      if (std::optional<std::uint32_t> nxt = pick_next(path_.back())) {
        choices_.back() = *nxt;
        prefix_len_ = path_.size();
        branch_pos_ = path_.size() - 1;
        branched = true;
        break;
      }
      node& nd = path_.back();
      if (reduced_ && nd.kind == node_kind::sched)
        pruned_ += std::popcount(nd.enabled & ~nd.slept);
      path_.pop_back();
      choices_.pop_back();
    }
    if (!branched) break;
  }

  explore_report rep;
  rep.executions = executions_;
  rep.truncated = truncated_;
  rep.violations = violations_;
  rep.pruned = pruned_ + sleep_blocked_;
  rep.sleep_blocked = sleep_blocked_;
  rep.nodes = nodes_created_;
  rep.reduced = reduced_;
  rep.first_violation = first_violation_;
  rep.exhausted = !capped;
  if (have_first_) {
    rep.witness = opts_.shrink ? shrink(first_bad_) : first_bad_;
    rep.first_violation += "; minimal witness " + format_choices(rep.witness);
  }
  return rep;
}

// ---------------------------------------------------------------------
// Witness replay and shrinking.
// ---------------------------------------------------------------------

witness_result engine::witness_run(const choice_seq& forced,
                                   std::ostream* po,
                                   const std::string& label) {
  witness_result wr;
  std::size_t cursor = 0;
  bool bad = false;
  choice_seq eff;
  std::vector<std::uint32_t> idx;

  auto take =
      [&](const std::vector<std::uint32_t>& options) -> std::uint32_t {
    if (bad) return options.front();
    if (eff.size() >= opts_.max_choices) {
      bad = true;
      return options.front();
    }
    std::uint32_t c;
    if (cursor < forced.size()) {
      c = forced[cursor++];
      if (std::find(options.begin(), options.end(), c) == options.end()) {
        bad = true;
        return options.front();
      }
    } else {
      c = options.front();  // past the witness: default choices
    }
    eff.push_back(c);
    return c;
  };

  driver_hooks hooks;
  hooks.sched = [&](sim::sim_world&,
                    const std::vector<std::uint32_t>& options) {
    return take(options);
  };
  hooks.pick = [&](node_kind, std::size_t count) {
    idx.resize(count);
    std::iota(idx.begin(), idx.end(), 0u);
    return take(idx);
  };
  hooks.stop = [&] { return bad; };

  std::vector<std::uint64_t> claimed;
  std::optional<obs::trial_recorder> rec;
  if (po != nullptr) rec.emplace(n_);
  drive_result r = drive(hooks, claimed, rec ? &*rec : nullptr, po, label);

  wr.steps = r.steps;
  wr.effective = std::move(eff);
  wr.replayed = r.complete && !bad && cursor == forced.size();
  if (!wr.replayed) {
    wr.description = "witness is not consistent with this configuration";
    return wr;
  }
  wr.outputs = std::move(r.outputs);
  if (r.violation) {
    wr.violation = true;
    wr.description = *r.violation;
  }
  return wr;
}

choice_seq engine::shrink(const choice_seq& seq0) {
  // Greedy delta-debugging over the *forced* sequence: delete windows
  // (large to small) while a violation still reproduces, re-completing
  // the suffix with default choices.  The reported witness is the full
  // effective sequence of the minimal reproduction, so replaying it
  // verbatim recreates the violating execution exactly.
  auto attempt = [&](const choice_seq& cand) -> bool {
    witness_result wr = witness_run(cand, nullptr, {});
    return wr.replayed && wr.violation;
  };
  choice_seq best = seq0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t w = std::max<std::size_t>(best.size() / 2, 1); w >= 1;
         w /= 2) {
      bool removed = true;
      while (removed && best.size() >= w) {
        removed = false;
        for (std::size_t i = 0; i + w <= best.size(); ++i) {
          choice_seq cand(best.begin(), best.begin() + i);
          cand.insert(cand.end(), best.begin() + i + w, best.end());
          if (attempt(cand)) {
            best = std::move(cand);
            removed = true;
            progress = true;
            break;
          }
        }
      }
      if (w == 1) break;
    }
  }
  witness_result wr = witness_run(best, nullptr, {});
  if (wr.replayed && wr.violation) return wr.effective;
  return best;  // defensive: seq0 itself always reproduces
}

}  // namespace

// ---------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------

explore_report explore_all(const analysis::sim_object_builder& build,
                           const std::vector<value_t>& inputs,
                           const property_checker& check,
                           const explore_options& opts) {
  engine eng(build, inputs, check, opts);
  return eng.run();
}

witness_result replay_witness(const analysis::sim_object_builder& build,
                              const std::vector<value_t>& inputs,
                              const property_checker& check,
                              const explore_options& opts,
                              const std::vector<std::uint32_t>& witness,
                              std::ostream* perfetto_out,
                              const std::string& label) {
  engine eng(build, inputs, check, opts);
  return eng.witness_run(witness, perfetto_out, label);
}

property_checker weak_consensus_checker() {
  return [](const std::vector<decided>& outputs,
            const std::vector<value_t>& inputs)
             -> std::optional<std::string> {
    if (!analysis::check_validity(outputs, inputs))
      return "validity violated";
    if (!analysis::check_coherence(outputs)) return "coherence violated";
    return std::nullopt;
  };
}

property_checker ratifier_checker() {
  return [base = weak_consensus_checker()](
             const std::vector<decided>& outputs,
             const std::vector<value_t>& inputs)
             -> std::optional<std::string> {
    if (auto err = base(outputs, inputs)) return err;
    bool unanimous = std::all_of(
        inputs.begin(), inputs.end(),
        [&](value_t v) { return v == inputs.front(); });
    if (unanimous &&
        !analysis::check_acceptance(outputs, inputs.front()))
      return "acceptance violated";
    return std::nullopt;
  };
}

property_checker consensus_checker() {
  return [base = weak_consensus_checker()](
             const std::vector<decided>& outputs,
             const std::vector<value_t>& inputs)
             -> std::optional<std::string> {
    if (auto err = base(outputs, inputs)) return err;
    if (!analysis::all_decided(outputs)) return "a process did not decide";
    if (!analysis::check_agreement(outputs)) return "agreement violated";
    return std::nullopt;
  };
}

}  // namespace modcon::check
