// Mechanical property auditor: checks the paper's §3 object properties
// and the simulator's fault semantics on concrete executions.
//
// The checks are deliberately *per trial* and *per trace*: where
// analysis/metrics.h answers "did this batch agree", the auditor answers
// "is this execution even explainable by the model" and points at the
// first event that is not.  Four families:
//
//   outputs      validity and coherence over every decided value that
//                escaped the execution; acceptance when the object under
//                audit is declared a ratifier (Lemma 5 territory).
//   composition  the Lemma 1-3 invariants over a `composition_log`
//                recorded by core/compose.h: per process, stage i+1's
//                input is stage i's carried output, a decide ends the
//                attempt, and a decided prefix pins every later stage's
//                input and output to the decided value.
//   trace        fault-semantics legality, replaying a sim::trace as a
//                register state machine: every read must return the
//                register's current value, its previous value when (and
//                only when) regular-register faults are armed, and never
//                the value of a write that did not apply (missed
//                probabilistic write or injected omission) unless that
//                value is legitimately present anyway.
//   hb           serializability of rt-recorded event streams, delegated
//                to check/hb.h and folded in as unserializable_read.
//
// This library depends only on sim/core/util (the small §3 predicates are
// restated here rather than pulled from modcon_analysis, which itself
// links the auditor's callers).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/hb.h"
#include "core/compose.h"
#include "core/types.h"
#include "exec/types.h"
#include "sim/register_file.h"
#include "sim/trace.h"

namespace modcon::check {

enum class violation_kind : std::uint8_t {
  validity,               // an output value no process proposed
  coherence,              // outputs disagree despite a decided value
  acceptance,             // ratifier with unanimous input failed to ratify
  composition,            // Lemma 1-3 invariant broken in a composed stack
  illegal_stale_read,     // read returned a value the register never held
                          // in its legal (current/previous) window
  omitted_write_visible,  // read returned the value of a write that did
                          // not apply
  unserializable_read,    // rt read with no admissible source write (hb)
  slot_coherence,         // two processes decided different values for the
                          // same slot of a multi-shot log
  slot_prefix,            // a process's decided slots are not a prefix
                          // [0, k) of the log (it skipped a slot)
  illegal_regular_read,   // regular semantics: read returned a value that
                          // is neither the last complete write nor any
                          // overlapping write's value
  illegal_safe_read,      // safe semantics: read returned a non-current
                          // value without any overlapping write
  volatile_state_survival,  // a volatile register's pre-wipe value was
                            // read back after a crash-recovery wipe
  persistent_state_loss,  // a persistent register reverted to its initial
                          // value across a recovery (the backend wiped
                          // memory it promised to keep)
};

const char* to_string(violation_kind k);

struct violation {
  violation_kind kind;
  process_id pid = kInvalidProcess;
  std::uint64_t step = 0;  // trace step / rt end tick; 0 when output-level
  reg_id reg = kInvalidReg;
  word value = kBot;
  std::string detail;
  // Minimal trace window around the offending event (empty for
  // output-level violations).
  std::vector<sim::trace_event> slice;
};

// "kind pid=.. step=.. reg=..: detail" — the form serialized into bench
// JSON and test diagnostics.
std::ostream& operator<<(std::ostream& os, const violation& v);

enum class audit_status : std::uint8_t {
  clean,         // every armed check passed over the full execution
  violated,      // at least one violation found
  inconclusive,  // no violation, but coverage was cut (trace overflow /
                 // hb truncation), so clean cannot be claimed
};

const char* to_string(audit_status s);

struct audit_report {
  audit_status status = audit_status::clean;
  std::vector<violation> violations;
  std::uint64_t events_checked = 0;
  // Reads explained by the regular-register fault semantics (legal stale
  // reads) and unapplied writes verified to have stayed invisible.
  std::uint64_t stale_reads_matched = 0;
  std::uint64_t unapplied_writes_seen = 0;
  std::string note;  // why inconclusive, when it is

  bool ok() const { return status == audit_status::clean; }
};

// What the auditor may assume about the trial it is judging.  Derived by
// the caller from the trial configuration, not inferred from the trace.
struct audit_spec {
  std::size_t n = 0;
  std::vector<value_t> inputs;  // inputs[pid]; size n
  bool ratifier = false;        // arm the acceptance check
  // Object-property checks (validity/coherence/acceptance, composition
  // pinning) assume the model's guarantees hold; register faults void
  // them, so callers turn this off for register-fault trials.  The trace
  // legality check always runs.
  bool check_properties = true;
  // Register-fault semantics armed during the trial (widens what a read
  // may legally return / lets unapplied writes exist).
  bool regular_registers = false;
  bool write_omission = false;
  // True register semantics the trial ran under.  Under `regular` a read
  // may return any overlapping write's value (the reader's overlap set is
  // reconstructed from the trace: another process's next operation after
  // the read is exactly its posted-pending op); under `safe` an
  // overlapped read may return anything, but a non-overlapped read must
  // stay truthful.
  sim::register_semantics semantics = sim::register_semantics::atomic;
  // Crash-recovery bookkeeping: the volatile register partition and the
  // steps at which recovery wipes happened (ascending).  Wipes appear in
  // the trace as applied writes by kInvalidProcess at those steps; the
  // replay uses them to catch volatile state surviving a wipe and
  // persistent state reverting to its initial value.
  std::vector<reg_id> volatile_regs;
  std::vector<std::uint64_t> recovery_steps;
  // Crash/restart/stall faults were injected: cross-process stage
  // validity is then unsound (a crashed process's value can outlive its
  // records), so that one check is skipped.
  bool process_faults = false;
  std::size_t slice_radius = 3;  // context events kept around a violation
};

// One escaped decided value, labeled with the process it came from
// (survivors and decided-then-crashed alike).
struct labeled_output {
  process_id pid;
  decided out;
};

// Output-level §3 checks: validity, coherence, acceptance (iff
// spec.ratifier).  Appends violations to `rep`.
void audit_outputs(const std::vector<labeled_output>& outputs,
                   const audit_spec& spec, audit_report& rep);

// --- multi-shot slot logs (multi/slot_log.h) ---

// One slot decision observed by one process: propose(slot, …) returned
// `value` to `pid`.
struct slot_output {
  process_id pid = kInvalidProcess;
  std::uint64_t slot = 0;
  word value = kBot;
};

// What the auditor may assume about a multi-shot trial on one log.
struct slot_audit_spec {
  std::size_t n = 0;
  std::uint64_t slots = 0;  // slots proposed on: [0, slots)
  // proposals[slot * n + pid] = the value pid proposed for slot (kBot if
  // pid never proposed on that slot).  Size slots * n.
  std::vector<word> proposals;
  // A crashed process legally stops mid-log, so prefix completeness is
  // only required of survivors; the caller marks fault trials here.
  bool process_faults = false;

  word proposal(std::uint64_t slot, process_id pid) const {
    return proposals[slot * n + pid];
  }
};

// Per-slot §3 checks over every decision that escaped a multi-shot trial:
// per-slot agreement (slot_coherence), per-slot validity (validity —
// every slot decision is some process's proposal for that same slot),
// and per-process decided-prefix completeness (slot_prefix — each
// process's decided slots form a contiguous prefix [0, k); skipping a
// slot means the log handed out slot s+1 before s was consumed).
void audit_slots(const std::vector<slot_output>& outputs,
                 const slot_audit_spec& spec, audit_report& rep);

// Composition invariants over a `composition_log` snapshot.  Stage-level
// property checks obey spec.check_properties / spec.process_faults.
void audit_composition(const std::vector<stage_record>& records,
                       const audit_spec& spec, audit_report& rep);

// Fault-semantics legality replay of a sim trace.  Sets status
// inconclusive when the trace overflowed its event cap.
void audit_trace(const sim::trace& tr, const audit_spec& spec,
                 audit_report& rep);

// Serializability of an rt event stream (see check/hb.h); hb violations
// are folded in as unserializable_read, hb truncation as inconclusive.
void audit_hb(const std::vector<hb_event>& events, const audit_spec& spec,
              const std::vector<word>& initial, audit_report& rep);

// Convenience entry point for one sim trial: outputs + composition +
// trace, with the final status resolved (violated > inconclusive >
// clean).  `stages` may be empty (no composed stack under audit).
audit_report audit_trial(const sim::trace& tr,
                         const std::vector<labeled_output>& outputs,
                         const std::vector<stage_record>& stages,
                         const audit_spec& spec);

}  // namespace modcon::check
