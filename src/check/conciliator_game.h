// Exact worst-case agreement probability of the first-mover conciliator.
//
// Theorem 7 lower-bounds the agreement probability by
// (1 − e^{-1/4})/4 ≈ 0.0553 against every location-oblivious adversary.
// Sampling attackers (E1/E5) can only show particular strategies fail to
// beat the bound; this module *solves the scheduling game exactly*.
//
// The conciliator's execution is an expectiminimax game:
//   * adversary nodes: pick which pending operation executes next,
//     minimizing the probability that all outputs agree.  The adversary
//     observes everything an in-model adversary may: register contents,
//     pending operation kinds and values, per-process histories — but
//     NOT the outcome of a probabilistic write before it executes
//     (coins resolve at execution, the defining restriction of the
//     probabilistic-write model);
//   * chance nodes: an executing probabilistic write succeeds with its
//     scheduled probability min(g^k/n, 1).
//
// Because a process's whole future depends only on (input value, number
// of misses k, read-vs-write phase) and the register only ever holds ⊥
// or one of the two input values, the game has a small canonical state
// space (processes with identical summaries are exchangeable), and the
// saturating schedule (g > 1) makes it acyclic: memoized DFS computes
// the exact value.  Binary inputs only — which is the hard case; with
// more distinct values agreement is strictly harder for the adversary to
// preserve, not easier to break (any split serves it).
//
// The value returned is the adversary's best effort: Theorem 7 asserts
// it is >= 0.0553 for the doubling schedule, and conciliator_game_test
// verifies exactly that (plus the E13 bench tabulates it across n and
// growth factors).
#pragma once

#include <cstddef>

#include "core/conciliator/impatient.h"

namespace modcon::check {

struct game_stats {
  double value = 0.0;        // exact min-adversary agreement probability
  std::size_t states = 0;    // distinct canonical states memoized
};

// n_a processes hold value A, n_b hold value B (n = n_a + n_b >= 1).
// Requires a schedule that eventually saturates (growth factor > 1).
game_stats exact_worst_case_agreement(std::size_t n_a, std::size_t n_b,
                                      impatience_schedule schedule = {});

}  // namespace modcon::check
