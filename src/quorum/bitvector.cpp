// Bit-vector quorum system (§6.2 choice 3): registers r_{i,j} for
// i < ⌈lg m⌉, j ∈ {0,1}; writing v as a bit vector, W_v = {r_{i,v_i}} and
// R_v is its complement {r_{i,1-v_i}}.  Slightly more space than the
// Bollobás scheme (2⌈lg m⌉ + 1 registers for the ratifier) but trivially
// computable quorums.
#include "quorum/quorum_system.h"

#include "util/assertx.h"
#include "util/bits.h"

namespace modcon {

namespace {

class bitvector_quorums final : public quorum_system {
 public:
  explicit bitvector_quorums(std::uint64_t m)
      : m_(m), bits_(m <= 2 ? 1 : ceil_log2(m)) {}

  std::string name() const override { return "bitvector"; }
  std::uint64_t max_values() const override { return m_; }
  std::uint32_t pool_size() const override { return 2 * bits_; }

  std::vector<std::uint32_t> write_quorum(word v) const override {
    MODCON_CHECK_MSG(v < m_, "value " << v << " out of range (m=" << m_
                                      << ")");
    std::vector<std::uint32_t> w;
    w.reserve(bits_);
    for (unsigned i = 0; i < bits_; ++i)
      w.push_back(2 * i + static_cast<std::uint32_t>((v >> i) & 1));
    return w;
  }
  std::vector<std::uint32_t> read_quorum(word v) const override {
    MODCON_CHECK_MSG(v < m_, "value " << v << " out of range (m=" << m_
                                      << ")");
    std::vector<std::uint32_t> r;
    r.reserve(bits_);
    for (unsigned i = 0; i < bits_; ++i)
      r.push_back(2 * i + static_cast<std::uint32_t>(1 - ((v >> i) & 1)));
    return r;
  }
  std::uint32_t max_write_quorum() const override { return bits_; }
  std::uint32_t max_read_quorum() const override { return bits_; }

 private:
  std::uint64_t m_;
  unsigned bits_;
};

}  // namespace

std::shared_ptr<const quorum_system> make_bitvector_quorums(std::uint64_t m) {
  MODCON_CHECK_MSG(m >= 1, "need at least one value");
  return std::make_shared<bitvector_quorums>(m);
}

}  // namespace modcon
