#include "quorum/verify.h"

#include <algorithm>
#include <sstream>

#include "util/binomial.h"

namespace modcon {

std::string quorum_violation::describe() const {
  std::ostringstream os;
  os << "W_" << v << " ∩ R_" << v_prime
     << (intersects ? " ≠ ∅ but v ≠ v'" : " = ∅ but v = v'");
  return os.str();
}

namespace {
bool intersects(const std::vector<std::uint32_t>& a,
                const std::vector<std::uint32_t>& b) {
  // Both sorted ascending.
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j])
      ++i;
    else
      ++j;
  }
  return false;
}
}  // namespace

std::optional<quorum_violation> check_ratifier_condition(
    const quorum_system& qs, std::uint64_t limit) {
  limit = std::min(limit, qs.max_values());
  std::vector<std::vector<std::uint32_t>> writes(limit), reads(limit);
  for (std::uint64_t v = 0; v < limit; ++v) {
    writes[v] = qs.write_quorum(v);
    reads[v] = qs.read_quorum(v);
  }
  for (std::uint64_t v = 0; v < limit; ++v) {
    for (std::uint64_t u = 0; u < limit; ++u) {
      bool meet = intersects(writes[v], reads[u]);
      if (meet == (v == u))
        return quorum_violation{v, u, meet};
    }
  }
  return std::nullopt;
}

double bollobas_sum(const quorum_system& qs, std::uint64_t limit) {
  limit = std::min(limit, qs.max_values());
  double sum = 0.0;
  for (std::uint64_t v = 0; v < limit; ++v) {
    auto a = qs.write_quorum(v).size();
    auto b = qs.read_quorum(v).size();
    sum += 1.0 / static_cast<double>(binomial(a + b, a));
  }
  return sum;
}

}  // namespace modcon
