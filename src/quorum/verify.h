// Verification helpers for quorum systems.
//
// `check_ratifier_condition` tests the Theorem 8 correctness condition
// (W_v ∩ R_v' = ∅ ⇔ v = v') pairwise over a value range.
// `bollobas_sum` evaluates the left-hand side of the Bollobás inequality
// (Theorem 9): Σ_i C(a_i + b_i, a_i)^{-1} ≤ 1 for any family with
// A_i ∩ B_j = ∅ iff i = j — the tool the paper uses to show the
// C(k,⌊k/2⌋) scheme is space-optimal.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "quorum/quorum_system.h"

namespace modcon {

struct quorum_violation {
  word v;
  word v_prime;
  bool intersects;  // observed W_v ∩ R_v' ≠ ∅
  std::string describe() const;
};

// Checks all ordered pairs (v, v') with v, v' < limit (capped at
// max_values()).  Returns the first violation, or nullopt if none.
std::optional<quorum_violation> check_ratifier_condition(
    const quorum_system& qs, std::uint64_t limit);

// Σ_{v < limit} 1 / C(|W_v| + |R_v|, |W_v|).  Theorem 9 guarantees this
// is ≤ 1 for any correct system; the Bollobás scheme drives it to ~1.
double bollobas_sum(const quorum_system& qs, std::uint64_t limit);

}  // namespace modcon
