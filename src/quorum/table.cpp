// Explicit-table quorum system (see quorum_system.h).
#include <algorithm>

#include "quorum/quorum_system.h"
#include "util/assertx.h"

namespace modcon {

namespace {

class table_quorums final : public quorum_system {
 public:
  table_quorums(std::uint32_t pool,
                std::vector<std::vector<std::uint32_t>> writes,
                std::vector<std::vector<std::uint32_t>> reads)
      : pool_(pool), writes_(std::move(writes)), reads_(std::move(reads)) {
    MODCON_CHECK_MSG(writes_.size() == reads_.size(),
                     "one write and one read quorum per value");
    MODCON_CHECK_MSG(!writes_.empty(), "need at least one value");
    auto validate = [&](const std::vector<std::uint32_t>& q) {
      MODCON_CHECK_MSG(!q.empty(), "empty quorum");
      MODCON_CHECK_MSG(std::is_sorted(q.begin(), q.end()) &&
                           std::adjacent_find(q.begin(), q.end()) == q.end(),
                       "quorums must be strictly increasing");
      MODCON_CHECK_MSG(q.back() < pool_, "quorum element outside the pool");
    };
    for (const auto& q : writes_) validate(q);
    for (const auto& q : reads_) validate(q);
  }

  std::string name() const override { return "table"; }
  std::uint64_t max_values() const override { return writes_.size(); }
  std::uint32_t pool_size() const override { return pool_; }

  std::vector<std::uint32_t> write_quorum(word v) const override {
    MODCON_CHECK_MSG(v < writes_.size(), "value out of range");
    return writes_[v];
  }
  std::vector<std::uint32_t> read_quorum(word v) const override {
    MODCON_CHECK_MSG(v < reads_.size(), "value out of range");
    return reads_[v];
  }

  std::uint32_t max_write_quorum() const override {
    std::size_t m = 0;
    for (const auto& q : writes_) m = std::max(m, q.size());
    return static_cast<std::uint32_t>(m);
  }
  std::uint32_t max_read_quorum() const override {
    std::size_t m = 0;
    for (const auto& q : reads_) m = std::max(m, q.size());
    return static_cast<std::uint32_t>(m);
  }

 private:
  std::uint32_t pool_;
  std::vector<std::vector<std::uint32_t>> writes_;
  std::vector<std::vector<std::uint32_t>> reads_;
};

}  // namespace

std::shared_ptr<const quorum_system> make_table_quorums(
    std::uint32_t pool, std::vector<std::vector<std::uint32_t>> write_quorums,
    std::vector<std::vector<std::uint32_t>> read_quorums) {
  return std::make_shared<table_quorums>(pool, std::move(write_quorums),
                                         std::move(read_quorums));
}

}  // namespace modcon
