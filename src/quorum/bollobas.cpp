// Bollobás-optimal quorum system (§6.2 choice 2): a pool of k registers
// with k minimal such that C(k, ⌊k/2⌋) >= m; value v gets the v-th
// ⌊k/2⌋-subset (in lexicographic order) as its write quorum and the
// complement as its read quorum.  Distinct equal-size sets are never
// subsets of one another, so W_v ∩ R_v' = ∅ iff v = v'.  Theorem 9
// (Bollobás) shows no scheme does better for a given |W| + |R| budget.
#include "quorum/quorum_system.h"

#include "util/assertx.h"
#include "util/binomial.h"

namespace modcon {

namespace {

class bollobas_quorums final : public quorum_system {
 public:
  explicit bollobas_quorums(std::uint64_t m)
      : m_(m), k_(min_pool_for(m)), w_size_(k_ / 2) {}

  std::string name() const override { return "bollobas"; }
  std::uint64_t max_values() const override { return m_; }
  std::uint32_t pool_size() const override { return k_; }

  std::vector<std::uint32_t> write_quorum(word v) const override {
    MODCON_CHECK_MSG(v < m_, "value " << v << " out of range (m=" << m_
                                      << ")");
    return unrank_subset(k_, w_size_, v);
  }
  std::vector<std::uint32_t> read_quorum(word v) const override {
    auto w = write_quorum(v);
    std::vector<std::uint32_t> r;
    r.reserve(k_ - w.size());
    std::size_t j = 0;
    for (std::uint32_t i = 0; i < k_; ++i) {
      if (j < w.size() && w[j] == i)
        ++j;
      else
        r.push_back(i);
    }
    return r;
  }
  std::uint32_t max_write_quorum() const override { return w_size_; }
  std::uint32_t max_read_quorum() const override { return k_ - w_size_; }

 private:
  std::uint64_t m_;
  unsigned k_;
  unsigned w_size_;
};

}  // namespace

std::shared_ptr<const quorum_system> make_bollobas_quorums(std::uint64_t m) {
  MODCON_CHECK_MSG(m >= 1, "need at least one value");
  return std::make_shared<bollobas_quorums>(m);
}

}  // namespace modcon
