// Binary quorum system (§6.2 choice 1): registers r0, r1 with
// W_v = {r_v} and R_v = {r_{1-v}}.  With the proposal register this gives
// a 3-register, at-most-4-operation binary ratifier.
#include "quorum/quorum_system.h"

#include "util/assertx.h"

namespace modcon {

namespace {

class binary_quorums final : public quorum_system {
 public:
  std::string name() const override { return "binary"; }
  std::uint64_t max_values() const override { return 2; }
  std::uint32_t pool_size() const override { return 2; }

  std::vector<std::uint32_t> write_quorum(word v) const override {
    MODCON_CHECK_MSG(v < 2, "binary quorums support values {0,1}");
    return {static_cast<std::uint32_t>(v)};
  }
  std::vector<std::uint32_t> read_quorum(word v) const override {
    MODCON_CHECK_MSG(v < 2, "binary quorums support values {0,1}");
    return {static_cast<std::uint32_t>(1 - v)};
  }
  std::uint32_t max_write_quorum() const override { return 1; }
  std::uint32_t max_read_quorum() const override { return 1; }
};

}  // namespace

std::shared_ptr<const quorum_system> make_binary_quorums() {
  return std::make_shared<binary_quorums>();
}

}  // namespace modcon
