// Quorum systems for the deterministic ratifier (§6).
//
// A quorum system assigns to every value v < m a write quorum W_v and a
// read quorum R_v over a pool of k announce registers.  Theorem 8 proves
// the ratifier correct exactly when
//
//     W_v ∩ R_v' = ∅  ⇔  v = v'.
//
// The implementations below are the §6.2 menu:
//   binary_quorums      m = 2, 2 registers, |W| = |R| = 1
//   bollobas_quorums    k minimal with C(k,⌊k/2⌋) >= m — space-optimal by
//                       Bollobás's theorem (Theorem 9)
//   bitvector_quorums   2⌈lg m⌉ registers — simpler, near-optimal
// (The cheap-collect choice is not a quorum system over registers; it is
// implemented directly as core/ratifier/cheap_collect_ratifier.h.)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/types.h"

namespace modcon {

class quorum_system {
 public:
  virtual ~quorum_system() = default;

  virtual std::string name() const = 0;

  // Number of distinct values supported.
  virtual std::uint64_t max_values() const = 0;

  // Number of announce registers (the ratifier adds one proposal register).
  virtual std::uint32_t pool_size() const = 0;

  // Indices into the pool; strictly increasing.
  virtual std::vector<std::uint32_t> write_quorum(word v) const = 0;
  virtual std::vector<std::uint32_t> read_quorum(word v) const = 0;

  // Worst-case quorum sizes (the ratifier's work bound is
  // max|W| + max|R| + 2).
  virtual std::uint32_t max_write_quorum() const = 0;
  virtual std::uint32_t max_read_quorum() const = 0;
};

std::shared_ptr<const quorum_system> make_binary_quorums();
std::shared_ptr<const quorum_system> make_bollobas_quorums(std::uint64_t m);
std::shared_ptr<const quorum_system> make_bitvector_quorums(std::uint64_t m);

// Explicit-table quorum system: W_v and R_v given verbatim, one pair per
// value.  No correctness precondition is enforced — this is the vehicle
// for fuzzing Theorem 8's condition in both directions (a correct random
// family must yield a correct ratifier; a broken one must yield a
// ratifier the exhaustive explorer can refute).  Quorums must be
// nonempty, sorted, and inside [0, pool).
std::shared_ptr<const quorum_system> make_table_quorums(
    std::uint32_t pool,
    std::vector<std::vector<std::uint32_t>> write_quorums,
    std::vector<std::vector<std::uint32_t>> read_quorums);

}  // namespace modcon
