// Universal construction: a wait-free linearizable replica of ANY
// sequential object, built from a chain of consensus instances
// (Herlihy's universality of consensus [22] — the reason consensus is
// the object worth optimizing in the first place).
//
// Operations are values: each process proposes its pending operation for
// log slot 0, 1, 2, …; slot i's consensus instance picks one operation,
// every replica applies the winners in slot order to its local copy, and
// a process keeps proposing its own operation for successive slots until
// it wins one.  This is the self-propose variant: linearizable always,
// lock-free in general, and wait-free whenever the workload is bounded
// (each lost slot is somebody else's completed operation, so with every
// process performing finitely many operations nobody loses forever).
// Herlihy's fully wait-free version adds an announce/helping layer; the
// simpler variant keeps the demonstration close to the textbook while
// exercising exactly the consensus API the paper provides.
//
// The sequential object supplies:
//   result_t apply(op_t)    — mutate state, return the answer
// with op_t and result_t encodable in a word.
//
// This is deliberately a *library* component built only on the paper's
// consensus API: it demonstrates that the modcon stack really is a
// drop-in consensus object.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/consensus/unbounded.h"
#include "core/deciding.h"
#include "exec/address_space.h"
#include "exec/environment.h"
#include "util/assertx.h"

namespace modcon::apps {

// A log of consensus instances, created lazily, shared by all replicas.
template <typename Env>
class consensus_log {
 public:
  consensus_log(address_space& mem, object_factory<Env> make_consensus)
      : mem_(&mem), make_(std::move(make_consensus)) {}

  deciding_object<Env>* slot(std::size_t i) {
    std::scoped_lock lk(mu_);
    while (slots_.size() <= i) slots_.push_back(make_());
    return slots_[i].get();
  }

  std::size_t slots_built() const {
    std::scoped_lock lk(mu_);
    return slots_.size();
  }

 private:
  address_space* mem_;
  object_factory<Env> make_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<deciding_object<Env>>> slots_;
};

// One process's handle on the replicated object.  Sequential state lives
// per handle (each process replays the agreed log into its own copy).
template <typename Env, typename Sequential>
class universal_object {
 public:
  universal_object(consensus_log<Env>& log, Sequential initial = {})
      : log_(&log), state_(std::move(initial)) {}

  // Executes `op` on the replicated object; returns its result computed
  // against the agreed linearization.  Each process must finish one
  // perform() before starting the next.
  proc<word> perform(Env& env, word op) {
    // Tag our proposal with our pid so we can recognize the win; the
    // payload travels in the low bits.
    const word mine = pack(env.pid(), op);
    for (;;) {
      decided d = co_await log_->slot(next_slot_)->invoke(env, mine);
      MODCON_CHECK_MSG(d.decide, "consensus slot did not decide");
      ++next_slot_;
      auto [winner_pid, winner_op] = unpack(d.value);
      word result = state_.apply(winner_op);
      if (winner_pid == env.pid()) co_return result;
      // Someone else's operation took this slot; ours is still pending.
    }
  }

  // Read-only access to this replica's state (valid between operations).
  const Sequential& local_state() const { return state_; }
  std::size_t log_position() const { return next_slot_; }

 private:
  static word pack(process_id pid, word op) {
    MODCON_CHECK_MSG(op < (word{1} << 40), "operation too large to pack");
    return (static_cast<word>(pid) << 40) | op;
  }
  static std::pair<process_id, word> unpack(word w) {
    return {static_cast<process_id>(w >> 40), w & ((word{1} << 40) - 1)};
  }

  consensus_log<Env>* log_;
  Sequential state_;
  std::size_t next_slot_ = 0;
};

}  // namespace modcon::apps
