// Small sequential objects for the universal construction, plus
// test-and-set built directly on one consensus instance.
//
// Sequential objects encode operations and results as words; they are
// deterministic, so replicas that apply the same log agree on every
// result (the linearizability argument of [22]).
#pragma once

#include <deque>
#include <memory>

#include "core/deciding.h"
#include "exec/environment.h"
#include "util/assertx.h"

namespace modcon::apps {

// A counter: op = amount to add; result = value after the addition.
struct seq_counter {
  word value = 0;
  word apply(word op) {
    value += op;
    return value;
  }
};

// A bounded-value CAS register: op packs (expected, desired) in 20-bit
// halves; result = 1 on success, 0 on failure.
struct seq_cas_register {
  word value = 0;
  static word make_op(word expected, word desired) {
    MODCON_CHECK(expected < (word{1} << 20) && desired < (word{1} << 20));
    return (expected << 20) | desired;
  }
  word apply(word op) {
    word expected = op >> 20;
    word desired = op & ((word{1} << 20) - 1);
    if (value != expected) return 0;
    value = desired;
    return 1;
  }
};

// A FIFO queue of small values: op 0 = dequeue (result = front or kBot
// when empty), op v+1 = enqueue v (result = new size).
struct seq_queue {
  std::deque<word> items;
  word apply(word op) {
    if (op == 0) {
      if (items.empty()) return kBot;
      word front = items.front();
      items.pop_front();
      return front;
    }
    items.push_back(op - 1);
    return items.size();
  }
};

// Test-and-set from one consensus instance: everyone proposes their own
// pid; the unique process whose pid wins gets 1 (the "winner"), all
// others get 0.  One-shot, wait-free, works for any number of processes —
// the textbook demonstration that consensus number ∞ buys every other
// object.
template <typename Env>
class test_and_set {
 public:
  explicit test_and_set(std::unique_ptr<deciding_object<Env>> consensus)
      : consensus_(std::move(consensus)) {}

  // Returns 1 for exactly one caller, 0 for everyone else.
  proc<word> set(Env& env) {
    decided d = co_await consensus_->invoke(env, env.pid());
    MODCON_CHECK_MSG(d.decide, "consensus did not decide");
    co_return d.value == env.pid() ? 1 : 0;
  }

 private:
  std::unique_ptr<deciding_object<Env>> consensus_;
};

}  // namespace modcon::apps
