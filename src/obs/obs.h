// Protocol-level observability: stage spans and metric counters.
//
// The paper's cost theorems are *decompositions* — consensus runs in
// expected O(T(C) + T(R)) individual work (Theorem 5), so understanding a
// run means knowing where steps were spent per composed stage
// (R₋₁; R₀; C₁; R₁; …).  This header provides the recording half of that
// story: a `trial_recorder` collects, per process, a tree of spans
// (object → stage/round → conciliator/ratifier) plus a fixed set of
// protocol counters, and the algorithm headers open spans through the
// RAII `span_scope` guard.
//
// Zero overhead when disabled, at two levels:
//   * runtime gate — an environment without an attached recorder
//     (`env.obs() == nullptr`, the default) reduces every guard to one
//     pointer test; `obs::count` likewise.  Environments that do not
//     model observability at all (no `obs()` member) compile the guards
//     away entirely via `if constexpr`.
//   * compile-time gate — defining MODCON_OBS_DISABLED strips every span
//     and counter from every environment, for builds that want the
//     instrumentation provably absent.
// The hot execution paths (sim_world::execute, the rt fast path) are not
// touched by this layer at all: register-level statistics are derived
// from the existing execution traces after the run (obs/metrics.h), not
// sampled per operation.
//
// Thread-safety: span and counter storage is per process (one recording
// thread per pid on the rt backend; the sim backend is single-threaded),
// padded to cache lines so recording threads do not false-share.  The
// only cross-process state is the name-intern table (mutex, cold: once
// per span open) and the timeline tick (one relaxed fetch_add per rt
// span boundary).
//
// Lifetime: the recorder must outlive the world/threads that record into
// it.  Coroutine frames holding open `span_scope` guards can be destroyed
// *after* the run finishes (the sim world tears parked frames down in its
// destructor); the runner seals the recorder first, and a guard whose
// recorder is sealed skips its close instead of touching the
// half-destroyed environment.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "exec/types.h"

namespace modcon::obs {

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

enum class span_kind : std::uint8_t {
  object,       // one whole deciding-object invocation
  stage,        // one stage of a sequence composition (compose.h)
  round,        // one rung of the unbounded / ratifier-only ladder
  conciliator,  // one conciliator invocation
  ratifier,     // one ratifier invocation
  fallback,     // the bounded construction's fallback K
  slot,         // one slot proposal of a multi-shot slot log (multi/)
};

inline const char* to_string(span_kind k) {
  switch (k) {
    case span_kind::object: return "object";
    case span_kind::stage: return "stage";
    case span_kind::round: return "round";
    case span_kind::conciliator: return "conciliator";
    case span_kind::ratifier: return "ratifier";
    case span_kind::fallback: return "fallback";
    case span_kind::slot: return "slot";
  }
  return "?";
}

inline constexpr std::uint32_t kNoSpan = 0xffffffffU;

// One recorded interval of one process's execution.  Timestamps are
// backend timeline ticks (sim: the global step counter; rt: draws from a
// shared atomic sequence), op counts are the per-process individual-work
// counter, draws are the process's local-RNG draw counter — so
// `ops_end - ops_begin` is exactly the §2 individual work charged inside
// the span.
struct span {
  std::uint32_t id = kNoSpan;      // per-pid slot; globally re-id'd on merge
  std::uint32_t parent = kNoSpan;  // enclosing span (same pid), kNoSpan = root
  std::uint32_t index = 0;         // stage/round number within the parent
  std::uint32_t name = 0;          // interned name id
  process_id pid = 0;
  span_kind kind = span_kind::object;
  std::uint16_t depth = 0;  // 0 = root
  std::uint64_t t_begin = 0;
  std::uint64_t t_end = 0;
  std::uint64_t ops_begin = 0;
  std::uint64_t ops_end = 0;
  std::uint64_t draws_begin = 0;
  std::uint64_t draws_end = 0;
  word outcome_value = 0;
  bool outcome_decide = false;
  bool has_outcome = false;
  bool closed = false;

  std::uint64_t ops() const { return ops_end - ops_begin; }
  std::uint64_t draws() const { return draws_end - draws_begin; }
};

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

// Fixed per-process counter set.  The memory-operation counters
// (reads … collects) are derived from the execution trace on the sim
// backend (obs/metrics.h) and counted in the instrumented slow path on
// the rt backend; the protocol counters are bumped by the algorithm
// headers through obs::count.
enum class counter : std::uint8_t {
  reads,              // read operations
  writes,             // applied write operations
  prob_writes,        // probabilistic writes with a nontrivial coin
  prob_write_misses,  // writes that did not apply (coin miss or injected
                      // omission fault)
  collects,           // collect operations (cheap-collect model)
  conciliator_attempts,  // write attempts inside a conciliator loop
  first_mover_wins,      // conciliator invocations that adopted an
                         // existing value on their very first read
  coin_tosses,           // coin-conciliator invocations that fell through
                         // to the shared coin
  ratified,              // ratifier invocations returning decide = 1
  adopted,               // ratifier invocations returning decide = 0
  fallback_entries,      // bounded-consensus invocations that reached K
};

inline constexpr std::size_t kCounterCount = 11;

inline const char* to_string(counter c) {
  switch (c) {
    case counter::reads: return "reads";
    case counter::writes: return "writes";
    case counter::prob_writes: return "prob_writes";
    case counter::prob_write_misses: return "prob_write_misses";
    case counter::collects: return "collects";
    case counter::conciliator_attempts: return "conciliator_attempts";
    case counter::first_mover_wins: return "first_mover_wins";
    case counter::coin_tosses: return "coin_tosses";
    case counter::ratified: return "ratified";
    case counter::adopted: return "adopted";
    case counter::fallback_entries: return "fallback_entries";
  }
  return "?";
}

// ---------------------------------------------------------------------
// trial_recorder
// ---------------------------------------------------------------------

// Per-pid span cap: a trial that outgrows it sets truncated() instead of
// growing without bound, mirroring the execution-trace event cap.
inline constexpr std::size_t kDefaultMaxSpansPerProc = 65'536;

class trial_recorder {
 public:
  explicit trial_recorder(std::size_t n,
                          std::size_t max_spans_per_proc =
                              kDefaultMaxSpansPerProc)
      : bufs_(n), max_spans_(max_spans_per_proc) {}

  trial_recorder(const trial_recorder&) = delete;
  trial_recorder& operator=(const trial_recorder&) = delete;

  std::size_t n() const { return bufs_.size(); }

  // Timeline tick for backends without a global step counter (rt): each
  // call returns a fresh, monotonically increasing stamp.
  std::uint64_t tick() {
    return tick_.fetch_add(1, std::memory_order_relaxed);
  }

  // Interns a span name; cold (once per span open, not per operation).
  std::uint32_t intern(std::string_view name) {
    std::lock_guard<std::mutex> lock(names_mu_);
    for (std::size_t i = 0; i < names_.size(); ++i)
      if (names_[i] == name) return static_cast<std::uint32_t>(i);
    names_.emplace_back(name);
    return static_cast<std::uint32_t>(names_.size() - 1);
  }

  // Opens a span for `pid` nested under its innermost open span.
  // Returns the per-pid slot, or kNoSpan once the pid's buffer is full
  // (the trial is then reported truncated and further opens are dropped).
  std::uint32_t open_span(process_id pid, span_kind k, std::uint32_t index,
                          std::uint32_t name_id, std::uint64_t now,
                          std::uint64_t ops, std::uint64_t draws) {
    proc_buf& b = bufs_[pid];
    if (b.spans.size() >= max_spans_) {
      b.truncated = true;
      return kNoSpan;
    }
    span s;
    s.id = static_cast<std::uint32_t>(b.spans.size());
    s.parent = b.open.empty() ? kNoSpan : b.open.back();
    s.index = index;
    s.name = name_id;
    s.pid = pid;
    s.kind = k;
    s.depth = static_cast<std::uint16_t>(b.open.size());
    s.t_begin = now;
    s.ops_begin = ops;
    s.draws_begin = draws;
    b.open.push_back(s.id);
    b.spans.push_back(s);
    return s.id;
  }

  // Closes `slot`, and — defensively — any child span still open above it
  // (a coroutine frame unwound out of order closes inner spans at its own
  // boundary rather than leaving them dangling).
  void close_span(process_id pid, std::uint32_t slot, std::uint64_t now,
                  std::uint64_t ops, std::uint64_t draws) {
    if (slot == kNoSpan) return;
    proc_buf& b = bufs_[pid];
    while (!b.open.empty()) {
      const std::uint32_t top = b.open.back();
      b.open.pop_back();
      span& s = b.spans[top];
      if (!s.closed) {
        s.t_end = now;
        s.ops_end = ops;
        s.draws_end = draws;
        s.closed = true;
      }
      if (top == slot) return;
    }
  }

  void set_outcome(process_id pid, std::uint32_t slot, bool decide,
                   word value) {
    if (slot == kNoSpan) return;
    span& s = bufs_[pid].spans[slot];
    s.has_outcome = true;
    s.outcome_decide = decide;
    s.outcome_value = value;
  }

  void count(process_id pid, counter c, std::uint64_t delta = 1) {
    bufs_[pid].counters[static_cast<std::size_t>(c)] += delta;
  }

  // Closes every span still open for `pid` (a step-limited or faulted
  // process parks mid-protocol with its guards alive).  The runner calls
  // this with the world's final step/op/draw counts before sealing.
  void force_close(process_id pid, std::uint64_t now, std::uint64_t ops,
                   std::uint64_t draws) {
    proc_buf& b = bufs_[pid];
    while (!b.open.empty()) {
      span& s = b.spans[b.open.back()];
      b.open.pop_back();
      if (s.closed) continue;
      s.t_end = now;
      s.ops_end = ops;
      s.draws_end = draws;
      s.closed = true;
    }
  }

  // After seal(), guards in coroutine frames destroyed late (world
  // teardown) skip their close instead of sampling a dying environment.
  void seal() { sealed_.store(true, std::memory_order_release); }
  bool sealed() const { return sealed_.load(std::memory_order_acquire); }

  // --- read access for finalize (obs/metrics.h) ---
  const std::vector<span>& spans_of(process_id pid) const {
    return bufs_[pid].spans;
  }
  const std::array<std::uint64_t, kCounterCount>& counters_of(
      process_id pid) const {
    return bufs_[pid].counters;
  }
  bool truncated(process_id pid) const { return bufs_[pid].truncated; }
  bool truncated_any() const {
    for (const proc_buf& b : bufs_)
      if (b.truncated) return true;
    return false;
  }
  const std::vector<std::string>& names() const { return names_; }

 private:
  // One recording thread per entry; aligned so neighboring buffers never
  // share a cache line.
  struct alignas(64) proc_buf {
    std::vector<span> spans;
    std::vector<std::uint32_t> open;  // stack of open span slots
    std::array<std::uint64_t, kCounterCount> counters{};
    bool truncated = false;
  };

  std::vector<proc_buf> bufs_;
  std::size_t max_spans_;
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<bool> sealed_{false};
  std::mutex names_mu_;
  std::vector<std::string> names_;
};

// ---------------------------------------------------------------------
// Environment hooks
// ---------------------------------------------------------------------

// An environment participates in observability by exposing:
//   obs()       -> trial_recorder* (nullptr = off)
//   obs_now()   -> timeline tick
//   obs_ops()   -> its process's individual-work counter
//   obs_draws() -> its process's local-RNG draw counter
// Environments without these members (custom test harness envs) compile
// every guard below to nothing.
template <typename Env>
inline constexpr bool has_obs_v =
#ifdef MODCON_OBS_DISABLED
    false;
#else
    requires(Env& e) {
      e.obs();
      e.obs_now();
      e.obs_ops();
      e.obs_draws();
    };
#endif

// Bumps a protocol counter; one pointer test when a recorder could be
// attached, nothing at all otherwise.
template <typename Env>
inline void count(Env& env, counter c, std::uint64_t delta = 1) {
  if constexpr (has_obs_v<Env>) {
    if (trial_recorder* rec = env.obs()) rec->count(env.pid(), c, delta);
  }
}

// RAII span guard.  Construct with a literal name, or with a nullary
// callable evaluated only when a recorder is attached (so e.g. a stage's
// virtual name() is never called on the un-observed path).
template <typename Env>
class span_scope {
 public:
  span_scope(Env& env, span_kind k, std::uint32_t index,
             std::string_view name)
      : span_scope(env, k, index, [name] { return name; }) {}

  template <typename NameFn>
    requires std::is_invocable_v<NameFn&>
  span_scope(Env& env, span_kind k, std::uint32_t index, NameFn&& name) {
    if constexpr (has_obs_v<Env>) {
      trial_recorder* rec = env.obs();
      if (rec == nullptr || rec->sealed()) return;
      rec_ = rec;
      env_ = &env;
      pid_ = env.pid();
      slot_ = rec->open_span(pid_, k, index, rec->intern(name()),
                             env.obs_now(), env.obs_ops(), env.obs_draws());
    }
  }

  span_scope(const span_scope&) = delete;
  span_scope& operator=(const span_scope&) = delete;

  ~span_scope() { close(); }

  void set_outcome(bool decide, word value) {
    if constexpr (has_obs_v<Env>) {
      if (rec_ != nullptr && !rec_->sealed())
        rec_->set_outcome(pid_, slot_, decide, value);
    }
  }

  // Idempotent early close (tightens a span to less than full scope).
  void close() {
    if constexpr (has_obs_v<Env>) {
      trial_recorder* rec = rec_;
      if (rec == nullptr) return;
      rec_ = nullptr;
      if (rec->sealed()) return;  // environment may already be dying
      rec->close_span(pid_, slot_, env_->obs_now(), env_->obs_ops(),
                      env_->obs_draws());
    }
  }

 private:
  trial_recorder* rec_ = nullptr;
  Env* env_ = nullptr;
  process_id pid_ = 0;
  std::uint32_t slot_ = kNoSpan;
};

}  // namespace modcon::obs
