#include "obs/perfetto.h"

#include <cstdint>
#include <ostream>
#include <set>
#include <string_view>

#include "obs/obs.h"

namespace modcon::obs {
namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(ch >> 4) & 0xf] << hex[ch & 0xf];
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

void write_perfetto(std::ostream& os, const trial_obs& obs,
                    const perfetto_meta& meta) {
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {\n";
  os << "    \"label\": ";
  write_escaped(os, meta.label);
  os << ",\n    \"backend\": ";
  write_escaped(os, meta.backend);
  os << ",\n    \"seed\": " << meta.seed << ",\n    \"n\": " << meta.n
     << ",\n    \"steps\": " << meta.steps
     << ",\n    \"spans\": " << obs.span_count << ",\n    \"truncated\": "
     << (obs.truncated ? "true" : "false")
     << ",\n    \"contested_registers\": " << obs.regs.contested_registers
     << ",\n    \"stale_cell_reads\": " << obs.regs.stale_cell_reads
     << "\n  },\n";
  os << "  \"traceEvents\": [\n";

  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Track metadata: one process row holding one thread per pid.
  sep();
  os << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"tid\": 0, \"args\": {\"name\": ";
  write_escaped(os, meta.label.empty() ? std::string("modcon trial")
                                       : meta.label);
  os << "}}";
  std::set<process_id> pids;
  for (const span& s : obs.spans) pids.insert(s.pid);
  for (const process_id pid : pids) {
    sep();
    os << "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"tid\": "
       << pid << ", \"args\": {\"name\": \"proc " << pid << "\"}}";
  }

  // Contested cells: one counter track per register that served at least
  // one contested read (value differed from the replay-current cell) so
  // the UI surfaces exactly which cells stale/overlap/safe reads or
  // recovery wipes hit.  The replay produces per-trial totals, not a time
  // series, so each track carries a single sample at ts 0.
  for (const auto& [reg, count] : obs.regs.contested_cells) {
    sep();
    os << "    {\"name\": \"contested reg " << reg
       << "\", \"ph\": \"C\", \"ts\": 0, \"pid\": 0, "
          "\"args\": {\"contested_reads\": "
       << count << "}}";
  }

  for (const span& s : obs.spans) {
    sep();
    os << "    {\"name\": ";
    if (s.name < obs.names.size())
      write_escaped(os, obs.names[s.name]);
    else
      write_escaped(os, "span");
    os << ", \"cat\": ";
    write_escaped(os, to_string(s.kind));
    // Perfetto needs dur >= 1 to render a visible slice; a span that
    // opened and closed on the same tick still covers its operations.
    const std::uint64_t dur = s.t_end > s.t_begin ? s.t_end - s.t_begin : 1;
    os << ", \"ph\": \"X\", \"ts\": " << s.t_begin << ", \"dur\": " << dur
       << ", \"pid\": 0, \"tid\": " << s.pid << ", \"args\": {\"ops\": "
       << s.ops() << ", \"draws\": " << s.draws()
       << ", \"index\": " << s.index << ", \"depth\": " << s.depth;
    if (s.has_outcome) {
      os << ", \"outcome\": ";
      write_escaped(os, s.outcome_decide ? "decide" : "adopt");
      os << ", \"value\": " << s.outcome_value;
    }
    if (!s.closed) os << ", \"unclosed\": true";
    os << "}}";
  }

  os << "\n  ]\n}\n";
}

void write_telemetry_perfetto(std::ostream& os,
                              const std::vector<telemetry_track>& tracks) {
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    const telemetry_track& track = tracks[t];
    // pid per source keeps each bench/shard on its own process row.
    const std::size_t pid = t + 1;
    sep();
    os << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
       << ", \"tid\": 0, \"args\": {\"name\": ";
    write_escaped(os, track.source.empty() ? std::string("telemetry")
                                           : track.source);
    os << "}}";
    for (const telemetry_point& p : track.points) {
      // Counter events share a ts; Perfetto plots each args key as its
      // own series within the named track.
      const auto ts = static_cast<std::uint64_t>(p.elapsed_ms * 1000.0);
      for (const auto& [name, value] : p.counters) {
        sep();
        os << "    {\"name\": ";
        write_escaped(os, name);
        os << ", \"ph\": \"C\", \"ts\": " << ts << ", \"pid\": " << pid
           << ", \"args\": {\"value\": " << value << "}}";
      }
    }
  }
  os << "\n  ]\n}\n";
}

}  // namespace modcon::obs
