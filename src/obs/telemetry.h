// Grid-scale telemetry bus: always-cheap fleet counters, sampled into a
// versioned JSONL time-series.
//
// Where obs/metrics.h sees inside *one trial* (span trees, register
// stats), this bus sees across the *fleet*: every execution path — the
// scalar trial runner, the lockstep batch interpreter, the multi-shot
// slot engine — bumps per-worker cache-line-padded atomic counters and
// log-bucketed (HDR-style) histograms, and a sampler thread
// (telemetry_writer) periodically folds every sink into one cumulative
// snapshot and appends it as a `modcon-telemetry` v1 JSONL line.  Tools
// downstream (scripts/grid_runner.py, tools/modcon-top,
// obs/perfetto.h's counter-track export) tail and merge those files.
//
// Contract:
//   * Cumulative, monotone counters + a writer-owned monotone tick, so
//     merging shard files is order-independent: the fleet total at any
//     instant is the sum of each shard's latest line.
//   * Counters and histograms of deterministic quantities (trials,
//     steps, ops, faults, audits, slot ops) are thread-count invariant,
//     and sum across shards to the single-process totals.  Timing
//     histograms (trial_latency_us, steps_per_sec) and engine-layout
//     metrics (batch sweeps/occupancy, which follow chunk packing) are
//     measurements, excluded from that invariance.
//   * Recording is wait-free per event (relaxed atomics into a
//     per-worker sink; the only lock guards the per-cell label table,
//     touched once per completed *task*, not per trial).
//   * Artifacts (BENCH_*.json) are untouched: telemetry is a side
//     channel, so artifacts stay byte-identical with the bus on or off.
//   * Compile-time kill switch: under MODCON_OBS_DISABLED, tl_sink()
//     constant-folds to nullptr and every instrumentation site dead-code
//     eliminates, like obs/obs.h's has_obs_v gate.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace modcon::obs {

// ---------------------------------------------------------------------
// Counter and histogram registries.  Adding an entry is additive for the
// JSONL schema (consumers key by name); removing or renaming one bumps
// kTelemetrySchemaVersion.

inline constexpr const char* kTelemetrySchemaName = "modcon-telemetry";
inline constexpr std::uint32_t kTelemetrySchemaVersion = 1;

enum class tcounter : std::uint32_t {
  // Fleet progress (trials_planned is bumped once per grid launch, so
  // remaining = planned - completed is an ETA numerator).
  trials_planned,
  trials_started,
  trials_completed,
  trials_timed_out,
  // Work volume.
  steps,
  total_ops,
  // Fault / recovery events (crash-restart pipeline, runner.h).
  crashes,
  restarts,
  recoveries,
  stale_reads,
  omitted_writes,
  volatile_wipes,
  // Property-audit outcomes (check/auditor.h).
  audits,
  audit_violations,
  // Multi-shot slot engine (analysis/multi.h).
  slot_proposals,
  slot_decisions,
  slot_fast_path_hits,
  // Lockstep batch engine (analysis/batch_engine.h).
  batch_trials,
  batch_lanes_retired,
  batch_sweeps,
};
inline constexpr std::size_t kTCounterCount =
    static_cast<std::size_t>(tcounter::batch_sweeps) + 1;

const char* to_string(tcounter c);

enum class thist : std::uint32_t {
  trial_steps,      // deterministic: sums across shards
  trial_latency_us, // measurement
  steps_per_sec,    // measurement
  slot_ops,         // deterministic: per-proposal individual ops
  batch_occupancy,  // engine layout: live lanes per interpreter sweep
};
inline constexpr std::size_t kTHistCount =
    static_cast<std::size_t>(thist::batch_occupancy) + 1;

const char* to_string(thist h);

// ---------------------------------------------------------------------
// Log-bucketed histogram (HDR-style): power-of-two octaves split into 4
// sub-buckets, so every bucket's lower bound is within ~25% of any value
// it holds.  Buckets are serialized sparsely as [index, count] pairs and
// merge by per-bucket addition — the property the shard merge needs.

inline constexpr std::size_t kHistBuckets = 256;

// Values 0..3 map to exact buckets 0..3; larger values land in bucket
// 4*(e-1)+sub where e = floor(log2 v) and sub is the next 2 bits.
constexpr std::uint32_t hist_bucket(std::uint64_t v) {
  if (v < 4) return static_cast<std::uint32_t>(v);
  const int e = std::bit_width(v) - 1;  // floor(log2 v) >= 2
  const std::uint32_t sub = static_cast<std::uint32_t>((v >> (e - 2)) & 3);
  const std::uint32_t b = 4u * static_cast<std::uint32_t>(e - 1) + sub;
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

// Smallest value that maps to bucket b (for quantile estimation).
constexpr std::uint64_t hist_bucket_lo(std::uint32_t b) {
  if (b < 4) return b;
  const std::uint32_t e = b / 4 + 1;
  const std::uint32_t sub = b % 4;
  return (4ull + sub) << (e - 2);
}

struct log_histogram {
  std::array<std::uint64_t, kHistBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void record(std::uint64_t v) {
    ++buckets[hist_bucket(v)];
    ++count;
    sum += v;
    if (v > max) max = v;
  }
  log_histogram& operator+=(const log_histogram& o) {
    for (std::size_t i = 0; i < kHistBuckets; ++i) buckets[i] += o.buckets[i];
    count += o.count;
    sum += o.sum;
    if (o.max > max) max = o.max;
    return *this;
  }
  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  // Nearest-rank quantile estimated at the holding bucket's lower bound.
  std::uint64_t quantile(double q) const;
};

struct cell_totals {
  std::uint64_t trials = 0;
  std::uint64_t steps = 0;
};

// ---------------------------------------------------------------------
// Per-worker sink: relaxed atomics written by one worker thread, read
// concurrently by the sampler.  Padded so neighbouring sinks never share
// a line on the counter front.

class alignas(64) telemetry_sink {
 public:
  void add(tcounter c, std::uint64_t delta = 1) {
    counters_[static_cast<std::size_t>(c)].fetch_add(
        delta, std::memory_order_relaxed);
  }
  void record(thist h, std::uint64_t v) {
    hist_slots& s = hists_[static_cast<std::size_t>(h)];
    s.buckets[hist_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = s.max.load(std::memory_order_relaxed);
    while (prev < v &&
           !s.max.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  // Folds a locally-accumulated histogram in (the batch interpreter
  // records occupancy per sweep into a plain local histogram and merges
  // once per chunk).
  void merge(thist h, const log_histogram& local);
  // Per-cell accounting, keyed by the cell label; once per completed
  // task, so the mutex is uncontended in practice.
  void cell(std::string_view label, std::uint64_t trials,
            std::uint64_t steps);

 private:
  friend class telemetry_bus;
  struct hist_slots {
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  std::array<std::atomic<std::uint64_t>, kTCounterCount> counters_{};
  std::array<hist_slots, kTHistCount> hists_{};
  mutable std::mutex cells_mu_;
  std::vector<std::pair<std::string, cell_totals>> cells_;
};

// One cumulative fold of every sink, taken by the sampler (and by tests
// directly).  Plain data: merge with += / std::map as needed downstream.
struct telemetry_snapshot {
  std::array<std::uint64_t, kTCounterCount> counters{};
  std::array<log_histogram, kTHistCount> hists{};
  std::vector<std::pair<std::string, cell_totals>> cells;  // label-sorted
};

// ---------------------------------------------------------------------
// The bus: a fixed array of sinks; threads are assigned round-robin on
// first use (cached thread-locally, re-resolved when the installed bus
// changes).  Counts stay exact however threads map to sinks — the
// snapshot is the sum over all of them.

class telemetry_bus {
 public:
  // slots = 0: one sink per hardware thread (capped at 64).
  explicit telemetry_bus(std::size_t slots = 0);

  std::size_t slots() const { return sinks_.size(); }
  telemetry_sink& sink(std::size_t i) { return *sinks_[i]; }

  // The calling thread's sink (round-robin assignment).
  telemetry_sink& local();

  telemetry_snapshot snapshot() const;

 private:
  std::vector<std::unique_ptr<telemetry_sink>> sinks_;
  std::atomic<std::size_t> next_{0};
};

namespace detail {
extern std::atomic<telemetry_bus*> g_bus;
extern std::atomic<std::uint64_t> g_epoch;
}  // namespace detail

// The installed bus's sink for this thread, or nullptr when no bus is
// installed (the default: benches without --telemetry-out, all tests).
// Under MODCON_OBS_DISABLED this folds to `return nullptr` and every
// `if (auto* ts = obs::tl_sink())` instrumentation block compiles out.
inline telemetry_sink* tl_sink() {
#ifdef MODCON_OBS_DISABLED
  return nullptr;
#else
  thread_local telemetry_sink* cached = nullptr;
  thread_local std::uint64_t cached_epoch = 0;
  const std::uint64_t epoch = detail::g_epoch.load(std::memory_order_acquire);
  if (cached_epoch != epoch) {
    telemetry_bus* bus = detail::g_bus.load(std::memory_order_acquire);
    cached = bus ? &bus->local() : nullptr;
    cached_epoch = epoch;
  }
  return cached;
#endif
}

// RAII global install.  Exactly one bus may be installed at a time
// (nesting is a bug in the caller; the constructor checks).
class telemetry_install {
 public:
  explicit telemetry_install(telemetry_bus& bus);
  ~telemetry_install();
  telemetry_install(const telemetry_install&) = delete;
  telemetry_install& operator=(const telemetry_install&) = delete;
};

// ---------------------------------------------------------------------
// JSONL writer: samples the bus every interval_ms onto one line of
// `path`, plus a final line (flagged "final": true) at close.  Lines are
// cumulative-from-start, each with a writer-owned monotone tick, so a
// consumer may join mid-stream and only ever needs the latest line.
//
// JSON is emitted by hand (like obs/perfetto.cpp): the analysis library
// links against this one, so obs cannot use analysis::json.

struct telemetry_writer_options {
  std::string path;
  std::uint32_t interval_ms = 1000;  // 0 = manual sample_now() only
  std::string source;                // bench name, echoed per line
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
};

class telemetry_writer {
 public:
  telemetry_writer(telemetry_bus& bus, telemetry_writer_options opts);
  ~telemetry_writer();  // close() if the caller didn't

  bool ok() const { return static_cast<bool>(out_); }

  // Appends one snapshot line now (tests and manual cadences).
  void sample_now();

  // Stops the sampler, appends the final line, flushes.  Idempotent.
  void close();

 private:
  void emit_locked(bool final_line);

  telemetry_bus& bus_;
  telemetry_writer_options opts_;
  std::ofstream out_;
  std::chrono::steady_clock::time_point t0_;
  std::mutex mu_;  // serializes sampler / sample_now / close
  std::uint64_t tick_ = 0;
  bool closed_ = false;
  std::jthread sampler_;  // last member: joins before the rest unwind
};

}  // namespace modcon::obs
