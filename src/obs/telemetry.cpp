#include "obs/telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/assertx.h"

namespace modcon::obs {

const char* to_string(tcounter c) {
  switch (c) {
    case tcounter::trials_planned: return "trials_planned";
    case tcounter::trials_started: return "trials_started";
    case tcounter::trials_completed: return "trials_completed";
    case tcounter::trials_timed_out: return "trials_timed_out";
    case tcounter::steps: return "steps";
    case tcounter::total_ops: return "total_ops";
    case tcounter::crashes: return "crashes";
    case tcounter::restarts: return "restarts";
    case tcounter::recoveries: return "recoveries";
    case tcounter::stale_reads: return "stale_reads";
    case tcounter::omitted_writes: return "omitted_writes";
    case tcounter::volatile_wipes: return "volatile_wipes";
    case tcounter::audits: return "audits";
    case tcounter::audit_violations: return "audit_violations";
    case tcounter::slot_proposals: return "slot_proposals";
    case tcounter::slot_decisions: return "slot_decisions";
    case tcounter::slot_fast_path_hits: return "slot_fast_path_hits";
    case tcounter::batch_trials: return "batch_trials";
    case tcounter::batch_lanes_retired: return "batch_lanes_retired";
    case tcounter::batch_sweeps: return "batch_sweeps";
  }
  return "?";
}

const char* to_string(thist h) {
  switch (h) {
    case thist::trial_steps: return "trial_steps";
    case thist::trial_latency_us: return "trial_latency_us";
    case thist::steps_per_sec: return "steps_per_sec";
    case thist::slot_ops: return "slot_ops";
    case thist::batch_occupancy: return "batch_occupancy";
  }
  return "?";
}

std::uint64_t log_histogram::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank: ceil(q * count), clamped to [1, count].
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::uint32_t b = 0; b < kHistBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) return hist_bucket_lo(b);
  }
  return hist_bucket_lo(kHistBuckets - 1);
}

void telemetry_sink::merge(thist h, const log_histogram& local) {
  if (local.count == 0) return;
  hist_slots& s = hists_[static_cast<std::size_t>(h)];
  for (std::size_t b = 0; b < kHistBuckets; ++b)
    if (local.buckets[b])
      s.buckets[b].fetch_add(local.buckets[b], std::memory_order_relaxed);
  s.count.fetch_add(local.count, std::memory_order_relaxed);
  s.sum.fetch_add(local.sum, std::memory_order_relaxed);
  std::uint64_t prev = s.max.load(std::memory_order_relaxed);
  while (prev < local.max && !s.max.compare_exchange_weak(
                                 prev, local.max, std::memory_order_relaxed)) {
  }
}

void telemetry_sink::cell(std::string_view label, std::uint64_t trials,
                          std::uint64_t steps) {
  std::lock_guard<std::mutex> lock(cells_mu_);
  for (auto& [name, totals] : cells_) {
    if (name == label) {
      totals.trials += trials;
      totals.steps += steps;
      return;
    }
  }
  cells_.emplace_back(std::string(label), cell_totals{trials, steps});
}

telemetry_bus::telemetry_bus(std::size_t slots) {
  if (slots == 0) {
    slots = std::thread::hardware_concurrency();
    if (slots == 0) slots = 4;
    slots = std::min<std::size_t>(slots, 64);
  }
  sinks_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i)
    sinks_.push_back(std::make_unique<telemetry_sink>());
}

telemetry_sink& telemetry_bus::local() {
  const std::size_t slot =
      next_.fetch_add(1, std::memory_order_relaxed) % sinks_.size();
  return *sinks_[slot];
}

telemetry_snapshot telemetry_bus::snapshot() const {
  telemetry_snapshot snap;
  for (const auto& sink : sinks_) {
    for (std::size_t c = 0; c < kTCounterCount; ++c)
      snap.counters[c] += sink->counters_[c].load(std::memory_order_relaxed);
    for (std::size_t h = 0; h < kTHistCount; ++h) {
      const telemetry_sink::hist_slots& src = sink->hists_[h];
      log_histogram& dst = snap.hists[h];
      for (std::size_t b = 0; b < kHistBuckets; ++b)
        dst.buckets[b] += src.buckets[b].load(std::memory_order_relaxed);
      dst.count += src.count.load(std::memory_order_relaxed);
      dst.sum += src.sum.load(std::memory_order_relaxed);
      dst.max = std::max(dst.max, src.max.load(std::memory_order_relaxed));
    }
    {
      std::lock_guard<std::mutex> lock(sink->cells_mu_);
      for (const auto& [label, totals] : sink->cells_) {
        bool found = false;
        for (auto& [name, merged] : snap.cells) {
          if (name == label) {
            merged.trials += totals.trials;
            merged.steps += totals.steps;
            found = true;
            break;
          }
        }
        if (!found) snap.cells.emplace_back(label, totals);
      }
    }
  }
  std::sort(snap.cells.begin(), snap.cells.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

namespace detail {
std::atomic<telemetry_bus*> g_bus{nullptr};
std::atomic<std::uint64_t> g_epoch{0};
}  // namespace detail

telemetry_install::telemetry_install(telemetry_bus& bus) {
  telemetry_bus* expected = nullptr;
  const bool installed = detail::g_bus.compare_exchange_strong(
      expected, &bus, std::memory_order_release);
  MODCON_CHECK_MSG(installed, "a telemetry bus is already installed");
  detail::g_epoch.fetch_add(1, std::memory_order_release);
}

telemetry_install::~telemetry_install() {
  detail::g_bus.store(nullptr, std::memory_order_release);
  detail::g_epoch.fetch_add(1, std::memory_order_release);
}

// --------------------------------------------------------------------
// JSONL emission (hand-written, like obs/perfetto.cpp — see the header
// on why analysis::json is off limits here).

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_hist(std::string& out, const log_histogram& h) {
  out += "{\"count\":";
  append_u64(out, h.count);
  out += ",\"sum\":";
  append_u64(out, h.sum);
  out += ",\"max\":";
  append_u64(out, h.max);
  out += ",\"buckets\":[";
  bool first = true;
  for (std::uint32_t b = 0; b < kHistBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[';
    append_u64(out, b);
    out += ',';
    append_u64(out, h.buckets[b]);
    out += ']';
  }
  out += "]}";
}

}  // namespace

telemetry_writer::telemetry_writer(telemetry_bus& bus,
                                   telemetry_writer_options opts)
    : bus_(bus),
      opts_(std::move(opts)),
      out_(opts_.path),
      t0_(std::chrono::steady_clock::now()) {
  if (!out_) return;
  if (opts_.interval_ms > 0) {
    sampler_ = std::jthread([this](std::stop_token st) {
      const auto interval = std::chrono::milliseconds(opts_.interval_ms);
      auto next = t0_ + interval;
      while (!st.stop_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        if (std::chrono::steady_clock::now() < next) continue;
        next += interval;
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_) return;
        emit_locked(false);
      }
    });
  }
}

telemetry_writer::~telemetry_writer() { close(); }

void telemetry_writer::sample_now() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || !out_) return;
  emit_locked(false);
}

void telemetry_writer::close() {
  if (sampler_.joinable()) {
    sampler_.request_stop();
    sampler_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;
  if (!out_) return;
  emit_locked(true);
  out_.flush();
}

void telemetry_writer::emit_locked(bool final_line) {
  const telemetry_snapshot snap = bus_.snapshot();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0_)
          .count();
  std::string line;
  line.reserve(2048);
  line += "{\"schema\":\"";
  line += kTelemetrySchemaName;
  line += "\",\"version\":";
  append_u64(line, kTelemetrySchemaVersion);
  line += ",\"tick\":";
  append_u64(line, ++tick_);  // first line is tick 1: strictly monotone
  line += ",\"elapsed_ms\":";
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", elapsed_ms);
    line += buf;
  }
  line += ",\"final\":";
  line += final_line ? "true" : "false";
  line += ",\"source\":\"";
  append_escaped(line, opts_.source);
  line += "\",\"shard\":";
  append_u64(line, opts_.shard_index);
  line += ",\"shard_count\":";
  append_u64(line, opts_.shard_count);
  line += ",\"counters\":{";
  for (std::size_t c = 0; c < kTCounterCount; ++c) {
    if (c) line += ',';
    line += '"';
    line += to_string(static_cast<tcounter>(c));
    line += "\":";
    append_u64(line, snap.counters[c]);
  }
  line += "},\"hists\":{";
  for (std::size_t h = 0; h < kTHistCount; ++h) {
    if (h) line += ',';
    line += '"';
    line += to_string(static_cast<thist>(h));
    line += "\":";
    append_hist(line, snap.hists[h]);
  }
  line += "},\"cells\":{";
  for (std::size_t i = 0; i < snap.cells.size(); ++i) {
    if (i) line += ',';
    line += '"';
    append_escaped(line, snap.cells[i].first);
    line += "\":{\"trials\":";
    append_u64(line, snap.cells[i].second.trials);
    line += ",\"steps\":";
    append_u64(line, snap.cells[i].second.steps);
    line += '}';
  }
  line += "}}\n";
  out_ << line;
  out_.flush();  // tailers see whole lines promptly
}

}  // namespace modcon::obs
