// Chrome/Perfetto trace_event exporter.
//
// Serializes one trial's merged span forest (obs/metrics.h) as a JSON
// object in the Trace Event Format — loadable at ui.perfetto.dev ("Open
// trace file") or chrome://tracing.  Each process becomes a named track
// (tid = pid); each span becomes a complete ("X") event whose timestamps
// are backend timeline ticks (sim: adversary steps) and whose args carry
// the span's op/draw deltas, nesting depth, and decide/adopt outcome.
//
// JSON is emitted by hand here rather than through analysis::json: the
// analysis library links against this one, so obs cannot depend back on
// it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace modcon::obs {

// Trial identification stamped into the trace's otherData block.
struct perfetto_meta {
  std::string label;
  std::string backend = "sim";
  std::uint64_t seed = 0;
  std::uint64_t n = 0;
  std::uint64_t steps = 0;
};

void write_perfetto(std::ostream& os, const trial_obs& obs,
                    const perfetto_meta& meta);

// ---- Telemetry time-series export ---------------------------------------
//
// A fleet telemetry stream (obs/telemetry.h JSONL) re-plotted as Perfetto
// counter ("C") tracks: one process row per source (bench / shard), one
// counter track per metric, one sample per snapshot tick.  Timestamps are
// the snapshot's elapsed_ms converted to microseconds.

// One snapshot tick, already reduced to the metrics worth plotting.
struct telemetry_point {
  double elapsed_ms = 0;
  std::vector<std::pair<std::string, double>> counters;
};

// One source's series (typically one JSONL file).
struct telemetry_track {
  std::string source;
  std::vector<telemetry_point> points;
};

void write_telemetry_perfetto(std::ostream& os,
                              const std::vector<telemetry_track>& tracks);

}  // namespace modcon::obs
