// Trial-level metric finalization.
//
// After a trial completes, the runner turns the raw trial_recorder —
// per-pid span buffers and counters — into one `trial_obs`: a merged,
// globally-id'd span forest, the summed counter set, register-contention
// statistics, and the derived protocol metrics the experiment layer
// aggregates (stages-to-decision, conciliator coin agreement).
//
// Register statistics come from the sim backend's execution trace, not
// from per-operation hooks: observing a trial force-enables the trace and
// `finalize_trial` replays it once at the end, so the hot execute loop
// stays untouched.  The rt backend has no global trace; there the
// operation counters the instrumented slow path accumulated stand in, and
// the per-register fields stay zero.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/types.h"
#include "obs/obs.h"

namespace modcon::sim {
class trace;
}  // namespace modcon::sim

namespace modcon::obs {

// Contention picture of one trial's register file (sim backend only).
struct register_stats {
  std::uint64_t reads = 0;           // per-cell read touches (collects
                                     // count once per cell observed)
  std::uint64_t writes_applied = 0;  // writes that took effect
  std::uint64_t writes_missed = 0;   // probabilistic/faulted writes that
                                     // did not
  std::uint64_t lost_overwrites = 0;  // applied writes that clobbered
                                      // another process's applied write
                                      // before anyone read it
  std::uint64_t registers_touched = 0;
  std::uint64_t max_writes_one_reg = 0;
  reg_id hottest_reg = kInvalidReg;

  // Contested reads: read observations (including collect cells) whose
  // value differs from the replay-current value of the cell — the
  // footprint of stale probabilistic reads, regular-overlap reads, safe
  // fabrications, and recovery wipes racing readers.
  std::uint64_t stale_cell_reads = 0;
  std::uint64_t contested_registers = 0;  // cells with ≥1 contested read
  std::uint64_t max_stale_one_reg = 0;
  reg_id most_contested_reg = kInvalidReg;
  // (cell, contested-read count), nonzero cells only, ascending by cell —
  // the Perfetto exporter renders one counter track per entry.
  std::vector<std::pair<reg_id, std::uint64_t>> contested_cells;
};

// Everything observability knows about one finished trial.
struct trial_obs {
  std::uint32_t n = 0;
  bool truncated = false;  // some pid hit the span cap
  std::array<std::uint64_t, kCounterCount> counters{};
  register_stats regs;

  // Merged span forest (globally unique ids, `parent` re-pointed), plus
  // the shared name table.  Dropped for bulk experiment trials
  // (drop_spans) — only single-trial tracing keeps them.
  std::vector<span> spans;
  std::vector<std::string> names;
  std::uint64_t span_count = 0;  // survives drop_spans

  // Depth-1 stage/round spans each process opened before its object span
  // closed — the per-process "stages to decision" of Theorem 5.
  std::vector<std::uint64_t> stages_to_decision;  // indexed by pid

  // Coin agreement: of the conciliator invocations in which more than one
  // process recorded an outcome, how many ended with every participant
  // holding the same value (the conciliator's agreement event).
  std::uint64_t conciliator_invocations = 0;
  std::uint64_t conciliator_agreed = 0;

  void drop_spans() {
    spans.clear();
    spans.shrink_to_fit();
    names.clear();
    names.shrink_to_fit();
  }
};

// Merges the recorder's per-pid buffers and derives the metrics above.
// `t` is the trial's execution trace when the sim backend ran it (used
// for register statistics and the memory-operation counters); pass
// nullptr on the rt backend to keep the env-counted values.
trial_obs finalize_trial(const trial_recorder& rec,
                         const sim::trace* t = nullptr);

}  // namespace modcon::obs
