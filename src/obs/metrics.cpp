#include "obs/metrics.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/trace.h"

namespace modcon::obs {
namespace {

// Replays the execution trace through a small per-register state machine:
// exact memory-operation counts plus the contention picture (who wrote
// over whom before anyone looked).
void derive_register_stats(const sim::trace& t, trial_obs& out) {
  struct reg_state {
    process_id last_writer = kInvalidProcess;
    std::uint64_t writes = 0;
    std::uint64_t stale = 0;    // reads that saw a non-current value
    word current = 0;
    bool cur_known = false;
    bool unread_write = false;  // last applied write not yet observed
    bool touched = false;
  };
  std::vector<reg_state> regs;
  auto at = [&regs, &t](reg_id r) -> reg_state& {
    if (r >= regs.size()) regs.resize(static_cast<std::size_t>(r) + 1);
    reg_state& s = regs[r];
    if (!s.cur_known && t.has_initial(r)) {
      s.current = t.initial_of(r);
      s.cur_known = true;
    }
    return s;
  };

  std::uint64_t reads = 0, writes_applied = 0, writes_missed = 0,
                collects = 0, cell_reads = 0, lost = 0, stale_total = 0;
  auto note_observed = [&stale_total](reg_state& s, word v) {
    if (s.cur_known && v != s.current) {
      ++s.stale;
      ++stale_total;
    }
  };
  for (std::uint64_t i = 0; i < t.size(); ++i) {
    const sim::trace_event e = t.event(i);
    switch (e.kind) {
      case op_kind::read: {
        ++reads;
        ++cell_reads;
        reg_state& s = at(e.reg);
        s.touched = true;
        s.unread_write = false;
        note_observed(s, e.value);
        break;
      }
      case op_kind::write: {
        if (!e.applied) {
          ++writes_missed;
          break;
        }
        ++writes_applied;
        reg_state& s = at(e.reg);
        if (s.unread_write && s.last_writer != e.pid) ++lost;
        s.last_writer = e.pid;
        s.unread_write = true;
        s.touched = true;
        s.current = e.value;
        s.cur_known = true;
        ++s.writes;
        break;
      }
      case op_kind::collect: {
        ++collects;
        const std::span<const word> vals = t.collect_values(i);
        cell_reads += vals.size();
        for (std::size_t c = 0; c < vals.size(); ++c) {
          reg_state& s = at(e.reg + static_cast<reg_id>(c));
          s.touched = true;
          s.unread_write = false;
          note_observed(s, vals[c]);
        }
        break;
      }
    }
  }

  out.counters[static_cast<std::size_t>(counter::reads)] = reads;
  out.counters[static_cast<std::size_t>(counter::writes)] = writes_applied;
  out.counters[static_cast<std::size_t>(counter::prob_write_misses)] =
      writes_missed;
  out.counters[static_cast<std::size_t>(counter::collects)] = collects;

  out.regs.reads = cell_reads;
  out.regs.writes_applied = writes_applied;
  out.regs.writes_missed = writes_missed;
  out.regs.lost_overwrites = lost;
  out.regs.stale_cell_reads = stale_total;
  for (reg_id r = 0; r < regs.size(); ++r) {
    if (regs[r].touched) ++out.regs.registers_touched;
    if (regs[r].writes > out.regs.max_writes_one_reg) {
      out.regs.max_writes_one_reg = regs[r].writes;
      out.regs.hottest_reg = r;
    }
    if (regs[r].stale > 0) {
      ++out.regs.contested_registers;
      out.regs.contested_cells.emplace_back(r, regs[r].stale);
      if (regs[r].stale > out.regs.max_stale_one_reg) {
        out.regs.max_stale_one_reg = regs[r].stale;
        out.regs.most_contested_reg = r;
      }
    }
  }
}

}  // namespace

trial_obs finalize_trial(const trial_recorder& rec, const sim::trace* t) {
  trial_obs out;
  const std::size_t n = rec.n();
  out.n = static_cast<std::uint32_t>(n);
  out.truncated = rec.truncated_any();
  out.names = rec.names();
  out.stages_to_decision.assign(n, 0);

  // Merge per-pid buffers into one forest with globally unique ids.
  std::size_t total = 0;
  for (process_id pid = 0; pid < n; ++pid) total += rec.spans_of(pid).size();
  out.spans.reserve(total);
  out.span_count = total;

  std::uint32_t offset = 0;
  for (process_id pid = 0; pid < n; ++pid) {
    const std::vector<span>& src = rec.spans_of(pid);
    std::uint32_t object_slot = kNoSpan;
    std::uint64_t stages = 0, roots = 0;
    for (const span& s : src) {
      span m = s;
      m.id += offset;
      if (m.parent != kNoSpan) m.parent += offset;
      out.spans.push_back(m);
      if (s.depth == 0) {
        ++roots;
        if (object_slot == kNoSpan && s.kind == span_kind::object)
          object_slot = s.id;
      }
    }
    // Stages to decision: direct children of the object span, or the
    // number of root spans when no object span wrapped the trial.
    if (object_slot != kNoSpan) {
      for (const span& s : src)
        if (s.parent == object_slot) ++stages;
    } else {
      stages = roots;
    }
    out.stages_to_decision[pid] = stages;

    const std::array<std::uint64_t, kCounterCount>& c = rec.counters_of(pid);
    for (std::size_t i = 0; i < kCounterCount; ++i) out.counters[i] += c[i];
    offset += static_cast<std::uint32_t>(src.size());
  }

  // Coin agreement: conciliator spans at the same position of the
  // composition (same parent index, same own index) are one logical
  // invocation; it "agreed" when every participating process came away
  // with the same value.
  struct group {
    std::uint64_t participants = 0;
    word value = 0;
    bool agreed = true;
  };
  std::unordered_map<std::uint64_t, group> groups;
  for (const span& s : out.spans) {
    if (s.kind != span_kind::conciliator || !s.has_outcome) continue;
    const std::uint32_t parent_index =
        s.parent != kNoSpan ? out.spans[s.parent].index : 0xffffffffU;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(parent_index) << 32) | s.index;
    group& g = groups[key];
    if (g.participants == 0)
      g.value = s.outcome_value;
    else if (g.value != s.outcome_value)
      g.agreed = false;
    ++g.participants;
  }
  for (const auto& [key, g] : groups) {
    (void)key;
    ++out.conciliator_invocations;
    if (g.agreed) ++out.conciliator_agreed;
  }

  if (t != nullptr) derive_register_stats(*t, out);
  return out;
}

}  // namespace modcon::obs
