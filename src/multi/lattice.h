// One-shot lattice agreement over the join-semilattice of bitmasks.
//
// Lattice agreement is the comparability weakening of consensus: each
// process proposes an element of a lattice (here: a word treated as a set
// of up-to-63 flags under bitwise OR) and outputs an element such that
//
//   upward validity     output ⊇ own proposal
//   downward validity   output ⊆ join of all proposals
//   comparability       any two outputs are ordered (x ⊆ y or y ⊆ x)
//
// Unlike consensus it is solvable wait-free and deterministically — no
// conciliators, no randomness.  The construction reuses the repo's
// announce-board machinery (the same alloc_block + collect idiom as the
// cheap-collect ratifier): each process writes its proposal to its
// announce cell once, then repeats collects over the board until two
// successive collects agree ("clean double collect"), and outputs the OR
// of everything seen.
//
// Why this is correct: announce cells are write-once (⊥ → v, one write
// per process), so the board only ever grows.  A clean double collect is
// a snapshot — nothing changed between the two collects, so the result
// equals the board's contents at every instant in between.  Snapshots of
// a grow-only board are ordered by inclusion, hence the outputs (their
// ORs) are comparable.  Termination is wait-free: the board changes at
// most n times ever, so a process takes at most n+1 collects (O(n²)
// individual work).
//
// One-shot, like everything in core/: each process calls join() at most
// once per object.  The multi-shot story is the same as consensus —
// mint a fresh object per round (e.g. through a slot_log-style pool).
#pragma once

#include <cstddef>
#include <vector>

#include "exec/address_space.h"
#include "exec/proc.h"
#include "exec/types.h"
#include "obs/obs.h"
#include "util/assertx.h"

namespace modcon::multi {

template <typename Env>
class lattice_agreement {
 public:
  lattice_agreement(address_space& mem, std::size_t n)
      : n_(n), announce_(mem.alloc_block(static_cast<std::uint32_t>(n), kBot)) {
    MODCON_CHECK(n > 0);
  }

  // Each process calls this at most once.  `mask` must not be kBot (⊥ is
  // the board's "not yet announced" sentinel, not a lattice element);
  // mask 0 (the lattice bottom) is fine.
  proc<word> join(Env& env, word mask) {
    MODCON_CHECK_MSG(mask != kBot, "kBot is not a joinable lattice element");
    obs::span_scope<Env> sp(env, obs::span_kind::object, 0, "lattice");
    co_await env.write(announce_ + env.pid(), mask);
    std::vector<word> prev =
        co_await env.collect(announce_, static_cast<std::uint32_t>(n_));
    for (;;) {
      std::vector<word> cur =
          co_await env.collect(announce_, static_cast<std::uint32_t>(n_));
      if (cur == prev) break;
      prev = std::move(cur);
    }
    word out = 0;
    for (word w : prev)
      if (w != kBot) out |= w;
    sp.set_outcome(true, out);
    co_return out;
  }

 private:
  std::size_t n_;
  reg_id announce_;
};

}  // namespace modcon::multi
