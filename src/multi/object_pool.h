// Arena-backed register pool with extent recycling, for the multi-shot
// slot log (multi/slot_log.h).
//
// A slot log materializes one fresh one-shot consensus object per slot.
// Naively each object allocates its registers straight from the world's
// address space, so a log of S slots costs S × (registers per stack) —
// unbounded growth for a long-lived log even though only a window of
// slots is ever live.  The pool fixes the footprint: object allocations
// are carved from fixed-size *extents* drawn from the parent space, the
// extents a slot's object consumed are tracked as a *lease*, and when the
// slot is reclaimed (every process's watermark has passed it — see
// slot_log's epoch scheme) its lease returns to a freelist.  The next
// slot's object re-initializes and reuses those registers via
// address_space::reinit, so thousands of decided slots share a bounded
// register range.
//
// A lease is exposed as an address_space *view*: the slot's object is
// built over view(id) and holds that reference for its whole life, so
// even allocations it makes lazily mid-execution (the unbounded
// construction materializes its ladder on demand, long after the slot
// was set up) are charged to the right lease.  A pool-wide "current
// lease" could not do this — on the rt backend several slots' objects
// allocate concurrently.
//
// Concurrency: open/release and every allocation take the pool's own
// mutex, so concurrent lazy allocations from different leases are safe
// on real threads.  (Register *access* by running processes is the
// backends' business and never goes through the pool.)
//
// Backends without reinit support (a custom address_space that keeps the
// default) degrade gracefully: the pool detects the missing capability on
// first use and becomes a pass-through allocator — correct, just without
// reuse.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/address_space.h"
#include "exec/types.h"
#include "util/assertx.h"

namespace modcon::multi {

struct pool_stats {
  std::uint64_t extents_created = 0;  // drawn fresh from the parent
  std::uint64_t extents_reused = 0;   // served from the freelist
  std::uint64_t leases_opened = 0;
  std::uint64_t leases_released = 0;
  std::uint64_t words_served = 0;  // registers handed out, counting reuse
  std::uint64_t parent_words = 0;  // registers actually drawn from parent
};

class object_pool final {
 public:
  using lease_id = std::uint32_t;
  static constexpr lease_id kNoLease = 0xffffffffu;

  explicit object_pool(address_space& parent,
                       std::uint32_t extent_words = 64)
      : parent_(parent), extent_words_(extent_words) {
    MODCON_CHECK(extent_words > 0);
  }

  object_pool(const object_pool&) = delete;
  object_pool& operator=(const object_pool&) = delete;

  // Opens a lease.  Allocations through view(id) are charged to it until
  // release(id).
  lease_id open() {
    std::scoped_lock lk(mu_);
    lease_id id = static_cast<lease_id>(leases_.size());
    leases_.push_back(std::make_unique<lease>());
    leases_.back()->view = std::make_unique<lease_view>(this, id);
    ++stats_.leases_opened;
    return id;
  }

  // The lease's allocation facade; stable for the lease's lifetime.  The
  // object built over it must be destroyed before release(id).
  address_space& view(lease_id id) {
    std::scoped_lock lk(mu_);
    MODCON_CHECK_MSG(id < leases_.size(), "view of unknown lease " << id);
    return *leases_[id]->view;
  }

  // Returns the lease's extents to the freelist.  Only legal once no
  // process can still operate on the lease's registers (the slot log's
  // reclamation epoch guarantees this).  Double release asserts.
  void release(lease_id id) {
    std::scoped_lock lk(mu_);
    MODCON_CHECK_MSG(id < leases_.size(), "release of unknown lease " << id);
    lease& l = *leases_[id];
    MODCON_CHECK_MSG(!l.released, "double release of lease " << id);
    l.released = true;
    ++stats_.leases_released;
    seal_current(l);
    if (recycle_) {
      for (extent& e : l.extents) {
        e.used = 0;
        e.virgin = false;
        ++e.generation;  // debug tag: a new tenant is a new generation
        freelist_.push_back(e);
      }
    }
    l.extents.clear();
  }

  pool_stats stats() const {
    std::scoped_lock lk(mu_);
    return stats_;
  }

  // False once the parent declined reinit (pass-through mode).
  bool recycling() const {
    std::scoped_lock lk(mu_);
    return recycle_;
  }

 private:
  struct extent {
    reg_id first = kInvalidReg;
    std::uint32_t size = 0;
    std::uint32_t used = 0;
    std::uint32_t generation = 0;
    bool virgin = true;  // fresh from the parent: every word holds kBot
  };

  // The address_space a leased object allocates through.
  class lease_view final : public address_space {
   public:
    lease_view(object_pool* pool, lease_id id) : pool_(pool), id_(id) {}
    reg_id alloc(word init) override {
      return pool_->alloc_block(id_, 1, init);
    }
    reg_id alloc_block(std::uint32_t count, word init) override {
      return pool_->alloc_block(id_, count, init);
    }
    std::uint32_t allocated() const override {
      return pool_->lease_words(id_);
    }

   private:
    object_pool* pool_;
    lease_id id_;
  };

  struct lease {
    extent cur;  // open extent being carved; size 0 = none
    std::vector<extent> extents;
    std::uint64_t words = 0;  // served through this lease
    bool released = false;
    std::unique_ptr<lease_view> view;
  };

  reg_id alloc_block(lease_id id, std::uint32_t count, word init) {
    std::scoped_lock lk(mu_);
    MODCON_CHECK(count > 0);
    MODCON_CHECK_MSG(id < leases_.size(), "allocation on unknown lease");
    lease& l = *leases_[id];
    MODCON_CHECK_MSG(!l.released,
                     "object_pool allocation through a released lease "
                     "(an object outlived its slot's reclamation)");
    stats_.words_served += count;
    l.words += count;
    // Oversize blocks (announce arrays wider than an extent) and
    // pass-through mode go straight to the parent; they are leased like
    // extents so release still recycles them.
    if (!recycle_ && probed_) return passthrough_block(count, init);
    if (count > extent_words_) return oversize_block(l, count, init);
    if (l.cur.size - l.cur.used < count) seal_current(l);
    if (l.cur.size == 0) acquire_extent(l);
    if (!recycle_) return passthrough_block(count, init);
    reg_id first = l.cur.first + l.cur.used;
    for (std::uint32_t i = 0; i < count; ++i) {
      // Virgin extents come from the parent already holding kBot; only
      // recycled extents (or a non-kBot init) need the reset.
      if (l.cur.virgin && init == kBot) continue;
      bool ok = parent_.reinit(first + i, init);
      MODCON_CHECK_MSG(ok, "parent reinit support vanished mid-extent");
    }
    l.cur.used += count;
    return first;
  }

  std::uint32_t lease_words(lease_id id) const {
    std::scoped_lock lk(mu_);
    MODCON_CHECK_MSG(id < leases_.size(), "allocated() on unknown lease");
    return static_cast<std::uint32_t>(leases_[id]->words);
  }

  void seal_current(lease& l) {
    if (l.cur.size == 0) return;
    l.extents.push_back(l.cur);
    l.cur = extent{};
  }

  void acquire_extent(lease& l) {
    if (!freelist_.empty()) {
      l.cur = freelist_.back();
      freelist_.pop_back();
      ++stats_.extents_reused;
      return;
    }
    l.cur.first = parent_.alloc_block(extent_words_, kBot);
    l.cur.size = extent_words_;
    l.cur.used = 0;
    l.cur.virgin = true;
    l.cur.generation = 0;
    ++stats_.extents_created;
    stats_.parent_words += extent_words_;
    if (!probed_) {
      // Capability probe, once: re-initializing a fresh kBot register to
      // kBot is a no-op for any conforming backend, so a false return
      // can only mean "recycling unsupported".
      probed_ = true;
      recycle_ = parent_.reinit(l.cur.first, kBot);
      if (!recycle_) l.cur = extent{};  // abandon; pass through from now on
    }
  }

  reg_id oversize_block(lease& l, std::uint32_t count, word init) {
    // First-fit over the freelist; else a dedicated parent block.
    for (std::size_t i = 0; i < freelist_.size(); ++i) {
      if (freelist_[i].size < count) continue;
      extent e = freelist_[i];
      freelist_[i] = freelist_.back();
      freelist_.pop_back();
      ++stats_.extents_reused;
      for (std::uint32_t k = 0; k < e.size; ++k) {
        bool ok = parent_.reinit(e.first + k, init);
        MODCON_CHECK_MSG(ok, "parent reinit support vanished mid-extent");
      }
      e.used = e.size;  // leased whole; recyclable again on release
      l.extents.push_back(e);
      return e.first;
    }
    extent e;
    e.first = parent_.alloc_block(count, init);
    e.size = count;
    e.used = count;
    e.virgin = false;  // holds `init`, not kBot
    ++stats_.extents_created;
    stats_.parent_words += count;
    l.extents.push_back(e);
    return e.first;
  }

  reg_id passthrough_block(std::uint32_t count, word init) {
    stats_.parent_words += count;
    return parent_.alloc_block(count, init);
  }

  address_space& parent_;
  std::uint32_t extent_words_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<lease>> leases_;
  std::vector<extent> freelist_;
  pool_stats stats_;
  bool probed_ = false;
  bool recycle_ = true;
};

}  // namespace modcon::multi
