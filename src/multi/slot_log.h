// Multi-shot consensus as a slot-indexed log of one-shot objects.
//
// The paper's machinery (conciliators, ratifiers, and their
// compositions) is strictly one-shot: each process invokes an object at
// most once.  Replicated state machines need the multi-shot form — agree
// on a value for slot 0, then slot 1, then slot 2, … — and the standard
// reduction is exactly a log: slot s is decided by a fresh one-shot
// consensus instance, materialized on demand.
//
// slot_log<Env> is that reduction, with two additions that make it cheap
// enough to sustain:
//
//   * a *pin register* per slot.  The first process to decide slot s
//     writes the decision into pin[s]; later proposers read the pin,
//     see a non-⊥ value, and return it without touching the consensus
//     object at all.  Under any realistic workload almost every proposal
//     after the first is a one-read fast path.
//
//   * *epoch-based reclamation* of the decided prefix.  Each process
//     advertises a watermark ("I will never again propose on a slot
//     below w"); the minimum watermark over all processes is the
//     reclamation epoch, and every slot below it can drop its consensus
//     object and recycle the object's registers through an object_pool.
//     The pin registers survive forever (they are the log's durable
//     content — a late reader of a reclaimed slot still gets its value);
//     only the consensus scaffolding is recycled.
//
// Stacks are described declaratively: the log takes a stack_spec and
// builds one instance per slot from it, so every stack in the registry
// (impatient, bounded, ratifier-only, CIL, …) is multi-shot for free.
//
// Concurrency story (holds on both backends): slot materialization and
// reclamation are host-side and guarded by one mutex, with a published
// atomic count for lock-free reads of already-materialized slots — the
// same publication pattern as the unbounded construction's lazy ladder.
// Proposals themselves are pure shared-register protocol code.
//
// Reclamation safety: a process's watermark only advances past slot s
// after its propose(s) has returned, so a slot with an in-flight
// proposal always holds the reclamation epoch below it.  Proposing on a
// slot below your own advertised watermark is a contract violation and
// asserts.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/consensus/stack_spec.h"
#include "core/deciding.h"
#include "core/types.h"
#include "exec/proc.h"
#include "multi/object_pool.h"
#include "obs/obs.h"
#include "util/assertx.h"

namespace modcon::multi {

struct slot_log_stats {
  std::uint64_t slots_materialized = 0;
  std::uint64_t slots_reclaimed = 0;
  std::uint64_t fast_path_hits = 0;  // proposals answered by the pin alone
  std::uint64_t decisions = 0;       // proposals that ran the slot object
  pool_stats pool;
};

template <typename Env>
class slot_log {
 public:
  // `mem` must outlive the log (enforced by the liveness tag in debug
  // builds).  Pin registers are allocated from `mem` directly and are
  // never reclaimed; per-slot objects allocate through the internal pool.
  slot_log(address_space& mem, std::size_t n, stack_spec spec,
           std::uint32_t extent_words = 64)
      : mem_(mem),
        n_(n),
        spec_(spec),
        pool_(mem, extent_words),
        watermarks_(new std::atomic<std::uint64_t>[n]) {
    MODCON_CHECK(n > 0);
    for (std::size_t p = 0; p < n; ++p)
      watermarks_[p].store(0, std::memory_order_relaxed);
  }

  slot_log(const slot_log&) = delete;
  slot_log& operator=(const slot_log&) = delete;

  ~slot_log() {
    for (auto& slot : *chunks_) delete slot.load(std::memory_order_acquire);
  }

  // Proposes `value` for `slot` and returns the slot's decision.  Every
  // correct invocation decides (the underlying stacks are full consensus,
  // not bare conciliators).  Callers may re-propose a slot they already
  // decided (idempotent via the pin), but must never propose below their
  // own advertised watermark.
  proc<word> propose(Env& env, std::uint64_t slot, word value) {
    MODCON_CHECK_MSG(value < kBot, "slot proposal must be a value in Σ");
    slot_state& st = state(slot);
    obs::span_scope<Env> sp(env, obs::span_kind::slot,
                            static_cast<std::uint32_t>(slot), "slot");
    // Fast path: somebody already pinned the decision.
    word pinned = co_await env.read(st.pin);
    if (pinned != kBot) {
      // Seeing the pin proves the slot is decided even if the pinning
      // process hasn't published its host-side flag yet (it may have
      // crashed between the write and the flag) — record it on its
      // behalf so reclamation's decided-slot check stays exact.
      st.decided.store(true, std::memory_order_release);
      fast_hits_.fetch_add(1, std::memory_order_relaxed);
      sp.set_outcome(true, pinned);
      co_return pinned;
    }
    // Slow path.  Re-proposals of already-consumed slots (a crash-restart
    // re-running its program from the start) are legal but always take
    // the fast path above: a slot below a process's own watermark was
    // consumed by that process, so its pin is set — reaching here with
    // the pin unset means the watermark lied.
    MODCON_CHECK_MSG(
        slot >= watermarks_[env.pid()].load(std::memory_order_relaxed),
        "process " << env.pid() << " found slot " << slot
                   << " undecided below its own watermark");
    MODCON_CHECK_MSG(!st.reclaimed.load(std::memory_order_acquire),
                     "proposal on reclaimed slot " << slot);
    decided d = co_await st.obj->invoke(env, value);
    MODCON_CHECK_MSG(d.decide, "slot " << slot << " stack \""
                                       << to_string(spec_)
                                       << "\" failed to decide");
    co_await env.write(st.pin, d.value);
    st.decided.store(true, std::memory_order_release);
    decisions_.fetch_add(1, std::memory_order_relaxed);
    sp.set_outcome(true, d.value);
    co_return d.value;
  }

  // Process `pid` promises never to propose on any slot < `next_slot`
  // again (it has consumed the decisions of all of them).  Monotone;
  // lowering is a silent no-op.  When the minimum watermark over all
  // processes advances, the newly-covered decided prefix is reclaimed.
  void advance_watermark(process_id pid, std::uint64_t next_slot) {
    auto& wm = watermarks_[pid];
    std::uint64_t cur = wm.load(std::memory_order_relaxed);
    while (cur < next_slot &&
           !wm.compare_exchange_weak(cur, next_slot,
                                     std::memory_order_release,
                                     std::memory_order_relaxed)) {
    }
    std::uint64_t epoch = watermarks_[0].load(std::memory_order_acquire);
    for (std::size_t p = 1; p < n_; ++p) {
      std::uint64_t w = watermarks_[p].load(std::memory_order_acquire);
      if (w < epoch) epoch = w;
    }
    if (epoch > reclaimed_upto_.load(std::memory_order_acquire)) {
      std::scoped_lock lk(mu_);
      reclaim_locked(epoch);
    }
  }

  std::uint64_t watermark(process_id pid) const {
    return watermarks_[pid].load(std::memory_order_acquire);
  }

  // Crash-recovery rejoin: a recovered process lost its local notion of
  // which slots it already consumed, but the pin registers are the log's
  // persistent content.  Scans pins from `from` while they hold
  // decisions (capped at the materialized slot count) and returns the
  // first undecided slot.  The decided prefix is contiguous in any legal
  // execution — a process only proposes on slot s+1 after consuming
  // slot s — so the scan stops at the true frontier.  Re-advertises the
  // recovered watermark on the way out (monotone, so a stale `from`
  // never regresses it).
  proc<std::uint64_t> recover_watermark(Env& env, std::uint64_t from = 0) {
    std::uint64_t slot = from;
    const std::uint64_t limit = ready_.load(std::memory_order_acquire);
    while (slot < limit) {
      slot_state& st = state(slot);
      word pinned = co_await env.read(st.pin);
      if (pinned == kBot) break;
      st.decided.store(true, std::memory_order_release);
      ++slot;
    }
    advance_watermark(env.pid(), slot);
    co_return slot;
  }

  // Slots [0, reclaimed_prefix()) have dropped their consensus objects.
  std::uint64_t reclaimed_prefix() const {
    return reclaimed_upto_.load(std::memory_order_acquire);
  }

  std::uint64_t materialized_slots() const {
    return ready_.load(std::memory_order_acquire);
  }

  const stack_spec& spec() const { return spec_; }

  // Host-side snapshot; call only when no proposal is in flight.
  slot_log_stats stats() const {
    std::scoped_lock lk(mu_);
    slot_log_stats s;
    s.slots_materialized = ready_.load(std::memory_order_acquire);
    s.slots_reclaimed = reclaimed_upto_.load(std::memory_order_acquire);
    s.fast_path_hits = fast_hits_.load(std::memory_order_relaxed);
    s.decisions = decisions_.load(std::memory_order_relaxed);
    s.pool = pool_.stats();
    return s;
  }

 private:
  struct slot_state {
    std::unique_ptr<deciding_object<Env>> obj;
    reg_id pin = kInvalidReg;
    object_pool::lease_id lease = object_pool::kNoLease;
    std::atomic<bool> decided{false};
    std::atomic<bool> reclaimed{false};
  };

  // Chunked stable storage, mirroring the rt arena: a fixed table of
  // atomically-published chunk pointers, so a slot_state's address never
  // moves once published and readers past the published count never take
  // the mutex (and never race a growing container).
  static constexpr std::size_t kSlotChunk = 64;
  static constexpr std::size_t kMaxChunks = 4096;  // 256k slots per log
  struct chunk {
    std::array<slot_state, kSlotChunk> slots;
  };

  slot_state& slot_ref(std::uint64_t slot) {
    chunk* c = (*chunks_)[slot / kSlotChunk].load(std::memory_order_acquire);
    return c->slots[slot % kSlotChunk];
  }

  slot_state& state(std::uint64_t slot) {
    MODCON_CHECK_MSG(slot < kSlotChunk * kMaxChunks, "slot log exhausted");
    if (slot < ready_.load(std::memory_order_acquire)) return slot_ref(slot);
    std::scoped_lock lk(mu_);
    std::uint64_t count = ready_.load(std::memory_order_relaxed);
    while (count <= slot) {
      std::size_t ci = count / kSlotChunk;
      if ((*chunks_)[ci].load(std::memory_order_relaxed) == nullptr)
        (*chunks_)[ci].store(new chunk(), std::memory_order_release);
      slot_state& st = slot_ref(count);
      st.pin = mem_.alloc(kBot);
      st.lease = pool_.open();
      // The object keeps the lease's view for its whole life, so its
      // lazy allocations (the unbounded ladder grows mid-invoke) stay
      // charged to this slot's lease.
      st.obj = spec_.build<Env>(pool_.view(st.lease), n_);
      ++count;
      ready_.store(count, std::memory_order_release);
    }
    return slot_ref(slot);
  }

  void reclaim_locked(std::uint64_t epoch) {
    std::uint64_t upto = ready_.load(std::memory_order_relaxed);
    if (epoch < upto) upto = epoch;
    for (std::uint64_t s = reclaimed_upto_.load(std::memory_order_relaxed);
         s < upto; ++s) {
      slot_state& st = slot_ref(s);
      MODCON_CHECK_MSG(st.decided.load(std::memory_order_acquire),
                       "reclaiming undecided slot "
                           << s << " (a watermark advanced past a slot "
                              "whose decision was never consumed)");
      st.obj.reset();
      pool_.release(st.lease);
      st.lease = object_pool::kNoLease;
      st.reclaimed.store(true, std::memory_order_release);
      reclaimed_upto_.store(s + 1, std::memory_order_release);
    }
  }

  address_space& mem_;
  std::size_t n_;
  stack_spec spec_;
  object_pool pool_;  // internally synchronized
  mutable std::mutex mu_;
  std::unique_ptr<std::array<std::atomic<chunk*>, kMaxChunks>> chunks_ =
      std::make_unique<std::array<std::atomic<chunk*>, kMaxChunks>>();
  std::atomic<std::uint64_t> ready_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> watermarks_;
  std::atomic<std::uint64_t> reclaimed_upto_{0};
  std::atomic<std::uint64_t> fast_hits_{0};
  std::atomic<std::uint64_t> decisions_{0};
};

}  // namespace modcon::multi
