// Small integer helpers used throughout the work-bound arithmetic.
#pragma once

#include <bit>
#include <cstdint>

#include "util/assertx.h"

namespace modcon {

// floor(log2(x)) for x >= 1.
constexpr unsigned floor_log2(std::uint64_t x) {
  return 63u - static_cast<unsigned>(std::countl_zero(x | 1));
}

// ceil(log2(x)) for x >= 1; ceil_log2(1) == 0.
constexpr unsigned ceil_log2(std::uint64_t x) {
  unsigned f = floor_log2(x);
  return ((std::uint64_t{1} << f) == x) ? f : f + 1;
}

// The paper writes "lg n" for the base-2 logarithm; the individual-work
// bound of Theorem 7 uses ceil(lg n).
constexpr unsigned lg_ceil(std::uint64_t x) { return ceil_log2(x); }

constexpr bool is_power_of_two(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

// Saturating left shift: min(2^k, cap).
constexpr std::uint64_t pow2_saturating(unsigned k, std::uint64_t cap) {
  if (k >= 64) return cap;
  std::uint64_t v = std::uint64_t{1} << k;
  return v < cap ? v : cap;
}

}  // namespace modcon
