// Thread-local size-bucketed recycler for coroutine frames.
//
// Every shared-memory algorithm in modcon is a proc<T> coroutine, and the
// trial engines create them at enormous rates: one frame per spawned
// process per trial, plus one per child proc for every conciliator /
// ratifier round a composite object runs.  GCC almost never elides these
// frame allocations (HALO needs the frame lifetime to be provably nested,
// which the park-in-the-scheduler pattern defeats), so without pooling
// each round pays a general-purpose malloc/free round-trip — measurably
// the largest single cost in the sim step loop.
//
// The pool keeps per-thread free lists bucketed by size class (64-byte
// granularity up to 4 KiB; larger frames fall through to operator new).
// A frame's size class is recomputed in deallocate from the sized-delete
// byte count, so blocks always return to the bucket they came from.
//
// Thread safety: the free lists are thread_local, so allocate/deallocate
// never synchronize.  Freeing on a different thread than the allocator is
// allowed — the block joins the freeing thread's list (the rt runner
// destroys worker-thread frames on the joining thread).
#pragma once

#include <array>
#include <cstddef>
#include <new>
#include <vector>

namespace modcon {

class frame_pool {
 public:
  static void* allocate(std::size_t size) {
    if (size == 0) size = 1;
    if (size > kMaxPooledSize) return ::operator new(size);
    auto& list = buckets()[bucket_of(size)];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      return p;
    }
    return ::operator new(rounded(size));
  }

  static void deallocate(void* p, std::size_t size) {
    if (p == nullptr) return;
    if (size == 0) size = 1;
    if (size > kMaxPooledSize) {
      ::operator delete(p);
      return;
    }
    auto& list = buckets()[bucket_of(size)];
    if (list.size() < kMaxPerBucket) {
      list.push_back(p);
      return;
    }
    ::operator delete(p);
  }

 private:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxPooledSize = 4096;
  static constexpr std::size_t kBucketCount = kMaxPooledSize / kGranularity;
  // Deep enough for a composite object's live frames across every process
  // of a trial; beyond this, blocks go back to the allocator.
  static constexpr std::size_t kMaxPerBucket = 256;

  static std::size_t bucket_of(std::size_t size) {
    return (size - 1) / kGranularity;
  }
  static std::size_t rounded(std::size_t size) {
    return (bucket_of(size) + 1) * kGranularity;
  }

  struct bucket_array {
    std::array<std::vector<void*>, kBucketCount> lists;
    ~bucket_array() {
      for (auto& list : lists)
        for (void* p : list) ::operator delete(p);
    }
  };

  static std::array<std::vector<void*>, kBucketCount>& buckets() {
    thread_local bucket_array b;
    return b.lists;
  }
};

}  // namespace modcon
