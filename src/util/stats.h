// Statistics for the experiment harness: streaming moments, exact
// quantiles over retained samples, and Wilson score intervals for the
// probabilistic-agreement measurements (Theorem 7's δ bound is checked
// against the lower end of a Wilson interval, not a point estimate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace modcon {

// Welford's streaming mean/variance plus min/max.
class running_stats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  // Half-width of a normal-approximation 95% confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Retains all samples; supports exact order statistics.
class sample_set {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  // q in [0,1]; nearest-rank quantile.  Empty set returns 0.
  double quantile(double q) const;
  double max() const { return quantile(1.0); }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

// Wilson score interval for a binomial proportion at ~95% confidence
// (z = 1.96).  Returns [lo, hi].
struct proportion_ci {
  double estimate;
  double lo;
  double hi;
};
proportion_ci wilson_interval(std::size_t successes, std::size_t trials,
                              double z = 1.96);

}  // namespace modcon
