#include "util/binomial.h"

#include <limits>

#include "util/assertx.h"

namespace modcon {

namespace {
constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();
}  // namespace

std::uint64_t binomial(std::uint64_t n, std::uint64_t r) {
  if (r > n) return 0;
  if (r > n - r) r = n - r;
  unsigned __int128 acc = 1;
  for (std::uint64_t i = 1; i <= r; ++i) {
    acc = acc * (n - r + i) / i;  // exact: product of i consecutive ints
    if (acc > kSat) return kSat;
  }
  return static_cast<std::uint64_t>(acc);
}

unsigned min_pool_for(std::uint64_t m) {
  MODCON_CHECK_MSG(m >= 1, "need at least one value");
  for (unsigned k = 1;; ++k) {
    if (binomial(k, k / 2) >= m) return k;
  }
}

std::vector<std::uint32_t> unrank_subset(unsigned pool, unsigned size,
                                         std::uint64_t rank) {
  MODCON_CHECK_MSG(rank < binomial(pool, size), "rank out of range");
  std::vector<std::uint32_t> out;
  out.reserve(size);
  std::uint32_t next = 0;
  unsigned remaining = size;
  while (remaining > 0) {
    // Number of subsets that start with `next` among those still possible.
    std::uint64_t with_next = binomial(pool - next - 1, remaining - 1);
    if (rank < with_next) {
      out.push_back(next);
      --remaining;
    } else {
      rank -= with_next;
    }
    ++next;
    MODCON_CHECK_MSG(next <= pool, "unrank ran past the pool");
  }
  return out;
}

std::uint64_t rank_subset(unsigned pool,
                          const std::vector<std::uint32_t>& subset) {
  std::uint64_t rank = 0;
  std::uint32_t prev = 0;
  unsigned remaining = static_cast<unsigned>(subset.size());
  for (std::uint32_t e : subset) {
    MODCON_CHECK_MSG(e < pool, "element outside the pool");
    for (std::uint32_t skipped = prev; skipped < e; ++skipped)
      rank += binomial(pool - skipped - 1, remaining - 1);
    prev = e + 1;
    --remaining;
  }
  return rank;
}

}  // namespace modcon
