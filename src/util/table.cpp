#include "util/table.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/assertx.h"

namespace modcon {

table::table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MODCON_CHECK(!headers_.empty());
}

table& table::row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

table& table::cell(const std::string& v) {
  MODCON_CHECK_MSG(!cells_.empty(), "cell() before row()");
  MODCON_CHECK_MSG(cells_.back().size() < headers_.size(),
                   "too many cells in row");
  cells_.back().push_back(v);
  return *this;
}

table& table::cell(const char* v) { return cell(std::string(v)); }

table& table::cell(std::uint64_t v) { return cell(std::to_string(v)); }
table& table::cell(std::int64_t v) { return cell(std::to_string(v)); }
table& table::cell(int v) { return cell(std::to_string(v)); }
table& table::cell(unsigned v) { return cell(std::to_string(v)); }

table& table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return cell(os.str());
}

void table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& r : cells_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  os << "\n== " << title << " ==\n";
  // Short rows pad with this instead of a per-cell temporary: a ternary
  // mixing an lvalue with a prvalue copies the lvalue arm.
  static const std::string empty;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : empty;
      os << "  " << std::setw(static_cast<int>(width[c])) << v;
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& r : cells_) emit_row(r);
}

void table::write_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ",";
      os << r[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  for (const auto& r : cells_) emit_row(r);
}

void table::emit(const std::string& title, const std::string& slug) const {
  print(std::cout, title);
  std::cout.flush();
  if (const char* dir = std::getenv("MODCON_CSV_DIR")) {
    std::ofstream f(std::string(dir) + "/" + slug + ".csv");
    if (f) write_csv(f);
  }
}

}  // namespace modcon
