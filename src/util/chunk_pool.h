// Thread-local free lists of fixed-size chunks.
//
// The trial engines allocate the same transient buffers (trace columns,
// rt event blocks) once per trial, millions of trials per experiment.  A
// general-purpose allocator round-trip per buffer per trial is pure
// overhead: the sizes never vary.  `chunk_pool<C>` keeps a small
// per-thread free list of C instances, so each worker thread amortizes
// its chunk allocations across every trial it ever runs — a per-trial
// arena in effect, with recycling instead of per-trial mmap churn.
//
// Thread safety: acquire/release touch only the calling thread's list
// (thread_local), so there is no synchronization and no false sharing.
// Releasing on a different thread than the acquirer is allowed — the
// chunk simply joins that thread's list.  Chunks are returned as raw
// storage; callers must not assume contents are zeroed.
#pragma once

#include <memory>
#include <vector>

namespace modcon {

template <typename Chunk>
class chunk_pool {
 public:
  static std::unique_ptr<Chunk> acquire() {
    auto& list = free_list();
    if (!list.empty()) {
      std::unique_ptr<Chunk> c = std::move(list.back());
      list.pop_back();
      return c;
    }
    return std::make_unique<Chunk>();
  }

  static void release(std::unique_ptr<Chunk> c) {
    if (c == nullptr) return;
    auto& list = free_list();
    if (list.size() < kMaxPooledPerThread)
      list.push_back(std::move(c));
    // else: drop — the pool bounds idle memory, not peak usage.
  }

 private:
  // Enough for the deepest realistic per-thread working set (a handful of
  // live traces per trial); beyond this, chunks go back to the allocator.
  static constexpr std::size_t kMaxPooledPerThread = 64;

  static std::vector<std::unique_ptr<Chunk>>& free_list() {
    thread_local std::vector<std::unique_ptr<Chunk>> list;
    return list;
  }
};

}  // namespace modcon
