// Binomial coefficients and combinatorial (un)ranking.
//
// The Bollobás-optimal ratifier of §6.2 encodes each value v < m as the
// v-th ⌊k/2⌋-element subset of a pool of k registers, where k is the
// smallest integer with C(k, ⌊k/2⌋) >= m.  These helpers provide the
// saturating coefficients, the minimal pool size, and the standard
// combinadic unranking that realizes the encoding.
#pragma once

#include <cstdint>
#include <vector>

namespace modcon {

// C(n, r), saturating at UINT64_MAX on overflow.
std::uint64_t binomial(std::uint64_t n, std::uint64_t r);

// Smallest k such that C(k, floor(k/2)) >= m (m >= 1).  This is the
// register-pool size of the Bollobás scheme: k = lg m + Theta(log log m).
unsigned min_pool_for(std::uint64_t m);

// Unranks `rank` (0-based, rank < C(pool, size)) into the rank-th
// `size`-element subset of {0, ..., pool-1} in lexicographic order.
std::vector<std::uint32_t> unrank_subset(unsigned pool, unsigned size,
                                         std::uint64_t rank);

// Inverse of unrank_subset; `subset` must be strictly increasing.
std::uint64_t rank_subset(unsigned pool,
                          const std::vector<std::uint32_t>& subset);

}  // namespace modcon
