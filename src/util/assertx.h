// Checked runtime assertions that stay on in release builds.
//
// The simulator and the consensus objects use these to enforce model
// invariants (e.g. "a register id must have been allocated before use").
// Violations indicate a programming error, never an expected runtime
// condition, so they throw `modcon::invariant_error` which the test harness
// treats as a hard failure.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace modcon {

class invariant_error : public std::logic_error {
 public:
  explicit invariant_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "MODCON_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}

}  // namespace detail
}  // namespace modcon

#define MODCON_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::modcon::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define MODCON_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::modcon::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                     os_.str());                        \
    }                                                                   \
  } while (0)
