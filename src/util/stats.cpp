#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/assertx.h"

namespace modcon {

void running_stats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double running_stats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double running_stats::stddev() const { return std::sqrt(variance()); }

double running_stats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void sample_set::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double sample_set::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double sample_set::quantile(double q) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank with ceil(q * n), 1-indexed.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs_.size())));
  if (rank == 0) rank = 1;
  return xs_[rank - 1];
}

proportion_ci wilson_interval(std::size_t successes, std::size_t trials,
                              double z) {
  MODCON_CHECK_MSG(successes <= trials, "more successes than trials");
  if (trials == 0) return {0.0, 0.0, 1.0};
  double n = static_cast<double>(trials);
  double p = static_cast<double>(successes) / n;
  double z2 = z * z;
  double denom = 1.0 + z2 / n;
  double center = (p + z2 / (2.0 * n)) / denom;
  double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {p, std::max(0.0, center - half), std::min(1.0, center + half)};
}

}  // namespace modcon
