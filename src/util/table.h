// Aligned-column table printing for the experiment benches.
//
// Every bench binary prints its results as one of these tables (the
// "rows/series the paper reports"), and optionally mirrors them as CSV to
// a file given by the MODCON_CSV_DIR environment variable so results can
// be post-processed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace modcon {

class table {
 public:
  explicit table(std::vector<std::string> headers);

  // Begin a new row; subsequent cell() calls fill it left to right.
  table& row();
  table& cell(const std::string& v);
  table& cell(const char* v);
  table& cell(std::uint64_t v);
  table& cell(std::int64_t v);
  table& cell(int v);
  table& cell(unsigned v);
  table& cell(double v, int precision = 3);

  std::size_t rows() const { return cells_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return cells_; }

  // Renders with aligned columns, a header rule, and `title` above.
  void print(std::ostream& os, const std::string& title) const;

  // Writes RFC-4180-ish CSV (no quoting needed for our numeric content).
  void write_csv(std::ostream& os) const;

  // Convenience: print to stdout and, if MODCON_CSV_DIR is set, also write
  // <dir>/<slug>.csv.
  void emit(const std::string& title, const std::string& slug) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace modcon
