// Deterministic, splittable pseudo-random number generation.
//
// Every source of randomness in modcon — each process's local coin, the
// adversary's tie-breaking, workload generation — draws from its own
// `rng` stream derived from a single experiment seed via `split`.  This
// makes every execution exactly replayable from (seed, adversary, n, m),
// and it keeps the processes' local coins independent of the adversary's
// randomness, as the model requires (local coins are "not predictable by
// the adversary but also not visible to other processes", §2).
//
// The generator is xoshiro256** seeded through splitmix64, the combination
// recommended by the xoshiro authors.  Bounded draws use Lemire's unbiased
// rejection method so Bernoulli(p) coins with rational p are exact.
#pragma once

#include <array>
#include <cstdint>

namespace modcon {

// splitmix64 step; used for seeding and for stream splitting.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class rng {
 public:
  using result_type = std::uint64_t;

  explicit rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  // Derives an independent child stream.  Children with distinct tags (or
  // obtained from successive calls with the same tag) do not collide with
  // the parent in practice: the child is reseeded through splitmix64 from
  // a fresh 64-bit draw mixed with the tag.
  rng split(std::uint64_t tag) {
    std::uint64_t mix = next() ^ (tag * 0x9e3779b97f4a7c15ULL);
    return rng(mix);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  // Unbiased draw in [0, bound); bound must be nonzero.  Lemire's method.
  std::uint64_t below(std::uint64_t bound) {
    std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<unsigned __int128>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Exact Bernoulli with rational probability num/den (num <= den, den > 0).
  bool bernoulli(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

  // Fair coin.
  bool flip() { return (next() >> 63) != 0; }

  // Uniform double in [0, 1); used only by workload generators (never by
  // the algorithms themselves, which flip exact rational coins).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

// A block-buffered view over an rng stream for per-step consumers (the
// random scheduler draws once per simulated step).  Refilling a small
// block amortizes the generator's state recurrence — the compiler can
// pipeline the 64 independent refill iterations where the one-at-a-time
// path serializes on the state — and the hot draw is a buffered load.
//
// Sequence-exact by construction: `next()` yields the underlying raw
// draws in order, and `below()` applies the same Lemire mapping (with the
// same rejection rule) to those draws as rng::below, so replacing an rng
// with an rng_block over it never changes a drawn value.
class rng_block {
 public:
  rng_block() = default;
  explicit rng_block(rng src) : src_(src) {}

  // Restarts the buffer over a fresh stream (pending buffered draws are
  // discarded).
  void reseed(rng src) {
    src_ = src;
    pos_ = kBlock;
  }

  std::uint64_t next() {
    if (pos_ == kBlock) refill();
    return buf_[pos_++];
  }

  // Unbiased draw in [0, bound); identical to rng::below on the same
  // underlying stream.
  std::uint64_t below(std::uint64_t bound) {
    std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<unsigned __int128>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static constexpr std::size_t kBlock = 64;

  void refill() {
    for (auto& w : buf_) w = src_.next();
    pos_ = 0;
  }

  rng src_{};
  std::array<std::uint64_t, kBlock> buf_{};
  std::size_t pos_ = kBlock;
};

}  // namespace modcon
