// Exact rational probabilities for probabilistic writes.
//
// The probabilistic-write model attaches a success probability to a write
// operation.  The algorithms in the paper only ever use rationals of the
// form min(2^k / n, 1) or c / n, so we represent probabilities exactly as
// num/den pairs and flip them with an unbiased bounded draw — no floating
// point enters the semantics of an execution.
#pragma once

#include <cstdint>

#include "util/assertx.h"
#include "util/rng.h"

namespace modcon {

class prob {
 public:
  // Probability num/den, clamped to at most 1.  den must be nonzero.
  constexpr prob(std::uint64_t num, std::uint64_t den)
      : num_(num < den ? num : den), den_(den) {
    if (den == 0) num_ = den_ = 1;  // defensively treat 0/0 as certainty
  }

  static constexpr prob always() { return prob(1, 1); }
  static constexpr prob never() { return prob(0, 1); }

  // min(2^k / n, 1): the impatience schedule of Theorem 7.
  static constexpr prob pow2_over(unsigned k, std::uint64_t n) {
    if (k >= 64) return always();
    return prob(std::uint64_t{1} << k, n);
  }

  constexpr std::uint64_t num() const { return num_; }
  constexpr std::uint64_t den() const { return den_; }
  constexpr bool certain() const { return num_ == den_; }
  constexpr bool impossible() const { return num_ == 0; }
  double value() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  bool sample(rng& r) const {
    if (certain()) return true;
    if (impossible()) return false;
    return r.bernoulli(num_, den_);
  }

  friend constexpr bool operator==(const prob& a, const prob& b) {
    // Compare as exact rationals (cross-multiplied in 128 bits).
    return static_cast<unsigned __int128>(a.num_) * b.den_ ==
           static_cast<unsigned __int128>(b.num_) * a.den_;
  }

 private:
  std::uint64_t num_;
  std::uint64_t den_;
};

}  // namespace modcon
