// Shared-memory model types common to both execution backends.
//
// The model (paper §2): n asynchronous processes communicate through
// multiwriter atomic registers; an execution is a sequence of operations
// chosen by an adversary.  Registers hold a single machine word; consensus
// values and the paper's ⊥ are encoded into words by the algorithms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace modcon {

using word = std::uint64_t;
using reg_id = std::uint32_t;
using process_id = std::uint32_t;

// The null value ⊥.  Consensus values are required to be < kBot.
inline constexpr word kBot = std::numeric_limits<word>::max();

inline constexpr reg_id kInvalidReg = std::numeric_limits<reg_id>::max();
inline constexpr process_id kInvalidProcess =
    std::numeric_limits<process_id>::max();

// Operation kinds as the adversary can possibly see them.  A probabilistic
// write is reported as `write`: in the location-oblivious justification of
// §2.1 it *is* an ordinary write whose target is either the real location
// or a dummy, so no in-model adversary can tell the two apart.  `collect`
// exists only in the cheap-collect model extension of §6.2 (choice 4).
enum class op_kind : std::uint8_t { read, write, collect };

const char* to_string(op_kind k);

inline const char* to_string(op_kind k) {
  switch (k) {
    case op_kind::read: return "read";
    case op_kind::write: return "write";
    case op_kind::collect: return "collect";
  }
  return "?";
}

}  // namespace modcon
