// Register allocation interface.
//
// Deciding objects own atomic registers.  They allocate them from an
// address space at construction (and, for the lazily-extended unbounded
// construction of §4.1, during execution).  Both backends implement this:
// the simulator's register file and the real-thread arena guarantee that
// already-allocated registers keep their identity and address across
// later allocations.
#pragma once

#include <cstdint>

#include "exec/types.h"
#include "util/assertx.h"

// Lifetime enforcement: every builder comment in the codebase says "the
// address_space must outlive the object".  Under debug and
// address-sanitized builds that contract is asserted, not assumed: the
// space carries a liveness tag, cleared on destruction, that backends
// check on allocation and register access.  A consensus object whose
// world died first then fails with a message instead of scribbling on a
// freed register file (under asan the tag load itself also traps, which
// pins the report to the dangling access).  Release builds compile the
// tag out entirely — the hot paths stay branch-free.
#if !defined(NDEBUG)
#define MODCON_LIFETIME_CHECKS 1
#elif defined(__SANITIZE_ADDRESS__)
#define MODCON_LIFETIME_CHECKS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MODCON_LIFETIME_CHECKS 1
#else
#define MODCON_LIFETIME_CHECKS 0
#endif
#else
#define MODCON_LIFETIME_CHECKS 0
#endif

namespace modcon {

// Durability of an allocation under the crash-*recovery* fault model
// (Delporte-Gallet et al. separate it from crash-restart): persistent
// registers model non-volatile memory and survive a recovery event;
// volatile registers are reinitialized by it.  Everything is persistent
// by default, which reproduces the crash-restart world exactly.
enum class durability : std::uint8_t { persistent, volatile_mem };

class address_space {
 public:
  virtual ~address_space() {
#if MODCON_LIFETIME_CHECKS
    live_tag_ = ~kLiveTag;
#endif
  }

  // Allocates one multiwriter register with the given initial value.
  virtual reg_id alloc(word init) = 0;

  // Allocates `count` consecutively-numbered registers, all initialized to
  // `init`; returns the first id.  Consecutive numbering is what makes a
  // cheap `collect` over an announce array expressible.
  virtual reg_id alloc_block(std::uint32_t count, word init) = 0;

  // Durability scope for subsequent allocations: builders bracket the
  // construction of an object whose registers may be lost on recovery
  // with a durability_scope.  Backends read alloc_durability() inside
  // alloc/alloc_block to tag each register.  Not synchronized — callers
  // that allocate lazily mid-run already serialize object construction
  // (the unbounded ladder's part lock, the slot log's mutex).
  void set_alloc_durability(durability d) { durability_ = d; }
  durability alloc_durability() const { return durability_; }

  // Number of registers allocated so far (used by the space-complexity
  // experiments, E4).
  virtual std::uint32_t allocated() const = 0;

  // Re-initializes an already-allocated register to `init`, as if it had
  // just been allocated with that value — the recycling hook behind the
  // multi-shot object pool (multi/object_pool.h).  Returns false when the
  // backend does not support recycling (the default), in which case the
  // caller must fall back to a fresh alloc.  Backends that do support it
  // must keep their audit story intact: the simulator records the reset
  // as an applied write so trace replay stays sound.
  //
  // Only legal once no process can have a pending operation on `r` (the
  // pool guarantees this via its reclamation epoch).
  virtual bool reinit(reg_id r, word init) {
    (void)r;
    (void)init;
    return false;
  }

  // Asserts (debug/asan builds only) that this space is still alive —
  // called by backends on allocation and register access to enforce the
  // "space outlives the object" contract.
  void assert_live() const {
#if MODCON_LIFETIME_CHECKS
    MODCON_CHECK_MSG(live_tag_ == kLiveTag,
                     "address_space used after destruction (a deciding "
                     "object outlived the world/arena it allocates from)");
#endif
  }

 private:
  durability durability_ = durability::persistent;
#if MODCON_LIFETIME_CHECKS
  static constexpr std::uint32_t kLiveTag = 0xa11c0de5u;
  std::uint32_t live_tag_ = kLiveTag;
#endif
};

// RAII durability bracket: allocations made while the scope is alive get
// the given durability; the previous scope is restored on exit.
class durability_scope {
 public:
  durability_scope(address_space& mem, durability d)
      : mem_(mem), prev_(mem.alloc_durability()) {
    mem_.set_alloc_durability(d);
  }
  ~durability_scope() { mem_.set_alloc_durability(prev_); }
  durability_scope(const durability_scope&) = delete;
  durability_scope& operator=(const durability_scope&) = delete;

 private:
  address_space& mem_;
  durability prev_;
};

}  // namespace modcon
