// Register allocation interface.
//
// Deciding objects own atomic registers.  They allocate them from an
// address space at construction (and, for the lazily-extended unbounded
// construction of §4.1, during execution).  Both backends implement this:
// the simulator's register file and the real-thread arena guarantee that
// already-allocated registers keep their identity and address across
// later allocations.
#pragma once

#include <cstdint>

#include "exec/types.h"

namespace modcon {

class address_space {
 public:
  virtual ~address_space() = default;

  // Allocates one multiwriter register with the given initial value.
  virtual reg_id alloc(word init) = 0;

  // Allocates `count` consecutively-numbered registers, all initialized to
  // `init`; returns the first id.  Consecutive numbering is what makes a
  // cheap `collect` over an announce array expressible.
  virtual reg_id alloc_block(std::uint32_t count, word init) = 0;

  // Number of registers allocated so far (used by the space-complexity
  // experiments, E4).
  virtual std::uint32_t allocated() const = 0;
};

}  // namespace modcon
