// Register allocation interface.
//
// Deciding objects own atomic registers.  They allocate them from an
// address space at construction (and, for the lazily-extended unbounded
// construction of §4.1, during execution).  Both backends implement this:
// the simulator's register file and the real-thread arena guarantee that
// already-allocated registers keep their identity and address across
// later allocations.
#pragma once

#include <cstdint>

#include "exec/types.h"
#include "util/assertx.h"

// Lifetime enforcement: every builder comment in the codebase says "the
// address_space must outlive the object".  Under debug and
// address-sanitized builds that contract is asserted, not assumed: the
// space carries a liveness tag, cleared on destruction, that backends
// check on allocation and register access.  A consensus object whose
// world died first then fails with a message instead of scribbling on a
// freed register file (under asan the tag load itself also traps, which
// pins the report to the dangling access).  Release builds compile the
// tag out entirely — the hot paths stay branch-free.
#if !defined(NDEBUG)
#define MODCON_LIFETIME_CHECKS 1
#elif defined(__SANITIZE_ADDRESS__)
#define MODCON_LIFETIME_CHECKS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MODCON_LIFETIME_CHECKS 1
#else
#define MODCON_LIFETIME_CHECKS 0
#endif
#else
#define MODCON_LIFETIME_CHECKS 0
#endif

namespace modcon {

class address_space {
 public:
  virtual ~address_space() {
#if MODCON_LIFETIME_CHECKS
    live_tag_ = ~kLiveTag;
#endif
  }

  // Allocates one multiwriter register with the given initial value.
  virtual reg_id alloc(word init) = 0;

  // Allocates `count` consecutively-numbered registers, all initialized to
  // `init`; returns the first id.  Consecutive numbering is what makes a
  // cheap `collect` over an announce array expressible.
  virtual reg_id alloc_block(std::uint32_t count, word init) = 0;

  // Number of registers allocated so far (used by the space-complexity
  // experiments, E4).
  virtual std::uint32_t allocated() const = 0;

  // Re-initializes an already-allocated register to `init`, as if it had
  // just been allocated with that value — the recycling hook behind the
  // multi-shot object pool (multi/object_pool.h).  Returns false when the
  // backend does not support recycling (the default), in which case the
  // caller must fall back to a fresh alloc.  Backends that do support it
  // must keep their audit story intact: the simulator records the reset
  // as an applied write so trace replay stays sound.
  //
  // Only legal once no process can have a pending operation on `r` (the
  // pool guarantees this via its reclamation epoch).
  virtual bool reinit(reg_id r, word init) {
    (void)r;
    (void)init;
    return false;
  }

  // Asserts (debug/asan builds only) that this space is still alive —
  // called by backends on allocation and register access to enforce the
  // "space outlives the object" contract.
  void assert_live() const {
#if MODCON_LIFETIME_CHECKS
    MODCON_CHECK_MSG(live_tag_ == kLiveTag,
                     "address_space used after destruction (a deciding "
                     "object outlived the world/arena it allocates from)");
#endif
  }

#if MODCON_LIFETIME_CHECKS
 private:
  static constexpr std::uint32_t kLiveTag = 0xa11c0de5u;
  std::uint32_t live_tag_ = kLiveTag;
#endif
};

}  // namespace modcon
