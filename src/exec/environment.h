// The Environment concept: what a process can do.
//
// Algorithms are coroutine templates over an Environment E.  Shared-memory
// operations are awaitables; local coin flips and identity queries are
// plain calls (local computation is free in the paper's cost model, §2).
//
// Required operations:
//   co_await e.read(r)                -> word
//   co_await e.write(r, v)            -> void      (an ordinary write)
//   co_await e.prob_write(r, v, p)    -> void      (takes effect with
//       probability p; costs one operation either way, and the process
//       does NOT learn whether it succeeded — footnote to Theorem 7)
//   co_await e.collect(first, count)  -> std::vector<word>   (cheap-collect
//       model extension only; one operation in the sim backend)
//   e.flip(bound)   uniform draw in [0, bound) from the process's local coin
//   e.coin()        fair local coin
//   e.pid(), e.n()  identity and system size
#pragma once

#include <concepts>
#include <cstdint>

#include "exec/types.h"
#include "util/prob.h"

namespace modcon {

template <typename E>
concept Environment = requires(E& e, reg_id r, word v, prob p,
                               std::uint64_t bound, std::uint32_t count) {
  e.read(r);
  e.write(r, v);
  e.prob_write(r, v, p);
  e.prob_write_detect(r, v, p);
  e.collect(r, count);
  { e.flip(bound) } -> std::convertible_to<std::uint64_t>;
  { e.coin() } -> std::convertible_to<bool>;
  { e.pid() } -> std::convertible_to<process_id>;
  { e.n() } -> std::convertible_to<std::size_t>;
};

}  // namespace modcon
