// `proc<T>` — the coroutine type in which all shared-memory algorithms in
// modcon are written.
//
// A process's program is a coroutine that performs shared-memory
// operations by `co_await`ing awaitables produced by an Environment (see
// exec/environment.h).  Under the simulator each such await parks the
// process until the adversary schedules its pending operation — exactly
// the one-operation-per-step interleaving semantics of the paper's model.
// Under the real-thread backend the awaitables complete immediately
// against std::atomic registers, so the same coroutine runs straight
// through on its own thread.
//
// `proc` supports nesting (`co_await child_proc`) with symmetric transfer,
// so composite objects (Procedure Composition, §3.2) are ordinary
// coroutines invoking their parts' coroutines.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "util/assertx.h"
#include "util/frame_pool.h"

namespace modcon {

template <typename T>
class [[nodiscard]] proc {
  static_assert(!std::is_void_v<T>, "proc<void> is not used in modcon");

 public:
  struct promise_type;
  using handle_type = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::coroutine_handle<> continuation;
    std::optional<T> result;
    std::exception_ptr error;

    // Frames come from the thread-local recycler (util/frame_pool.h): the
    // engines create one frame per process per trial plus one per child
    // proc per round, and GCC cannot elide these allocations.
    static void* operator new(std::size_t size) {
      return frame_pool::allocate(size);
    }
    static void operator delete(void* p, std::size_t size) {
      frame_pool::deallocate(p, size);
    }

    proc get_return_object() {
      return proc(handle_type::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct final_awaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(handle_type h) noexcept {
        // Resume whoever awaited us; a top-level proc returns control to
        // its driver (the simulator world or the inline runner).
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    final_awaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { result = std::move(v); }
    void unhandled_exception() { error = std::current_exception(); }
  };

  proc() = default;
  explicit proc(handle_type h) : h_(h) {}
  proc(proc&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  proc& operator=(proc&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  proc(const proc&) = delete;
  proc& operator=(const proc&) = delete;
  ~proc() { destroy(); }

  bool valid() const { return h_ != nullptr; }

  // --- awaiting a child proc from a parent coroutine ---
  struct child_awaiter {
    handle_type h;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> parent) noexcept {
      h.promise().continuation = parent;
      return h;  // symmetric transfer: start the child now
    }
    T await_resume() {
      auto& p = h.promise();
      if (p.error) std::rethrow_exception(p.error);
      MODCON_CHECK_MSG(p.result.has_value(), "proc finished without a value");
      return std::move(*p.result);
    }
  };
  child_awaiter operator co_await() && noexcept { return child_awaiter{h_}; }

  // --- driver interface ---
  // Resume from the initial suspend point (or from wherever the process's
  // innermost awaitable left off — drivers resume inner handles directly).
  void start() {
    MODCON_CHECK(h_ && !h_.done());
    h_.resume();
  }
  bool done() const { return h_ && h_.done(); }
  bool failed() const { return done() && h_.promise().error != nullptr; }

  // Extracts the result after completion, rethrowing any stored exception.
  T take_result() {
    MODCON_CHECK_MSG(done(), "take_result before completion");
    auto& p = h_.promise();
    if (p.error) std::rethrow_exception(p.error);
    MODCON_CHECK_MSG(p.result.has_value(), "proc finished without a value");
    return std::move(*p.result);
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  handle_type h_ = nullptr;
};

// Runs a proc whose awaitables never actually suspend (the real-thread
// backend) to completion on the calling thread.
template <typename T>
T run_inline(proc<T> p) {
  p.start();
  MODCON_CHECK_MSG(p.done(),
                   "run_inline used with a suspending environment");
  return p.take_result();
}

}  // namespace modcon
