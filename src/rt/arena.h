// Real-thread register arena: stable-address std::atomic<word> storage.
//
// The unbounded construction allocates new objects (and registers) while
// other threads are mid-protocol, so register addresses must never move.
// Storage is chunked: a fixed table of atomically-published chunk
// pointers, each chunk a fixed array of atomic words.  Allocation takes a
// mutex; access is lock-free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/address_space.h"
#include "exec/types.h"

namespace modcon::rt {

class arena final : public address_space {
 public:
  arena() = default;
  ~arena() override;

  arena(const arena&) = delete;
  arena& operator=(const arena&) = delete;

  reg_id alloc(word init) override;
  reg_id alloc_block(std::uint32_t count, word init) override;
  std::uint32_t allocated() const override {
    return count_.load(std::memory_order_acquire);
  }

  // Atomic register access; r must have been allocated.
  std::atomic<word>& at(reg_id r);
  const std::atomic<word>& at(reg_id r) const;

  static constexpr std::uint32_t kChunkSize = 4096;
  static constexpr std::uint32_t kMaxChunks = 4096;  // 16M registers

 private:
  using chunk = std::array<std::atomic<word>, kChunkSize>;

  std::mutex mu_;
  std::array<std::atomic<chunk*>, kMaxChunks> chunks_{};
  std::atomic<std::uint32_t> count_{0};
};

}  // namespace modcon::rt
