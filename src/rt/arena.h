// Real-thread register arena: stable-address std::atomic<word> storage.
//
// The unbounded construction allocates new objects (and registers) while
// other threads are mid-protocol, so register addresses must never move.
// Storage is chunked: a fixed table of atomically-published chunk
// pointers, each chunk a fixed array of atomic words.  Allocation takes a
// mutex; access is lock-free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/address_space.h"
#include "exec/types.h"

namespace modcon::rt {

class arena final : public address_space {
 public:
  arena() = default;
  ~arena() override;

  arena(const arena&) = delete;
  arena& operator=(const arena&) = delete;

  reg_id alloc(word init) override;
  reg_id alloc_block(std::uint32_t count, word init) override;
  std::uint32_t allocated() const override {
    return count_.load(std::memory_order_acquire);
  }

  // Recycling (multi/object_pool.h): the pool guarantees no thread still
  // operates on `r` (its slot's reclamation epoch has passed), so a plain
  // release store re-initializes it for the next tenant.
  bool reinit(reg_id r, word init) override {
    at(r).store(init, std::memory_order_release);
    return true;
  }

  // Atomic register access; r must have been allocated.
  std::atomic<word>& at(reg_id r);
  const std::atomic<word>& at(reg_id r) const;

  // Initial value of every register allocated so far, indexed by reg id.
  // The unbounded construction allocates mid-run, so a pre-run snapshot
  // of register contents misses those; the trace auditor needs the init
  // word each alloc actually used (a lazily-built ratifier board starts
  // at 0, not kBot).
  std::vector<word> initial_values() const;

  // Registers allocated under durability::volatile_mem, with their
  // initial values — the partition a crash-recovery wipe resets.
  std::vector<std::pair<reg_id, word>> volatile_partition() const;

  // Crash-recovery: release-stores every volatile register back to its
  // initial value.  Concurrency-safe (registers are atomics); racing
  // protocol writes simply land before or after the wipe.
  void wipe_volatile();

  static constexpr std::uint32_t kChunkSize = 4096;
  static constexpr std::uint32_t kMaxChunks = 4096;  // 16M registers

 private:
  using chunk = std::array<std::atomic<word>, kChunkSize>;

  mutable std::mutex mu_;
  std::array<std::atomic<chunk*>, kMaxChunks> chunks_{};
  std::atomic<std::uint32_t> count_{0};
  std::vector<word> initials_;                         // guarded by mu_
  std::vector<std::pair<reg_id, word>> volatile_regs_;  // guarded by mu_
};

}  // namespace modcon::rt
