// Drives n coroutine programs on n real threads, with optional
// cooperative fault injection and a hung-run watchdog (see rt/env.h for
// the fault model).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "exec/proc.h"
#include "rt/env.h"
#include "util/assertx.h"
#include "util/rng.h"

namespace modcon::rt {

// Per-process terminal state of a run.  `running` survives only in a
// timed-out run: the watchdog aborted before the thread reached a fault
// point (it is unwound as timed_out at its next one, but op aggregation
// happens after join, so by then every thread has some terminal state —
// `running` is kept for threads whose programs were reclaimed via the
// abort flag without a dedicated outcome).
enum class rt_outcome : std::uint8_t { running, halted, crashed, timed_out };

struct rt_result {
  std::vector<word> outputs;  // per process; meaningful iff outcome halted
  std::vector<std::uint64_t> op_counts;
  std::uint64_t total_ops = 0;
  std::uint64_t max_individual_ops = 0;
  // Fault accounting (defaults when run without faults/watchdog).
  bool timed_out = false;  // the watchdog aborted a hung run
  std::vector<rt_outcome> outcomes;     // per process
  std::vector<std::uint64_t> restarts;  // per process (recoveries included)
  std::vector<std::uint64_t> recoveries;  // per process
  std::uint64_t races = 0;  // racing reads that saw two distinct values
};

struct rt_run_options {
  std::uint32_t chaos = 0;  // see rt_env
  std::vector<rt_fault_spec> faults;
  // Read-racing approximation of weakened register semantics (rt_env).
  sim::register_semantics semantics = sim::register_semantics::atomic;
  std::uint32_t race_denominator = 4;
  // Wall-clock budget for the whole run; 0 disables the watchdog.  On
  // expiry the run is aborted via the fault board (threads unwind at
  // their next fault point; stalled threads poll the same flag) and the
  // result is marked timed_out instead of wedging the caller.
  std::uint32_t watchdog_ms = 0;
  // When non-null, every register operation is recorded with its global
  // sequence interval (see rt_trace_recorder in rt/env.h); must outlive
  // the run.  Call recorder->merged() only after run_threads_opts returns.
  rt_trace_recorder* recorder = nullptr;
  // When non-null, algorithm-level spans and counters are recorded (see
  // obs/obs.h); must outlive the run.  Read it only after
  // run_threads_opts returns (per-pid buffers are published by the
  // jthread joins).
  obs::trial_recorder* obs = nullptr;
};

// Spawns one thread per process; each builds its program via
// `make_program(env)` and runs it to completion or until an injected
// fault stops it.  A restart fault re-runs make_program from scratch on
// the same env (local state lost, registers and op counter persist).
// Any non-fault process exception is rethrown on the caller's thread
// after all threads join.
inline rt_result run_threads_opts(
    arena& mem, std::size_t n, std::uint64_t seed,
    const std::function<proc<word>(rt_env&)>& make_program,
    const rt_run_options& opts = {}) {
  MODCON_CHECK(n >= 1);
  std::unique_ptr<rt_fault_board> board;
  if (!opts.faults.empty() || opts.watchdog_ms != 0)
    board = std::make_unique<rt_fault_board>(n, opts.faults);

  std::vector<rt_env> envs;
  envs.reserve(n);
  for (process_id pid = 0; pid < n; ++pid) {
    rng stream(splitmix64(seed) ^ (0x9e3779b97f4a7c15ULL * (pid + 1)));
    envs.emplace_back(mem, pid, n, stream, opts.chaos, board.get(),
                      opts.recorder, opts.obs, opts.semantics,
                      opts.race_denominator);
  }

  rt_result res;
  res.outputs.assign(n, 0);
  res.op_counts.assign(n, 0);
  res.outcomes.assign(n, rt_outcome::running);
  res.restarts.assign(n, 0);
  res.recoveries.assign(n, 0);
  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> done{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (process_id pid = 0; pid < n; ++pid) {
      threads.emplace_back([&, pid] {
        try {
          for (;;) {
            try {
              res.outputs[pid] = run_inline(make_program(envs[pid]));
              res.outcomes[pid] = rt_outcome::halted;
              break;
            } catch (const rt_restart_signal&) {
              ++res.restarts[pid];  // local state lost; run again
            } catch (const rt_recover_signal&) {
              // Crash-recovery: local state lost AND the volatile register
              // partition is reset before the process reboots.
              ++res.restarts[pid];
              ++res.recoveries[pid];
              mem.wipe_volatile();
            }
          }
        } catch (const rt_crash_signal&) {
          res.outcomes[pid] = rt_outcome::crashed;
        } catch (const rt_timeout_signal&) {
          res.outcomes[pid] = rt_outcome::timed_out;
        } catch (...) {
          errors[pid] = std::current_exception();
        }
        done.fetch_add(1, std::memory_order_release);
      });
    }
    if (opts.watchdog_ms != 0) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(opts.watchdog_ms);
      while (done.load(std::memory_order_acquire) < n) {
        if (std::chrono::steady_clock::now() >= deadline) {
          res.timed_out = true;
          board->abort();
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
  }  // jthread join: synchronizes all per-pid writes below
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);

  for (process_id pid = 0; pid < n; ++pid) {
    res.op_counts[pid] = envs[pid].ops();
    res.total_ops += envs[pid].ops();
    res.max_individual_ops =
        std::max(res.max_individual_ops, envs[pid].ops());
    res.races += envs[pid].races();
  }
  return res;
}

// Fault-free entry point, kept for callers that predate fault injection.
inline rt_result run_threads(
    arena& mem, std::size_t n, std::uint64_t seed,
    const std::function<proc<word>(rt_env&)>& make_program,
    std::uint32_t chaos = 0) {
  rt_run_options opts;
  opts.chaos = chaos;
  return run_threads_opts(mem, n, seed, make_program, opts);
}

}  // namespace modcon::rt
