// Drives n coroutine programs on n real threads.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "exec/proc.h"
#include "rt/env.h"
#include "util/assertx.h"
#include "util/rng.h"

namespace modcon::rt {

struct rt_result {
  std::vector<word> outputs;           // per process
  std::vector<std::uint64_t> op_counts;
  std::uint64_t total_ops = 0;
  std::uint64_t max_individual_ops = 0;
};

// Spawns one thread per process; each builds its program via
// `make_program(env)` and runs it to completion.  Any process exception
// is rethrown on the caller's thread after all threads join.  `chaos`
// (see rt_env) injects random yields for interleaving stress.
inline rt_result run_threads(
    arena& mem, std::size_t n, std::uint64_t seed,
    const std::function<proc<word>(rt_env&)>& make_program,
    std::uint32_t chaos = 0) {
  MODCON_CHECK(n >= 1);
  std::vector<rt_env> envs;
  envs.reserve(n);
  for (process_id pid = 0; pid < n; ++pid) {
    rng stream(splitmix64(seed) ^ (0x9e3779b97f4a7c15ULL * (pid + 1)));
    envs.emplace_back(mem, pid, n, stream, chaos);
  }

  rt_result res;
  res.outputs.assign(n, 0);
  res.op_counts.assign(n, 0);
  std::vector<std::exception_ptr> errors(n);
  {
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (process_id pid = 0; pid < n; ++pid) {
      threads.emplace_back([&, pid] {
        try {
          res.outputs[pid] = run_inline(make_program(envs[pid]));
        } catch (...) {
          errors[pid] = std::current_exception();
        }
      });
    }
  }
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);

  for (process_id pid = 0; pid < n; ++pid) {
    res.op_counts[pid] = envs[pid].ops();
    res.total_ops += envs[pid].ops();
    res.max_individual_ops =
        std::max(res.max_individual_ops, envs[pid].ops());
  }
  return res;
}

}  // namespace modcon::rt
