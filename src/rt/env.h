// Real-thread Environment: the same coroutine algorithms, executed by n
// OS threads against std::atomic registers.
//
// Awaitables complete immediately (await_ready() == true): there is no
// scheduler to park for — the hardware and the OS interleave the threads.
// A probabilistic write flips the process's local coin and conditionally
// stores; since no observer can correlate the store's timing with the
// coin, this matches the §2.1 dummy-location reading of the model as well
// as real hardware can.  Operation counts are kept in plain per-env
// fields (each env is used by exactly one thread) and aggregated after
// the run.
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "exec/environment.h"
#include "exec/types.h"
#include "rt/arena.h"
#include "util/prob.h"
#include "util/rng.h"

namespace modcon::rt {

class rt_env {
 public:
  // chaos > 0 injects a scheduling perturbation (std::this_thread::yield)
  // before roughly one in `chaos` operations, from a coin stream separate
  // from the algorithm's local coins.  On few-core machines OS threads
  // otherwise run long quanta back to back, hiding interleavings; chaos
  // mode recovers adversarial-ish schedules for stress tests.
  rt_env(arena& mem, process_id pid, std::size_t n, rng r,
         std::uint32_t chaos = 0)
      : mem_(&mem),
        pid_(pid),
        n_(n),
        rng_(r),
        chaos_(chaos),
        chaos_rng_(r.split(0xc4a05)) {}

  struct read_awaiter {
    word result;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    word await_resume() const noexcept { return result; }
  };

  struct void_awaiter {
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };

  struct collect_awaiter {
    std::vector<word> result;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    std::vector<word> await_resume() noexcept { return std::move(result); }
  };

  read_awaiter read(reg_id r) {
    perturb();
    ++ops_;
    return read_awaiter{mem_->at(r).load(std::memory_order_seq_cst)};
  }

  void_awaiter write(reg_id r, word v) {
    perturb();
    ++ops_;
    mem_->at(r).store(v, std::memory_order_seq_cst);
    return {};
  }

  void_awaiter prob_write(reg_id r, word v, prob p) {
    perturb();
    ++ops_;
    if (p.sample(rng_)) mem_->at(r).store(v, std::memory_order_seq_cst);
    return {};
  }

  struct bool_awaiter {
    bool result;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    bool await_resume() const noexcept { return result; }
  };

  // Success-detecting probabilistic write (footnote to Theorem 7).
  bool_awaiter prob_write_detect(reg_id r, word v, prob p) {
    perturb();
    ++ops_;
    bool ok = p.sample(rng_);
    if (ok) mem_->at(r).store(v, std::memory_order_seq_cst);
    return bool_awaiter{ok};
  }

  // No cheap-collect assumption on real hardware: n individual reads,
  // charged as n operations (the sim backend charges 1; see §6.2).
  collect_awaiter collect(reg_id first, std::uint32_t count) {
    ops_ += count;
    collect_awaiter a;
    a.result.resize(count);
    for (std::uint32_t i = 0; i < count; ++i)
      a.result[i] = mem_->at(first + i).load(std::memory_order_seq_cst);
    return a;
  }

  std::uint64_t flip(std::uint64_t bound) { return rng_.below(bound); }
  bool coin() { return rng_.flip(); }
  rng& local_rng() { return rng_; }

  process_id pid() const { return pid_; }
  std::size_t n() const { return n_; }
  std::uint64_t ops() const { return ops_; }

 private:
  void perturb() {
    if (chaos_ != 0 && chaos_rng_.below(chaos_) == 0)
      std::this_thread::yield();
  }

  arena* mem_;
  process_id pid_;
  std::size_t n_;
  rng rng_;
  std::uint32_t chaos_;
  rng chaos_rng_;
  std::uint64_t ops_ = 0;
};

static_assert(Environment<rt_env>);

}  // namespace modcon::rt
