// Real-thread Environment: the same coroutine algorithms, executed by n
// OS threads against std::atomic registers.
//
// Awaitables complete immediately (await_ready() == true): there is no
// scheduler to park for — the hardware and the OS interleave the threads.
// A probabilistic write flips the process's local coin and conditionally
// stores; since no observer can correlate the store's timing with the
// coin, this matches the §2.1 dummy-location reading of the model as well
// as real hardware can.  Operation counts are kept in plain per-env
// fields (each env is used by exactly one thread) and aggregated after
// the run.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "exec/environment.h"
#include "exec/types.h"
#include "obs/obs.h"
#include "rt/arena.h"
#include "sim/register_file.h"  // register_semantics (shared enum)
#include "util/chunk_pool.h"
#include "util/prob.h"
#include "util/rng.h"

namespace modcon::rt {

// ---------------------------------------------------------------------
// Cooperative fault injection.
//
// Real threads cannot be crashed from outside without UB, so faults are
// *cooperative*: every shared-memory operation is a fault point, and the
// env consults a shared rt_fault_board at each one.  A due fault unwinds
// the worker's coroutine stack with one of the signal types below, caught
// in rt/runner.h: crash stops the thread, restart re-runs its program
// from scratch (shared registers persist, the op counter accumulates —
// the same semantics as sim_world::restart_after), and stall parks the
// thread, polling the board's abort flag so a watchdog can still reclaim
// it.  `after_ops = k` fires at the entry of the (k+1)-th operation, i.e.
// after the process has executed exactly k ops — matching the sim
// backend's crash_after/restart_after thresholds.
// ---------------------------------------------------------------------

// `recover` is crash-recovery: like restart, but the runner additionally
// wipes the arena's volatile register partition before the re-run
// (rt/runner.h) — the real-thread analogue of sim_world::recover_after.
enum class fault_action : std::uint8_t { stall, crash, restart, recover };

struct rt_fault_spec {
  process_id pid = 0;
  std::uint64_t after_ops = 0;
  fault_action action = fault_action::crash;
  // stall only: resume after this many milliseconds; 0 = never resume
  // (the thread hangs until the watchdog aborts the run).
  std::uint32_t resume_after_ms = 0;
};

// Thrown at a fault point to unwind a worker's coroutine stack.  These
// deliberately do not derive from std::exception: an algorithm's own
// catch(const std::exception&) handler must not swallow an injected
// fault.
struct rt_crash_signal {};
struct rt_restart_signal {};
struct rt_recover_signal {};
struct rt_timeout_signal {};

class rt_fault_board {
 public:
  rt_fault_board(std::size_t n, const std::vector<rt_fault_spec>& specs)
      : plans_(n), next_(n, 0) {
    for (const auto& s : specs)
      if (s.pid < n) plans_[s.pid].push_back(s);
    for (auto& plan : plans_)
      std::stable_sort(plan.begin(), plan.end(),
                       [](const rt_fault_spec& a, const rt_fault_spec& b) {
                         return a.after_ops < b.after_ops;
                       });
  }

  // Called by rt_env at the entry of every operation, before it applies
  // or is counted.  plans_ is read-only after construction and next_[pid]
  // is touched only by pid's own thread; the only shared mutable state is
  // the abort flag.
  void check(process_id pid, std::uint64_t ops) {
    if (abort_.load(std::memory_order_relaxed)) throw rt_timeout_signal{};
    auto& plan = plans_[pid];
    std::size_t& next = next_[pid];
    while (next < plan.size() && ops >= plan[next].after_ops) {
      const rt_fault_spec s = plan[next];
      ++next;  // each spec fires exactly once, even across restarts
      switch (s.action) {
        case fault_action::stall:
          stall(s.resume_after_ms);
          break;
        case fault_action::crash:
          throw rt_crash_signal{};
        case fault_action::restart:
          throw rt_restart_signal{};
        case fault_action::recover:
          throw rt_recover_signal{};
      }
    }
  }

  void abort() { abort_.store(true, std::memory_order_relaxed); }
  bool aborted() const { return abort_.load(std::memory_order_relaxed); }

 private:
  void stall(std::uint32_t resume_after_ms) {
    using clock = std::chrono::steady_clock;
    const auto deadline =
        clock::now() + std::chrono::milliseconds(resume_after_ms);
    for (;;) {
      if (abort_.load(std::memory_order_relaxed)) throw rt_timeout_signal{};
      if (resume_after_ms != 0 && clock::now() >= deadline) return;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  std::vector<std::vector<rt_fault_spec>> plans_;  // per-pid, sorted
  std::vector<std::size_t> next_;                  // per-pid cursor
  std::atomic<bool> abort_{false};
};

// ---------------------------------------------------------------------
// Opt-in trace recording, mirroring the sim trace (sim/trace.h) as far as
// real threads allow: there is no global step counter, so each operation
// instead records a begin/end interval drawn from one process-shared
// atomic sequence.  Two operations whose intervals are disjoint are
// real-time ordered; overlapping intervals ran concurrently.  The
// property auditor feeds these events to the vector-clock
// happens-before tracker (check/hb.h) to certify the execution is
// serializable over atomic registers.
//
// Events are buffered per process in fixed-size chunks from the shared
// chunk pool (util/chunk_pool.h): each buffer is touched only by its own
// thread (the jthread join in rt/runner.h publishes them), appending
// never reallocates-and-copies, and the per-pid write cursors live on
// separate cache lines so recording threads do not false-share.  Collects
// are expanded into one read event per register, matching how hb
// analysis consumes them.
// ---------------------------------------------------------------------

struct rt_trace_event {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  process_id pid = 0;
  op_kind kind = op_kind::read;
  reg_id reg = kInvalidReg;
  word value = 0;
  bool applied = true;
};

inline constexpr std::size_t kRtTraceChunkCapacity = 1024;

struct rt_trace_chunk {
  rt_trace_event events[kRtTraceChunkCapacity];
};

static_assert((kRtTraceChunkCapacity & (kRtTraceChunkCapacity - 1)) == 0,
              "chunk capacity must be a power of two");

class rt_trace_recorder {
 public:
  // `max_events` caps the total event count (split evenly across
  // processes); overflow sets a flag instead of growing without bound,
  // mirroring sim::trace.
  explicit rt_trace_recorder(std::size_t n,
                             std::uint64_t max_events = 4'000'000)
      : buffers_(n), per_pid_cap_(max_events / (n ? n : 1)) {}

  ~rt_trace_recorder() {
    for (auto& b : buffers_)
      for (auto& c : b.chunks)
        chunk_pool<rt_trace_chunk>::release(std::move(c));
  }
  rt_trace_recorder(const rt_trace_recorder&) = delete;
  rt_trace_recorder& operator=(const rt_trace_recorder&) = delete;

  std::uint64_t tick() { return seq_.fetch_add(1, std::memory_order_seq_cst); }

  void record(process_id pid, const rt_trace_event& e) {
    per_pid& buf = buffers_[pid];
    if (buf.size >= per_pid_cap_) {
      overflowed_.store(true, std::memory_order_relaxed);
      return;
    }
    const std::size_t slot = static_cast<std::size_t>(
        buf.size & (kRtTraceChunkCapacity - 1));
    if (slot == 0)
      buf.chunks.push_back(chunk_pool<rt_trace_chunk>::acquire());
    buf.chunks.back()->events[slot] = e;
    ++buf.size;
  }

  void note_alloc(reg_id first, std::uint32_t count, word init) {
    std::size_t need = static_cast<std::size_t>(first) + count;
    if (initial_.size() < need) initial_.resize(need, kBot);
    for (std::uint32_t i = 0; i < count; ++i) initial_[first + i] = init;
  }

  bool overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }
  const std::vector<word>& initial_values() const { return initial_; }

  // All events, merged and sorted by end tick.  Call only after the
  // worker threads have joined.
  std::vector<rt_trace_event> merged() const {
    std::vector<rt_trace_event> all;
    std::uint64_t total = 0;
    for (const auto& b : buffers_) total += b.size;
    all.reserve(static_cast<std::size_t>(total));
    for (const auto& b : buffers_)
      for (std::uint64_t i = 0; i < b.size; ++i)
        all.push_back(b.chunks[static_cast<std::size_t>(
            i / kRtTraceChunkCapacity)]
                          ->events[i & (kRtTraceChunkCapacity - 1)]);
    std::sort(all.begin(), all.end(),
              [](const rt_trace_event& a, const rt_trace_event& b) {
                return a.end < b.end;
              });
    return all;
  }

 private:
  // One recording thread per entry; aligned so neighboring write cursors
  // never share a cache line.
  struct alignas(64) per_pid {
    std::vector<std::unique_ptr<rt_trace_chunk>> chunks;
    std::uint64_t size = 0;
  };

  std::atomic<std::uint64_t> seq_{0};
  std::vector<per_pid> buffers_;
  std::uint64_t per_pid_cap_;
  std::atomic<bool> overflowed_{false};
  std::vector<word> initial_;  // indexed by reg id; written pre-run only
};

class rt_env {
 public:
  // chaos > 0 injects a scheduling perturbation (std::this_thread::yield)
  // before roughly one in `chaos` operations, from a coin stream separate
  // from the algorithm's local coins.  On few-core machines OS threads
  // otherwise run long quanta back to back, hiding interleavings; chaos
  // mode recovers adversarial-ish schedules for stress tests.
  // `board`, when non-null, makes every operation a cooperative fault
  // point (see rt_fault_board above); `recorder`, when non-null, records
  // every operation with its global-sequence interval; `obs`, when
  // non-null, receives algorithm-level spans and counters (obs/obs.h).
  // All three must outlive the env.
  //
  // `semantics` != atomic arms the read-racing approximation of weakened
  // register semantics: real atomics cannot return non-linearizable
  // values, so instead roughly one in `race` reads re-loads the register
  // after a yield and returns either of the two observed values — the
  // read is stretched across a real race window, which is exactly the
  // regular-register ambiguity the sim backend models precisely.
  rt_env(arena& mem, process_id pid, std::size_t n, rng r,
         std::uint32_t chaos = 0, rt_fault_board* board = nullptr,
         rt_trace_recorder* recorder = nullptr,
         obs::trial_recorder* obs = nullptr,
         sim::register_semantics semantics = sim::register_semantics::atomic,
         std::uint32_t race = 4)
      : mem_(&mem),
        pid_(pid),
        n_(n),
        rng_(r),
        chaos_(chaos),
        chaos_rng_(r.split(0xc4a05)),
        board_(board),
        recorder_(recorder),
        obs_(obs),
        semantics_(semantics),
        race_(race == 0 ? 4 : race),
        race_rng_(r.split(0x5eace)),
        fast_path_(board == nullptr && recorder == nullptr && chaos == 0 &&
                   obs == nullptr &&
                   semantics == sim::register_semantics::atomic) {}

  struct read_awaiter {
    word result;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    word await_resume() const noexcept { return result; }
  };

  struct void_awaiter {
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };

  struct collect_awaiter {
    std::vector<word> result;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    std::vector<word> await_resume() noexcept { return std::move(result); }
  };

  // Each operation checks `fast_path_` — true when no fault board, no
  // chaos, and no recorder is attached (the overwhelmingly common
  // configuration) — and then touches nothing but the ops counter and the
  // atomic itself.  The instrumented variants live out of the hot path.
  read_awaiter read(reg_id r) {
    if (fast_path_) [[likely]] {
      ++ops_;
      return read_awaiter{mem_->at(r).load(std::memory_order_seq_cst)};
    }
    return read_slow(r);
  }

  void_awaiter write(reg_id r, word v) {
    if (fast_path_) [[likely]] {
      ++ops_;
      mem_->at(r).store(v, std::memory_order_seq_cst);
      return {};
    }
    return write_slow(r, v);
  }

  void_awaiter prob_write(reg_id r, word v, prob p) {
    if (fast_path_) [[likely]] {
      ++ops_;
      if (p.sample(rng_)) mem_->at(r).store(v, std::memory_order_seq_cst);
      return {};
    }
    return prob_write_slow(r, v, p);
  }

  struct bool_awaiter {
    bool result;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    bool await_resume() const noexcept { return result; }
  };

  // Success-detecting probabilistic write (footnote to Theorem 7).
  bool_awaiter prob_write_detect(reg_id r, word v, prob p) {
    if (fast_path_) [[likely]] {
      ++ops_;
      bool ok = p.sample(rng_);
      if (ok) mem_->at(r).store(v, std::memory_order_seq_cst);
      return bool_awaiter{ok};
    }
    return prob_write_detect_slow(r, v, p);
  }

  // No cheap-collect assumption on real hardware: n individual reads,
  // charged as n operations (the sim backend charges 1; see §6.2).
  // Traced as one read event per register: each load is its own
  // linearization point, so that is the honest granularity.
  collect_awaiter collect(reg_id first, std::uint32_t count) {
    collect_awaiter a;
    if (fast_path_) [[likely]] {
      ops_ += count;
      a.result.resize(count);
      for (std::uint32_t i = 0; i < count; ++i)
        a.result[i] = mem_->at(first + i).load(std::memory_order_seq_cst);
      return a;
    }
    collect_slow(first, count, a.result);
    return a;
  }

  std::uint64_t flip(std::uint64_t bound) {
    ++draws_;
    return rng_.below(bound);
  }
  bool coin() {
    ++draws_;
    return rng_.flip();
  }
  rng& local_rng() { return rng_; }

  process_id pid() const { return pid_; }
  std::size_t n() const { return n_; }
  std::uint64_t ops() const { return ops_; }
  // Racing reads that actually observed two distinct values (the rt
  // analogue of the sim's overlap-read counter).
  std::uint64_t races() const { return races_; }

  // Observability hooks (obs/obs.h).  There is no global step counter on
  // real threads, so the timeline is the recorder's shared atomic
  // sequence; an un-observed env reports tick 0.
  obs::trial_recorder* obs() const { return obs_; }
  std::uint64_t obs_now() const { return obs_ ? obs_->tick() : 0; }
  std::uint64_t obs_ops() const { return ops_; }
  std::uint64_t obs_draws() const { return draws_; }

 private:
  // Instrumented variants, taken when a fault board, chaos mode, or a
  // recorder is attached.  The operation order (fault point, perturbation,
  // count, tick, memory access, record) is identical to what the fast
  // path would do with the instrumentation hooks compiled in.
  read_awaiter read_slow(reg_id r) {
    fault_point();
    perturb();
    ++ops_;
    if (obs_) obs_->count(pid_, obs::counter::reads);
    const std::uint64_t b = begin_tick();
    word v = mem_->at(r).load(std::memory_order_seq_cst);
    v = maybe_race(r, v);
    record(b, op_kind::read, r, v, true);
    return read_awaiter{v};
  }

  // Read-racing (see the constructor comment): both candidate values were
  // really loaded inside this operation's tick interval, so the recorded
  // event and the hb audit stay truthful.
  word maybe_race(reg_id r, word v) {
    if (semantics_ == sim::register_semantics::atomic) return v;
    if (race_rng_.below(race_) != 0) return v;
    std::this_thread::yield();
    const word v2 = mem_->at(r).load(std::memory_order_seq_cst);
    if (v2 != v) ++races_;
    return race_rng_.flip() ? v2 : v;
  }

  void_awaiter write_slow(reg_id r, word v) {
    fault_point();
    perturb();
    ++ops_;
    if (obs_) obs_->count(pid_, obs::counter::writes);
    const std::uint64_t b = begin_tick();
    mem_->at(r).store(v, std::memory_order_seq_cst);
    record(b, op_kind::write, r, v, true);
    return {};
  }

  void_awaiter prob_write_slow(reg_id r, word v, prob p) {
    fault_point();
    perturb();
    ++ops_;
    const bool nontrivial = !p.certain();
    if (nontrivial) ++draws_;
    const std::uint64_t b = begin_tick();
    bool ok = p.sample(rng_);
    if (ok) mem_->at(r).store(v, std::memory_order_seq_cst);
    count_write(nontrivial, ok);
    record(b, op_kind::write, r, v, ok);
    return {};
  }

  bool_awaiter prob_write_detect_slow(reg_id r, word v, prob p) {
    fault_point();
    perturb();
    ++ops_;
    const bool nontrivial = !p.certain();
    if (nontrivial) ++draws_;
    const std::uint64_t b = begin_tick();
    bool ok = p.sample(rng_);
    if (ok) mem_->at(r).store(v, std::memory_order_seq_cst);
    count_write(nontrivial, ok);
    record(b, op_kind::write, r, v, ok);
    return bool_awaiter{ok};
  }

  void count_write(bool nontrivial, bool applied) {
    if (!obs_) return;
    if (nontrivial) obs_->count(pid_, obs::counter::prob_writes);
    if (applied)
      obs_->count(pid_, obs::counter::writes);
    else
      obs_->count(pid_, obs::counter::prob_write_misses);
  }

  void collect_slow(reg_id first, std::uint32_t count,
                    std::vector<word>& out) {
    fault_point();
    ops_ += count;
    if (obs_) obs_->count(pid_, obs::counter::collects);
    out.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t b = begin_tick();
      out[i] = mem_->at(first + i).load(std::memory_order_seq_cst);
      out[i] = maybe_race(static_cast<reg_id>(first + i), out[i]);
      record(b, op_kind::read, static_cast<reg_id>(first + i), out[i], true);
    }
  }

  void perturb() {
    if (chaos_ != 0 && chaos_rng_.below(chaos_) == 0)
      std::this_thread::yield();
  }

  // At op entry, before ++ops_: after_ops = k means exactly k executed.
  void fault_point() {
    if (board_) board_->check(pid_, ops_);
  }

  std::uint64_t begin_tick() { return recorder_ ? recorder_->tick() : 0; }

  void record(std::uint64_t begin_at, op_kind kind, reg_id r, word v,
              bool applied) {
    if (!recorder_) return;
    // end = tick() + 1 keeps intervals half-open and non-empty even when
    // begin and end draws are adjacent.
    recorder_->record(
        pid_, {begin_at, recorder_->tick() + 1, pid_, kind, r, v, applied});
  }

  arena* mem_;
  process_id pid_;
  std::size_t n_;
  rng rng_;
  std::uint32_t chaos_;
  rng chaos_rng_;
  rt_fault_board* board_ = nullptr;
  rt_trace_recorder* recorder_ = nullptr;
  obs::trial_recorder* obs_ = nullptr;
  sim::register_semantics semantics_ = sim::register_semantics::atomic;
  std::uint32_t race_ = 4;
  rng race_rng_;
  // True when no instrumentation is attached; every op then reduces to
  // counter + atomic access.
  bool fast_path_ = true;
  std::uint64_t ops_ = 0;
  std::uint64_t draws_ = 0;
  std::uint64_t races_ = 0;
};

static_assert(Environment<rt_env>);

}  // namespace modcon::rt
