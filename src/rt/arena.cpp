#include "rt/arena.h"

#include "util/assertx.h"

namespace modcon::rt {

arena::~arena() {
  for (auto& slot : chunks_) {
    delete slot.load(std::memory_order_acquire);
  }
}

reg_id arena::alloc(word init) { return alloc_block(1, init); }

reg_id arena::alloc_block(std::uint32_t count, word init) {
  assert_live();
  MODCON_CHECK(count > 0);
  std::scoped_lock lk(mu_);
  std::uint32_t first = count_.load(std::memory_order_relaxed);
  MODCON_CHECK_MSG(first + count >= first &&
                       first + count <= kChunkSize * kMaxChunks,
                   "arena exhausted");
  // Materialize every chunk the block touches and initialize its words
  // before publishing the new count.
  for (std::uint32_t r = first; r < first + count; ++r) {
    std::uint32_t ci = r / kChunkSize;
    chunk* c = chunks_[ci].load(std::memory_order_acquire);
    if (c == nullptr) {
      c = new chunk();
      for (auto& w : *c) w.store(0, std::memory_order_relaxed);
      chunks_[ci].store(c, std::memory_order_release);
    }
    (*c)[r % kChunkSize].store(init, std::memory_order_relaxed);
  }
  initials_.resize(first + count, init);
  if (alloc_durability() == durability::volatile_mem)
    for (std::uint32_t r = first; r < first + count; ++r)
      volatile_regs_.emplace_back(r, init);
  count_.store(first + count, std::memory_order_release);
  return first;
}

std::vector<word> arena::initial_values() const {
  std::scoped_lock lk(mu_);
  return initials_;
}

std::vector<std::pair<reg_id, word>> arena::volatile_partition() const {
  std::scoped_lock lk(mu_);
  return volatile_regs_;
}

void arena::wipe_volatile() {
  std::scoped_lock lk(mu_);
  for (const auto& [r, init] : volatile_regs_)
    at(r).store(init, std::memory_order_release);
}

std::atomic<word>& arena::at(reg_id r) {
  assert_live();  // compiled out of release builds; see address_space.h
  MODCON_CHECK_MSG(r < count_.load(std::memory_order_acquire),
                   "access to unallocated register " << r);
  chunk* c = chunks_[r / kChunkSize].load(std::memory_order_acquire);
  return (*c)[r % kChunkSize];
}

const std::atomic<word>& arena::at(reg_id r) const {
  assert_live();
  MODCON_CHECK_MSG(r < count_.load(std::memory_order_acquire),
                   "access to unallocated register " << r);
  const chunk* c = chunks_[r / kChunkSize].load(std::memory_order_acquire);
  return (*c)[r % kChunkSize];
}

}  // namespace modcon::rt
