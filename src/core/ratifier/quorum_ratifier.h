// The deterministic quorum ratifier (Procedure Ratifier, Theorem 8).
//
// Shared data: a pool of binary announce registers (layout given by a
// quorum_system) and a proposal register, initially ⊥.  A process with
// input v:
//   1. announces v by setting every register in its write quorum W_v;
//   2. reads proposal; adopts it as its preference if nonempty, otherwise
//      proposes its own value by writing it there;
//   3. reads its preference's read quorum R_pref: if any register is set,
//      a conflicting value has been announced — return (0, preference);
//      otherwise return (1, preference).
//
// Correct (validity, termination, coherence, acceptance) whenever
// W_v ∩ R_v' = ∅ ⇔ v = v' (Theorem 8).  Cost: |W| + |R| + 2 operations,
// pool + 1 registers — e.g. 4 ops / 3 registers for binary (§6.2),
// lg m + O(log log m) for the Bollobás scheme (Theorem 10).
#pragma once

#include <memory>
#include <utility>

#include "core/deciding.h"
#include "exec/address_space.h"
#include "exec/environment.h"
#include "quorum/quorum_system.h"

namespace modcon {

template <typename Env>
class quorum_ratifier final : public deciding_object<Env> {
 public:
  quorum_ratifier(address_space& mem,
                  std::shared_ptr<const quorum_system> qs)
      : qs_(std::move(qs)),
        base_(mem.alloc_block(qs_->pool_size(), 0)),
        proposal_(mem.alloc(kBot)) {}

  proc<decided> invoke(Env& env, value_t v) override {
    MODCON_CHECK_MSG(v < qs_->max_values(),
                     "input " << v << " outside Σ (m=" << qs_->max_values()
                              << ")");
    // Announce v.
    for (std::uint32_t i : qs_->write_quorum(v))
      co_await env.write(base_ + i, 1);

    // Propose or adopt.
    word u = co_await env.read(proposal_);
    value_t preference;
    if (u != kBot) {
      preference = u;
    } else {
      preference = v;
      co_await env.write(proposal_, preference);
    }

    // Ratify only if no conflicting value has been announced.
    for (std::uint32_t i : qs_->read_quorum(preference)) {
      if (co_await env.read(base_ + i) != 0)
        co_return decided{false, preference};
    }
    co_return decided{true, preference};
  }

  std::string name() const override {
    return "ratifier[" + qs_->name() + "]";
  }

  const quorum_system& quorums() const { return *qs_; }

  // Worst-case per-process operations: |W| + |R| + 2.
  std::uint64_t individual_work_bound() const {
    return std::uint64_t{qs_->max_write_quorum()} + qs_->max_read_quorum() +
           2;
  }

 private:
  std::shared_ptr<const quorum_system> qs_;
  reg_id base_;
  reg_id proposal_;
};

}  // namespace modcon
