// The deterministic quorum ratifier (Procedure Ratifier, Theorem 8).
//
// Shared data: a pool of binary announce registers (layout given by a
// quorum_system) and a proposal register, initially ⊥.  A process with
// input v:
//   1. announces v by setting every register in its write quorum W_v;
//   2. reads proposal; adopts it as its preference if nonempty, otherwise
//      proposes its own value by writing it there;
//   3. reads its preference's read quorum R_pref: if any register is set,
//      a conflicting value has been announced — return (0, preference);
//      otherwise return (1, preference).
//
// Correct (validity, termination, coherence, acceptance) whenever
// W_v ∩ R_v' = ∅ ⇔ v = v' (Theorem 8).  Cost: |W| + |R| + 2 operations,
// pool + 1 registers — e.g. 4 ops / 3 registers for binary (§6.2),
// lg m + O(log log m) for the Bollobás scheme (Theorem 10).
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/deciding.h"
#include "exec/address_space.h"
#include "exec/environment.h"
#include "obs/obs.h"
#include "quorum/quorum_system.h"

namespace modcon {

template <typename Env>
class quorum_ratifier final : public deciding_object<Env> {
 public:
  quorum_ratifier(address_space& mem,
                  std::shared_ptr<const quorum_system> qs)
      : qs_(std::move(qs)),
        base_(mem.alloc_block(qs_->pool_size(), 0)),
        proposal_(mem.alloc(kBot)),
        max_values_(qs_->max_values()) {
    // Flatten the per-value quorums once: invoke() sits on the consensus
    // hot path (one ratifier round per conciliator round), and the
    // virtual write_quorum/read_quorum interface returns a freshly
    // heap-allocated vector per call.  The cache is immutable after
    // construction, so concurrent rt invocations share it with no
    // synchronization.  Very large value domains (E4 space probes) fall
    // back to the virtual calls rather than materialize m quorums.
    if (max_values_ <= kCacheValueLimit) {
      spans_.reserve(2 * max_values_);
      for (std::uint64_t v = 0; v < max_values_; ++v) {
        for (const auto& q : {qs_->write_quorum(v), qs_->read_quorum(v)}) {
          spans_.push_back({static_cast<std::uint32_t>(flat_.size()),
                            static_cast<std::uint32_t>(q.size())});
          flat_.insert(flat_.end(), q.begin(), q.end());
        }
      }
    }
  }

  proc<decided> invoke(Env& env, value_t v) override {
    MODCON_CHECK_MSG(v < max_values_,
                     "input " << v << " outside Σ (m=" << max_values_ << ")");
    obs::span_scope<Env> sp(env, obs::span_kind::ratifier, 0,
                            [this] { return name(); });
    std::vector<std::uint32_t> scratch;

    // Announce v.
    for (std::uint32_t i : quorum(2 * static_cast<std::size_t>(v), scratch))
      co_await env.write(base_ + i, 1);

    // Propose or adopt.
    word u = co_await env.read(proposal_);
    value_t preference;
    if (u != kBot) {
      preference = u;
    } else {
      preference = v;
      co_await env.write(proposal_, preference);
    }

    // Ratify only if no conflicting value has been announced.
    for (std::uint32_t i :
         quorum(2 * static_cast<std::size_t>(preference) + 1, scratch)) {
      if (co_await env.read(base_ + i) != 0) {
        obs::count(env, obs::counter::adopted);
        sp.set_outcome(false, preference);
        co_return decided{false, preference};
      }
    }
    obs::count(env, obs::counter::ratified);
    sp.set_outcome(true, preference);
    co_return decided{true, preference};
  }

  std::string name() const override {
    return "ratifier[" + qs_->name() + "]";
  }

  const quorum_system& quorums() const { return *qs_; }

  // Worst-case per-process operations: |W| + |R| + 2.
  std::uint64_t individual_work_bound() const {
    return std::uint64_t{qs_->max_write_quorum()} + qs_->max_read_quorum() +
           2;
  }

 private:
  static constexpr std::uint64_t kCacheValueLimit = 4096;

  // Quorum idx (2v = W_v, 2v+1 = R_v) as a span: from the flattened cache
  // when one was built, otherwise materialized into `scratch` (which the
  // coroutine frame keeps alive across the suspensions in the loop body).
  std::span<const std::uint32_t> quorum(
      std::size_t idx, std::vector<std::uint32_t>& scratch) const {
    if (!spans_.empty()) {
      const auto [off, len] = spans_[idx];
      return {flat_.data() + off, len};
    }
    scratch = (idx & 1) ? qs_->read_quorum(static_cast<word>(idx >> 1))
                        : qs_->write_quorum(static_cast<word>(idx >> 1));
    return scratch;
  }

  std::shared_ptr<const quorum_system> qs_;
  reg_id base_;
  reg_id proposal_;
  std::uint64_t max_values_;
  std::vector<std::uint32_t> flat_;  // concatenated cached quorums
  struct span_ref {
    std::uint32_t offset;
    std::uint32_t length;
  };
  std::vector<span_ref> spans_;  // index: 2v → W_v, 2v+1 → R_v
};

}  // namespace modcon
