// Ratifier for the cheap-collect model (§6.2 choice 4).
//
// In a model where reading an array of n single-writer registers costs
// O(1) (a "cheap collect"), write quorums of size 1 suffice: each process
// announces its value in its own register and detects conflicts with a
// single collect.  Individual work drops to 4 operations for any m.  The
// paper flags this model as unrealistic; it exists to bound what
// cheap-collect lower bounds could hope to show.  Only the simulator
// charges collect as one operation; the real-thread backend performs n
// reads (and this class documents that the 4-op bound is model-specific).
#pragma once

#include "core/deciding.h"
#include "exec/address_space.h"
#include "exec/environment.h"
#include "obs/obs.h"

namespace modcon {

template <typename Env>
class cheap_collect_ratifier final : public deciding_object<Env> {
 public:
  cheap_collect_ratifier(address_space& mem, std::size_t n)
      : n_(static_cast<std::uint32_t>(n)),
        announce_(mem.alloc_block(n_, kBot)),
        proposal_(mem.alloc(kBot)) {}

  proc<decided> invoke(Env& env, value_t v) override {
    MODCON_CHECK_MSG(v < kBot, "⊥ is not a valid input");
    MODCON_CHECK_MSG(env.n() == n_, "ratifier sized for a different n");
    obs::span_scope<Env> sp(env, obs::span_kind::ratifier, 0,
                            std::string_view("ratifier[cheap-collect]"));
    co_await env.write(announce_ + env.pid(), v);

    word u = co_await env.read(proposal_);
    value_t preference;
    if (u != kBot) {
      preference = u;
    } else {
      preference = v;
      co_await env.write(proposal_, preference);
    }

    auto announced = co_await env.collect(announce_, n_);
    for (word a : announced) {
      if (a != kBot && a != preference) {
        obs::count(env, obs::counter::adopted);
        sp.set_outcome(false, preference);
        co_return decided{false, preference};
      }
    }
    obs::count(env, obs::counter::ratified);
    sp.set_outcome(true, preference);
    co_return decided{true, preference};
  }

  std::string name() const override { return "ratifier[cheap-collect]"; }

 private:
  std::uint32_t n_;
  reg_id announce_;
  reg_id proposal_;
};

}  // namespace modcon
