// Announce-array ratifier: the cheap-collect construction of §6.2
// (choice 4) priced honestly, with the collect realized as n individual
// reads.
//
// Write quorums of size 1 (each process announces in its own register)
// and read quorums of size n (scan everyone).  Correct by exactly the
// Theorem 8 argument — W_v = {own register} intersects R_v' for every
// v' != v because the scan reads every register.  Supports any m with
// n + 1 registers, at the price of n + 3 individual work: the natural
// foil for the O(log m) quorum schemes in experiment E4, and the closest
// relative of classic adopt-commit objects (commit ↔ decision bit 1,
// adopt ↔ 0).
#pragma once

#include "core/deciding.h"
#include "exec/address_space.h"
#include "exec/environment.h"
#include "obs/obs.h"

namespace modcon {

template <typename Env>
class collect_ratifier final : public deciding_object<Env> {
 public:
  collect_ratifier(address_space& mem, std::size_t n)
      : n_(static_cast<std::uint32_t>(n)),
        announce_(mem.alloc_block(n_, kBot)),
        proposal_(mem.alloc(kBot)) {}

  proc<decided> invoke(Env& env, value_t v) override {
    MODCON_CHECK_MSG(v < kBot, "⊥ is not a valid input");
    MODCON_CHECK_MSG(env.n() == n_, "ratifier sized for a different n");
    obs::span_scope<Env> sp(env, obs::span_kind::ratifier, 0,
                            std::string_view("ratifier[collect]"));
    co_await env.write(announce_ + env.pid(), v);

    word u = co_await env.read(proposal_);
    value_t preference;
    if (u != kBot) {
      preference = u;
    } else {
      preference = v;
      co_await env.write(proposal_, preference);
    }

    // Read quorum: every announce register, one read at a time.
    for (std::uint32_t i = 0; i < n_; ++i) {
      word a = co_await env.read(announce_ + i);
      if (a != kBot && a != preference) {
        obs::count(env, obs::counter::adopted);
        sp.set_outcome(false, preference);
        co_return decided{false, preference};
      }
    }
    obs::count(env, obs::counter::ratified);
    sp.set_outcome(true, preference);
    co_return decided{true, preference};
  }

  std::string name() const override { return "ratifier[collect]"; }

  // n reads + announce + proposal read (+ proposal write).
  std::uint64_t individual_work_bound() const { return n_ + 3; }

 private:
  std::uint32_t n_;
  reg_id announce_;
  reg_id proposal_;
};

}  // namespace modcon
