// Conciliator from a weak shared coin (Procedure CoinConciliator,
// Theorem 6).
//
// Binary registers r0, r1 enforce validity on top of the coin: a process
// with input v marks r_v, then checks r_{1-v}.  If nobody with the other
// input has shown up it returns its own value — and, by the argument in
// the proof of Theorem 6, any process that skips the coin this way
// returns the unique first-marked value, while every process with the
// other input is forced into the coin.  Otherwise it returns the shared
// coin's toss.  Agreement probability is at least the coin's δ; the cost
// is the coin's cost plus two register operations.  Binary values only.
#pragma once

#include <memory>
#include <utility>

#include "coin/shared_coin.h"
#include "core/deciding.h"
#include "exec/address_space.h"
#include "exec/environment.h"
#include "obs/obs.h"

namespace modcon {

template <typename Env>
class coin_conciliator final : public deciding_object<Env> {
 public:
  coin_conciliator(address_space& mem, std::unique_ptr<shared_coin<Env>> coin)
      : r0_(mem.alloc(0)), r1_(mem.alloc(0)), coin_(std::move(coin)) {}

  proc<decided> invoke(Env& env, value_t v) override {
    MODCON_CHECK_MSG(v <= 1, "coin conciliator is binary");
    obs::span_scope<Env> sp(env, obs::span_kind::conciliator, 0,
                            [this] { return name(); });
    co_await env.write(v == 0 ? r0_ : r1_, 1);
    word other = co_await env.read(v == 0 ? r1_ : r0_);
    if (other != 0) {
      obs::count(env, obs::counter::coin_tosses);
      value_t tossed = co_await coin_->toss(env);
      sp.set_outcome(false, tossed);
      co_return decided{false, tossed};
    }
    sp.set_outcome(false, v);
    co_return decided{false, v};
  }

  std::string name() const override {
    return "coin-conciliator[" + coin_->name() + "]";
  }

 private:
  reg_id r0_;
  reg_id r1_;
  std::unique_ptr<shared_coin<Env>> coin_;
};

}  // namespace modcon
