// Fixed-probability first-mover conciliator — the Chor–Israeli–Li-style
// baseline (§5.2: "previous protocols in this model have used a constant
// Θ(1/n) probability for each write").
//
// Identical to the impatient conciliator except the write probability is
// fixed at c/n forever.  Expected total work and expected individual work
// are both Θ(n): a single process running alone needs ~n/c attempts to get
// its value to stick.  This is the shape the impatient schedule improves
// to O(log n) individual work (experiment E9).
#pragma once

#include "core/deciding.h"
#include "exec/address_space.h"
#include "exec/environment.h"
#include "obs/obs.h"
#include "util/prob.h"

namespace modcon {

template <typename Env>
class fixed_probability_conciliator final : public deciding_object<Env> {
 public:
  // Write probability is num / (den_per_n * n); the classic choice is
  // 1/(2n).
  explicit fixed_probability_conciliator(address_space& mem,
                                         std::uint64_t num = 1,
                                         std::uint64_t den_per_n = 2)
      : r_(mem.alloc(kBot)), num_(num), den_per_n_(den_per_n) {}

  proc<decided> invoke(Env& env, value_t v) override {
    MODCON_CHECK_MSG(v < kBot, "⊥ is not a valid input");
    obs::span_scope<Env> sp(env, obs::span_kind::conciliator, 0,
                            std::string_view("fixed-prob-first-mover"));
    const prob p(num_, den_per_n_ * static_cast<std::uint64_t>(env.n()));
    bool first_read = true;
    for (;;) {
      word u = co_await env.read(r_);
      if (u != kBot) {
        if (first_read) obs::count(env, obs::counter::first_mover_wins);
        sp.set_outcome(false, u);
        co_return decided{false, u};
      }
      first_read = false;
      obs::count(env, obs::counter::conciliator_attempts);
      co_await env.prob_write(r_, v, p);
    }
  }

  std::string name() const override { return "fixed-prob-first-mover"; }

  reg_id register_id() const { return r_; }

 private:
  reg_id r_;
  std::uint64_t num_;
  std::uint64_t den_per_n_;
};

}  // namespace modcon
