// The impatient first-mover conciliator (Procedure
// ImpatientFirstMoverConciliator, Theorem 7).
//
// One multiwriter register r, initially ⊥.  A process with input v loops:
// read r; if nonempty, return (0, r) — first mover wins; otherwise attempt
// a probabilistic write of v with probability min(2^k/n, 1), where k
// counts its own attempts so far (the process grows impatient, doubling
// its probability each time, by analogy with the increasing weighted
// votes of [7, 8, 10]).
//
// Guarantees (Theorem 7), for ANY number of distinct input values and any
// location-oblivious adversary:
//   individual work <= 2 lg n + O(1)       (deterministic worst case)
//   expected total work <= 6n
//   agreement probability >= (1 - e^{-1/4})/4 ≈ 0.0553
// Validity: only input values are ever written.  Coherence: vacuous (the
// decision bit is always 0).
#pragma once

#include "core/deciding.h"
#include "exec/address_space.h"
#include "exec/environment.h"
#include "obs/obs.h"
#include "util/prob.h"

namespace modcon {

// Impatience schedules for the ablation study (E12).  The paper's
// schedule multiplies the write probability by 2 after every miss;
// `numer/denom` generalizes the growth factor g = numer/denom >= 1:
// attempt k writes with probability min(g^k / n, 1).  g = 1 degenerates
// to the fixed-probability CIL-style baseline.
struct impatience_schedule {
  std::uint32_t numer = 2;
  std::uint32_t denom = 1;

  friend bool operator==(const impatience_schedule&,
                         const impatience_schedule&) = default;

  // min(g^k / n, 1) = min(numer^k / (denom^k * n), 1), exact up to a
  // shared right-shift renormalization once the 128-bit intermediates
  // would overflow (far beyond any probability the algorithms can tell
  // apart from its neighbour).
  prob probability(unsigned k, std::uint64_t n) const {
    unsigned __int128 num = 1;
    unsigned __int128 den = n;
    for (unsigned i = 0; i < k; ++i) {
      num *= numer;
      den *= denom;
      if (num >= den) return prob::always();
      while (den >= (static_cast<unsigned __int128>(1) << 96) ||
             num >= (static_cast<unsigned __int128>(1) << 96)) {
        num >>= 32;
        den >>= 32;
        if (num == 0) num = 1;
      }
    }
    if (num >= den) return prob::always();
    while (den > ~std::uint64_t{0}) {
      num >>= 16;
      den >>= 16;
      if (num == 0) num = 1;
    }
    return prob(static_cast<std::uint64_t>(num),
                static_cast<std::uint64_t>(den));
  }

  bool is_doubling() const { return numer == 2 * denom; }

  // Incremental evaluator for the retry loop: next() on its k-th call
  // returns exactly probability(k, n), but walks the 128-bit recurrence
  // one multiply at a time instead of replaying all k iterations from
  // scratch.  Bit-identical by construction: the state after k calls is
  // the state probability(k, n)'s loop reaches after k iterations, and
  // the final renormalization happens on a copy, as there.
  class stepper {
   public:
    stepper(const impatience_schedule& s, std::uint64_t n)
        : numer_(s.numer), denom_(s.denom), num_(1), den_(n) {}

    prob next() {
      if (first_) {
        first_ = false;
      } else if (!saturated_) {
        num_ *= numer_;
        den_ *= denom_;
        if (num_ >= den_) {
          saturated_ = true;  // probability()'s in-loop early return
        } else {
          while (den_ >= (static_cast<unsigned __int128>(1) << 96) ||
                 num_ >= (static_cast<unsigned __int128>(1) << 96)) {
            num_ >>= 32;
            den_ >>= 32;
            if (num_ == 0) num_ = 1;
          }
        }
      }
      if (saturated_ || num_ >= den_) return prob::always();
      unsigned __int128 num = num_;
      unsigned __int128 den = den_;
      while (den > ~std::uint64_t{0}) {
        num >>= 16;
        den >>= 16;
        if (num == 0) num = 1;
      }
      return prob(static_cast<std::uint64_t>(num),
                  static_cast<std::uint64_t>(den));
    }

   private:
    std::uint32_t numer_;
    std::uint32_t denom_;
    unsigned __int128 num_;
    unsigned __int128 den_;
    bool saturated_ = false;
    bool first_ = true;
  };
};

template <typename Env>
class impatient_conciliator final : public deciding_object<Env> {
 public:
  // `detect_success` opts into the footnote-to-Theorem-7 model extension
  // (a process learns whether its probabilistic write applied and can
  // return immediately, saving two operations); the default is the
  // paper's plain probabilistic-write model.
  explicit impatient_conciliator(address_space& mem,
                                 impatience_schedule schedule = {},
                                 bool detect_success = false)
      : r_(mem.alloc(kBot)),
        schedule_(schedule),
        detect_success_(detect_success) {
    MODCON_CHECK_MSG(schedule.denom >= 1 && schedule.numer >= schedule.denom,
                     "growth factor must be >= 1");
  }

  proc<decided> invoke(Env& env, value_t v) override {
    MODCON_CHECK_MSG(v < kBot, "⊥ is not a valid input");
    obs::span_scope<Env> sp(env, obs::span_kind::conciliator, 0,
                            std::string_view("impatient-first-mover"));
    const auto n = static_cast<std::uint64_t>(env.n());
    impatience_schedule::stepper ps(schedule_, n);
    bool first_read = true;
    for (;;) {
      word u = co_await env.read(r_);
      if (u != kBot) {
        if (first_read) obs::count(env, obs::counter::first_mover_wins);
        sp.set_outcome(false, u);
        co_return decided{false, u};
      }
      first_read = false;
      prob p = ps.next();  // == schedule_.probability(k, n) at attempt k
      obs::count(env, obs::counter::conciliator_attempts);
      if (detect_success_) {
        bool applied = co_await env.prob_write_detect(r_, v, p);
        if (applied) {
          sp.set_outcome(false, v);
          co_return decided{false, v};
        }
      } else {
        co_await env.prob_write(r_, v, p);
      }
    }
  }

  std::string name() const override { return "impatient-first-mover"; }

  // Theorem 7's agreement-probability lower bound.
  static constexpr double agreement_bound() {
    return 0.25 * (1.0 - 0.77880078307140486825);  // (1 - e^{-1/4}) / 4
  }

  // Deterministic individual-work bound: lg n + 2 reads, lg n + 1 writes.
  static std::uint64_t individual_work_bound(std::uint64_t n);

  reg_id register_id() const { return r_; }

 private:
  reg_id r_;
  impatience_schedule schedule_;
  bool detect_success_;
};

template <typename Env>
std::uint64_t impatient_conciliator<Env>::individual_work_bound(
    std::uint64_t n) {
  // After ceil(lg n) misses the write probability reaches 1, so a process
  // performs at most ceil(lg n) + 1 writes and ceil(lg n) + 2 reads.
  std::uint64_t lg = 0;
  while ((std::uint64_t{1} << lg) < n) ++lg;
  return 2 * lg + 3;
}

}  // namespace modcon
