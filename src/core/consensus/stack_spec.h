// Declarative stack descriptors: one value type that names everything a
// consensus stack is made of, plus a registry keying the canonical specs
// by name.
//
// Before this existed every bench, tool, and app built its stacks through
// ad-hoc `object_factory<Env>` lambdas copied from builder.h, and each
// binary grew its own name -> lambda table for its --stack flag.  A
// `stack_spec` is plain data — protocol shape, conciliator family, quorum
// system, bounds, coin parameters — so the same spec can be printed,
// compared, round-tripped through its registry name, and built for either
// backend (`build<sim::sim_env>` / `build<rt::rt_env>`).  The registry is
// the single source of truth for what "impatient", "bounded", ... mean;
// everything that accepts a stack name resolves it here.
//
// Specs deliberately cover the *standard* stacks.  An experiment that
// needs a bespoke composition (table quorums, a custom fallback, an
// instrumented ratifier) still writes the object graph out of the parts
// in core/ — the registry is for the shared vocabulary, not a plugin
// system.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "baseline/cil_consensus.h"
#include "core/conciliator/fixed_probability.h"
#include "core/conciliator/impatient.h"
#include "core/consensus/bounded.h"
#include "core/consensus/ratifier_only.h"
#include "core/consensus/unbounded.h"
#include "core/ratifier/quorum_ratifier.h"
#include "exec/address_space.h"
#include "quorum/quorum_system.h"
#include "util/assertx.h"
#include "util/bits.h"

namespace modcon {

// Which composition of the paper's objects the stack uses.
enum class protocol_kind : std::uint8_t {
  unbounded,      // §4.1: R₋₁; R₀; C₁; R₁; … materialized lazily
  bounded,        // Theorem 5: truncated prefix + always-deciding fallback
  ratifier_only,  // §4.2: the ratifier ladder, no conciliators
  cil,            // the bare Chor–Israeli–Li-style baseline (no stack)
};

enum class conciliator_kind : std::uint8_t {
  impatient,          // Theorem 7 first-mover conciliator
  fixed_probability,  // untuned p = num/(den_per_n · n) probabilistic write
};

// Quorum system family.  `adaptive` picks binary for m <= 2 and Bollobás
// otherwise — the convention every bench and the trace tool already used.
enum class quorum_kind : std::uint8_t { adaptive, binary, bollobas, bitvector };

struct stack_spec {
  protocol_kind protocol = protocol_kind::unbounded;
  conciliator_kind conciliator = conciliator_kind::impatient;
  quorum_kind quorums = quorum_kind::adaptive;
  // Value-domain size Σ = [0, m); sizes the quorum system, not the
  // protocol shape — registry names identify specs modulo m.
  std::uint64_t m = 2;
  // bounded: conciliator/ratifier rounds k before the fallback.
  // kAutoRounds = ceil(lg n) + 4, resolved against the trial's n at build
  // time; 0 is a legal explicit value (every invocation falls through to
  // the fallback — the E8 ablation's degenerate endpoint).
  static constexpr std::size_t kAutoRounds = static_cast<std::size_t>(-1);
  std::size_t rounds = kAutoRounds;
  // ratifier_only: ladder length before giving up.
  std::size_t max_rounds = 100'000;
  // impatient conciliator tuning (Theorem 7 / E12 ablation).
  impatience_schedule schedule{};
  // fixed_probability conciliator: p = coin_num / (coin_den_per_n · n).
  std::uint64_t coin_num = 1;
  std::uint64_t coin_den_per_n = 2;
  // Theorem 7 footnote: detecting probabilistic writes.
  bool detect_success = false;
  // Crash-recovery survivability: partition the stack's registers into
  // persistent and volatile memory (exec::durability) and add a
  // persistent decision-pin register as the recovery rejoin point.
  // Ratifier boards, the CIL fallback, and the pin stay persistent (they
  // carry the coherence that drags a recovered process to the decided
  // value); conciliator registers are allocated volatile — a recovery
  // wipe merely reopens a race, costing probability, never safety.  Like
  // m, this is a workload/fault-model parameter: it does not change the
  // stack's registry name.
  bool recoverable = false;

  friend bool operator==(const stack_spec&, const stack_spec&) = default;

  // Fluent copies for grid sweeps: spec-valued, never mutating.
  stack_spec with_m(std::uint64_t values) const {
    stack_spec s = *this;
    s.m = values;
    return s;
  }
  stack_spec with_rounds(std::size_t k) const {
    stack_spec s = *this;
    s.rounds = k;
    return s;
  }
  stack_spec with_max_rounds(std::size_t k) const {
    stack_spec s = *this;
    s.max_rounds = k;
    return s;
  }
  stack_spec with_schedule(impatience_schedule sched) const {
    stack_spec s = *this;
    s.schedule = sched;
    return s;
  }
  stack_spec with_quorums(quorum_kind q) const {
    stack_spec s = *this;
    s.quorums = q;
    return s;
  }
  stack_spec with_recovery() const {
    stack_spec s = *this;
    s.recoverable = true;
    return s;
  }

  std::shared_ptr<const quorum_system> make_quorums() const {
    switch (quorums) {
      case quorum_kind::adaptive:
        return m <= 2 ? make_binary_quorums() : make_bollobas_quorums(m);
      case quorum_kind::binary: return make_binary_quorums();
      case quorum_kind::bollobas: return make_bollobas_quorums(m);
      case quorum_kind::bitvector: return make_bitvector_quorums(m);
    }
    MODCON_CHECK_MSG(false, "unknown quorum kind");
    return nullptr;
  }

  // Materializes the spec as a deciding object over `mem` for a trial of
  // `n` processes.  `mem` must outlive the object (enforced in debug
  // builds by the address-space liveness tag; see exec/address_space.h).
  template <typename Env>
  std::unique_ptr<deciding_object<Env>> build(address_space& mem,
                                              std::size_t n) const;
};

// Human-readable echo: "bounded(m=16,rounds=8)" — diagnostic only, not
// parsed by anything.
std::string to_string(const stack_spec& spec);

// ---------------------------------------------------------------------
// Registry: the canonical named specs, in a stable order.
// ---------------------------------------------------------------------

inline const std::vector<std::pair<std::string, stack_spec>>&
stack_registry() {
  static const std::vector<std::pair<std::string, stack_spec>> entries = [] {
    std::vector<std::pair<std::string, stack_spec>> r;
    // The paper's headline protocol (Theorem 7 conciliators + quorum
    // ratifiers, unbounded construction).
    r.emplace_back("impatient", stack_spec{});
    // Theorem 5's bounded-space variant, CIL fallback.
    r.emplace_back("bounded",
                   stack_spec{.protocol = protocol_kind::bounded});
    // §4.2 ratifier ladder.
    r.emplace_back("ratifier-only",
                   stack_spec{.protocol = protocol_kind::ratifier_only});
    // Unbounded construction with the untuned fixed-probability
    // conciliator (the E9 "what the impatience schedule buys" baseline).
    r.emplace_back(
        "fixed-probability",
        stack_spec{.conciliator = conciliator_kind::fixed_probability});
    // The bare racing-consensus baseline.
    r.emplace_back("cil", stack_spec{.protocol = protocol_kind::cil});
    return r;
  }();
  return entries;
}

inline const stack_spec* find_stack(std::string_view name) {
  for (const auto& [key, spec] : stack_registry())
    if (key == name) return &spec;
  return nullptr;
}

// Registry lookup that treats an unknown name as a programming error —
// CLI frontends should use find_stack and print the menu instead.
inline stack_spec stack_for(std::string_view name) {
  const stack_spec* s = find_stack(name);
  MODCON_CHECK_MSG(s != nullptr, "unknown stack '" << name << "'");
  return *s;
}

inline std::vector<std::string> stack_names() {
  std::vector<std::string> names;
  for (const auto& [key, spec] : stack_registry()) names.push_back(key);
  return names;
}

// Inverse lookup: the registry name whose spec equals this one, ignoring
// m and recoverable (workload/fault-model parameters — `with_m` and
// `with_recovery` must not change a stack's name).
inline std::optional<std::string> name_of(const stack_spec& spec) {
  for (const auto& [key, registered] : stack_registry()) {
    stack_spec probe = registered;
    probe.m = spec.m;
    probe.recoverable = spec.recoverable;
    if (probe == spec) return key;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------
// Building
// ---------------------------------------------------------------------

namespace detail {

// The former public *_factory helpers, now implementation detail of spec
// building (and of the make_* convenience wrappers below for callers with
// bespoke quorum systems).
template <typename Env>
object_factory<Env> ratifier_factory(address_space& mem,
                                     std::shared_ptr<const quorum_system> qs) {
  return [&mem, qs] {
    return std::make_unique<quorum_ratifier<Env>>(mem, qs);
  };
}

template <typename Env>
object_factory<Env> conciliator_factory(address_space& mem,
                                        const stack_spec& spec) {
  // Under a recoverable spec the conciliators allocate their registers in
  // the volatile partition (factories run lazily, so the durability scope
  // must wrap each construction, not the spec build).
  const bool vol = spec.recoverable;
  if (spec.conciliator == conciliator_kind::fixed_probability) {
    return [&mem, num = spec.coin_num, den = spec.coin_den_per_n, vol] {
      std::optional<durability_scope> ds;
      if (vol) ds.emplace(mem, durability::volatile_mem);
      return std::make_unique<fixed_probability_conciliator<Env>>(mem, num,
                                                                  den);
    };
  }
  return [&mem, sched = spec.schedule, detect = spec.detect_success, vol] {
    std::optional<durability_scope> ds;
    if (vol) ds.emplace(mem, durability::volatile_mem);
    return std::make_unique<impatient_conciliator<Env>>(mem, sched, detect);
  };
}

// Generic crash-recovery shell for protocols without a native
// decision-pin parameter (the CIL baseline): read the persistent pin
// first, short-circuit if some process already decided, and pin the
// decision on the way out.
template <typename Env>
class decision_pinned final : public deciding_object<Env> {
 public:
  decision_pinned(reg_id pin, std::unique_ptr<deciding_object<Env>> inner)
      : pin_(pin), inner_(std::move(inner)) {}

  proc<decided> invoke(Env& env, value_t input) override {
    word pinned = co_await env.read(pin_);
    if (pinned != kBot) co_return decode_decided(pinned);
    decided d = co_await inner_->invoke(env, input);
    if (d.decide) co_await env.write(pin_, encode_decided(d));
    co_return d;
  }

  std::string name() const override { return inner_->name() + "+pin"; }

 private:
  reg_id pin_;
  std::unique_ptr<deciding_object<Env>> inner_;
};

}  // namespace detail

template <typename Env>
std::unique_ptr<deciding_object<Env>> stack_spec::build(address_space& mem,
                                                        std::size_t n) const {
  auto qs = make_quorums();
  // The decision pin is allocated first (persistent — the default
  // durability), so every recoverable stack starts with the rejoin
  // register at a known location before any lazy allocation happens.
  reg_id pin = recoverable ? mem.alloc(kBot) : kInvalidReg;
  switch (protocol) {
    case protocol_kind::unbounded:
      return std::make_unique<unbounded_consensus<Env>>(
          detail::ratifier_factory<Env>(mem, std::move(qs)),
          detail::conciliator_factory<Env>(mem, *this), pin);
    case protocol_kind::bounded: {
      std::size_t k = rounds == kAutoRounds ? lg_ceil(n) + 4 : rounds;
      return std::make_unique<bounded_consensus<Env>>(
          detail::ratifier_factory<Env>(mem, std::move(qs)),
          detail::conciliator_factory<Env>(mem, *this), k,
          std::make_unique<cil_consensus<Env>>(mem, n), pin);
    }
    case protocol_kind::ratifier_only:
      return std::make_unique<ratifier_only_consensus<Env>>(
          detail::ratifier_factory<Env>(mem, std::move(qs)), max_rounds,
          pin);
    case protocol_kind::cil: {
      auto obj = std::make_unique<cil_consensus<Env>>(mem, n);
      if (pin == kInvalidReg) return obj;
      return std::make_unique<detail::decision_pinned<Env>>(pin,
                                                            std::move(obj));
    }
  }
  MODCON_CHECK_MSG(false, "unknown protocol kind");
  return nullptr;
}

// Adapter to the analysis layer's object_builder<Env> shape (a plain
// lambda — usable anywhere a `(address_space&, size_t n)` builder goes).
template <typename Env>
auto stack_builder(stack_spec spec) {
  return [spec](address_space& mem, std::size_t n) {
    return spec.build<Env>(mem, n);
  };
}

inline std::string to_string(const stack_spec& spec) {
  std::string out;
  switch (spec.protocol) {
    case protocol_kind::unbounded: out = "unbounded"; break;
    case protocol_kind::bounded: out = "bounded"; break;
    case protocol_kind::ratifier_only: out = "ratifier-only"; break;
    case protocol_kind::cil: out = "cil"; break;
  }
  if (auto name = name_of(spec)) out = *name;
  out += "(m=" + std::to_string(spec.m);
  if (spec.protocol == protocol_kind::bounded)
    out += ",rounds=" + (spec.rounds == stack_spec::kAutoRounds
                             ? std::string("auto")
                             : std::to_string(spec.rounds));
  if (spec.recoverable) out += ",recoverable";
  out += ")";
  return out;
}

}  // namespace modcon
