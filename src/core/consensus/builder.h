// Convenience builders for the standard consensus stacks, for callers
// that hold a bespoke quorum system (table quorums in tests, instrumented
// systems in the extensions).  Everything else — benches, tools, the
// multi-shot log — should go through the declarative stack_spec registry
// (core/consensus/stack_spec.h) instead of naming these directly.
//
// The address_space captured by every builder must outlive the consensus
// object (in practice: the world outlives everything it hosts).  Debug
// and sanitizer builds enforce this: the address space carries a liveness
// tag that register allocation and access assert on, so a dangling
// capture fails loudly instead of corrupting a freed register file.
#pragma once

#include <memory>

#include "core/consensus/stack_spec.h"
#include "util/bits.h"

namespace modcon {

// The paper's headline protocol: impatient conciliators + quorum
// ratifiers in the unbounded construction.  Binary consensus uses the
// binary quorum system; m-valued consensus the Bollobás (or bit-vector)
// system.
template <typename Env>
std::unique_ptr<unbounded_consensus<Env>> make_impatient_consensus(
    address_space& mem, std::shared_ptr<const quorum_system> qs) {
  return std::make_unique<unbounded_consensus<Env>>(
      detail::ratifier_factory<Env>(mem, std::move(qs)),
      detail::conciliator_factory<Env>(mem, stack_spec{}));
}

// Theorem 5's bounded-space variant with the CIL racing protocol as the
// fallback K.  rounds = O(log n) keeps the fallback's polynomial cost
// negligible; 0 picks ceil(lg n) + 4.
template <typename Env>
std::unique_ptr<bounded_consensus<Env>> make_bounded_impatient_consensus(
    address_space& mem, std::shared_ptr<const quorum_system> qs,
    std::size_t n, std::size_t rounds = 0) {
  if (rounds == 0) rounds = lg_ceil(n) + 4;
  return std::make_unique<bounded_consensus<Env>>(
      detail::ratifier_factory<Env>(mem, std::move(qs)),
      detail::conciliator_factory<Env>(mem, stack_spec{}), rounds,
      std::make_unique<cil_consensus<Env>>(mem, n));
}

// §4.2: the ratifier-only ladder (lean consensus when the quorums are
// binary); terminates only under restricted schedulers.
template <typename Env>
std::unique_ptr<ratifier_only_consensus<Env>> make_ratifier_only_consensus(
    address_space& mem, std::shared_ptr<const quorum_system> qs,
    std::size_t max_rounds = 100000) {
  return std::make_unique<ratifier_only_consensus<Env>>(
      detail::ratifier_factory<Env>(mem, std::move(qs)), max_rounds);
}

}  // namespace modcon
