// Convenience builders for the standard consensus stacks.
//
// The address_space captured by every factory must outlive the consensus
// object (in practice: the world outlives everything it hosts).
#pragma once

#include <memory>

#include "baseline/cil_consensus.h"
#include "core/conciliator/fixed_probability.h"
#include "core/conciliator/impatient.h"
#include "core/consensus/bounded.h"
#include "core/consensus/ratifier_only.h"
#include "core/consensus/unbounded.h"
#include "core/ratifier/quorum_ratifier.h"
#include "quorum/quorum_system.h"
#include "util/bits.h"

namespace modcon {

template <typename Env>
object_factory<Env> ratifier_factory(
    address_space& mem, std::shared_ptr<const quorum_system> qs) {
  return [&mem, qs] {
    return std::make_unique<quorum_ratifier<Env>>(mem, qs);
  };
}

template <typename Env>
object_factory<Env> impatient_factory(address_space& mem) {
  return [&mem] { return std::make_unique<impatient_conciliator<Env>>(mem); };
}

template <typename Env>
object_factory<Env> fixed_probability_factory(address_space& mem,
                                              std::uint64_t num = 1,
                                              std::uint64_t den_per_n = 2) {
  return [&mem, num, den_per_n] {
    return std::make_unique<fixed_probability_conciliator<Env>>(mem, num,
                                                                den_per_n);
  };
}

// The paper's headline protocol: impatient conciliators + quorum
// ratifiers in the unbounded construction.  Binary consensus uses the
// binary quorum system; m-valued consensus the Bollobás (or bit-vector)
// system.
template <typename Env>
std::unique_ptr<unbounded_consensus<Env>> make_impatient_consensus(
    address_space& mem, std::shared_ptr<const quorum_system> qs) {
  return std::make_unique<unbounded_consensus<Env>>(
      ratifier_factory<Env>(mem, std::move(qs)), impatient_factory<Env>(mem));
}

// Theorem 5's bounded-space variant with the CIL racing protocol as the
// fallback K.  rounds = O(log n) keeps the fallback's polynomial cost
// negligible; 0 picks ceil(lg n) + 4.
template <typename Env>
std::unique_ptr<bounded_consensus<Env>> make_bounded_impatient_consensus(
    address_space& mem, std::shared_ptr<const quorum_system> qs,
    std::size_t n, std::size_t rounds = 0) {
  if (rounds == 0) rounds = lg_ceil(n) + 4;
  return std::make_unique<bounded_consensus<Env>>(
      ratifier_factory<Env>(mem, std::move(qs)), impatient_factory<Env>(mem),
      rounds, std::make_unique<cil_consensus<Env>>(mem, n));
}

// §4.2: the ratifier-only ladder (lean consensus when the quorums are
// binary); terminates only under restricted schedulers.
template <typename Env>
std::unique_ptr<ratifier_only_consensus<Env>> make_ratifier_only_consensus(
    address_space& mem, std::shared_ptr<const quorum_system> qs,
    std::size_t max_rounds = 100000) {
  return std::make_unique<ratifier_only_consensus<Env>>(
      ratifier_factory<Env>(mem, std::move(qs)), max_rounds);
}

}  // namespace modcon
