// Consensus from ratifiers only (§4.2): R = R₁; R₂; …
//
// With no conciliators there is no randomized escape hatch, so progress
// relies on scheduling restrictions: under the noisy scheduler of [5] the
// accumulated timing noise eventually pushes some process through a
// ratifier alone (for binary ratifiers this is essentially the
// lean-consensus protocol, terminating in O(log n) individual work), and
// under priority scheduling [27] the highest-priority process trivially
// runs alone.  Under an unrestricted adversary this protocol can run
// forever; `max_rounds` bounds the ladder so a hostile schedule surfaces
// as an error instead of unbounded allocation.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/consensus/unbounded.h"
#include "core/deciding.h"
#include "obs/obs.h"

namespace modcon {

template <typename Env>
class ratifier_only_consensus final : public deciding_object<Env> {
 public:
  // `decision_pin`: crash-recovery rejoin register (see unbounded.h).
  ratifier_only_consensus(object_factory<Env> make_ratifier,
                          std::size_t max_rounds = 100000,
                          reg_id decision_pin = kInvalidReg)
      : make_ratifier_(std::move(make_ratifier)),
        max_rounds_(max_rounds),
        decision_pin_(decision_pin) {}

  proc<decided> invoke(Env& env, value_t input) override {
    if (decision_pin_ != kInvalidReg) {
      word pinned = co_await env.read(decision_pin_);
      if (pinned != kBot) co_return decode_decided(pinned);
    }
    decided d{false, input};
    std::size_t i = 0;
    while (!d.decide) {
      MODCON_CHECK_MSG(i < max_rounds_,
                       "ratifier-only ladder exceeded " << max_rounds_
                           << " rounds; the scheduler is too adversarial");
      deciding_object<Env>* p = part(i);
      obs::span_scope<Env> sp(env, obs::span_kind::round,
                              static_cast<std::uint32_t>(i),
                              [p] { return p->name(); });
      d = co_await p->invoke(env, d.value);
      sp.set_outcome(d.decide, d.value);
      sp.close();
      ++i;
    }
    if (decision_pin_ != kInvalidReg)
      co_await env.write(decision_pin_, encode_decided(d));
    co_return d;
  }

  proc<value_t> decide(Env& env, value_t input) {
    decided d = co_await invoke(env, input);
    co_return d.value;
  }

  std::string name() const override { return "ratifier-only-consensus"; }

  std::size_t parts_built() const {
    std::scoped_lock lk(mu_);
    return parts_.size();
  }

 private:
  deciding_object<Env>* part(std::size_t i) {
    std::scoped_lock lk(mu_);
    while (parts_.size() <= i) parts_.push_back(make_ratifier_());
    return parts_[i].get();
  }

  object_factory<Env> make_ratifier_;
  std::size_t max_rounds_;
  reg_id decision_pin_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<deciding_object<Env>>> parts_;
};

}  // namespace modcon
