// Bounded-space consensus (Theorem 5):
//
//     B = (R₋₁; R₀; C₁; R₁; …; C_k; R_k; K)
//
// where K is any bounded-space consensus protocol.  B decides because K
// does if nothing earlier has; expected cost is
// O((1/δ)(T(R) + T(C)) + (1-δ)^k · T(K)), so with constant δ and
// polynomial T(K), k = O(log n) already hides K's cost inside the
// conciliator/ratifier budget.  All k rounds are materialized eagerly —
// that is the point: space is fixed up front.
//
// Our fallback K is the Chor–Israeli–Li-style racing consensus
// (src/baseline/cil_consensus.h), which is bounded-space in the
// probabilistic-write model; any deciding object that always decides can
// be substituted.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <utility>

#include "core/compose.h"
#include "core/consensus/unbounded.h"
#include "core/deciding.h"
#include "obs/obs.h"

namespace modcon {

template <typename Env>
class bounded_consensus final : public deciding_object<Env> {
 public:
  // `rounds` is k; `fallback` must decide on every invocation.
  // `decision_pin` (optional) is the crash-recovery rejoin register: a
  // persistent kBot-initialized cell written with encode_decided(d) on
  // decide, read first so a recovered process short-circuits instead of
  // re-running the prefix and the fallback (see unbounded.h).
  bounded_consensus(const object_factory<Env>& make_ratifier,
                    const object_factory<Env>& make_conciliator,
                    std::size_t rounds,
                    std::unique_ptr<deciding_object<Env>> fallback,
                    reg_id decision_pin = kInvalidReg)
      : rounds_(rounds),
        fallback_(std::move(fallback)),
        decision_pin_(decision_pin) {
    prefix_.append(make_ratifier());  // R₋₁
    prefix_.append(make_ratifier());  // R₀
    for (std::size_t i = 0; i < rounds; ++i) {
      prefix_.append(make_conciliator());  // C_{i+1}
      prefix_.append(make_ratifier());     // R_{i+1}
    }
  }

  proc<decided> invoke(Env& env, value_t input) override {
    if (decision_pin_ != kInvalidReg) {
      word pinned = co_await env.read(decision_pin_);
      if (pinned != kBot) co_return decode_decided(pinned);
    }
    decided d = co_await prefix_.invoke(env, input);
    if (!d.decide) {
      fallback_entries_.fetch_add(1, std::memory_order_relaxed);
      obs::count(env, obs::counter::fallback_entries);
      obs::span_scope<Env> sp(
          env, obs::span_kind::fallback,
          static_cast<std::uint32_t>(2 + 2 * rounds_),
          [this] { return fallback_->name(); });
      d = co_await fallback_->invoke(env, d.value);
      sp.set_outcome(d.decide, d.value);
      MODCON_CHECK_MSG(d.decide, "fallback K failed to decide");
    }
    if (decision_pin_ != kInvalidReg)
      co_await env.write(decision_pin_, encode_decided(d));
    co_return d;
  }

  proc<value_t> decide(Env& env, value_t input) {
    decided d = co_await invoke(env, input);
    co_return d.value;
  }

  std::string name() const override { return "bounded-consensus"; }

  std::size_t rounds() const { return rounds_; }
  // How many invocations fell through to K; the measured analogue of the
  // (1-δ)^k term.
  std::uint64_t fallback_entries() const {
    return fallback_entries_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t rounds_;
  sequence<Env> prefix_;
  std::unique_ptr<deciding_object<Env>> fallback_;
  reg_id decision_pin_;
  std::atomic<std::uint64_t> fallback_entries_{0};
};

}  // namespace modcon
