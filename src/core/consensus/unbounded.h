// Consensus from an alternating sequence of ratifiers and conciliators
// (§4.1, unbounded construction):
//
//     U = R₋₁; R₀; C₁; R₁; C₂; R₂; …
//
// The initial R₋₁; R₀ prefix is the fast path (credited by the paper to
// Azza Abouzeid): a process that finishes R₋₁ before any process with a
// different input arrives cannot distinguish the execution from a
// unanimous one, so acceptance forces it to decide, and coherence then
// drags every other process to the same value through R₀.  In a contended
// execution, each conciliator produces agreement with probability δ and
// the following ratifier converts agreement into decisions, so the
// expected number of (C; R) rounds is at most 1/δ and
// E[T(U)] <= 2 T(R) + (1/δ)(T(C) + T(R)).
//
// The sequence is materialized lazily: round i's objects (and their
// registers) are allocated the first time any process reaches round i.
// Space is unbounded in the worst case — see bounded.h for Theorem 5's
// truncation.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/deciding.h"

namespace modcon {

template <typename Env>
using object_factory =
    std::function<std::unique_ptr<deciding_object<Env>>()>;

template <typename Env>
class unbounded_consensus final : public deciding_object<Env> {
 public:
  // Both factories are invoked lazily, under a lock, in round order.
  unbounded_consensus(object_factory<Env> make_ratifier,
                      object_factory<Env> make_conciliator)
      : make_ratifier_(std::move(make_ratifier)),
        make_conciliator_(std::move(make_conciliator)) {}

  // Consensus: always returns (1, v).  Termination holds with
  // probability 1 because some conciliator eventually produces agreement
  // and the next ratifier then forces every process to decide.
  proc<decided> invoke(Env& env, value_t input) override {
    decided d{false, input};
    std::size_t i = 0;
    while (!d.decide) {
      d = co_await part(i)->invoke(env, d.value);
      ++i;
    }
    co_return d;
  }

  // Convenience wrapper returning the bare decision value.
  proc<value_t> decide(Env& env, value_t input) {
    decided d = co_await invoke(env, input);
    co_return d.value;
  }

  std::string name() const override { return "unbounded-consensus"; }

  // Number of objects materialized so far: 2 + 2 * (conciliator rounds
  // reached).  An expected-cost probe for E2/E8.
  std::size_t parts_built() const {
    std::scoped_lock lk(mu_);
    return parts_.size();
  }

 private:
  deciding_object<Env>* part(std::size_t i) {
    std::scoped_lock lk(mu_);
    while (parts_.size() <= i) {
      std::size_t next = parts_.size();
      // Schedule: R₋₁, R₀, then alternating C_j, R_j.
      if (next < 2 || next % 2 == 1)
        parts_.push_back(make_ratifier_());
      else
        parts_.push_back(make_conciliator_());
    }
    return parts_[i].get();
  }

  object_factory<Env> make_ratifier_;
  object_factory<Env> make_conciliator_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<deciding_object<Env>>> parts_;
};

}  // namespace modcon
