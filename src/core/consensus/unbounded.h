// Consensus from an alternating sequence of ratifiers and conciliators
// (§4.1, unbounded construction):
//
//     U = R₋₁; R₀; C₁; R₁; C₂; R₂; …
//
// The initial R₋₁; R₀ prefix is the fast path (credited by the paper to
// Azza Abouzeid): a process that finishes R₋₁ before any process with a
// different input arrives cannot distinguish the execution from a
// unanimous one, so acceptance forces it to decide, and coherence then
// drags every other process to the same value through R₀.  In a contended
// execution, each conciliator produces agreement with probability δ and
// the following ratifier converts agreement into decisions, so the
// expected number of (C; R) rounds is at most 1/δ and
// E[T(U)] <= 2 T(R) + (1/δ)(T(C) + T(R)).
//
// The sequence is materialized lazily: round i's objects (and their
// registers) are allocated the first time any process reaches round i.
// Space is unbounded in the worst case — see bounded.h for Theorem 5's
// truncation.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/deciding.h"
#include "core/types.h"
#include "exec/types.h"
#include "obs/obs.h"

namespace modcon {

template <typename Env>
using object_factory =
    std::function<std::unique_ptr<deciding_object<Env>>()>;

template <typename Env>
class unbounded_consensus final : public deciding_object<Env> {
 public:
  // Both factories are invoked lazily, under a lock, in round order.
  // `decision_pin` (optional) is a *persistent* register holding kBot
  // until the first decision and encode_decided(d) afterwards: the
  // crash-recovery rejoin point.  A process whose volatile state was
  // wiped re-runs from scratch, reads the pin, and short-circuits to the
  // decided value instead of re-racing the ladder (the persistent
  // ratifier boards would drag it there anyway; the pin makes the rejoin
  // one read).
  unbounded_consensus(object_factory<Env> make_ratifier,
                      object_factory<Env> make_conciliator,
                      reg_id decision_pin = kInvalidReg)
      : make_ratifier_(std::move(make_ratifier)),
        make_conciliator_(std::move(make_conciliator)),
        decision_pin_(decision_pin) {}

  // Consensus: always returns (1, v).  Termination holds with
  // probability 1 because some conciliator eventually produces agreement
  // and the next ratifier then forces every process to decide.
  proc<decided> invoke(Env& env, value_t input) override {
    if (decision_pin_ != kInvalidReg) {
      word pinned = co_await env.read(decision_pin_);
      if (pinned != kBot) co_return decode_decided(pinned);
    }
    decided d{false, input};
    std::size_t i = 0;
    while (!d.decide) {
      deciding_object<Env>* p = part(i);
      obs::span_scope<Env> sp(env, obs::span_kind::round,
                              static_cast<std::uint32_t>(i),
                              [p] { return p->name(); });
      d = co_await p->invoke(env, d.value);
      sp.set_outcome(d.decide, d.value);
      sp.close();
      ++i;
    }
    if (decision_pin_ != kInvalidReg)
      co_await env.write(decision_pin_, encode_decided(d));
    co_return d;
  }

  // Convenience wrapper returning the bare decision value.
  proc<value_t> decide(Env& env, value_t input) {
    decided d = co_await invoke(env, input);
    co_return d.value;
  }

  std::string name() const override { return "unbounded-consensus"; }

  // Number of objects materialized so far: 2 + 2 * (conciliator rounds
  // reached).  An expected-cost probe for E2/E8.
  std::size_t parts_built() const {
    std::scoped_lock lk(mu_);
    return count_;
  }

 private:
  // The first kFast parts live in a fixed inline array and are published
  // through an acquire/release counter, so the consensus hot path (one
  // part() lookup per round per process) takes no lock for a round that
  // any process has already reached; the mutex serializes construction
  // only.  Executions deep enough to exhaust the array — thousands of
  // disagreeing rounds — fall back to the mutex-guarded overflow vector,
  // preserving the unbounded construction exactly.
  static constexpr std::size_t kFast = 64;

  deciding_object<Env>* part(std::size_t i) {
    if (i < ready_.load(std::memory_order_acquire)) [[likely]]
      return fast_[i].get();
    std::scoped_lock lk(mu_);
    while (count_ <= i) {
      std::size_t next = count_;
      // Schedule: R₋₁, R₀, then alternating C_j, R_j.
      auto obj = (next < 2 || next % 2 == 1) ? make_ratifier_()
                                             : make_conciliator_();
      if (next < kFast) {
        fast_[next] = std::move(obj);
        ready_.store(next + 1, std::memory_order_release);
      } else {
        overflow_.push_back(std::move(obj));
      }
      count_ = next + 1;
    }
    return i < kFast ? fast_[i].get() : overflow_[i - kFast].get();
  }

  object_factory<Env> make_ratifier_;
  object_factory<Env> make_conciliator_;
  reg_id decision_pin_;
  mutable std::mutex mu_;
  std::array<std::unique_ptr<deciding_object<Env>>, kFast> fast_;
  std::atomic<std::size_t> ready_{0};  // published prefix of fast_
  std::vector<std::unique_ptr<deciding_object<Env>>> overflow_;
  std::size_t count_ = 0;  // total built; guarded by mu_
};

}  // namespace modcon
