// m-valued consensus by bitwise reduction to binary consensus — the
// classic comparator for the paper's native m-valued stack (E3).
//
// Processes agree on the decision one bit at a time, most significant
// first: round i runs a binary consensus instance on bit i of each
// process's current candidate.  If a process loses a bit round it must
// repair its candidate to one that matches the agreed prefix; validity
// demands the repaired candidate be some process's actual input, so
// inputs are published in an announce array and the repair scans it for
// a prefix-consistent value.
//
// Such a value always exists: the winning bit was proposed by a process
// whose candidate already matched the agreed prefix (induction), and
// that candidate sits in the announce array — every candidate is either
// an original input (announced before any bit round) or was itself
// copied out of the array.
//
// Cost: ⌈lg m⌉ bit rounds, each a binary consensus (O(log n) expected
// individual work with the paper's stack) plus an O(n) repair scan in
// the worst case — O((n + log n) · log m) individual work versus the
// native stack's O(log n + log m).  This gap is exactly why the paper
// builds an m-valued ratifier instead of reducing to bits.
#pragma once

#include <memory>
#include <vector>

#include "core/consensus/unbounded.h"
#include "core/deciding.h"
#include "exec/address_space.h"
#include "exec/environment.h"
#include "util/bits.h"

namespace modcon {

template <typename Env>
class bitwise_consensus final : public deciding_object<Env> {
 public:
  // `make_binary` builds one binary consensus object per bit round.
  bitwise_consensus(address_space& mem, std::size_t n, std::uint64_t m,
                    const object_factory<Env>& make_binary)
      : n_(static_cast<std::uint32_t>(n)),
        m_(m),
        bits_(m <= 2 ? 1 : ceil_log2(m)),
        announce_(mem.alloc_block(n_, kBot)) {
    rounds_.reserve(bits_);
    for (unsigned i = 0; i < bits_; ++i) rounds_.push_back(make_binary());
  }

  proc<decided> invoke(Env& env, value_t v) override {
    MODCON_CHECK_MSG(v < m_, "input outside Σ");
    co_await env.write(announce_ + env.pid(), v);

    value_t candidate = v;
    value_t agreed = 0;
    for (unsigned i = bits_; i-- > 0;) {
      value_t my_bit = (candidate >> i) & 1;
      decided d = co_await rounds_[bits_ - 1 - i]->invoke(env, my_bit);
      MODCON_CHECK_MSG(d.decide, "bit round did not decide");
      agreed |= d.value << i;
      if (d.value != my_bit) {
        // Repair: adopt an announced value consistent with the agreed
        // prefix (bits i and above).
        candidate = co_await repair(env, agreed, i);
      }
    }
    co_return decided{true, candidate};
  }

  std::string name() const override { return "bitwise-consensus"; }

 private:
  proc<value_t> repair(Env& env, value_t agreed, unsigned low_bit) {
    for (std::uint32_t j = 0; j < n_; ++j) {
      word a = co_await env.read(announce_ + j);
      if (a == kBot) continue;
      if ((a >> low_bit) == (agreed >> low_bit)) co_return a;
    }
    MODCON_CHECK_MSG(false, "no announced value matches the agreed prefix");
    co_return 0;
  }

  std::uint32_t n_;
  std::uint64_t m_;
  unsigned bits_;
  reg_id announce_;
  std::vector<std::unique_ptr<deciding_object<Env>>> rounds_;
};

}  // namespace modcon
