// Sequential composition of deciding objects (Procedure Composition, §3.2).
//
// (X; Y): run X; if it decides, return its output immediately (Y is
// skipped — the "exception mechanism" of the paper); otherwise feed X's
// value to Y.  Composition preserves validity (Lemma 1), termination
// (Lemma 2) and — when every later object is also valid — coherence
// (Lemma 3), so composing weak consensus objects yields a weak consensus
// object (Corollary 4).  Composition is associative, so `sequence` keeps
// a flat list.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/deciding.h"

namespace modcon {

template <typename Env>
class sequence final : public deciding_object<Env> {
 public:
  using object_ptr = std::unique_ptr<deciding_object<Env>>;

  sequence() = default;
  explicit sequence(std::vector<object_ptr> parts)
      : parts_(std::move(parts)) {}

  sequence& append(object_ptr obj) {
    parts_.push_back(std::move(obj));
    return *this;
  }

  std::size_t size() const { return parts_.size(); }
  deciding_object<Env>& part(std::size_t i) { return *parts_[i]; }

  proc<decided> invoke(Env& env, value_t input) override {
    decided d{false, input};
    for (const auto& obj : parts_) {
      d = co_await obj->invoke(env, d.value);
      if (d.decide) break;
    }
    co_return d;
  }

  std::string name() const override {
    std::string s = "(";
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      if (i) s += "; ";
      s += parts_[i]->name();
    }
    return s + ")";
  }

 private:
  std::vector<object_ptr> parts_;
};

// (X; Y) for exactly two objects.
template <typename Env>
std::unique_ptr<sequence<Env>> compose(
    std::unique_ptr<deciding_object<Env>> x,
    std::unique_ptr<deciding_object<Env>> y) {
  auto s = std::make_unique<sequence<Env>>();
  s->append(std::move(x));
  s->append(std::move(y));
  return s;
}

}  // namespace modcon
