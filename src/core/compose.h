// Sequential composition of deciding objects (Procedure Composition, §3.2).
//
// (X; Y): run X; if it decides, return its output immediately (Y is
// skipped — the "exception mechanism" of the paper); otherwise feed X's
// value to Y.  Composition preserves validity (Lemma 1), termination
// (Lemma 2) and — when every later object is also valid — coherence
// (Lemma 3), so composing weak consensus objects yields a weak consensus
// object (Corollary 4).  Composition is associative, so `sequence` keeps
// a flat list.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/deciding.h"
#include "obs/obs.h"

namespace modcon {

// One stage invocation as seen by a composed stack: process `pid` entered
// stage `stage` carrying `input` and left with `output`.  The property
// auditor (check/auditor.h) replays these against the Lemma 1–3
// composition invariants — in particular "a decided prefix pins every
// later stage's input".
struct stage_record {
  process_id pid;
  std::uint32_t stage;
  value_t input;
  decided output;
};

// Optional audit log a `sequence` writes its stage records into.  Guarded
// by a mutex because the rt backend invokes stages from n real threads;
// the sim backend pays one uncontended lock per stage, only when a log is
// attached.
class composition_log {
 public:
  void append(const stage_record& r) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(r);
  }
  std::vector<stage_record> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<stage_record> records_;
};

template <typename Env>
class sequence final : public deciding_object<Env> {
 public:
  using object_ptr = std::unique_ptr<deciding_object<Env>>;

  sequence() = default;
  explicit sequence(std::vector<object_ptr> parts)
      : parts_(std::move(parts)) {}

  sequence& append(object_ptr obj) {
    parts_.push_back(std::move(obj));
    return *this;
  }

  std::size_t size() const { return parts_.size(); }
  deciding_object<Env>& part(std::size_t i) { return *parts_[i]; }

  // Attaches an audit log recording every stage invocation; `log` must
  // outlive the object.  nullptr detaches.
  void attach_log(composition_log* log) { log_ = log; }

  proc<decided> invoke(Env& env, value_t input) override {
    decided d{false, input};
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      value_t carried = d.value;
      obs::span_scope<Env> sp(env, obs::span_kind::stage,
                              static_cast<std::uint32_t>(i),
                              [&] { return parts_[i]->name(); });
      d = co_await parts_[i]->invoke(env, carried);
      sp.set_outcome(d.decide, d.value);
      sp.close();
      if (log_ != nullptr)
        log_->append({env.pid(), static_cast<std::uint32_t>(i), carried, d});
      if (d.decide) break;
    }
    co_return d;
  }

  std::string name() const override {
    std::string s = "(";
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      if (i) s += "; ";
      s += parts_[i]->name();
    }
    return s + ")";
  }

 private:
  std::vector<object_ptr> parts_;
  composition_log* log_ = nullptr;
};

// (X; Y) for exactly two objects.
template <typename Env>
std::unique_ptr<sequence<Env>> compose(
    std::unique_ptr<deciding_object<Env>> x,
    std::unique_ptr<deciding_object<Env>> y) {
  auto s = std::make_unique<sequence<Env>>();
  s->append(std::move(x));
  s->append(std::move(y));
  return s;
}

}  // namespace modcon
