// Core types of the conciliator/ratifier framework (§3).
#pragma once

#include "exec/types.h"
#include "util/assertx.h"

namespace modcon {

// Consensus values.  Values live in Σ = [0, m) for some m; kBot encodes ⊥.
using value_t = word;

// A deciding object's annotated output: (1, v) = decide v now,
// (0, v) = carry v to the next object in the composition (§3).
struct decided {
  bool decide;
  value_t value;

  friend bool operator==(const decided&, const decided&) = default;
};

// Top-level process programs return a single machine word; these helpers
// pack a `decided` into one so tests can observe decision bits end-to-end.
// Values must stay below 2^62 (plenty: the benches go up to m = 2^24).
inline constexpr word kDecideBit = word{1} << 62;

inline word encode_decided(decided d) {
  MODCON_CHECK_MSG(d.value < kDecideBit, "value too large to encode");
  return (d.decide ? kDecideBit : 0) | d.value;
}

inline decided decode_decided(word w) {
  return decided{(w & kDecideBit) != 0, w & (kDecideBit - 1)};
}

}  // namespace modcon
