// The deciding-object interface (§3).
//
// A deciding object is a one-shot shared-memory object: each process
// invokes it at most once, with a value in Σ, and receives a pair
// (decision bit, value).  All the paper's object classes — weak consensus
// objects, conciliators, ratifiers, and consensus itself — share this
// interface and differ only in which properties they guarantee:
//
//   validity       every output value is some process's input value
//   termination    every invocation completes with probability 1
//   coherence      if some process gets (1, v), nobody gets (d, v') v'≠v
//   probabilistic agreement (conciliator): all outputs equal w.p. >= δ
//   acceptance     (ratifier): all inputs v  ⇒  all outputs (1, v)
//
// Objects are shared: one instance serves all n processes, each calling
// invoke() from its own coroutine.  Implementations keep their mutable
// per-invocation state in coroutine locals; the object itself only owns
// register ids (allocated at construction from an address_space).
#pragma once

#include <string>

#include "core/types.h"
#include "exec/proc.h"
#include "obs/obs.h"

namespace modcon {

template <typename Env>
class deciding_object {
 public:
  virtual ~deciding_object() = default;

  // Each process calls this at most once.  `input` must be < kBot.
  virtual proc<decided> invoke(Env& env, value_t input) = 0;

  virtual std::string name() const = 0;
};

// Invokes `obj` and packs the result into a word — the standard top-level
// process program.  A plain coroutine function (parameters are copied
// into the frame), so callers can safely wrap it in short-lived factory
// lambdas; a capturing *coroutine* lambda would leave its captures behind
// when the closure object dies (CppCoreGuidelines CP.51).
template <typename Env>
proc<word> invoke_encoded(deciding_object<Env>& obj, Env& env, value_t v) {
  // The root of the trial's span tree (obs/obs.h): every shared-memory
  // operation of this process happens inside it, and the stage/round
  // spans the object opens become its direct children.
  obs::span_scope<Env> sp(env, obs::span_kind::object, 0,
                          [&obj] { return obj.name(); });
  decided d = co_await obj.invoke(env, v);
  sp.set_outcome(d.decide, d.value);
  co_return encode_decided(d);
}

}  // namespace modcon
