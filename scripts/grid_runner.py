#!/usr/bin/env python3
"""Sharded grid runner: fan one bench binary across N processes and merge.

Launches N copies of a bench with ``--shard i/N`` (each runs the trial
slice with index === i (mod N) of every shardable cell and serializes its
per-trial records), waits for all of them, and merges the shard artifacts
with modcon-merge into the single-process document.  The merge rebuilds
every cell from the union of the records, so the merged artifact is
byte-identical to the same bench invocation run with ``--shard 0/1`` —
CI diffs exactly that.

    scripts/grid_runner.py --bench build/bench/bench_e16_engine_micro \
        --shards 4 --out /tmp/e16-shards --merge /tmp/BENCH_e16.json \
        -- --seeds 200 --threads 1 --deterministic

Everything after ``--`` is passed to every shard process verbatim (do
not pass --shard or --json yourself; the runner owns both).
"""

import argparse
import os
import subprocess
import sys


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="\n".join(__doc__.splitlines()[2:]),
    )
    parser.add_argument(
        "--bench", required=True, help="bench binary to shard (built path)"
    )
    parser.add_argument(
        "--shards", type=int, required=True, help="number of shard processes"
    )
    parser.add_argument(
        "--out", required=True, help="directory for the per-shard artifacts"
    )
    parser.add_argument(
        "--merge",
        help="write the merged single-process artifact here (requires "
        "modcon-merge; see --merge-tool)",
    )
    parser.add_argument(
        "--merge-tool",
        help="path to modcon-merge (default: tools/modcon-merge next to "
        "the bench's build directory)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="max shard processes at once (default: all of them)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the commands without running anything",
    )
    parser.add_argument(
        "bench_args",
        nargs="*",
        help="arguments after -- are forwarded to every shard",
    )
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    forwarded = args.bench_args
    for banned in ("--shard", "--json"):
        if any(a == banned or a.startswith(banned + "=") for a in forwarded):
            parser.error(f"{banned} is owned by the runner; do not pass it")
    return args


def default_merge_tool(bench_path):
    # build/bench/bench_foo -> build/tools/modcon-merge
    bench_dir = os.path.dirname(os.path.abspath(bench_path))
    return os.path.join(os.path.dirname(bench_dir), "tools", "modcon-merge")


def main(argv):
    args = parse_args(argv)
    bench_name = os.path.basename(args.bench)
    shard_paths = [
        os.path.join(args.out, f"{bench_name}.shard{i}of{args.shards}.json")
        for i in range(args.shards)
    ]
    commands = [
        [args.bench, "--shard", f"{i}/{args.shards}", "--json", shard_paths[i]]
        + args.bench_args
        for i in range(args.shards)
    ]
    merge_tool = args.merge_tool or default_merge_tool(args.bench)
    merge_cmd = None
    if args.merge:
        merge_cmd = [merge_tool, "-o", args.merge] + shard_paths

    if args.dry_run:
        for cmd in commands:
            print(" ".join(cmd))
        if merge_cmd:
            print(" ".join(merge_cmd))
        return 0

    os.makedirs(args.out, exist_ok=True)
    jobs = args.jobs or args.shards
    pending = list(enumerate(commands))
    running = []
    failed = False
    while pending or running:
        while pending and len(running) < jobs and not failed:
            index, cmd = pending.pop(0)
            log_path = shard_paths[index] + ".log"
            log = open(log_path, "w")
            print(f"[grid_runner] shard {index}/{args.shards}: {' '.join(cmd)}")
            running.append(
                (index, subprocess.Popen(cmd, stdout=log, stderr=log), log)
            )
        if not running:
            break
        index, proc, log = running.pop(0)
        rc = proc.wait()
        log.close()
        if rc != 0:
            print(
                f"[grid_runner] shard {index} failed (exit {rc}); "
                f"see {shard_paths[index]}.log",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1

    if merge_cmd:
        print(f"[grid_runner] merge: {' '.join(merge_cmd)}")
        rc = subprocess.call(merge_cmd)
        if rc != 0:
            print(f"[grid_runner] merge failed (exit {rc})", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
