#!/usr/bin/env python3
"""Sharded grid runner: fan one bench binary across N processes and merge.

Launches N copies of a bench with ``--shard i/N`` (each runs the trial
slice with index === i (mod N) of every shardable cell and serializes its
per-trial records), waits for all of them, and merges the shard artifacts
with modcon-merge into the single-process document.  The merge rebuilds
every cell from the union of the records, so the merged artifact is
byte-identical to the same bench invocation run with ``--shard 0/1`` —
CI diffs exactly that.

    scripts/grid_runner.py --bench build/bench/bench_e16_engine_micro \
        --shards 4 --out /tmp/e16-shards --merge /tmp/BENCH_e16.json \
        -- --seeds 200 --threads 1 --deterministic

With ``--telemetry-merge FILE`` each shard also gets a
``--telemetry-out`` stream (``<out>/<bench>.shardIofN.telemetry.jsonl``)
and the runner live-merges the fleet: every poll it sums the newest
complete line of every shard stream (counters and histogram buckets add;
cells merge by label; elapsed is the max) and appends one cumulative
``modcon-telemetry`` line to FILE, so ``tools/modcon-top FILE`` — or the
per-shard files themselves — shows the whole grid while it runs.

If a shard fails, the runner terminates the remaining shards, prints the
tail of the failing shard's log, removes the partial shard artifacts
(the logs and telemetry streams are kept for debugging), and exits with
the failing shard's exit code.

Everything after ``--`` is passed to every shard process verbatim (do
not pass --shard, --json, or --telemetry-out yourself; the runner owns
them).
"""

import argparse
import json
import os
import subprocess
import sys
import time


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="\n".join(__doc__.splitlines()[2:]),
    )
    parser.add_argument(
        "--bench", required=True, help="bench binary to shard (built path)"
    )
    parser.add_argument(
        "--shards", type=int, required=True, help="number of shard processes"
    )
    parser.add_argument(
        "--out", required=True, help="directory for the per-shard artifacts"
    )
    parser.add_argument(
        "--merge",
        help="write the merged single-process artifact here (requires "
        "modcon-merge; see --merge-tool)",
    )
    parser.add_argument(
        "--merge-tool",
        help="path to modcon-merge (default: tools/modcon-merge next to "
        "the bench's build directory)",
    )
    parser.add_argument(
        "--telemetry-merge",
        help="give every shard a --telemetry-out stream and append the "
        "live fleet-merged modcon-telemetry lines here",
    )
    parser.add_argument(
        "--telemetry-interval",
        type=int,
        default=1000,
        help="shard snapshot cadence in ms (with --telemetry-merge; "
        "default 1000)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="max shard processes at once (default: all of them)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the commands without running anything",
    )
    parser.add_argument(
        "bench_args",
        nargs="*",
        help="arguments after -- are forwarded to every shard",
    )
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    forwarded = args.bench_args
    for banned in ("--shard", "--json", "--telemetry-out"):
        if any(a == banned or a.startswith(banned + "=") for a in forwarded):
            parser.error(f"{banned} is owned by the runner; do not pass it")
    return args


def default_merge_tool(bench_path):
    # build/bench/bench_foo -> build/tools/modcon-merge
    bench_dir = os.path.dirname(os.path.abspath(bench_path))
    return os.path.join(os.path.dirname(bench_dir), "tools", "modcon-merge")


def tail_lines(path, count=20):
    """Last ``count`` lines of a file, or [] if unreadable."""
    try:
        with open(path, "r", errors="replace") as fh:
            return fh.readlines()[-count:]
    except OSError:
        return []


def latest_snapshot(path):
    """Newest complete modcon-telemetry line of ``path``, or None.

    A line mid-write fails to parse; the previous line (cumulative, so
    still correct) is used instead.
    """
    try:
        with open(path, "r") as fh:
            lines = fh.read().splitlines()
    except OSError:
        return None
    for line in reversed(lines):
        try:
            snap = json.loads(line)
        except ValueError:
            continue
        if isinstance(snap, dict) and snap.get("schema") == "modcon-telemetry":
            return snap
    return None


def merge_snapshots(snaps, source, tick):
    """Fleet-merge: counters and histogram buckets sum, cells merge by
    label, elapsed is the max — order-independent because every input is
    cumulative-from-start."""
    counters = {}
    hists = {}
    cells = {}
    elapsed = 0.0
    final = bool(snaps)
    for snap in snaps:
        elapsed = max(elapsed, float(snap.get("elapsed_ms", 0.0)))
        final = final and bool(snap.get("final", False))
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, hist in snap.get("hists", {}).items():
            merged = hists.setdefault(
                name, {"count": 0, "sum": 0, "max": 0, "buckets": {}}
            )
            merged["count"] += int(hist.get("count", 0))
            merged["sum"] += int(hist.get("sum", 0))
            merged["max"] = max(merged["max"], int(hist.get("max", 0)))
            for idx, cnt in hist.get("buckets", []):
                merged["buckets"][idx] = merged["buckets"].get(idx, 0) + cnt
        for label, cell in snap.get("cells", {}).items():
            acc = cells.setdefault(label, {"trials": 0, "steps": 0})
            acc["trials"] += int(cell.get("trials", 0))
            acc["steps"] += int(cell.get("steps", 0))
    return {
        "schema": "modcon-telemetry",
        "version": 1,
        "tick": tick,
        "elapsed_ms": elapsed,
        "final": final,
        "source": source,
        "shard": 0,
        "shard_count": 1,
        "counters": counters,
        "hists": {
            name: {
                "count": h["count"],
                "sum": h["sum"],
                "max": h["max"],
                "buckets": [
                    [i, h["buckets"][i]] for i in sorted(h["buckets"])
                ],
            }
            for name, h in hists.items()
        },
        "cells": {label: cells[label] for label in sorted(cells)},
    }


def emit_merged_telemetry(telemetry_paths, out_fh, source, tick):
    snaps = [latest_snapshot(p) for p in telemetry_paths]
    snaps = [s for s in snaps if s is not None]
    if not snaps:
        return False
    merged = merge_snapshots(snaps, source, tick)
    out_fh.write(json.dumps(merged, separators=(",", ":")) + "\n")
    out_fh.flush()
    return merged["final"]


def remove_quietly(path):
    try:
        os.remove(path)
    except OSError:
        pass


def main(argv):
    args = parse_args(argv)
    bench_name = os.path.basename(args.bench)
    shard_paths = [
        os.path.join(args.out, f"{bench_name}.shard{i}of{args.shards}.json")
        for i in range(args.shards)
    ]
    telemetry_paths = []
    if args.telemetry_merge:
        telemetry_paths = [
            os.path.join(
                args.out,
                f"{bench_name}.shard{i}of{args.shards}.telemetry.jsonl",
            )
            for i in range(args.shards)
        ]
    commands = []
    for i in range(args.shards):
        cmd = [
            args.bench,
            "--shard",
            f"{i}/{args.shards}",
            "--json",
            shard_paths[i],
        ]
        if telemetry_paths:
            cmd += [
                "--telemetry-out",
                telemetry_paths[i],
                "--telemetry-interval",
                str(args.telemetry_interval),
            ]
        commands.append(cmd + args.bench_args)
    merge_tool = args.merge_tool or default_merge_tool(args.bench)
    merge_cmd = None
    if args.merge:
        merge_cmd = [merge_tool, "-o", args.merge] + shard_paths

    if args.dry_run:
        for cmd in commands:
            print(" ".join(cmd))
        if merge_cmd:
            print(" ".join(merge_cmd))
        return 0

    os.makedirs(args.out, exist_ok=True)
    # Stale streams from a previous run would pollute the live merge.
    for path in telemetry_paths:
        remove_quietly(path)
    telemetry_fh = None
    telemetry_tick = 0
    if args.telemetry_merge:
        telemetry_fh = open(args.telemetry_merge, "w")

    jobs = args.jobs or args.shards
    pending = list(enumerate(commands))
    running = []
    failed_rc = 0
    failed_index = None
    try:
        while pending or running:
            while pending and len(running) < jobs and failed_rc == 0:
                index, cmd = pending.pop(0)
                log_path = shard_paths[index] + ".log"
                log = open(log_path, "w")
                print(
                    f"[grid_runner] shard {index}/{args.shards}: "
                    f"{' '.join(cmd)}"
                )
                running.append(
                    (index, subprocess.Popen(cmd, stdout=log, stderr=log), log)
                )
            if not running:
                break
            # Poll instead of blocking on one shard: the telemetry merge
            # must tick while every shard is mid-flight.
            finished = None
            while finished is None:
                for slot, (index, proc, log) in enumerate(running):
                    if proc.poll() is not None:
                        finished = slot
                        break
                if finished is None:
                    if telemetry_fh is not None:
                        telemetry_tick += 1
                        emit_merged_telemetry(
                            telemetry_paths,
                            telemetry_fh,
                            bench_name,
                            telemetry_tick,
                        )
                    time.sleep(
                        min(0.5, args.telemetry_interval / 1000.0)
                        if telemetry_fh is not None
                        else 0.2
                    )
            index, proc, log = running.pop(finished)
            rc = proc.returncode
            log.close()
            if rc != 0 and failed_rc == 0:
                failed_rc = rc
                failed_index = index
                log_path = shard_paths[index] + ".log"
                print(
                    f"[grid_runner] shard {index} failed (exit {rc}); "
                    f"log tail ({log_path}):",
                    file=sys.stderr,
                )
                for line in tail_lines(log_path):
                    sys.stderr.write("  | " + line)
                # Wind down the rest of the fleet; their artifacts are
                # partial by construction.
                for _, other, _ in running:
                    other.terminate()
    finally:
        for _, proc, log in running:
            proc.wait()
            log.close()

    if failed_rc != 0:
        print(
            f"[grid_runner] aborted by shard {failed_index}; removing "
            "partial shard artifacts (logs kept)",
            file=sys.stderr,
        )
        for path in shard_paths:
            remove_quietly(path)
        if telemetry_fh is not None:
            telemetry_fh.close()
            remove_quietly(args.telemetry_merge)
        return failed_rc

    if telemetry_fh is not None:
        # Final fleet line: every shard has flushed its "final" snapshot.
        telemetry_tick += 1
        emit_merged_telemetry(
            telemetry_paths, telemetry_fh, bench_name, telemetry_tick
        )
        telemetry_fh.close()
        print(f"[grid_runner] telemetry merge: {args.telemetry_merge}")

    if merge_cmd:
        print(f"[grid_runner] merge: {' '.join(merge_cmd)}")
        rc = subprocess.call(merge_cmd)
        if rc != 0:
            print(f"[grid_runner] merge failed (exit {rc})", file=sys.stderr)
            remove_quietly(args.merge)
            return rc
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
