#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over the library sources using
# the compile database the default preset exports.  Warnings are
# promoted to errors, so the script's exit code is the lint verdict —
# CI fails a PR whose changed sources introduce clang-tidy findings.
#
#   usage: run_lint.sh [--changed BASE_REF]
#
#   --changed REF    lint only the .cpp files (within PATHS) that differ
#                    from REF (e.g. origin/main); exits 0 when none do.
#                    Without it, the whole tree is linted.
#
# Knobs:
#
#   BUILD=DIR        build directory with compile_commands.json
#                    (default build; configured if missing)
#   CLANG_TIDY=BIN   clang-tidy binary (default: first of clang-tidy,
#                    clang-tidy-18..14 on PATH)
#   PATHS="..."      source globs to lint (default: src bench tests tools)
#
# When no clang-tidy is installed the script prints a notice and exits 0
# so the lint step degrades gracefully on minimal toolchains; CI images
# that carry clang-tidy get the full check.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD:-build}"

BASE_REF=""
if [ "${1:-}" = "--changed" ]; then
  if [ -z "${2:-}" ]; then
    echo "run_lint.sh: --changed requires a base ref (e.g. origin/main)" >&2
    exit 2
  fi
  BASE_REF="$2"
  shift 2
fi
if [ "$#" -ne 0 ]; then
  echo "run_lint.sh: unknown argument '$1' (usage: run_lint.sh [--changed REF])" >&2
  exit 2
fi

find_tidy() {
  if [ -n "${CLANG_TIDY:-}" ]; then
    echo "$CLANG_TIDY"
    return
  fi
  for c in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
           clang-tidy-15 clang-tidy-14; do
    if command -v "$c" >/dev/null 2>&1; then
      echo "$c"
      return
    fi
  done
}

TIDY="$(find_tidy)"
if [ -z "$TIDY" ]; then
  echo "run_lint.sh: no clang-tidy on PATH; skipping lint (install" \
       "clang-tidy or set CLANG_TIDY=/path/to/binary to enable)"
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  cmake -B "$BUILD" -S . >/dev/null
fi

# Lint the sources we own; third-party-free by construction.
if [ -n "$BASE_REF" ]; then
  mapfile -t FILES < <(git diff --name-only --diff-filter=d "$BASE_REF" -- \
                         ${PATHS:-src bench tests tools} | grep -E '\.cpp$' || true)
  if [ "${#FILES[@]}" -eq 0 ]; then
    echo "run_lint.sh: no lintable sources changed vs $BASE_REF"
    exit 0
  fi
else
  mapfile -t FILES < <(git ls-files ${PATHS:-src bench tests tools} | grep -E '\.cpp$')
  if [ "${#FILES[@]}" -eq 0 ]; then
    echo "run_lint.sh: no sources matched" >&2
    exit 2
  fi
fi

echo "run_lint.sh: $TIDY over ${#FILES[@]} files (db: $BUILD)"
# --warnings-as-errors promotes every enabled check to an error, so a
# finding anywhere in FILES makes clang-tidy (and this script) exit
# nonzero instead of merely printing.
"$TIDY" -p "$BUILD" --quiet --warnings-as-errors='*' "${FILES[@]}"
echo "run_lint.sh: clean"
