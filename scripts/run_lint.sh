#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over the library sources using
# the compile database the default preset exports.  Knobs:
#
#   BUILD=DIR        build directory with compile_commands.json
#                    (default build; configured if missing)
#   CLANG_TIDY=BIN   clang-tidy binary (default: first of clang-tidy,
#                    clang-tidy-18..14 on PATH)
#   PATHS="..."      source globs to lint (default: src bench)
#
# When no clang-tidy is installed the script prints a notice and exits 0
# so the lint step degrades gracefully on minimal toolchains; CI images
# that carry clang-tidy get the full check.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD:-build}"

find_tidy() {
  if [ -n "${CLANG_TIDY:-}" ]; then
    echo "$CLANG_TIDY"
    return
  fi
  for c in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
           clang-tidy-15 clang-tidy-14; do
    if command -v "$c" >/dev/null 2>&1; then
      echo "$c"
      return
    fi
  done
}

TIDY="$(find_tidy)"
if [ -z "$TIDY" ]; then
  echo "run_lint.sh: no clang-tidy on PATH; skipping lint (install" \
       "clang-tidy or set CLANG_TIDY=/path/to/binary to enable)"
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  cmake -B "$BUILD" -S . >/dev/null
fi

# Lint the sources we own; third-party-free by construction.
mapfile -t FILES < <(git ls-files ${PATHS:-src bench} | grep -E '\.cpp$')
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_lint.sh: no sources matched" >&2
  exit 2
fi

echo "run_lint.sh: $TIDY over ${#FILES[@]} files (db: $BUILD)"
"$TIDY" -p "$BUILD" --quiet "${FILES[@]}"
echo "run_lint.sh: clean"
