#!/usr/bin/env bash
# Builds the MODCON_SANITIZE=thread preset (build-tsan/) and runs the
# concurrency-heavy test binaries under ThreadSanitizer: the rt backend
# (real threads over atomic registers, cooperative fault injection, the
# trial watchdog), the experiment engine's thread pool, and the fault
# subsystem tests.  Knobs:
#
#   BUILD=DIR   build directory (default build-tsan)
#   JOBS=N      build parallelism (default: nproc)
#
# Example: scripts/run_tsan_suite.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD:-build-tsan}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

cmake --preset tsan >/dev/null
TARGETS=(rt_test experiment_test fault_test)
cmake --build "$BUILD" -j "$JOBS" --target "${TARGETS[@]}"

# TSan aborts the process on the first race (halt_on_error) so a clean
# exit code really means race-free.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

status=0
for t in "${TARGETS[@]}"; do
  echo "### $t (tsan)"
  if ! "$BUILD/tests/$t"; then
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "tsan suite clean: ${TARGETS[*]}"
else
  echo "tsan suite FAILED" >&2
fi
exit "$status"
