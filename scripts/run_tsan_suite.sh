#!/usr/bin/env bash
# Compatibility shim: the tsan suite is now one leg of the sanitizer
# matrix.  See scripts/run_sanitizer_suite.sh for the knobs
# (SANITIZER=thread|address|undefined, BUILD, JOBS).
set -euo pipefail
SANITIZER=thread exec "$(dirname "$0")/run_sanitizer_suite.sh" "$@"
