#!/usr/bin/env python3
"""Unit tests for compare_bench.py (exit codes, merged artifacts, and the
$GITHUB_STEP_SUMMARY markdown table).

Run directly or via ctest (registered as compare_bench_py in
tests/CMakeLists.txt).  The script under test is exercised the way CI
uses it: as a subprocess over artifact files on disk.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")


def artifact(cells, shard=None):
    """A minimal modcon-bench document: {label: p50} or
    {label: (p50, slot_ops_p50)}."""
    doc = {"schema": "modcon-bench", "schema_version": 5, "experiments": []}
    if shard is not None:
        doc["shard"] = {"index": shard[0], "count": shard[1]}
    for label, value in cells.items():
        p50, slot = value if isinstance(value, tuple) else (value, None)
        exp = {"label": label, "perf": {"steps_per_sec_p50": p50}}
        if slot is not None:
            exp["multi"] = {"slot_ops": {"p50": slot}}
        doc["experiments"].append(exp)
    return doc


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        return path

    def run_compare(self, *argv, env_extra=None):
        env = dict(os.environ)
        env.pop("GITHUB_STEP_SUMMARY", None)
        env.update(env_extra or {})
        return subprocess.run(
            [sys.executable, SCRIPT, *argv],
            capture_output=True, text=True, env=env,
        )

    def test_ok_and_regression_exit_codes(self):
        base = self.write("base.json", artifact({"cell/a": 100.0}))
        good = self.write("good.json", artifact({"cell/a": 95.0}))
        bad = self.write("bad.json", artifact({"cell/a": 50.0}))
        self.assertEqual(self.run_compare(base, good).returncode, 0)
        result = self.run_compare(base, bad)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)

    def test_lower_is_better_slot_ops(self):
        base = self.write("base.json", artifact({"multi": (100.0, 40.0)}))
        # slot_ops went *down* — an improvement despite the raw drop.
        good = self.write("good.json", artifact({"multi": (100.0, 20.0)}))
        bad = self.write("bad.json", artifact({"multi": (100.0, 80.0)}))
        self.assertEqual(self.run_compare(base, good).returncode, 0)
        self.assertEqual(self.run_compare(base, bad).returncode, 1)

    def test_merged_shard_artifact_candidate(self):
        # A grid_runner + modcon-merge artifact keeps the shard header and
        # carries cell_meta/records blocks; the gate must read it like any
        # single-process artifact.
        base = self.write("base.json", artifact({"cell/a": 100.0}))
        merged = artifact({"cell/a": 98.0}, shard=(0, 1))
        merged["experiments"][0]["cell_meta"] = {"label": "cell/a", "n": 16}
        merged["experiments"][0]["records"] = [
            {"trial_index": 0, "seed": 7, "steps": 123},
        ]
        cand = self.write("merged.json", merged)
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("cell/a", result.stdout)

    def test_multiple_candidates_merge_by_label(self):
        base = self.write(
            "base.json", artifact({"cell/a": 100.0, "cell/b": 200.0}))
        c1 = self.write("c1.json", artifact({"cell/a": 99.0}))
        c2 = self.write("c2.json", artifact({"cell/b": 199.0}))
        self.assertEqual(self.run_compare(base, c1, c2).returncode, 0)
        # Without the second candidate, cell/b is missing: tolerated by
        # default, fatal under --require-all.
        self.assertEqual(self.run_compare(base, c1).returncode, 0)
        self.assertEqual(
            self.run_compare(base, c1, "--require-all").returncode, 1)

    def test_bad_artifacts_exit_2(self):
        base = self.write("base.json", artifact({"cell/a": 100.0}))
        wrong = self.write("wrong.json", {"schema": "other"})
        self.assertEqual(self.run_compare(wrong, base).returncode, 2)
        self.assertEqual(
            self.run_compare(base, os.path.join(self.tmp.name, "nope.json"))
            .returncode, 2)

    def test_github_step_summary_table(self):
        base = self.write(
            "base.json", artifact({"cell/a": 100.0, "cell/b": 200.0}))
        cand = self.write(
            "cand.json", artifact({"cell/a": 50.0, "cell/new": 10.0}))
        summary = os.path.join(self.tmp.name, "summary.md")
        result = self.run_compare(
            base, cand, env_extra={"GITHUB_STEP_SUMMARY": summary})
        self.assertEqual(result.returncode, 1)
        with open(summary, encoding="utf-8") as fh:
            text = fh.read()
        self.assertIn("| cell | baseline | candidate | delta | status |",
                      text)
        self.assertIn("| `cell/a` | 100.0 | 50.0 | -50.0% | regression", text)
        self.assertIn("| `cell/b` | 200.0 | — | — | missing |", text)
        self.assertIn("| `cell/new` | — | 10.0 | — | new cell |", text)
        self.assertIn("**FAIL", text)
        # Appended, not truncated: a second run adds a second table.
        self.run_compare(base, cand,
                         env_extra={"GITHUB_STEP_SUMMARY": summary})
        with open(summary, encoding="utf-8") as fh:
            self.assertEqual(fh.read().count("### Bench comparison"), 2)

    def test_no_summary_file_without_env(self):
        base = self.write("base.json", artifact({"cell/a": 100.0}))
        cand = self.write("cand.json", artifact({"cell/a": 100.0}))
        self.assertEqual(self.run_compare(base, cand).returncode, 0)
        self.assertFalse(
            os.path.exists(os.path.join(self.tmp.name, "summary.md")))


if __name__ == "__main__":
    unittest.main()
