#!/usr/bin/env python3
"""Unit tests for compare_bench.py (exit codes, merged artifacts, the
$GITHUB_STEP_SUMMARY markdown table, and --history drift/one-off
classification) plus bench_trend.py (classify() and the CLI).

Run directly or via ctest (registered as compare_bench_py in
tests/CMakeLists.txt).  The scripts under test are exercised the way CI
uses them: as subprocesses over artifact files on disk; classify() is
also imported and unit-tested directly.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPTS_DIR = os.path.dirname(os.path.abspath(__file__))
SCRIPT = os.path.join(SCRIPTS_DIR, "compare_bench.py")
TREND_SCRIPT = os.path.join(SCRIPTS_DIR, "bench_trend.py")

sys.path.insert(0, SCRIPTS_DIR)
import bench_trend  # noqa: E402


def artifact(cells, shard=None):
    """A minimal modcon-bench document: {label: p50} or
    {label: (p50, slot_ops_p50)}."""
    doc = {"schema": "modcon-bench", "schema_version": 5, "experiments": []}
    if shard is not None:
        doc["shard"] = {"index": shard[0], "count": shard[1]}
    for label, value in cells.items():
        p50, slot = value if isinstance(value, tuple) else (value, None)
        exp = {"label": label, "perf": {"steps_per_sec_p50": p50}}
        if slot is not None:
            exp["multi"] = {"slot_ops": {"p50": slot}}
        doc["experiments"].append(exp)
    return doc


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        return path

    def run_compare(self, *argv, env_extra=None):
        env = dict(os.environ)
        env.pop("GITHUB_STEP_SUMMARY", None)
        env.update(env_extra or {})
        return subprocess.run(
            [sys.executable, SCRIPT, *argv],
            capture_output=True, text=True, env=env,
        )

    def test_ok_and_regression_exit_codes(self):
        base = self.write("base.json", artifact({"cell/a": 100.0}))
        good = self.write("good.json", artifact({"cell/a": 95.0}))
        bad = self.write("bad.json", artifact({"cell/a": 50.0}))
        self.assertEqual(self.run_compare(base, good).returncode, 0)
        result = self.run_compare(base, bad)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)

    def test_lower_is_better_slot_ops(self):
        base = self.write("base.json", artifact({"multi": (100.0, 40.0)}))
        # slot_ops went *down* — an improvement despite the raw drop.
        good = self.write("good.json", artifact({"multi": (100.0, 20.0)}))
        bad = self.write("bad.json", artifact({"multi": (100.0, 80.0)}))
        self.assertEqual(self.run_compare(base, good).returncode, 0)
        self.assertEqual(self.run_compare(base, bad).returncode, 1)

    def test_merged_shard_artifact_candidate(self):
        # A grid_runner + modcon-merge artifact keeps the shard header and
        # carries cell_meta/records blocks; the gate must read it like any
        # single-process artifact.
        base = self.write("base.json", artifact({"cell/a": 100.0}))
        merged = artifact({"cell/a": 98.0}, shard=(0, 1))
        merged["experiments"][0]["cell_meta"] = {"label": "cell/a", "n": 16}
        merged["experiments"][0]["records"] = [
            {"trial_index": 0, "seed": 7, "steps": 123},
        ]
        cand = self.write("merged.json", merged)
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("cell/a", result.stdout)

    def test_multiple_candidates_merge_by_label(self):
        base = self.write(
            "base.json", artifact({"cell/a": 100.0, "cell/b": 200.0}))
        c1 = self.write("c1.json", artifact({"cell/a": 99.0}))
        c2 = self.write("c2.json", artifact({"cell/b": 199.0}))
        self.assertEqual(self.run_compare(base, c1, c2).returncode, 0)
        # Without the second candidate, cell/b is missing: tolerated by
        # default, fatal under --require-all.
        self.assertEqual(self.run_compare(base, c1).returncode, 0)
        self.assertEqual(
            self.run_compare(base, c1, "--require-all").returncode, 1)

    def test_bad_artifacts_exit_2(self):
        base = self.write("base.json", artifact({"cell/a": 100.0}))
        wrong = self.write("wrong.json", {"schema": "other"})
        self.assertEqual(self.run_compare(wrong, base).returncode, 2)
        self.assertEqual(
            self.run_compare(base, os.path.join(self.tmp.name, "nope.json"))
            .returncode, 2)

    def test_github_step_summary_table(self):
        base = self.write(
            "base.json", artifact({"cell/a": 100.0, "cell/b": 200.0}))
        cand = self.write(
            "cand.json", artifact({"cell/a": 50.0, "cell/new": 10.0}))
        summary = os.path.join(self.tmp.name, "summary.md")
        result = self.run_compare(
            base, cand, env_extra={"GITHUB_STEP_SUMMARY": summary})
        self.assertEqual(result.returncode, 1)
        with open(summary, encoding="utf-8") as fh:
            text = fh.read()
        self.assertIn("| cell | baseline | candidate | delta | status |",
                      text)
        self.assertIn("| `cell/a` | 100.0 | 50.0 | -50.0% | regression", text)
        self.assertIn("| `cell/b` | 200.0 | — | — | missing |", text)
        self.assertIn("| `cell/new` | — | 10.0 | — | new cell |", text)
        self.assertIn("**FAIL", text)
        # Appended, not truncated: a second run adds a second table.
        self.run_compare(base, cand,
                         env_extra={"GITHUB_STEP_SUMMARY": summary})
        with open(summary, encoding="utf-8") as fh:
            self.assertEqual(fh.read().count("### Bench comparison"), 2)

    def test_no_summary_file_without_env(self):
        base = self.write("base.json", artifact({"cell/a": 100.0}))
        cand = self.write("cand.json", artifact({"cell/a": 100.0}))
        self.assertEqual(self.run_compare(base, cand).returncode, 0)
        self.assertFalse(
            os.path.exists(os.path.join(self.tmp.name, "summary.md")))

    def write_history(self, values, label="cell/a"):
        """A history dir of one-cell artifacts with increasing mtimes."""
        hist = os.path.join(self.tmp.name, "history")
        os.makedirs(hist, exist_ok=True)
        t0 = 1_000_000_000
        for i, value in enumerate(values):
            path = os.path.join(hist, f"run{i}.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(artifact({label: value}), fh)
            os.utime(path, (t0 + i, t0 + i))
        return hist

    def test_history_one_off_vs_drift(self):
        base = self.write("base.json", artifact({"cell/a": 100.0}))
        bad = self.write("bad.json", artifact({"cell/a": 60.0}))
        # Stable history: the bad candidate is a one-off.
        hist = self.write_history([100.0, 101.0, 99.0, 100.0])
        result = self.run_compare(base, bad, "--history", hist)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION (one-off)", result.stdout)
        # Eroding history: the same candidate is drift.
        hist = self.write_history([100.0, 92.0, 84.0, 76.0])
        result = self.run_compare(base, bad, "--history", hist)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION (drift)", result.stdout)

    def test_history_does_not_change_exit_code(self):
        base = self.write("base.json", artifact({"cell/a": 100.0}))
        good = self.write("good.json", artifact({"cell/a": 97.0}))
        hist = self.write_history([100.0, 92.0, 84.0, 76.0])
        # Still within the pairwise threshold: OK regardless of history.
        self.assertEqual(
            self.run_compare(base, good, "--history", hist).returncode, 0)

    def test_history_skips_non_bench_files(self):
        base = self.write("base.json", artifact({"cell/a": 100.0}))
        bad = self.write("bad.json", artifact({"cell/a": 60.0}))
        hist = self.write_history([100.0, 100.0, 100.0])
        with open(os.path.join(hist, "trend.json"), "w") as fh:
            json.dump({"schema": "modcon-bench-trend"}, fh)
        with open(os.path.join(hist, "notes.json"), "w") as fh:
            fh.write("not json at all")
        result = self.run_compare(base, bad, "--history", hist)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION (one-off)", result.stdout)

    def test_history_must_be_directory(self):
        base = self.write("base.json", artifact({"cell/a": 100.0}))
        result = self.run_compare(
            base, base, "--history", os.path.join(self.tmp.name, "nope"))
        self.assertEqual(result.returncode, 2)


class BenchTrendClassifyTest(unittest.TestCase):
    def test_insufficient_and_steady(self):
        self.assertEqual(bench_trend.classify([100.0]), "insufficient")
        self.assertEqual(
            bench_trend.classify([100.0, 99.0, 101.0, 100.0]), "steady")

    def test_one_off_vs_drift(self):
        self.assertEqual(
            bench_trend.classify([100.0, 101.0, 99.0, 60.0]),
            "regression-one-off")
        self.assertEqual(
            bench_trend.classify([100.0, 92.0, 84.0, 60.0]),
            "regression-drift")

    def test_slow_drift_within_band_each_step(self):
        # Each step is < 10% down but the run loses > 10% end to end.
        self.assertEqual(
            bench_trend.classify([100.0, 96.0, 92.0, 88.0]),
            "regression-drift")

    def test_improving(self):
        self.assertEqual(
            bench_trend.classify([100.0, 101.0, 99.0, 130.0]), "improving")

    def test_lower_is_better(self):
        # slot_ops rising = worse.
        self.assertEqual(
            bench_trend.classify(
                [40.0, 41.0, 39.0, 60.0], higher_is_better=False),
            "regression-one-off")
        self.assertEqual(
            bench_trend.classify(
                [40.0, 41.0, 39.0, 20.0], higher_is_better=False),
            "improving")


class BenchTrendCliTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write_run(self, name, cells, mtime):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(artifact(cells), fh)
        os.utime(path, (mtime, mtime))
        return path

    def run_trend(self, *argv):
        env = dict(os.environ)
        env.pop("GITHUB_STEP_SUMMARY", None)
        return subprocess.run(
            [sys.executable, TREND_SCRIPT, *argv],
            capture_output=True, text=True, env=env,
        )

    def test_markdown_table_and_json(self):
        t0 = 1_000_000_000
        for i, v in enumerate([100.0, 92.0, 84.0, 76.0]):
            self.write_run(f"run{i}.json", {"cell/a": v}, t0 + i)
        out_json = os.path.join(self.tmp.name, "trend-out.json")
        result = self.run_trend(
            "--history", self.tmp.name, "--markdown", "-",
            "--out-json", out_json)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("| cell | metric |", result.stdout)
        self.assertIn("regression-drift", result.stdout)
        with open(out_json, encoding="utf-8") as fh:
            doc = json.load(fh)
        self.assertEqual(doc["schema"], "modcon-bench-trend")
        cell = doc["cells"]["cell/a"]["steps_per_sec_p50"]
        self.assertEqual(cell["values"], [100.0, 92.0, 84.0, 76.0])
        self.assertEqual(cell["classification"], "regression-drift")

    def test_fail_on_drift(self):
        t0 = 1_000_000_000
        for i, v in enumerate([100.0, 92.0, 84.0, 76.0]):
            self.write_run(f"run{i}.json", {"cell/a": v}, t0 + i)
        self.assertEqual(
            self.run_trend("--history", self.tmp.name).returncode, 0)
        self.assertEqual(
            self.run_trend(
                "--history", self.tmp.name, "--fail-on-drift").returncode, 1)

    def test_explicit_artifact_order(self):
        a = self.write_run("a.json", {"cell/a": 100.0}, 1_000_000_000)
        b = self.write_run("b.json", {"cell/a": 100.0}, 1_000_000_001)
        result = self.run_trend(a, b, "--markdown", "-")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("steady", result.stdout)

    def test_bad_artifact_exits_2(self):
        bad = os.path.join(self.tmp.name, "bad.json")
        with open(bad, "w") as fh:
            fh.write("{\"schema\": \"other\"}")
        self.assertEqual(self.run_trend(bad).returncode, 2)


if __name__ == "__main__":
    unittest.main()
