#!/usr/bin/env bash
# Builds one sanitizer preset and runs the concurrency-heavy test
# binaries under it: the rt backend (real threads over atomic registers,
# cooperative fault injection, the trial watchdog), the experiment
# engine's thread pool, the fault subsystem, and the trace auditor.
# Knobs:
#
#   SANITIZER=S  thread (default) | address | undefined — selects the
#                matching CMake preset (tsan / asan / ubsan)
#   BUILD=DIR    build directory (default build-<preset>)
#   JOBS=N       build parallelism (default: nproc)
#
# Examples:
#   scripts/run_sanitizer_suite.sh
#   SANITIZER=address scripts/run_sanitizer_suite.sh
#   SANITIZER=undefined scripts/run_sanitizer_suite.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER="${SANITIZER:-thread}"
case "$SANITIZER" in
  thread)    PRESET=tsan ;;
  address)   PRESET=asan ;;
  undefined) PRESET=ubsan ;;
  *)
    echo "SANITIZER must be thread, address, or undefined (got '$SANITIZER')" >&2
    exit 2
    ;;
esac

BUILD="${BUILD:-build-$PRESET}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

cmake --preset "$PRESET" >/dev/null
TARGETS=(rt_test experiment_test fault_test auditor_test multi_test recovery_test)
cmake --build "$BUILD" -j "$JOBS" --target "${TARGETS[@]}"

# Each sanitizer aborts on its first finding so a clean exit code really
# means a clean run.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

status=0
for t in "${TARGETS[@]}"; do
  echo "### $t ($PRESET)"
  if ! "$BUILD/tests/$t"; then
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "$PRESET suite clean: ${TARGETS[*]}"
else
  echo "$PRESET suite FAILED" >&2
fi
exit "$status"
