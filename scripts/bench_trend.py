#!/usr/bin/env python3
"""Bench trend pipeline: per-cell metric series over K historical artifacts.

Takes an ordered run of BENCH_*.json artifacts (schema modcon-bench) —
oldest first — and builds one series per (cell, metric), classifying the
newest point against the history:

  * steady              within threshold of the history's median
  * improving           better than the median by more than threshold
  * regression-one-off  worse than the median, but the history itself
                        was stable — a single bad run (noise, a cold
                        machine) rather than a trend
  * regression-drift    worse than the median AND the history was
                        already declining — sustained erosion that a
                        pairwise baseline diff misreads as a small,
                        tolerable step each time

Three metrics are tracked per cell, matched by experiment label:

  * perf.steps_per_sec_p50  (higher is better; timing measurement)
  * rates.agreement         (higher is better; deterministic)
  * multi.slot_ops.p50      (lower is better; deterministic cost)

Usage:
    scripts/bench_trend.py ART1.json ART2.json ... [options]
    scripts/bench_trend.py --history DIR [options]

With --history, every ``*.json`` directly in DIR is used, ordered by
file modification time (oldest first) — the natural shape of a CI cache
directory that each run appends its artifact to.

Options:
    --threshold F    fractional band around the median (default 0.10)
    --out-json F     write the series + classifications as JSON
    --markdown F     write the trend table as markdown ("-" = stdout)
    --step-summary   append the markdown table to $GITHUB_STEP_SUMMARY
    --fail-on-drift  exit 1 when any cell classifies regression-drift

The classify/series helpers are importable (compare_bench.py --history
reuses them to tell a one-off regression from drift).

Exit codes: 0 ok, 1 drift with --fail-on-drift, 2 bad invocation or
unreadable artifacts.
"""

import argparse
import json
import os
import statistics
import sys

SCHEMA = "modcon-bench-trend"
VERSION = 1

# (name, extractor, higher_is_better)
METRICS = (
    (
        "steps_per_sec_p50",
        lambda exp: exp.get("perf", {}).get("steps_per_sec_p50"),
        True,
    ),
    (
        "agreement",
        lambda exp: exp.get("rates", {}).get("agreement"),
        True,
    ),
    (
        "slot_ops_p50",
        lambda exp: exp.get("multi", {}).get("slot_ops", {}).get("p50"),
        False,
    ),
)

SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def die(message):
    print(message, file=sys.stderr)
    sys.exit(2)


def load_artifact(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        die(f"bench_trend: cannot read {path}: {err}")
    if doc.get("schema") != "modcon-bench":
        die(f"bench_trend: {path} is not a modcon-bench artifact "
            f"(schema={doc.get('schema')!r})")
    return doc


def history_paths(directory):
    """``*.json`` directly in ``directory``, oldest mtime first."""
    try:
        names = [
            n for n in os.listdir(directory) if n.endswith(".json")
        ]
    except OSError as err:
        die(f"bench_trend: cannot list {directory}: {err}")
    paths = [os.path.join(directory, n) for n in names]
    return sorted(paths, key=lambda p: (os.path.getmtime(p), p))


def build_series(docs):
    """{label: {metric: {"values": [...], "higher_is_better": bool}}} over
    the artifact run.  A cell absent from one artifact simply skips that
    point (series lengths may differ — classification only needs order)."""
    series = {}
    for doc in docs:
        for exp in doc.get("experiments", []):
            label = exp.get("label")
            if not label:
                continue
            for name, extract, higher in METRICS:
                value = extract(exp)
                if isinstance(value, (int, float)) and value > 0:
                    entry = series.setdefault(label, {}).setdefault(
                        name, {"values": [], "higher_is_better": higher}
                    )
                    entry["values"].append(float(value))
    return series


def _ratio(new, old, higher_is_better):
    """> 1 always means "got better", whichever way the metric points."""
    if old <= 0 or new <= 0:
        return 1.0
    return new / old if higher_is_better else old / new


def classify(values, threshold=0.10, higher_is_better=True):
    """Classification of the newest point against its history.

    Returns one of: "insufficient", "steady", "improving",
    "regression-one-off", "regression-drift".
    """
    if len(values) < 2:
        return "insufficient"
    prev, last = values[:-1], values[-1]
    baseline = statistics.median(prev)
    r = _ratio(last, baseline, higher_is_better)
    if r >= 1 + threshold:
        return "improving"
    if r < 1 - threshold:
        # Worse than the history's median.  Drift if the history was
        # already eroding before this point; one-off if it was stable.
        if len(prev) >= 2:
            prior = _ratio(
                prev[-1], statistics.median(prev[:-1]), higher_is_better
            )
            if prior < 1 - threshold / 2:
                return "regression-drift"
        return "regression-one-off"
    # Within the band of the median — but a slow, monotone-ish slide can
    # stay within it every single run while losing a lot end to end.
    if len(values) >= 4:
        if _ratio(last, values[0], higher_is_better) < 1 - threshold:
            return "regression-drift"
    return "steady"


def sparkline(values):
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK_GLYPHS[0] * len(values)
    scale = (len(SPARK_GLYPHS) - 1) / (hi - lo)
    return "".join(
        SPARK_GLYPHS[int((v - lo) * scale)] for v in values
    )


def trend_rows(series, threshold):
    """[(label, metric, values, classification)] sorted for the table."""
    rows = []
    for label in sorted(series):
        for name, _, higher in METRICS:
            entry = series[label].get(name)
            if not entry:
                continue
            rows.append(
                (
                    label,
                    name,
                    entry["values"],
                    classify(entry["values"], threshold, higher),
                )
            )
    return rows


def markdown_table(rows, threshold, artifact_count):
    lines = [
        f"### Bench trend — {artifact_count} artifact(s), "
        f"threshold {threshold:.0%}",
        "",
        "| cell | metric | runs | oldest | newest | delta | trend | series |",
        "| --- | --- | ---: | ---: | ---: | ---: | --- | --- |",
    ]
    for label, metric, values, verdict in rows:
        oldest, newest = values[0], values[-1]
        delta = f"{newest / oldest - 1:+.1%}" if oldest else "—"
        marker = {"regression-drift": " ⚠️", "regression-one-off": " ❗"}.get(
            verdict, ""
        )
        lines.append(
            f"| `{label}` | {metric} | {len(values)} | {oldest:,.1f} "
            f"| {newest:,.1f} | {delta} | {verdict}{marker} "
            f"| `{sparkline(values)}` |"
        )
    return "\n".join(lines) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="per-cell metric trends over historical bench artifacts"
    )
    parser.add_argument("artifacts", nargs="*", help="oldest first")
    parser.add_argument(
        "--history", help="directory of artifacts, ordered by mtime"
    )
    parser.add_argument("--threshold", type=float, default=0.10)
    parser.add_argument("--out-json")
    parser.add_argument("--markdown")
    parser.add_argument("--step-summary", action="store_true")
    parser.add_argument("--fail-on-drift", action="store_true")
    args = parser.parse_args(argv)
    if not 0 <= args.threshold < 1:
        parser.error("--threshold must be in [0, 1)")

    paths = list(args.artifacts)
    if args.history:
        paths = history_paths(args.history) + paths
    if not paths:
        parser.error("no artifacts (pass paths or --history DIR)")

    docs = [load_artifact(p) for p in paths]
    series = build_series(docs)
    if not series:
        die("bench_trend: no gated cells in any artifact")
    rows = trend_rows(series, args.threshold)
    table = markdown_table(rows, args.threshold, len(paths))

    if args.markdown == "-" or (
        args.markdown is None and args.out_json is None
    ):
        sys.stdout.write(table)
    elif args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(table)
    if args.step_summary:
        summary = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary:
            with open(summary, "a", encoding="utf-8") as fh:
                fh.write(table + "\n")
    if args.out_json:
        doc = {
            "schema": SCHEMA,
            "version": VERSION,
            "threshold": args.threshold,
            "artifacts": paths,
            "cells": {
                label: {
                    metric: {
                        "values": series[label][metric]["values"],
                        "classification": verdict,
                    }
                    for lab2, metric, values, verdict in rows
                    if lab2 == label
                }
                for label in sorted(series)
            },
        }
        with open(args.out_json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")

    drifts = [r for r in rows if r[3] == "regression-drift"]
    if drifts:
        detail = ", ".join(f"{label}/{metric}" for label, metric, _, _ in drifts)
        print(f"bench_trend: drift in {len(drifts)} series: {detail}",
              file=sys.stderr)
        if args.fail_on_drift:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
