#!/usr/bin/env python3
"""Benchmark baseline diff: fail on per-cell metric regressions.

Compares one or more candidate BENCH_*.json artifacts (schema
modcon-bench) against a committed baseline and exits nonzero when any
gated cell metric regressed by more than --threshold (default 10%).
Two metrics are gated, matched by experiment label:

  * perf.steps_per_sec_p50 — median trial step rate (higher is better);
    cells without perf data (e.g. rt-backend rows, which report
    wall-clock only) are skipped.
  * multi.slot_ops.p50 — median individual ops per slot proposal for
    multi-shot cells (lower is better; a deterministic cost, not a
    timing), gated as "<label> [slot_ops_p50]".

Usage:
    scripts/compare_bench.py BASELINE.json CANDIDATE.json... [options]

Multiple candidates are merged (the baseline may span several benches,
each re-run into its own artifact); a label appearing in two candidates
takes the last one.

Artifacts are matched by schema *name*, never by version: a v4 baseline
gates a v5 candidate (and vice versa) because every schema bump so far
is additive at the cell level — v5's `recovery` block is simply ignored
here, like v3.2's `obs` block before it.

Options:
    --threshold F   fractional regression allowed per cell (default 0.10)
    --key NAME      perf field to compare (default steps_per_sec_p50)
    --require-all   fail if a baseline cell is missing from the candidates
                    (default: missing cells are reported but tolerated, so
                    a bench can drop a cell in the same PR that refreshes
                    the baseline)
    --history DIR   directory of prior artifacts (mtime-ordered, e.g. a CI
                    cache each run appends to).  Each regression is then
                    classified against that history with bench_trend.py's
                    classifier: "one-off" (the history was stable — likely
                    noise or a cold machine) vs "drift" (the metric was
                    already eroding — the pairwise diff is catching a
                    sustained decline, not a step).  Classification only
                    annotates the report; the exit code still follows the
                    baseline diff.

When $GITHUB_STEP_SUMMARY is set (GitHub Actions exports it per step),
the per-cell comparison is also appended there as a markdown table, so
the run's Summary tab shows the numbers without digging through logs.

Exit codes: 0 ok, 1 regression (or missing cells with --require-all),
2 bad invocation / unreadable or mismatched artifacts.
"""

import argparse
import json
import os
import sys


def die(message):
    """Bad invocation / unreadable or mismatched artifact: exit 2, so CI
    can tell an environment problem from a real regression (exit 1)."""
    print(message, file=sys.stderr)
    sys.exit(2)


def load_cells(path, key):
    """Returns {label: (value, higher_is_better)} for every gated metric."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        die(f"compare_bench: cannot read {path}: {err}")
    if doc.get("schema") != "modcon-bench":
        die(f"compare_bench: {path} is not a modcon-bench artifact "
            f"(schema={doc.get('schema')!r})")
    cells = {}
    for exp in doc.get("experiments", []):
        label = exp.get("label")
        if not label:
            continue
        value = exp.get("perf", {}).get(key)
        if isinstance(value, (int, float)) and value > 0:
            cells[label] = (float(value), True)
        slot = exp.get("multi", {}).get("slot_ops", {}).get("p50")
        if isinstance(slot, (int, float)) and slot > 0:
            cells[f"{label} [slot_ops_p50]"] = (float(slot), False)
    return cells


def load_history_series(directory, key):
    """{gated label: [value, ...]} over the directory's artifacts, oldest
    mtime first.  Non-bench or unreadable files are skipped (a history
    cache may hold logs or trend JSON next to the artifacts)."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import bench_trend

    series = {}
    for path in bench_trend.history_paths(directory):
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if doc.get("schema") != "modcon-bench":
            continue
        for exp in doc.get("experiments", []):
            label = exp.get("label")
            if not label:
                continue
            value = exp.get("perf", {}).get(key)
            if isinstance(value, (int, float)) and value > 0:
                series.setdefault(label, []).append(float(value))
            slot = exp.get("multi", {}).get("slot_ops", {}).get("p50")
            if isinstance(slot, (int, float)) and slot > 0:
                series.setdefault(f"{label} [slot_ops_p50]", []).append(
                    float(slot))
    return series


def classify_regression(history_series, label, new, threshold,
                        higher_is_better):
    """"one-off" / "drift" verdict for a regressed cell, or None when the
    history has too few points to say."""
    import bench_trend

    values = history_series.get(label, [])
    if len(values) < 2:
        return None
    verdict = bench_trend.classify(
        values + [new], threshold, higher_is_better)
    if verdict == "regression-drift":
        return "drift"
    if verdict == "regression-one-off":
        return "one-off"
    # The baseline diff flagged it but the history median tolerates it
    # (e.g. the baseline was a high-water mark): still a one-off signal.
    return "one-off"


def write_step_summary(key, threshold, rows, verdict):
    """Appends the per-cell table as markdown to $GITHUB_STEP_SUMMARY.

    `rows` is [(label, old, new, status)] with old/new possibly None
    (missing / new cells).  A no-op outside GitHub Actions.
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        f"### Bench comparison — `{key}` (threshold {threshold:.0%})",
        "",
        "| cell | baseline | candidate | delta | status |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for label, old, new, status in rows:
        old_s = f"{old:,.1f}" if old is not None else "—"
        new_s = f"{new:,.1f}" if new is not None else "—"
        delta = f"{new / old - 1:+.1%}" if old and new else "—"
        lines.append(f"| `{label}` | {old_s} | {new_s} | {delta} | {status} |")
    lines += ["", f"**{verdict}**", ""]
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def main():
    parser = argparse.ArgumentParser(
        description="fail on >threshold per-cell benchmark regression")
    parser.add_argument("baseline")
    parser.add_argument("candidates", nargs="+")
    parser.add_argument("--threshold", type=float, default=0.10)
    parser.add_argument("--key", default="steps_per_sec_p50")
    parser.add_argument("--require-all", action="store_true")
    parser.add_argument("--history")
    args = parser.parse_args()
    if not 0 <= args.threshold < 1:
        parser.error("--threshold must be in [0, 1)")
    if args.history and not os.path.isdir(args.history):
        die(f"compare_bench: --history {args.history} is not a directory")

    history_series = (
        load_history_series(args.history, args.key) if args.history else None
    )
    base = load_cells(args.baseline, args.key)
    cand = {}
    for path in args.candidates:
        cand.update(load_cells(path, args.key))
    if not base:
        die(f"compare_bench: no gated cells in {args.baseline}")

    regressions, missing, rows = [], [], []
    width = max(len(label) for label in base)
    print(f"compare_bench: {args.key} + multi slot_ops_p50, threshold "
          f"{args.threshold:.0%} ({args.baseline} -> "
          f"{', '.join(args.candidates)})")
    for label, (old, higher_is_better) in sorted(base.items()):
        entry = cand.get(label)
        if entry is None:
            missing.append(label)
            rows.append((label, old, None, "missing"))
            print(f"  {label:<{width}}  MISSING from candidate")
            continue
        new = entry[0]
        # `ratio` > 1 always means "got better", whichever way the
        # metric points.
        ratio = new / old if higher_is_better else old / new
        flag = "" if ratio >= 1 - args.threshold else "  << REGRESSION"
        status = "ok"
        if flag:
            kind = None
            if history_series is not None:
                kind = classify_regression(
                    history_series, label, new, args.threshold,
                    higher_is_better)
            if kind:
                flag = f"  << REGRESSION ({kind})"
                status = f"regression ({kind}) ❌"
            else:
                status = "regression ❌"
        rows.append((label, old, new, status))
        print(f"  {label:<{width}}  {old:14.1f} -> {new:14.1f}  "
              f"({new / old - 1:+7.1%}){flag}")
        if flag:
            regressions.append((label, old, new))
    for label in sorted(set(cand) - set(base)):
        rows.append((label, None, cand[label][0], "new cell"))
        print(f"  {label:<{width}}  new cell (not in baseline)")

    if regressions:
        detail = ", ".join(f"{label} ({old:.1f} -> {new:.1f})"
                           for label, old, new in regressions)
        verdict = (f"FAIL — {len(regressions)} cell(s) regressed more "
                   f"than {args.threshold:.0%}: {detail}")
    elif missing and args.require_all:
        verdict = (f"FAIL — {len(missing)} baseline cell(s) missing: "
                   f"{', '.join(missing)}")
    else:
        verdict = "OK"
    write_step_summary(args.key, args.threshold, rows, verdict)
    if verdict != "OK":
        print(f"compare_bench: {verdict}")
        return 1
    print("compare_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
