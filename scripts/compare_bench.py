#!/usr/bin/env python3
"""Benchmark baseline diff: fail on median step-rate regressions.

Compares a candidate BENCH_*.json artifact (schema modcon-bench v3) against
a committed baseline and exits nonzero when any cell's median trial step
rate (perf.steps_per_sec_p50) regressed by more than --threshold (default
10%).  Cells are matched by experiment label; cells without perf data
(e.g. rt-backend rows, which report wall-clock only) are skipped.

Usage:
    scripts/compare_bench.py BASELINE.json CANDIDATE.json [options]

Options:
    --threshold F   fractional regression allowed per cell (default 0.10)
    --key NAME      perf field to compare (default steps_per_sec_p50)
    --require-all   fail if a baseline cell is missing from the candidate
                    (default: missing cells are reported but tolerated, so
                    a bench can drop a cell in the same PR that refreshes
                    the baseline)

Exit codes: 0 ok, 1 regression (or missing cells with --require-all),
2 bad invocation / unreadable or mismatched artifacts.
"""

import argparse
import json
import sys


def die(message):
    """Bad invocation / unreadable or mismatched artifact: exit 2, so CI
    can tell an environment problem from a real regression (exit 1)."""
    print(message, file=sys.stderr)
    sys.exit(2)


def load_cells(path, key):
    """Returns {label: value} for every experiment carrying perf[key] > 0."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        die(f"compare_bench: cannot read {path}: {err}")
    if doc.get("schema") != "modcon-bench":
        die(f"compare_bench: {path} is not a modcon-bench artifact "
            f"(schema={doc.get('schema')!r})")
    cells = {}
    for exp in doc.get("experiments", []):
        label = exp.get("label")
        value = exp.get("perf", {}).get(key)
        if label and isinstance(value, (int, float)) and value > 0:
            cells[label] = float(value)
    return cells


def main():
    parser = argparse.ArgumentParser(
        description="fail on >threshold median step-rate regression")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10)
    parser.add_argument("--key", default="steps_per_sec_p50")
    parser.add_argument("--require-all", action="store_true")
    args = parser.parse_args()
    if not 0 <= args.threshold < 1:
        parser.error("--threshold must be in [0, 1)")

    base = load_cells(args.baseline, args.key)
    cand = load_cells(args.candidate, args.key)
    if not base:
        die(f"compare_bench: no cells with {args.key} in {args.baseline}")

    regressions, missing = [], []
    width = max(len(label) for label in base)
    print(f"compare_bench: {args.key}, threshold "
          f"{args.threshold:.0%} ({args.baseline} -> {args.candidate})")
    for label, old in sorted(base.items()):
        new = cand.get(label)
        if new is None:
            missing.append(label)
            print(f"  {label:<{width}}  MISSING from candidate")
            continue
        ratio = new / old
        flag = "" if ratio >= 1 - args.threshold else "  << REGRESSION"
        print(f"  {label:<{width}}  {old:14.0f} -> {new:14.0f}  "
              f"({ratio - 1:+7.1%}){flag}")
        if flag:
            regressions.append((label, old, new))
    for label in sorted(set(cand) - set(base)):
        print(f"  {label:<{width}}  new cell (not in baseline)")

    if regressions:
        detail = ", ".join(f"{label} ({old:.0f} -> {new:.0f})"
                           for label, old, new in regressions)
        print(f"compare_bench: FAIL — {len(regressions)} cell(s) regressed "
              f"more than {args.threshold:.0%}: {detail}")
        return 1
    if missing and args.require_all:
        print(f"compare_bench: FAIL — {len(missing)} baseline cell(s) "
              f"missing: {', '.join(missing)}")
        return 1
    print("compare_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
