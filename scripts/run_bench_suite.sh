#!/usr/bin/env bash
# Runs every experiment bench through the parallel trial engine and
# collects the versioned JSON artifacts (schema modcon-bench v2) under
# artifacts/.  The bench_e* glob picks up every registered bench,
# including E15's fault matrix (crash-restart / regular-register / rt
# watchdog sweeps).  Knobs:
#
#   SEEDS=N    per-cell trial count override (default 100)
#   THREADS=N  trial-pool workers (default: hardware; results identical)
#   BUILD=DIR  build directory (default build)
#   OUT=DIR    artifact directory (default artifacts)
#   ENGINE=E   trial engine: scalar | batch | auto (default auto)
#
# Flags:
#   --shards N run each bench as N shard processes via
#              scripts/grid_runner.py and merge with modcon-merge; the
#              merged artifact is byte-identical to the single-process
#              one (per-shard artifacts land in $OUT/shards/)
#
# Example: SEEDS=1000 THREADS=8 scripts/run_bench_suite.sh --shards 4
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-100}"
THREADS="${THREADS:-0}"
BUILD="${BUILD:-build}"
OUT="${OUT:-artifacts}"
ENGINE="${ENGINE:-auto}"

SHARDS=1
while [ $# -gt 0 ]; do
  case "$1" in
    --shards)
      [ $# -ge 2 ] || { echo "--shards requires a value" >&2; exit 2; }
      SHARDS="$2"
      shift 2
      ;;
    *)
      echo "unknown argument '$1' (supported: --shards N)" >&2
      exit 2
      ;;
  esac
done

if [ ! -d "$BUILD/bench" ]; then
  echo "no $BUILD/bench — run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

mkdir -p "$OUT"

for b in "$BUILD"/bench/bench_e*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  extra=()
  # E11 embeds google-benchmark; keep the suite fast by running only the
  # engine-driven summary table.
  [ "$name" = "bench_e11_rt_threads" ] && extra=(--benchmark_filter=NONE)
  echo "### $name (seeds=$SEEDS threads=$THREADS engine=$ENGINE shards=$SHARDS)"
  if [ "$SHARDS" -gt 1 ]; then
    python3 scripts/grid_runner.py \
      --bench "$b" --shards "$SHARDS" --out "$OUT/shards" \
      --merge "$OUT/BENCH_${name#bench_}.json" \
      -- --seeds "$SEEDS" --threads "$THREADS" --engine "$ENGINE" "${extra[@]}"
  else
    "$b" --seeds "$SEEDS" --threads "$THREADS" --engine "$ENGINE" \
         --json "$OUT/BENCH_${name#bench_}.json" "${extra[@]}"
  fi
done

echo "artifacts in $OUT/:"
ls -l "$OUT"
