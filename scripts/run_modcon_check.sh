#!/usr/bin/env bash
# Exhaustive-verify matrix: model-check every registry stack with
# tools/modcon-check across semantics and fault budgets, requiring every
# cell to exhaust its (depth-bounded) choice tree with zero violations.
#
#   usage: run_modcon_check.sh [--deep]
#
#   --deep    additionally run the nightly n = 3 matrix with coin
#             branching on (also selectable with DEEP=1)
#
# Knobs:
#
#   BUILD=DIR   build directory (default build; configured if missing)
#   OUT=DIR     JSON report directory (default $BUILD/modcon-check)
#
# Depth caps are sized per regime: DPOR cells (atomic, fault-free) can
# afford deep trees; full-branching cells (regular/safe semantics, crash
# or omission budgets — the soundness gate disables reduction there) get
# shallower caps that still exhaust in CI minutes.  `exhausted == true`
# for every cell is the gate: a cell that stops exhausting after an
# engine change means the tree grew (or the reduction broke) and the cap
# needs a deliberate revisit, not a silent pass.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD:-build}"
OUT="${OUT:-$BUILD/modcon-check}"
DEEP="${DEEP:-0}"
if [ "${1:-}" = "--deep" ]; then
  DEEP=1
  shift
fi
if [ "$#" -ne 0 ]; then
  echo "run_modcon_check.sh: unknown argument '$1'" >&2
  exit 2
fi

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -S . >/dev/null
fi
cmake --build "$BUILD" -j "$(nproc)" --target modcon-check >/dev/null
MC="$BUILD/tools/modcon-check"
mkdir -p "$OUT"

run_cell() {
  local tag="$1"
  shift
  echo "=== $tag"
  "$MC" --require-exhausted --require-clean --json "$OUT/$tag.json" "$@"
}

# --- n = 2: the PR-gating matrix (every registry stack per cell) ---

# DPOR regime: deep exhaustion of every schedule.
run_cell n2-atomic --stack all --n 2 --semantics atomic --max-choices 48
# DPOR-vs-naive equivalence gate: both modes on every stack; the tool
# exits nonzero if the verdicts disagree.
run_cell n2-equivalence --stack all --n 2 --mode both --max-choices 14
# Full-branching regimes (the soundness gate turns DPOR off).
run_cell n2-regular --stack all --n 2 --semantics regular --max-choices 24
run_cell n2-safe --stack all --n 2 --semantics safe --max-choices 24
run_cell n2-crash --stack all --n 2 --crash-budget 1 --max-choices 18
run_cell n2-crash-recoverable --stack all --n 2 --crash-budget 1 \
  --recoverable --max-choices 18
# No omission cell: the registry stacks are crash-tolerant, not
# omission-tolerant — a dropped quorum-board write legitimately breaks
# coherence, so that dimension is exercised by model_check_test's
# expected-violation run instead of a must-be-clean gate.

if [ "$DEEP" = "1" ]; then
  # --- nightly: n = 3, coin branching on ---
  run_cell n3-atomic-coins --stack all --n 3 --coins on --max-choices 32
  run_cell n3-crash-coins --stack all --n 3 --coins on --crash-budget 1 \
    --max-choices 12
  # Shallow prefix exhaustion: no n = 3 triple completes within 14
  # choices under these semantics, but every reachable overlap
  # resolution in the prefix tree is still audited.
  run_cell n3-regular --stack all --n 3 --semantics regular --max-choices 14
  run_cell n3-safe --stack all --n 3 --semantics safe --max-choices 14
fi

echo "run_modcon_check.sh: all cells exhausted and clean (reports: $OUT)"
