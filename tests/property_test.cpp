// Cross-cutting randomized property sweep: every deciding object in the
// library must satisfy its §3 contract under every scheduler in the
// portfolio, across sizes, input patterns, and seeds.  This is the
// broad-spectrum net behind the targeted suites.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/runner.h"
#include "check/explorer.h"
#include "core/modcon.h"
#include "sim/adversaries/adversaries.h"

namespace modcon {
namespace {

using analysis::input_pattern;
using analysis::make_inputs;
using analysis::run_object_trial;
using analysis::trial_options;
using sim::sim_env;

enum class object_kind {
  impatient_conciliator_k,
  fixed_probability_conciliator_k,
  binary_ratifier_k,
  bollobas_ratifier_k,
  bitvector_ratifier_k,
  cheap_collect_ratifier_k,
  unbounded_consensus_k,
  bounded_consensus_k,
  cil_consensus_k,
};

const char* name_of(object_kind k) {
  switch (k) {
    case object_kind::impatient_conciliator_k: return "impatient";
    case object_kind::fixed_probability_conciliator_k: return "fixedprob";
    case object_kind::binary_ratifier_k: return "binratifier";
    case object_kind::bollobas_ratifier_k: return "bolratifier";
    case object_kind::bitvector_ratifier_k: return "bvratifier";
    case object_kind::cheap_collect_ratifier_k: return "ccratifier";
    case object_kind::unbounded_consensus_k: return "unbounded";
    case object_kind::bounded_consensus_k: return "bounded";
    case object_kind::cil_consensus_k: return "cil";
  }
  return "?";
}

bool is_consensus(object_kind k) {
  return k == object_kind::unbounded_consensus_k ||
         k == object_kind::bounded_consensus_k ||
         k == object_kind::cil_consensus_k;
}

bool is_ratifier(object_kind k) {
  return k == object_kind::binary_ratifier_k ||
         k == object_kind::bollobas_ratifier_k ||
         k == object_kind::bitvector_ratifier_k ||
         k == object_kind::cheap_collect_ratifier_k;
}

analysis::sim_object_builder builder_for(object_kind k, std::uint64_t m) {
  switch (k) {
    case object_kind::impatient_conciliator_k:
      return [](address_space& mem, std::size_t) {
        return std::make_unique<impatient_conciliator<sim_env>>(mem);
      };
    case object_kind::fixed_probability_conciliator_k:
      return [](address_space& mem, std::size_t) {
        return std::make_unique<fixed_probability_conciliator<sim_env>>(mem);
      };
    case object_kind::binary_ratifier_k:
      return [](address_space& mem, std::size_t) {
        return std::make_unique<quorum_ratifier<sim_env>>(
            mem, make_binary_quorums());
      };
    case object_kind::bollobas_ratifier_k:
      return [m](address_space& mem, std::size_t) {
        return std::make_unique<quorum_ratifier<sim_env>>(
            mem, make_bollobas_quorums(m));
      };
    case object_kind::bitvector_ratifier_k:
      return [m](address_space& mem, std::size_t) {
        return std::make_unique<quorum_ratifier<sim_env>>(
            mem, make_bitvector_quorums(m));
      };
    case object_kind::cheap_collect_ratifier_k:
      return [](address_space& mem, std::size_t n) {
        return std::make_unique<cheap_collect_ratifier<sim_env>>(mem, n);
      };
    case object_kind::unbounded_consensus_k:
      return [m](address_space& mem, std::size_t) {
        return make_impatient_consensus<sim_env>(
            mem, m == 2 ? make_binary_quorums() : make_bollobas_quorums(m));
      };
    case object_kind::bounded_consensus_k:
      return [m](address_space& mem, std::size_t n) {
        return make_bounded_impatient_consensus<sim_env>(
            mem, m == 2 ? make_binary_quorums() : make_bollobas_quorums(m),
            n);
      };
    case object_kind::cil_consensus_k:
      return [](address_space& mem, std::size_t n) {
        return std::make_unique<cil_consensus<sim_env>>(mem, n);
      };
  }
  MODCON_CHECK(false);
  return {};
}

enum class sched_kind {
  rr,
  random,
  sequential,
  noisy,
  priority,
  quantum,
  lockstep
};

const char* name_of(sched_kind k) {
  switch (k) {
    case sched_kind::rr: return "rr";
    case sched_kind::random: return "rand";
    case sched_kind::sequential: return "seq";
    case sched_kind::noisy: return "noisy";
    case sched_kind::priority: return "prio";
    case sched_kind::quantum: return "quantum";
    case sched_kind::lockstep: return "lockstep";
  }
  return "?";
}

std::unique_ptr<sim::adversary> adversary_for(sched_kind k) {
  switch (k) {
    case sched_kind::rr: return std::make_unique<sim::round_robin>();
    case sched_kind::random:
      return std::make_unique<sim::random_oblivious>();
    case sched_kind::sequential:
      return std::make_unique<sim::fixed_order>(
          sim::fixed_order::mode::sequential);
    case sched_kind::noisy: return std::make_unique<sim::noisy>(0.7);
    case sched_kind::priority:
      return std::make_unique<sim::priority_sched>();
    case sched_kind::quantum: return std::make_unique<sim::quantum_sched>(3);
    case sched_kind::lockstep: return std::make_unique<sim::lockstep>();
  }
  return nullptr;
}

struct sweep_case {
  object_kind object;
  sched_kind sched;
  std::size_t n;
  std::uint64_t m;
};

class ObjectContract : public ::testing::TestWithParam<sweep_case> {};

TEST_P(ObjectContract, HoldsOverSeedsAndPatterns) {
  const auto c = GetParam();
  const auto patterns = {input_pattern::unanimous, input_pattern::half_half,
                         input_pattern::random_m};
  for (auto pattern : patterns) {
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
      auto adv = adversary_for(c.sched);
      auto inputs = make_inputs(pattern, c.n, c.m, seed);
      trial_options opts;
      opts.seed = seed;
      opts.limits.max_steps = 5'000'000;
      auto res =
          run_object_trial(builder_for(c.object, c.m), inputs, *adv, opts);
      ASSERT_TRUE(res.completed())
          << name_of(c.object) << "/" << name_of(c.sched) << " seed "
          << seed;
      EXPECT_TRUE(res.valid(inputs)) << name_of(c.object) << " validity";
      EXPECT_TRUE(res.coherent()) << name_of(c.object) << " coherence";
      if (is_consensus(c.object)) {
        EXPECT_TRUE(analysis::all_decided(res.outputs));
        EXPECT_TRUE(res.agreement());
      }
      bool unanimous = pattern == input_pattern::unanimous;
      if (is_ratifier(c.object) && unanimous)
        EXPECT_TRUE(analysis::check_acceptance(res.outputs, inputs[0]));
    }
  }
}

std::vector<sweep_case> all_cases() {
  std::vector<sweep_case> cases;
  const object_kind objects[] = {
      object_kind::impatient_conciliator_k,
      object_kind::fixed_probability_conciliator_k,
      object_kind::binary_ratifier_k,
      object_kind::bollobas_ratifier_k,
      object_kind::bitvector_ratifier_k,
      object_kind::cheap_collect_ratifier_k,
      object_kind::unbounded_consensus_k,
      object_kind::bounded_consensus_k,
      object_kind::cil_consensus_k,
  };
  const sched_kind scheds[] = {sched_kind::rr,        sched_kind::random,
                               sched_kind::sequential, sched_kind::noisy,
                               sched_kind::priority,   sched_kind::quantum,
                               sched_kind::lockstep};
  for (auto o : objects) {
    for (auto s : scheds) {
      // Round-robin/lockstep starve nothing but never separate
      // processes; they would stall CIL only pathologically — included
      // anyway (hidden coins must save it).  m = 2 keeps binary quorums
      // valid; the multivalued configurations exercise the general path.
      cases.push_back({o, s, 2, 2});
      cases.push_back({o, s, 7, 2});
      if (o != object_kind::binary_ratifier_k) {
        cases.push_back({o, s, 5, 9});
        cases.push_back({o, s, 16, 40});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ObjectContract, ::testing::ValuesIn(all_cases()),
    [](const auto& info) {
      return std::string(name_of(info.param.object)) + "_" +
             name_of(info.param.sched) + "_n" +
             std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m);
    });

}  // namespace
}  // namespace modcon
