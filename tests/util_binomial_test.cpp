#include "util/binomial.h"

#include <gtest/gtest.h>

#include "util/bits.h"

namespace modcon {
namespace {

TEST(Binomial, SmallValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 5), 252u);
  EXPECT_EQ(binomial(5, 6), 0u);
}

TEST(Binomial, PascalIdentity) {
  for (unsigned n = 1; n < 40; ++n)
    for (unsigned r = 1; r <= n; ++r)
      EXPECT_EQ(binomial(n, r), binomial(n - 1, r - 1) + binomial(n - 1, r))
          << n << " choose " << r;
}

TEST(Binomial, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(binomial(200, 100), UINT64_MAX);
  EXPECT_EQ(binomial(64, 32), 1832624140942590534ull);  // still exact
}

TEST(MinPool, MatchesDefinition) {
  for (std::uint64_t m : {1ull, 2ull, 3ull, 6ull, 7ull, 20ull, 21ull,
                          1000ull, 1ull << 20}) {
    unsigned k = min_pool_for(m);
    EXPECT_GE(binomial(k, k / 2), m);
    if (k > 1) EXPECT_LT(binomial(k - 1, (k - 1) / 2), m);
  }
}

TEST(MinPool, GrowsLikeLgPlusLogLog) {
  // k = lg m + Theta(log log m): check k - lg m is small and slowly
  // growing.
  for (unsigned bits = 2; bits <= 40; bits += 2) {
    std::uint64_t m = 1ull << bits;
    unsigned k = min_pool_for(m);
    EXPECT_GE(k, bits);
    EXPECT_LE(k, bits + 2 * ceil_log2(bits) + 3) << "m = 2^" << bits;
  }
}

TEST(Unrank, EnumeratesAllSubsetsInOrder) {
  const unsigned pool = 6, size = 3;
  const std::uint64_t total = binomial(pool, size);
  std::vector<std::uint32_t> prev;
  for (std::uint64_t rank = 0; rank < total; ++rank) {
    auto s = unrank_subset(pool, size, rank);
    ASSERT_EQ(s.size(), size);
    for (std::size_t i = 0; i + 1 < s.size(); ++i) EXPECT_LT(s[i], s[i + 1]);
    for (auto e : s) EXPECT_LT(e, pool);
    if (rank > 0) EXPECT_LT(prev, s) << "lexicographic order broken";
    prev = s;
  }
}

TEST(Unrank, RoundTripsWithRank) {
  for (unsigned pool : {4u, 7u, 12u}) {
    for (unsigned size = 1; size <= pool; ++size) {
      std::uint64_t total = binomial(pool, size);
      for (std::uint64_t rank = 0; rank < total; ++rank) {
        auto s = unrank_subset(pool, size, rank);
        EXPECT_EQ(rank_subset(pool, s), rank);
      }
    }
  }
}

TEST(Unrank, RejectsOutOfRange) {
  EXPECT_THROW(unrank_subset(4, 2, binomial(4, 2)), invariant_error);
}

TEST(Bits, Log2Helpers) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1025), 11u);
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(65));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_EQ(pow2_saturating(3, 100), 8u);
  EXPECT_EQ(pow2_saturating(10, 100), 100u);
  EXPECT_EQ(pow2_saturating(80, 100), 100u);
}

}  // namespace
}  // namespace modcon
