// Composition (§3.2): Procedure Composition semantics, Lemmas 1-3,
// Corollary 4, associativity, and the paper's scramble/unscramble remark
// showing the converse of Lemma 1 fails.
#include "core/compose.h"

#include <gtest/gtest.h>

#include <memory>

#include "analysis/runner.h"
#include "core/conciliator/impatient.h"
#include "core/ratifier/quorum_ratifier.h"
#include "sim/adversaries/adversaries.h"

namespace modcon {
namespace {

using analysis::input_pattern;
using analysis::make_inputs;
using analysis::run_object_trial;
using analysis::trial_options;
using sim::sim_env;

// --- synthetic deciding objects (no shared memory needed) ---

// Copies its input to its output with decision bit 0: the trivially weak
// consensus object the paper mentions after the coherence definition.
class identity_object final : public deciding_object<sim_env> {
 public:
  proc<decided> invoke(sim_env&, value_t v) override {
    co_return decided{false, v};
  }
  std::string name() const override { return "identity"; }
};

// Applies a fixed permutation (XOR mask) to its input.  Violates
// validity, never decides.
class scramble_object final : public deciding_object<sim_env> {
 public:
  explicit scramble_object(value_t mask) : mask_(mask) {}
  proc<decided> invoke(sim_env&, value_t v) override {
    co_return decided{false, v ^ mask_};
  }
  std::string name() const override { return "scramble"; }

 private:
  value_t mask_;
};

// Decides its input immediately.
class instant_decider final : public deciding_object<sim_env> {
 public:
  proc<decided> invoke(sim_env&, value_t v) override {
    co_return decided{true, v};
  }
  std::string name() const override { return "instant"; }
};

// Decides a constant, ignoring its input (violates validity; used to
// prove the later object is skipped after a decision).
class constant_decider final : public deciding_object<sim_env> {
 public:
  explicit constant_decider(value_t v) : v_(v) {}
  proc<decided> invoke(sim_env&, value_t) override {
    co_return decided{true, v_};
  }
  std::string name() const override { return "constant"; }

 private:
  value_t v_;
};

// Counts invocations (via shared memory so it is observable).
class counting_object final : public deciding_object<sim_env> {
 public:
  explicit counting_object(address_space& mem, bool decide)
      : r_(mem.alloc(0)), decide_(decide) {}
  proc<decided> invoke(sim_env& env, value_t v) override {
    word c = co_await env.read(r_);
    co_await env.write(r_, c + 1);
    co_return decided{decide_, v};
  }
  std::string name() const override { return "counting"; }
  reg_id reg() const { return r_; }

 private:
  reg_id r_;
  bool decide_;
};

TEST(Composition, FeedsValueThroughWhenNoDecision) {
  sim::round_robin adv;
  auto build = [](address_space&, std::size_t) {
    auto s = std::make_unique<sequence<sim_env>>();
    s->append(std::make_unique<scramble_object>(0b101));
    s->append(std::make_unique<scramble_object>(0b011));
    return s;
  };
  auto res = run_object_trial(build, {0b000}, adv);
  ASSERT_TRUE(res.completed());
  EXPECT_EQ(res.outputs[0], (decided{false, 0b110}));
}

TEST(Composition, DecisionShortCircuitsLaterObjects) {
  sim::round_robin adv;
  // X decides; Y would scramble — but must be skipped entirely.
  auto build = [](address_space& mem, std::size_t) {
    auto s = std::make_unique<sequence<sim_env>>();
    s->append(std::make_unique<instant_decider>());
    auto counter = std::make_unique<counting_object>(mem, false);
    s->append(std::move(counter));
    return s;
  };
  auto res = run_object_trial(build, {5, 5}, adv);
  ASSERT_TRUE(res.completed());
  for (const auto& d : res.outputs) EXPECT_EQ(d, (decided{true, 5}));
  EXPECT_EQ(res.total_ops, 0u);  // the counting object never ran
}

TEST(Composition, DecisionBitSurvivesComposition) {
  sim::round_robin adv;
  auto build = [](address_space&, std::size_t) {
    auto s = std::make_unique<sequence<sim_env>>();
    s->append(std::make_unique<identity_object>());
    s->append(std::make_unique<instant_decider>());
    return s;
  };
  auto res = run_object_trial(build, {3}, adv);
  EXPECT_EQ(res.outputs[0], (decided{true, 3}));
}

TEST(Composition, AssociativityObservedOnOutputs) {
  // ((X; Y); Z) behaves exactly like (X; (Y; Z)).
  sim::round_robin adv;
  auto left = [](address_space&, std::size_t)
      -> std::unique_ptr<deciding_object<sim_env>> {
    auto xy = compose<sim_env>(std::make_unique<scramble_object>(1),
                               std::make_unique<scramble_object>(2));
    return compose<sim_env>(std::move(xy),
                            std::make_unique<scramble_object>(4));
  };
  auto right = [](address_space&, std::size_t)
      -> std::unique_ptr<deciding_object<sim_env>> {
    auto yz = compose<sim_env>(std::make_unique<scramble_object>(2),
                               std::make_unique<scramble_object>(4));
    return compose<sim_env>(std::make_unique<scramble_object>(1),
                            std::move(yz));
  };
  for (value_t v : {value_t{0}, value_t{3}, value_t{9}}) {
    auto a = run_object_trial(left, {v}, adv);
    auto b = run_object_trial(right, {v}, adv);
    EXPECT_EQ(a.outputs[0], b.outputs[0]) << "input " << v;
  }
}

TEST(Composition, ScrambleUnscrambleShowsConverseOfLemma1Fails) {
  // The paper: composition may be valid even when the parts are not —
  // the first scrambles (invalid), the second unscrambles.
  sim::round_robin adv;
  auto build = [](address_space&, std::size_t) {
    auto s = std::make_unique<sequence<sim_env>>();
    s->append(std::make_unique<scramble_object>(0xff));
    s->append(std::make_unique<scramble_object>(0xff));
    return s;
  };
  auto inputs = make_inputs(input_pattern::alternating, 4, 4, 1);
  auto res = run_object_trial(build, inputs, adv);
  ASSERT_TRUE(res.completed());
  EXPECT_TRUE(res.valid(inputs));  // composite is valid...
  // ...even though the first part alone is not:
  auto scramble_only = [](address_space&, std::size_t) {
    auto s = std::make_unique<sequence<sim_env>>();
    s->append(std::make_unique<scramble_object>(0xff));
    return s;
  };
  auto res2 = run_object_trial(scramble_only, inputs, adv);
  EXPECT_FALSE(res2.valid(inputs));
}

TEST(Composition, Lemma1ValidityPreserved) {
  // Composition of two valid weak consensus objects stays valid (here:
  // ratifier; conciliator — both valid — over many random schedules).
  auto qs = make_binary_quorums();
  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    sim::random_oblivious adv;
    auto build = [&qs](address_space& mem, std::size_t) {
      auto s = std::make_unique<sequence<sim_env>>();
      s->append(std::make_unique<quorum_ratifier<sim_env>>(mem, qs));
      s->append(std::make_unique<impatient_conciliator<sim_env>>(mem));
      return s;
    };
    auto inputs = make_inputs(input_pattern::half_half, 5, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(build, inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(res.valid(inputs)) << "seed " << seed;
  }
}

TEST(Composition, Lemma3CoherencePreserved) {
  // (X; Y) with X, Y ratifiers (coherent + valid) must be coherent on
  // every random schedule.
  auto qs = make_bollobas_quorums(4);
  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    sim::random_oblivious adv;
    auto build = [&qs](address_space& mem, std::size_t) {
      auto s = std::make_unique<sequence<sim_env>>();
      s->append(std::make_unique<quorum_ratifier<sim_env>>(mem, qs));
      s->append(std::make_unique<quorum_ratifier<sim_env>>(mem, qs));
      return s;
    };
    auto inputs = make_inputs(input_pattern::random_m, 5, 4, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(build, inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(res.coherent()) << "seed " << seed;
  }
}

TEST(Composition, EmptySequenceIsIdentity) {
  sim::round_robin adv;
  auto build = [](address_space&, std::size_t) {
    return std::make_unique<sequence<sim_env>>();
  };
  auto res = run_object_trial(build, {4}, adv);
  EXPECT_EQ(res.outputs[0], (decided{false, 4}));
}

TEST(Composition, NameListsParts) {
  sequence<sim_env> s;
  s.append(std::make_unique<identity_object>());
  s.append(std::make_unique<instant_decider>());
  EXPECT_EQ(s.name(), "(identity; instant)");
}

TEST(Composition, ConstantDeciderMakesLaterPartsUnreachable) {
  sim::round_robin adv;
  auto build = [](address_space&, std::size_t) {
    auto s = std::make_unique<sequence<sim_env>>();
    s->append(std::make_unique<constant_decider>(9));
    s->append(std::make_unique<scramble_object>(0xf));
    return s;
  };
  auto res = run_object_trial(build, {1, 2}, adv);
  for (const auto& d : res.outputs) EXPECT_EQ(d, (decided{true, 9}));
}

}  // namespace
}  // namespace modcon
