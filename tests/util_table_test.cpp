#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/assertx.h"

namespace modcon {
namespace {

TEST(Table, PrintsAlignedColumns) {
  table t({"n", "work"});
  t.row().cell(std::uint64_t{8}).cell(12.5, 1);
  t.row().cell(std::uint64_t{1024}).cell(3.0, 1);
  std::ostringstream os;
  t.print(os, "demo");
  std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("1024"), std::string::npos);
  EXPECT_NE(s.find("12.5"), std::string::npos);
  EXPECT_NE(s.find("n"), std::string::npos);
}

TEST(Table, CsvOutput) {
  table t({"a", "b"});
  t.row().cell(1).cell(2);
  t.row().cell("x").cell(0.5, 2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\nx,0.50\n");
}

TEST(Table, RejectsTooManyCells) {
  table t({"only"});
  t.row().cell(1);
  EXPECT_THROW(t.cell(2), invariant_error);
}

TEST(Table, RejectsCellBeforeRow) {
  table t({"a"});
  EXPECT_THROW(t.cell(1), invariant_error);
}

TEST(Table, CountsRows) {
  table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.row().cell(1);
  t.row().cell(2);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, EmitWritesCsvWhenDirConfigured) {
  table t({"x", "y"});
  t.row().cell(7).cell(8);
  ::setenv("MODCON_CSV_DIR", ::testing::TempDir().c_str(), 1);
  testing::internal::CaptureStdout();
  t.emit("csv check", "table_emit_check");
  std::string printed = testing::internal::GetCapturedStdout();
  ::unsetenv("MODCON_CSV_DIR");
  EXPECT_NE(printed.find("csv check"), std::string::npos);
  std::ifstream f(::testing::TempDir() + "/table_emit_check.csv");
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), "x,y\n7,8\n");
}

}  // namespace
}  // namespace modcon
