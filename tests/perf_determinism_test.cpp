// Golden-file determinism lock for the trial engines.
//
// The hot-path work on the engine (SoA traces, batched scheduler
// decisions, inlined register ops, ...) is only admissible if it never
// changes a result: trial t of a cell is a pure function of the cell
// definition and t, for every thread count.  This suite pins that with
// byte-identical golden streams generated from the pre-optimization
// engine: every deterministic field of every trial_record of E1-, E2-,
// and E15-style cells, serialized to text and compared against
// tests/golden/*.txt for --threads 1 and --threads 8.
//
// Regenerating (only when a cell definition itself changes, never to
// absorb an engine diff):
//   MODCON_REGEN_GOLDEN=1 ./perf_determinism_test
// then inspect the tests/golden/ diff by hand.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "core/conciliator/impatient.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"

namespace modcon::analysis {
namespace {

using sim::sim_env;

#ifndef MODCON_GOLDEN_DIR
#error "MODCON_GOLDEN_DIR must point at tests/golden"
#endif

std::string golden_path(const std::string& name) {
  return std::string(MODCON_GOLDEN_DIR) + "/" + name + ".txt";
}

sim_object_builder impatient() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
}

sim_object_builder consensus_stack() {
  return [](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
  };
}

void put_decided_list(std::ostream& os, const std::vector<decided>& xs) {
  os << "[";
  const char* sep = "";
  for (const decided& d : xs) {
    os << sep << (d.decide ? 1 : 0) << ":" << d.value;
    sep = ",";
  }
  os << "]";
}

template <typename T>
void put_list(std::ostream& os, const std::vector<T>& xs) {
  os << "[";
  const char* sep = "";
  for (const T& x : xs) {
    os << sep << x;
    sep = ",";
  }
  os << "]";
}

// Every deterministic field of every record, plus the summary document
// with timings pinned.  Any engine change that perturbs a single
// adversary pick, coin flip, fault injection, or aggregation shows up as
// a byte diff here.
std::string serialize(const summary_stats& s) {
  std::ostringstream os;
  os << "cell " << s.label << " n=" << s.n << " trials=" << s.trials << "\n";
  for (const trial_record& r : s.records) {
    os << "trial=" << r.trial_index << " seed=" << r.seed
       << " status=" << static_cast<int>(r.result.status);
    os << " outputs=";
    put_decided_list(os, r.result.outputs);
    os << " halted=";
    put_list(os, r.result.halted_pids);
    os << " crashed=";
    put_list(os, r.result.crashed_pids);
    os << " crashed_outputs=";
    put_decided_list(os, r.result.crashed_outputs);
    os << " restarted=";
    put_list(os, r.result.restarted_pids);
    os << " restarts=" << r.result.restarts
       << " stale_reads=" << r.result.stale_reads
       << " omitted_writes=" << r.result.omitted_writes
       << " total_ops=" << r.result.total_ops
       << " max_individual_ops=" << r.result.max_individual_ops
       << " steps=" << r.result.steps << " registers=" << r.result.registers
       << " valid=" << r.valid << " agreement=" << r.agreement
       << " coherent=" << r.coherent << " decided_all=" << r.decided_all
       << "\n";
  }
  summary_stats pinned = s;
  clear_timing_measurements(pinned);
  os << to_json(pinned, /*include_records=*/false).dump(2) << "\n";
  return os.str();
}

std::vector<trial_grid> golden_grid() {
  std::vector<trial_grid> grid;
  grid.push_back({
      .label = "golden_e1_conciliator",
      .build = impatient(),
      .n = 8,
      .trials = 48,
      .base_seed = 0xe1,
      .keep_records = true,
  });
  grid.push_back({
      .label = "golden_e2_consensus",
      .build = consensus_stack(),
      .n = 8,
      .trials = 48,
      .base_seed = 0xe2,
      .keep_records = true,
  });
  grid.push_back({
      .label = "golden_e15_faults",
      .build = consensus_stack(),
      .n = 6,
      .trials = 48,
      .base_seed = 0xe15,
      .faults = fault_plan{}
                    .crash(1, 5)
                    .restart(0, 4)
                    .regular_registers(4)
                    .omit_writes(16, 4),
      .keep_records = true,
  });
  grid.push_back({
      .label = "golden_e15_faults_per_trial",
      .build = consensus_stack(),
      .n = 6,
      .trials = 32,
      .base_seed = 0xe15f,
      .faults_for =
          [](std::uint64_t, std::uint64_t seed) {
            return fault_plan{}.crash(seed % 6, 3 + seed % 13);
          },
      .keep_records = true,
  });
  return grid;
}

class PerfDeterminism : public ::testing::Test {};

TEST(PerfDeterminism, TrialStreamsMatchGoldenAcrossThreadCounts) {
  const bool regen = std::getenv("MODCON_REGEN_GOLDEN") != nullptr;
  auto grid = golden_grid();
  auto serial = run_experiment_grid(grid, {.threads = 1});
  auto parallel = run_experiment_grid(grid, {.threads = 8});
  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(parallel.size(), grid.size());

  for (std::size_t c = 0; c < grid.size(); ++c) {
    const std::string got1 = serialize(serial[c]);
    const std::string got8 = serialize(parallel[c]);
    EXPECT_EQ(got1, got8) << grid[c].label
                          << ": --threads 1 vs 8 diverged";

    const std::string path = golden_path(grid[c].label);
    if (regen) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out) << "cannot write " << path;
      out << got1;
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (MODCON_REGEN_GOLDEN=1 to create)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got1, want.str())
        << grid[c].label
        << ": trial stream diverged from the recorded golden — the engine "
           "changed an observable result, not just its speed";
  }
}

}  // namespace
}  // namespace modcon::analysis
