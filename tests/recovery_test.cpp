// True register semantics (Lamport's atomic/regular/safe hierarchy), the
// persistent/volatile durability split, and crash-recovery: register-file
// units, the auditor's four recovery-era legality rules, fault-seed
// determinism, omission-budget exhaustion, and end-to-end recovery trials
// over every registry stack on both backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/multi.h"
#include "analysis/runner.h"
#include "check/auditor.h"
#include "core/modcon.h"
#include "sim/adversaries/adversaries.h"
#include "sim/register_file.h"
#include "sim/trace.h"

namespace modcon {
namespace {

using analysis::fault_plan;
using analysis::input_pattern;
using analysis::make_inputs;
using analysis::multi_grid;
using analysis::multi_trial_options;
using analysis::run_object_trial;
using analysis::run_rt_object_trial;
using analysis::trial_options;
using check::audit_report;
using check::audit_spec;
using check::audit_status;
using check::violation_kind;
using sim::register_semantics;
using sim::sim_env;
using sim::trace_event;

bool has_kind(const audit_report& rep, violation_kind k) {
  return std::any_of(rep.violations.begin(), rep.violations.end(),
                     [&](const check::violation& v) { return v.kind == k; });
}

// ---------------------------------------------------------------------
// register_file: true semantics modes and the durability split
// ---------------------------------------------------------------------

TEST(SemanticRead, RegularReturnsCurrentOrAnyOverlappingWrite) {
  sim::register_file regs;
  reg_id r = regs.alloc(0);
  sim::register_fault_config cfg;
  cfg.semantics = register_semantics::regular;
  regs.enable_faults(cfg, 17);
  regs.write(r, 3);

  const word pending[] = {8, 9};
  bool saw_current = false, saw_overlap = false;
  for (int i = 0; i < 200; ++i) {
    word v = regs.semantic_read(r, std::span<const word>(pending, 2));
    ASSERT_TRUE(v == 3 || v == 8 || v == 9) << "read " << i << " -> " << v;
    (v == 3 ? saw_current : saw_overlap) = true;
  }
  EXPECT_TRUE(saw_current);
  EXPECT_TRUE(saw_overlap);
  EXPECT_GT(regs.overlap_reads(), 0u);

  // Without overlapping writes a regular read is truthful.
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(regs.semantic_read(r, std::span<const word>{}), 3u);
  // The ground-truth view never weakens.
  EXPECT_EQ(regs.read(r), 3u);
}

TEST(SemanticRead, SafeDrawsFromHistoryOnlyWhenOverlapped) {
  sim::register_file regs;
  reg_id r = regs.alloc(1);
  sim::register_fault_config cfg;
  cfg.semantics = register_semantics::safe;
  regs.enable_faults(cfg, 23);
  regs.write(r, 5);
  regs.write(r, 7);  // history is now {1, 5, 7}

  // Non-overlapped safe reads must stay truthful.
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(regs.semantic_read(r, std::span<const word>{}), 7u);

  // Overlapped reads return an arbitrary value — but from the cell's
  // value history, never from outside the protocol's domain.
  const word pending[] = {7};
  bool saw_other = false;
  for (int i = 0; i < 200; ++i) {
    word v = regs.semantic_read(r, std::span<const word>(pending, 1));
    ASSERT_TRUE(v == 1 || v == 5 || v == 7) << "read " << i << " -> " << v;
    if (v != 7) saw_other = true;
  }
  EXPECT_TRUE(saw_other);
  EXPECT_GT(regs.overlap_reads(), 0u);
}

TEST(SemanticRead, ScheduleIsAFunctionOfTheSeedAlone) {
  auto run_schedule = [](std::uint64_t seed) {
    sim::register_file regs;
    reg_id r = regs.alloc(0);
    sim::register_fault_config cfg;
    cfg.semantics = register_semantics::regular;
    regs.enable_faults(cfg, seed);
    regs.write(r, 2);
    const word pending[] = {6};
    std::vector<word> out;
    for (int i = 0; i < 128; ++i)
      out.push_back(regs.semantic_read(r, std::span<const word>(pending, 1)));
    return out;
  };
  EXPECT_EQ(run_schedule(42), run_schedule(42));
  EXPECT_NE(run_schedule(42), run_schedule(43));
}

TEST(Durability, WipeVolatileReinitializesOnlyVolatileCells) {
  sim::register_file regs;
  reg_id p = regs.alloc(1);                        // persistent (default)
  reg_id v = regs.alloc(2, /*volatile_cell=*/true);
  EXPECT_FALSE(regs.is_volatile(p));
  EXPECT_TRUE(regs.is_volatile(v));
  EXPECT_EQ(regs.volatile_registers(), (std::vector<reg_id>{v}));

  regs.write(p, 11);
  regs.write(v, 22);
  regs.wipe_volatile();
  EXPECT_EQ(regs.read(p), 11u) << "persistent cell must survive the wipe";
  EXPECT_EQ(regs.read(v), 2u) << "volatile cell must reinitialize";
  EXPECT_EQ(regs.volatile_wipes(), 1u);
}

// ---------------------------------------------------------------------
// Auditor: the four recovery-era violation kinds, each triggered by a
// handcrafted trace and each shown legal in its clean twin
// ---------------------------------------------------------------------

// A hand-built trace over `nregs` registers sharing one initial value;
// step fields are synthesized as the event index, so spec.recovery_steps
// entries are event indices.
sim::trace scripted_trace(std::uint32_t nregs, word init,
                          const std::vector<trace_event>& events) {
  sim::trace tr;
  tr.enable(true);
  tr.note_alloc(0, nregs, init);
  std::uint64_t step = 0;
  for (trace_event e : events) {
    e.step = step++;
    tr.record(e);
  }
  return tr;
}

audit_spec basic_spec(std::size_t n, std::vector<value_t> inputs) {
  audit_spec spec;
  spec.n = n;
  spec.inputs = std::move(inputs);
  return spec;
}

TEST(AuditSemantics, OverlappingWriteValueIsLegalUnderRegular) {
  // p1's read overlaps p0's posted write of 9 (p0's next trace event), so
  // returning 9 is exactly the regular-register ambiguity.
  auto tr = scripted_trace(
      1, kBot,
      {{0, 0, op_kind::write, 0, 5, true},
       {0, 1, op_kind::read, 0, 9, true},
       {0, 0, op_kind::write, 0, 9, true}});
  audit_spec spec = basic_spec(2, {5, 9});
  spec.semantics = register_semantics::regular;
  audit_report rep;
  check::audit_trace(tr, spec, rep);
  EXPECT_TRUE(rep.ok()) << (rep.violations.empty()
                                ? rep.note
                                : rep.violations.front().detail);
  EXPECT_EQ(rep.stale_reads_matched, 1u);
}

TEST(AuditSemantics, NonOverlapValueIsAnIllegalRegularRead) {
  // No write is in flight when p1 reads, yet the read returns the
  // overwritten 5: regular registers never serve values outside
  // {last complete write} ∪ {overlapping writes}.
  auto tr = scripted_trace(
      1, kBot,
      {{0, 0, op_kind::write, 0, 5, true},
       {0, 0, op_kind::write, 0, 7, true},
       {0, 1, op_kind::read, 0, 5, true}});
  audit_spec spec = basic_spec(2, {5, 7});
  spec.semantics = register_semantics::regular;
  audit_report rep;
  check::audit_trace(tr, spec, rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  ASSERT_TRUE(has_kind(rep, violation_kind::illegal_regular_read));
  EXPECT_EQ(rep.violations[0].pid, 1u);
  EXPECT_EQ(rep.violations[0].value, 5u);
  EXPECT_FALSE(rep.violations[0].slice.empty());
}

TEST(AuditSemantics, OverlappedSafeReadMayReturnAnything) {
  auto tr = scripted_trace(
      1, kBot,
      {{0, 0, op_kind::write, 0, 5, true},
       {0, 1, op_kind::read, 0, 1234, true},  // arbitrary: a write overlaps
       {0, 0, op_kind::write, 0, 6, true}});
  audit_spec spec = basic_spec(2, {5, 6});
  spec.semantics = register_semantics::safe;
  audit_report rep;
  check::audit_trace(tr, spec, rep);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.stale_reads_matched, 1u);
}

TEST(AuditSemantics, NonOverlappedSafeReadMustBeTruthful) {
  auto tr = scripted_trace(
      1, kBot,
      {{0, 0, op_kind::write, 0, 5, true},
       {0, 1, op_kind::read, 0, 4, true}});  // nothing overlaps
  audit_spec spec = basic_spec(2, {4, 5});
  spec.semantics = register_semantics::safe;
  audit_report rep;
  check::audit_trace(tr, spec, rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  ASSERT_TRUE(has_kind(rep, violation_kind::illegal_safe_read));
  EXPECT_EQ(rep.violations[0].pid, 1u);
}

TEST(AuditRecovery, VolatileValueSurvivingItsWipeIsFlagged) {
  // r0 is volatile; the wipe at step 1 reinitializes it, yet p1 reads the
  // pre-wipe 5 back afterwards — the backend failed to lose it.
  auto tr = scripted_trace(
      1, kBot,
      {{0, 0, op_kind::write, 0, 5, true},
       {0, kInvalidProcess, op_kind::write, 0, kBot, true},  // recovery wipe
       {0, 1, op_kind::read, 0, 5, true}});
  audit_spec spec = basic_spec(2, {5, 5});
  spec.volatile_regs = {0};
  spec.recovery_steps = {1};
  audit_report rep;
  check::audit_trace(tr, spec, rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  ASSERT_TRUE(has_kind(rep, violation_kind::volatile_state_survival));
  EXPECT_EQ(rep.violations[0].reg, 0u);
  EXPECT_EQ(rep.violations[0].value, 5u);
}

TEST(AuditRecovery, PersistentRegisterRevertingToInitialIsFlagged) {
  // r1 (volatile) is wiped at step 2; afterwards the *persistent* r0
  // reads back its initial value 1 instead of the 7 it held — memory the
  // model promised to keep was lost across the recovery.
  auto tr = scripted_trace(
      2, 1,
      {{0, 0, op_kind::write, 0, 7, true},
       {0, 0, op_kind::write, 1, 9, true},
       {0, kInvalidProcess, op_kind::write, 1, 1, true},  // recovery wipe
       {0, 1, op_kind::read, 0, 1, true}});
  audit_spec spec = basic_spec(2, {7, 9});
  spec.volatile_regs = {1};
  spec.recovery_steps = {2};
  audit_report rep;
  check::audit_trace(tr, spec, rep);
  EXPECT_EQ(rep.status, audit_status::violated);
  ASSERT_TRUE(has_kind(rep, violation_kind::persistent_state_loss));
  EXPECT_EQ(rep.violations[0].reg, 0u);
}

TEST(AuditRecovery, CleanWipeAuditsClean) {
  // The legal picture: after the wipe the volatile cell reads back its
  // initial value and the persistent cell keeps its last write.
  auto tr = scripted_trace(
      2, 1,
      {{0, 0, op_kind::write, 0, 7, true},
       {0, 0, op_kind::write, 1, 9, true},
       {0, kInvalidProcess, op_kind::write, 1, 1, true},  // recovery wipe
       {0, 1, op_kind::read, 1, 1, true},
       {0, 1, op_kind::read, 0, 7, true}});
  audit_spec spec = basic_spec(2, {7, 9});
  spec.volatile_regs = {1};
  spec.recovery_steps = {2};
  audit_report rep;
  check::audit_trace(tr, spec, rep);
  EXPECT_TRUE(rep.ok()) << (rep.violations.empty()
                                ? rep.note
                                : rep.violations.front().detail);
}

// ---------------------------------------------------------------------
// End-to-end sim trials: recovery wipes and semantics modes, audited
// ---------------------------------------------------------------------

TEST(RecoveryTrials, EveryRegistryStackDecidesUnderRecovery) {
  // The acceptance claim: under atomic semantics, crash-recovery (wipe of
  // the volatile partition plus a rerun from the top) never costs
  // agreement — the persistent partition and the decision pin drag the
  // recovered process back to the decided value.
  for (const auto& [name, base] : stack_registry()) {
    const stack_spec spec = base.with_recovery();
    auto build = stack_builder<sim_env>(spec);
    std::uint64_t recoveries = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      sim::random_oblivious adv;
      trial_options opts;
      opts.seed = seed * 31;
      opts.limits.max_steps = 400'000;
      opts.faults.recover(static_cast<process_id>(seed % 6), 2 + seed)
          .recover(static_cast<process_id>((seed + 2) % 6), 9);
      opts.audit.enabled = true;
      auto inputs = make_inputs(input_pattern::half_half, 6, 2, seed);
      auto res = run_object_trial(build, inputs, adv, opts);
      ASSERT_TRUE(res.completed()) << name << " seed " << seed;
      EXPECT_TRUE(res.agreement()) << name << " seed " << seed;
      EXPECT_TRUE(res.valid(inputs)) << name << " seed " << seed;
      ASSERT_TRUE(res.audit.has_value());
      EXPECT_NE(res.audit->status, audit_status::violated)
          << name << " seed " << seed << ": "
          << (res.audit->violations.empty()
                  ? res.audit->note
                  : res.audit->violations.front().detail);
      EXPECT_EQ(res.volatile_wipes, res.recoveries)
          << name << ": one wipe per recovery on the sim backend";
      EXPECT_EQ(res.recovered_pids.empty(), res.recoveries == 0);
      recoveries += res.recoveries;
    }
    EXPECT_GT(recoveries, 0u) << name << ": no recovery ever fired";
  }
}

TEST(RecoveryTrials, TrueSemanticsTrialsAuditLegal) {
  // Weakened semantics void the §3 property guarantees (the auditor
  // disarms them) but every read must still fit the mode's legality rule.
  auto build = [](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
  };
  std::uint64_t overlap_total = 0;
  for (register_semantics s :
       {register_semantics::regular, register_semantics::safe}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      sim::random_oblivious adv;
      trial_options opts;
      opts.seed = seed;
      opts.limits.max_steps = 200'000;
      opts.faults.with_semantics(s);
      opts.audit.enabled = true;
      auto inputs = make_inputs(input_pattern::half_half, 4, 2, seed);
      auto res = run_object_trial(build, inputs, adv, opts);
      ASSERT_TRUE(res.audit.has_value());
      EXPECT_NE(res.audit->status, audit_status::violated)
          << to_string(s) << " seed " << seed << ": "
          << (res.audit->violations.empty()
                  ? res.audit->note
                  : res.audit->violations.front().detail);
      overlap_total += res.overlap_reads;
    }
  }
  EXPECT_GT(overlap_total, 0u) << "the semantics layer never fired";
}

// ---------------------------------------------------------------------
// fault_seed: derived-by-default determinism, explicit override
// ---------------------------------------------------------------------

fault_plan storm_plan() {
  return fault_plan{}
      .recover(1, 4)
      .with_semantics(register_semantics::regular)
      .omit_writes(8, 2);
}

TEST(FaultSeed, UnsetSeedDerivesFromTheTrialSeed) {
  // With fault_seed unset the injection schedule is a pure function of
  // the trial seed: identical runs are byte-identical, including across
  // engine thread counts (the experiment determinism contract).
  analysis::trial_grid cell;
  cell.label = "fault_seed_derived";
  cell.build = stack_builder<sim_env>(stack_for("impatient").with_recovery());
  cell.n = 4;
  cell.m = 2;
  cell.trials = 12;
  cell.base_seed = 77;
  cell.faults = storm_plan();
  auto serialize = [](analysis::summary_stats s) {
    analysis::clear_timing_measurements(s);
    return analysis::to_json(s).dump(2);
  };
  const std::string one = serialize(analysis::run_experiment(cell, {.threads = 1}));
  const std::string again =
      serialize(analysis::run_experiment(cell, {.threads = 1}));
  const std::string parallel =
      serialize(analysis::run_experiment(cell, {.threads = 4}));
  EXPECT_EQ(one, again);
  EXPECT_EQ(one, parallel);
}

TEST(FaultSeed, ExplicitSeedRedirectsTheInjectionStream) {
  auto build = [](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
  };
  auto run = [&](std::uint64_t seed, std::uint64_t fault_seed) {
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    opts.faults.regular_registers(2);
    if (fault_seed != 0) opts.faults.with_fault_seed(fault_seed);
    auto inputs = make_inputs(input_pattern::half_half, 4, 2, seed);
    auto res = run_object_trial(build, inputs, adv, opts);
    return std::pair{res.stale_reads, res.steps};
  };
  bool diverged = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    // Deterministic either way...
    EXPECT_EQ(run(seed, 0), run(seed, 0));
    EXPECT_EQ(run(seed, 0x5eed), run(seed, 0x5eed));
    // ...but the explicit seed picks a different schedule.
    if (run(seed, 0) != run(seed, 0x5eed)) diverged = true;
  }
  EXPECT_TRUE(diverged)
      << "with_fault_seed never changed the injection schedule";
}

// ---------------------------------------------------------------------
// Omission budget exhaustion on the decide path
// ---------------------------------------------------------------------

TEST(OmissionBudget, ExhaustsMidRunAndTheProtocolStillDecides) {
  // omit_denominator=1 drops *every* write while the budget lasts, so
  // sweeping the budget slides the final omission across the protocol's
  // write sequence — including the runs where it lands exactly on a
  // deciding write.  Omission voids the §3 agreement guarantee (that is
  // why the auditor disarms property checks under register faults; at
  // budget >= 3 the impatient stack really does split), but in every
  // case the budget must be spent in full, the protocol must terminate
  // once writes work again, decided values must still be proposed ones,
  // and the legality audit must confirm no omitted value ever surfaced.
  auto build = [](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, make_binary_quorums());
  };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (std::uint64_t budget = 1; budget <= 8; ++budget) {
      sim::random_oblivious adv;
      trial_options opts;
      opts.seed = seed;
      opts.limits.max_steps = 200'000;
      opts.faults.omit_writes(/*denominator=*/1, budget);
      opts.audit.enabled = true;
      auto inputs = make_inputs(input_pattern::half_half, 4, 2, seed);
      auto res = run_object_trial(build, inputs, adv, opts);
      ASSERT_TRUE(res.completed()) << "seed " << seed << " budget " << budget;
      EXPECT_TRUE(res.valid(inputs)) << "seed " << seed << " budget " << budget;
      EXPECT_EQ(res.omitted_writes, budget)
          << "budget must exhaust mid-run, not linger";
      ASSERT_TRUE(res.audit.has_value());
      EXPECT_NE(res.audit->status, audit_status::violated)
          << "seed " << seed << " budget " << budget << ": "
          << (res.audit->violations.empty()
                  ? res.audit->note
                  : res.audit->violations.front().detail);
    }
  }
}

// ---------------------------------------------------------------------
// rt backend: watchdog under a restart storm with register faults armed
// ---------------------------------------------------------------------

analysis::rt_object_builder rt_builder() {
  return [](address_space& mem, std::size_t) {
    return make_impatient_consensus<rt::rt_env>(mem, make_binary_quorums());
  };
}

TEST(RtStorm, WatchdogTimesOutUnderRestartStormWithOmissionArmed) {
  // A stall with no resume inside a restart storm hangs the trial; the
  // watchdog must reclaim it as timed_out.  The armed write-omission
  // config rides along to show register faults in the plan cannot wedge
  // or corrupt the rt runner (rt registers are real hardware; omission is
  // a sim-only fault and is ignored there).
  analysis::rt_trial_options opts;
  opts.seed = 6;
  opts.faults.restart(0, 1)
      .restart(2, 1)
      .stall(1, 1)  // never resumes
      .omit_writes(2, 8);
  opts.watchdog_ms = 250;
  auto inputs = make_inputs(input_pattern::alternating, 4, 2, 6);
  auto res = run_rt_object_trial(rt_builder(), inputs, opts);

  EXPECT_TRUE(res.timed_out());
  EXPECT_EQ(res.status, sim::run_status::timed_out);
  EXPECT_EQ(res.omitted_writes, 0u) << "rt must not emulate omission";
  // Whatever escaped before the abort still satisfies the invariants.
  EXPECT_TRUE(res.coherent());
  EXPECT_TRUE(res.valid(inputs));

  // The timeout must not poison the next trial.
  analysis::rt_trial_options clean;
  clean.seed = 6;
  auto good = run_rt_object_trial(rt_builder(), inputs, clean);
  ASSERT_TRUE(good.completed());
  EXPECT_TRUE(good.agreement());
}

TEST(RtRecovery, RecoveredThreadRejoinsAndAgrees) {
  const stack_spec spec = stack_for("impatient").with_recovery();
  auto build = stack_builder<rt::rt_env>(spec);
  std::uint64_t recoveries = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    analysis::rt_trial_options opts;
    opts.seed = seed;
    // after_ops = 0 fires at the entry of the very first operation — the
    // only threshold guaranteed to land regardless of thread-start order
    // (a late thread can find the decision pin set and halt in one op).
    opts.faults.recover(1, 0);
    auto inputs = make_inputs(input_pattern::alternating, 4, 2, seed);
    auto res = run_rt_object_trial(build, inputs, opts);
    ASSERT_TRUE(res.completed()) << "seed " << seed;
    EXPECT_TRUE(res.agreement()) << "seed " << seed;
    EXPECT_TRUE(res.valid(inputs)) << "seed " << seed;
    recoveries += res.recoveries;
    EXPECT_EQ(res.volatile_wipes, res.recoveries);
  }
  EXPECT_GT(recoveries, 0u);
}

// ---------------------------------------------------------------------
// Multi-shot: crash-recovery rejoins via the recovered watermark
// ---------------------------------------------------------------------

multi_grid multi_cell() {
  multi_grid cell;
  cell.label = "recovery_multi";
  cell.spec = stack_for("impatient").with_recovery();
  cell.n = 4;
  cell.shards = 2;
  cell.slots = 8;
  cell.extent_words = 32;
  return cell;
}

TEST(MultiRecovery, RecoveredProcessRejoinsViaTheWatermark) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto cell = multi_cell();
    multi_trial_options opts;
    opts.seed = seed * 977;
    opts.faults.recover(1, 40).recover(3, 90);
    opts.audit.enabled = true;
    auto res = analysis::run_multi_trial(cell, opts);
    EXPECT_TRUE(res.slots_agree) << "seed " << seed;
    EXPECT_TRUE(res.slots_valid) << "seed " << seed;
    ASSERT_TRUE(res.base.audit.has_value());
    EXPECT_NE(res.base.audit->status, audit_status::violated)
        << "seed " << seed << ": "
        << (res.base.audit->violations.empty()
                ? res.base.audit->note
                : res.base.audit->violations.front().detail);
    // The rejoin path answers recovered slots from the persistent pins.
    if (res.base.recoveries > 0) EXPECT_GT(res.fast_path_hits, 0u);
  }
}

TEST(MultiRecovery, TrueRegularSemanticsAreAcceptedSafeIsNot) {
  // Pins are written once and never recycled, so a pin read overlapping
  // the pin write can only return that same slot's decision — true
  // regular semantics are pin-safe.  Safe semantics (arbitrary values)
  // are not, and must stay rejected.
  {
    auto cell = multi_cell();
    multi_trial_options opts;
    opts.seed = 0xabc;
    opts.faults.with_semantics(register_semantics::regular);
    auto res = analysis::run_multi_trial(cell, opts);
    EXPECT_TRUE(res.slots_agree);
    EXPECT_TRUE(res.slots_valid);
  }
  {
    auto cell = multi_cell();
    multi_trial_options opts;
    opts.faults.with_semantics(register_semantics::safe);
    EXPECT_THROW(analysis::run_multi_trial(cell, opts), invariant_error);
  }
}

}  // namespace
}  // namespace modcon
