// Semantics of the simulated world: atomic-register behaviour, scheduling,
// cost accounting, crash injection, coroutine nesting, determinism.
#include "sim/world.h"

#include <gtest/gtest.h>

#include "sim/adversaries/adversaries.h"
#include "util/assertx.h"

namespace modcon::sim {
namespace {

// --- little process programs (plain coroutine functions; params are
// copied into the frame, so factory lambdas stay capture-safe) ---

proc<word> write_then_read(sim_env& env, reg_id r, word v) {
  co_await env.write(r, v);
  word got = co_await env.read(r);
  co_return got;
}

proc<word> read_only(sim_env& env, reg_id r) {
  co_return co_await env.read(r);
}

proc<word> read_twice(sim_env& env, reg_id r) {
  word first = co_await env.read(r);
  word second = co_await env.read(r);
  co_return first * 1000 + second;
}

proc<word> prob_write_then_read(sim_env& env, reg_id r, word v, prob p) {
  co_await env.prob_write(r, v, p);
  co_return co_await env.read(r);
}

proc<word> child_sum(sim_env& env, reg_id r) {
  co_return co_await env.read(r);
}

proc<word> nested_parent(sim_env& env, reg_id a, reg_id b) {
  word x = co_await child_sum(env, a);
  word y = co_await child_sum(env, b);
  co_return x + y;
}

proc<word> local_only(sim_env& env) {
  // No shared-memory operations at all.
  word acc = 0;
  for (int i = 0; i < 10; ++i) acc += env.flip(100);
  co_return acc % 7;
}

proc<word> throws_midway(sim_env& env, reg_id r) {
  co_await env.read(r);
  MODCON_CHECK_MSG(false, "deliberate failure");
  co_return 0;
}

proc<word> collect_three(sim_env& env, reg_id first) {
  auto vals = co_await env.collect(first, 3);
  co_return vals[0] + vals[1] * 10 + vals[2] * 100;
}

proc<word> spin_reads(sim_env& env, reg_id r, int count) {
  word last = 0;
  for (int i = 0; i < count; ++i) last = co_await env.read(r);
  co_return last;
}

TEST(SimWorld, SingleProcessWriteRead) {
  round_robin adv;
  sim_world w(1, adv, 1);
  reg_id r = w.alloc(kBot);
  w.spawn([r](sim_env& e) { return write_then_read(e, r, 42); });
  auto res = w.run(100);
  EXPECT_EQ(res.status, run_status::all_halted);
  EXPECT_EQ(w.output_of(0), 42u);
  EXPECT_EQ(w.ops_of(0), 2u);
  EXPECT_EQ(w.total_ops(), 2u);
}

TEST(SimWorld, RegistersHoldInitialValues) {
  round_robin adv;
  sim_world w(1, adv, 1);
  reg_id a = w.alloc(7);
  reg_id b = w.alloc(kBot);
  EXPECT_EQ(w.peek(a), 7u);
  EXPECT_EQ(w.peek(b), kBot);
  w.spawn([a](sim_env& e) { return read_only(e, a); });
  w.run(10);
  EXPECT_EQ(w.output_of(0), 7u);
}

TEST(SimWorld, ReadReturnsLastWriteUnderInterleaving) {
  // Schedule: p0 writes 5, then p1 reads (sees 5), p0 reads (5),
  // p1 reads again (5).
  scripted adv({0, 1, 0, 1});
  sim_world w(2, adv, 1);
  reg_id r = w.alloc(0);
  w.spawn([r](sim_env& e) { return write_then_read(e, r, 5); });
  w.spawn([r](sim_env& e) { return read_twice(e, r); });
  w.run(100);
  EXPECT_EQ(*w.output_of(1), 5005u);
  EXPECT_EQ(*w.output_of(0), 5u);
}

TEST(SimWorld, ScriptedScheduleIsObeyed) {
  scripted adv({1, 1, 0, 0});
  world_options opts;
  opts.trace_enabled = true;
  sim_world w(2, adv, 1, opts);
  reg_id r = w.alloc(0);
  w.spawn([r](sim_env& e) { return write_then_read(e, r, 1); });
  w.spawn([r](sim_env& e) { return write_then_read(e, r, 2); });
  w.run(100);
  const auto& ev = w.execution_trace().events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].pid, 1u);
  EXPECT_EQ(ev[1].pid, 1u);
  EXPECT_EQ(ev[2].pid, 0u);
  EXPECT_EQ(ev[3].pid, 0u);
  // p1 wrote 2 first, then read 2; then p0 wrote 1 and read 1.
  EXPECT_EQ(*w.output_of(1), 2u);
  EXPECT_EQ(*w.output_of(0), 1u);
}

TEST(SimWorld, ProbWriteNeverWithZeroProbability) {
  round_robin adv;
  sim_world w(1, adv, 1);
  reg_id r = w.alloc(kBot);
  w.spawn([r](sim_env& e) {
    return prob_write_then_read(e, r, 9, prob::never());
  });
  w.run(10);
  EXPECT_EQ(*w.output_of(0), kBot);
  EXPECT_EQ(w.ops_of(0), 2u);  // the missed write still costs one op
}

TEST(SimWorld, ProbWriteAlwaysWithCertainProbability) {
  round_robin adv;
  sim_world w(1, adv, 1);
  reg_id r = w.alloc(kBot);
  w.spawn([r](sim_env& e) {
    return prob_write_then_read(e, r, 9, prob::always());
  });
  w.run(10);
  EXPECT_EQ(*w.output_of(0), 9u);
}

TEST(SimWorld, ProbWriteFrequencyIsRespected) {
  int hits = 0;
  constexpr int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    round_robin adv;
    sim_world w(1, adv, /*seed=*/1000 + t);
    reg_id r = w.alloc(kBot);
    w.spawn([r](sim_env& e) {
      return prob_write_then_read(e, r, 1, prob(1, 4));
    });
    w.run(10);
    hits += *w.output_of(0) == 1u;
  }
  EXPECT_NEAR(hits / static_cast<double>(kTrials), 0.25, 0.03);
}

proc<word> detect_write(sim_env& env, reg_id r, word v, prob p) {
  bool ok = co_await env.prob_write_detect(r, v, p);
  co_return ok ? 1 : 0;
}

TEST(SimWorld, DetectingProbWriteReportsOutcome) {
  {
    round_robin adv;
    sim_world w(1, adv, 1);
    reg_id r = w.alloc(kBot);
    w.spawn([r](sim_env& e) {
      return detect_write(e, r, 5, prob::always());
    });
    w.run(10);
    EXPECT_EQ(*w.output_of(0), 1u);
    EXPECT_EQ(w.peek(r), 5u);
    EXPECT_EQ(w.ops_of(0), 1u);  // still one operation
  }
  {
    round_robin adv;
    sim_world w(1, adv, 1);
    reg_id r = w.alloc(kBot);
    w.spawn([r](sim_env& e) {
      return detect_write(e, r, 5, prob::never());
    });
    w.run(10);
    EXPECT_EQ(*w.output_of(0), 0u);
    EXPECT_EQ(w.peek(r), kBot);
    EXPECT_EQ(w.ops_of(0), 1u);
  }
}

TEST(SimWorld, DetectingProbWriteMatchesProbability) {
  int hits = 0;
  constexpr int kTrials = 3000;
  for (int t = 0; t < kTrials; ++t) {
    round_robin adv;
    sim_world w(1, adv, 9000 + t);
    reg_id r = w.alloc(kBot);
    w.spawn([r](sim_env& e) { return detect_write(e, r, 1, prob(1, 3)); });
    w.run(10);
    hits += static_cast<int>(*w.output_of(0));
  }
  EXPECT_NEAR(hits / static_cast<double>(kTrials), 1.0 / 3.0, 0.03);
}

TEST(SimWorld, CollectReadsBlockAndCostsOneOperation) {
  round_robin adv;
  sim_world w(1, adv, 1);
  reg_id b = w.alloc_block(3, 5);
  w.spawn([b](sim_env& e) { return collect_three(e, b); });
  w.run(10);
  EXPECT_EQ(*w.output_of(0), 5u + 50u + 500u);
  EXPECT_EQ(w.ops_of(0), 1u);  // cheap-collect: one unit
}

TEST(SimWorld, NestedCoroutinesCompose) {
  round_robin adv;
  sim_world w(1, adv, 1);
  reg_id a = w.alloc(3);
  reg_id b = w.alloc(4);
  w.spawn([a, b](sim_env& e) { return nested_parent(e, a, b); });
  auto res = w.run(10);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(*w.output_of(0), 7u);
  EXPECT_EQ(w.ops_of(0), 2u);
}

TEST(SimWorld, ProcessWithNoSharedOpsHaltsAtSpawn) {
  round_robin adv;
  sim_world w(2, adv, 1);
  reg_id r = w.alloc(1);
  w.spawn([](sim_env& e) { return local_only(e); });
  EXPECT_TRUE(w.halted(0));
  w.spawn([r](sim_env& e) { return read_only(e, r); });
  auto res = w.run(10);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(w.ops_of(0), 0u);  // local computation is free
}

TEST(SimWorld, ExceptionInProcessPropagates) {
  round_robin adv;
  sim_world w(1, adv, 1);
  reg_id r = w.alloc(0);
  w.spawn([r](sim_env& e) { return throws_midway(e, r); });
  EXPECT_THROW(w.run(10), invariant_error);
}

TEST(SimWorld, StepLimitReported) {
  round_robin adv;
  sim_world w(1, adv, 1);
  reg_id r = w.alloc(0);
  w.spawn([r](sim_env& e) { return spin_reads(e, r, 1000); });
  auto res = w.run(10);
  EXPECT_EQ(res.status, run_status::step_limit);
  EXPECT_EQ(res.steps, 10u);
  EXPECT_FALSE(w.halted(0));
}

TEST(SimWorld, CrashedProcessStopsAndOthersFinish) {
  round_robin adv;
  sim_world w(2, adv, 1);
  reg_id r = w.alloc(0);
  w.spawn([r](sim_env& e) { return spin_reads(e, r, 1000); });
  w.spawn([r](sim_env& e) { return spin_reads(e, r, 5); });
  w.crash_after(0, 3);
  auto res = w.run(10000);
  EXPECT_EQ(res.status, run_status::no_runnable);
  EXPECT_TRUE(w.crashed(0));
  EXPECT_FALSE(w.halted(0));
  EXPECT_TRUE(w.halted(1));
  EXPECT_EQ(w.ops_of(0), 3u);
  EXPECT_EQ(w.output_of(0), std::nullopt);
}

TEST(SimWorld, CrashBeforeFirstOp) {
  round_robin adv;
  sim_world w(2, adv, 1);
  reg_id r = w.alloc(0);
  w.spawn([r](sim_env& e) { return spin_reads(e, r, 5); });
  w.spawn([r](sim_env& e) { return spin_reads(e, r, 5); });
  w.crash_after(1, 0);
  auto res = w.run(1000);
  EXPECT_EQ(res.status, run_status::no_runnable);
  EXPECT_EQ(w.ops_of(1), 0u);
  EXPECT_TRUE(w.halted(0));
}

TEST(SimWorld, DeterministicGivenSeedAndAdversary) {
  auto run_once = [](std::uint64_t seed) {
    random_oblivious adv;
    world_options opts;
    opts.trace_enabled = true;
    sim_world w(3, adv, seed, opts);
    reg_id r = w.alloc(kBot);
    for (int i = 0; i < 3; ++i) {
      w.spawn([r, i](sim_env& e) {
        return prob_write_then_read(e, r, static_cast<word>(i), prob(1, 2));
      });
    }
    w.run(100);
    std::vector<std::pair<process_id, word>> sig;
    for (const auto& ev : w.execution_trace().events())
      sig.emplace_back(ev.pid, ev.value);
    return sig;
  };
  EXPECT_EQ(run_once(77), run_once(77));
  EXPECT_NE(run_once(77), run_once(78));
}

TEST(SimWorld, PerProcessCoinStreamsDiffer) {
  // Two processes doing identical prob writes should not get identical
  // coin sequences (their local coins are split streams).
  int same = 0;
  for (int t = 0; t < 200; ++t) {
    scripted adv({0, 1});
    sim_world w(2, adv, 5000 + t);
    reg_id a = w.alloc(kBot);
    reg_id b = w.alloc(kBot);
    w.spawn([a](sim_env& e) {
      return prob_write_then_read(e, a, 1, prob(1, 2));
    });
    w.spawn([b](sim_env& e) {
      return prob_write_then_read(e, b, 1, prob(1, 2));
    });
    w.run(100);
    same += (*w.output_of(0) == *w.output_of(1));
  }
  EXPECT_GT(same, 60);   // ~50% expected agreement of independent coins
  EXPECT_LT(same, 140);  // but not 100%
}

TEST(SimWorld, AllocBlockIsContiguous) {
  round_robin adv;
  sim_world w(1, adv, 1);
  reg_id a = w.alloc(1);
  reg_id block = w.alloc_block(5, 9);
  EXPECT_EQ(block, a + 1);
  for (reg_id i = 0; i < 5; ++i) EXPECT_EQ(w.peek(block + i), 9u);
  EXPECT_EQ(w.allocated(), 6u);
}

TEST(SimWorld, SpawningTooManyProcessesThrows) {
  round_robin adv;
  sim_world w(1, adv, 1);
  reg_id r = w.alloc(0);
  w.spawn([r](sim_env& e) { return read_only(e, r); });
  EXPECT_THROW(w.spawn([r](sim_env& e) { return read_only(e, r); }),
               invariant_error);
}

TEST(SimWorld, RunBeforeAllSpawnedThrows) {
  round_robin adv;
  sim_world w(2, adv, 1);
  reg_id r = w.alloc(0);
  w.spawn([r](sim_env& e) { return read_only(e, r); });
  EXPECT_THROW(w.run(10), invariant_error);
}

TEST(SimWorld, TraceReplayReproducesAnExecution) {
  // Determinism end to end: record the pid schedule of a random-scheduler
  // run, replay it with the scripted adversary and the same seed, and
  // demand identical traces and outputs.  This is the debugging recipe
  // for any execution the harness flags.
  auto run_and_trace = [](sim::adversary& adv) {
    world_options opts;
    opts.trace_enabled = true;
    sim_world w(3, adv, /*seed=*/99, opts);
    reg_id r = w.alloc(kBot);
    for (int i = 0; i < 3; ++i) {
      w.spawn([r, i](sim_env& e) {
        return prob_write_then_read(e, r, static_cast<word>(10 + i),
                                    prob(1, 2));
      });
    }
    w.run(1000);
    std::vector<trace_event> events = w.execution_trace().events();
    std::vector<word> outs;
    for (process_id p = 0; p < 3; ++p) outs.push_back(*w.output_of(p));
    return std::pair(events, outs);
  };

  random_oblivious original;
  auto [events, outs] = run_and_trace(original);

  std::vector<process_id> schedule;
  for (const auto& e : events) schedule.push_back(e.pid);
  scripted replayer(schedule);
  auto [events2, outs2] = run_and_trace(replayer);

  EXPECT_EQ(outs, outs2);
  ASSERT_EQ(events.size(), events2.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].pid, events2[i].pid);
    EXPECT_EQ(events[i].kind, events2[i].kind);
    EXPECT_EQ(events[i].reg, events2[i].reg);
    EXPECT_EQ(events[i].value, events2[i].value);
    EXPECT_EQ(events[i].applied, events2[i].applied);
  }
}

TEST(SimWorld, TeardownMidExecutionDoesNotLeak) {
  // Destroy a world while coroutines are suspended; ASAN/valgrind-clean
  // destruction is the assertion (plus: no crash).
  round_robin adv;
  auto w = std::make_unique<sim_world>(2, adv, 1);
  reg_id r = w->alloc(0);
  w->spawn([r](sim_env& e) { return spin_reads(e, r, 100); });
  w->spawn([r](sim_env& e) { return nested_parent(e, r, r); });
  w->run(3);
  w.reset();  // frames (including nested children) must unwind cleanly
  SUCCEED();
}

}  // namespace
}  // namespace modcon::sim
