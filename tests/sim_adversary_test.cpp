// Behaviour of the scheduler portfolio and the capability gating of
// sched_view (an adversary cannot read beyond its declared power).
#include "sim/adversaries/adversaries.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/world.h"
#include "util/assertx.h"

namespace modcon::sim {
namespace {

proc<word> reads(sim_env& env, reg_id r, int count) {
  word last = 0;
  for (int i = 0; i < count; ++i) last = co_await env.read(r);
  co_return last;
}

proc<word> writes(sim_env& env, reg_id r, word v, int count) {
  for (int i = 0; i < count; ++i) co_await env.write(r, v);
  co_return v;
}

// A probing adversary that tries to read beyond its power level.
class probe_adversary final : public adversary {
 public:
  enum class probe { kind, reg_of_write, value, memory, coin };
  probe_adversary(adversary_power power, probe what)
      : power_(power), what_(what) {}

  adversary_power power() const override { return power_; }
  std::string name() const override { return "probe"; }
  void reset(std::size_t, std::uint64_t) override {}

  process_id pick(const sched_view& view) override {
    process_id p = view.runnable().front();
    switch (what_) {
      case probe::kind: (void)view.kind_of(p); break;
      case probe::reg_of_write:
        if (view.kind_of(p) == op_kind::write) (void)view.reg_of(p);
        break;
      case probe::value:
        if (view.kind_of(p) == op_kind::write) (void)view.value_of(p);
        break;
      case probe::memory: (void)view.memory(0); break;
      case probe::coin:
        if (view.kind_of(p) == op_kind::write) (void)view.coin_of(p);
        break;
    }
    return p;
  }

 private:
  adversary_power power_;
  probe what_;
};

void run_with(adversary& adv, bool probabilistic = false) {
  sim_world w(2, adv, 1);
  reg_id r = w.alloc(0);
  if (probabilistic) {
    w.spawn([r](sim_env& e) -> proc<word> {
      struct helper {
        static proc<word> go(sim_env& env, reg_id reg) {
          co_await env.prob_write(reg, 1, prob(1, 2));
          co_return 0;
        }
      };
      return helper::go(e, r);
    });
  } else {
    w.spawn([r](sim_env& e) { return writes(e, r, 1, 3); });
  }
  w.spawn([r](sim_env& e) { return reads(e, r, 3); });
  w.run(100);
}

TEST(AdversaryCaps, ObliviousCannotSeeKinds) {
  probe_adversary adv(adversary_power::oblivious,
                      probe_adversary::probe::kind);
  EXPECT_THROW(run_with(adv), invariant_error);
}

TEST(AdversaryCaps, ValueObliviousSeesKindsAndLocationsButNotValues) {
  probe_adversary see_kind(adversary_power::value_oblivious,
                           probe_adversary::probe::kind);
  EXPECT_NO_THROW(run_with(see_kind));
  probe_adversary see_reg(adversary_power::value_oblivious,
                          probe_adversary::probe::reg_of_write);
  EXPECT_NO_THROW(run_with(see_reg));
  probe_adversary see_value(adversary_power::value_oblivious,
                            probe_adversary::probe::value);
  EXPECT_THROW(run_with(see_value), invariant_error);
  probe_adversary see_mem(adversary_power::value_oblivious,
                          probe_adversary::probe::memory);
  EXPECT_THROW(run_with(see_mem), invariant_error);
}

TEST(AdversaryCaps, LocationObliviousSeesValuesNotWriteLocations) {
  probe_adversary see_value(adversary_power::location_oblivious,
                            probe_adversary::probe::value);
  EXPECT_NO_THROW(run_with(see_value));
  probe_adversary see_mem(adversary_power::location_oblivious,
                          probe_adversary::probe::memory);
  EXPECT_NO_THROW(run_with(see_mem));
  probe_adversary see_reg(adversary_power::location_oblivious,
                          probe_adversary::probe::reg_of_write);
  EXPECT_THROW(run_with(see_reg), invariant_error);
}

TEST(AdversaryCaps, NobodyBelowOmniscientSeesCoins) {
  for (auto p : {adversary_power::oblivious, adversary_power::value_oblivious,
                 adversary_power::location_oblivious,
                 adversary_power::adaptive}) {
    probe_adversary adv(p, probe_adversary::probe::coin);
    if (p == adversary_power::oblivious) {
      EXPECT_THROW(run_with(adv, true), invariant_error);
    } else {
      EXPECT_THROW(run_with(adv, true), invariant_error)
          << to_string(p);
    }
  }
  probe_adversary omni(adversary_power::omniscient,
                       probe_adversary::probe::coin);
  EXPECT_NO_THROW(run_with(omni, true));
}

TEST(RoundRobin, CyclesThroughProcesses) {
  round_robin adv;
  world_options opts;
  opts.trace_enabled = true;
  sim_world w(3, adv, 1, opts);
  reg_id r = w.alloc(0);
  for (int i = 0; i < 3; ++i)
    w.spawn([r](sim_env& e) { return reads(e, r, 2); });
  w.run(100);
  const auto& ev = w.execution_trace().events();
  ASSERT_EQ(ev.size(), 6u);
  EXPECT_EQ(ev[0].pid, 0u);
  EXPECT_EQ(ev[1].pid, 1u);
  EXPECT_EQ(ev[2].pid, 2u);
  EXPECT_EQ(ev[3].pid, 0u);
}

TEST(RoundRobin, SkipsHaltedProcesses) {
  round_robin adv;
  world_options opts;
  opts.trace_enabled = true;
  sim_world w(2, adv, 1, opts);
  reg_id r = w.alloc(0);
  w.spawn([r](sim_env& e) { return reads(e, r, 1); });
  w.spawn([r](sim_env& e) { return reads(e, r, 3); });
  auto res = w.run(100);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(w.ops_of(1), 3u);
}

TEST(FixedOrder, SequentialRunsProcessesToCompletion) {
  fixed_order adv(fixed_order::mode::sequential, {1, 0});
  world_options opts;
  opts.trace_enabled = true;
  sim_world w(2, adv, 1, opts);
  reg_id r = w.alloc(0);
  for (int i = 0; i < 2; ++i)
    w.spawn([r](sim_env& e) { return reads(e, r, 3); });
  w.run(100);
  const auto& ev = w.execution_trace().events();
  ASSERT_EQ(ev.size(), 6u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(ev[i].pid, 1u);
  for (int i = 3; i < 6; ++i) EXPECT_EQ(ev[i].pid, 0u);
}

TEST(Priority, HighestPriorityRunsAlone) {
  priority_sched adv({2, 0, 1});
  world_options opts;
  opts.trace_enabled = true;
  sim_world w(3, adv, 1, opts);
  reg_id r = w.alloc(0);
  for (int i = 0; i < 3; ++i)
    w.spawn([r](sim_env& e) { return reads(e, r, 2); });
  w.run(100);
  const auto& ev = w.execution_trace().events();
  ASSERT_EQ(ev.size(), 6u);
  EXPECT_EQ(ev[0].pid, 2u);
  EXPECT_EQ(ev[1].pid, 2u);
  EXPECT_EQ(ev[2].pid, 0u);
  EXPECT_EQ(ev[3].pid, 0u);
  EXPECT_EQ(ev[4].pid, 1u);
}

TEST(Quantum, GivesEachProcessBursts) {
  quantum_sched adv(2);
  world_options opts;
  opts.trace_enabled = true;
  sim_world w(2, adv, 1, opts);
  reg_id r = w.alloc(0);
  for (int i = 0; i < 2; ++i)
    w.spawn([r](sim_env& e) { return reads(e, r, 4); });
  w.run(100);
  const auto& ev = w.execution_trace().events();
  ASSERT_EQ(ev.size(), 8u);
  // Bursts of 2.
  EXPECT_EQ(ev[0].pid, ev[1].pid);
  EXPECT_NE(ev[1].pid, ev[2].pid);
  EXPECT_EQ(ev[2].pid, ev[3].pid);
}

TEST(Noisy, ZeroSigmaIsFair) {
  noisy adv(0.0);
  sim_world w(2, adv, 42);
  reg_id r = w.alloc(0);
  for (int i = 0; i < 2; ++i)
    w.spawn([r](sim_env& e) { return reads(e, r, 50); });
  auto res = w.run(1000);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(w.ops_of(0), 50u);
  EXPECT_EQ(w.ops_of(1), 50u);
}

TEST(Noisy, LargeSigmaSeparatesProcesses) {
  // With heavy noise, after 60 steps the op counts should be skewed in at
  // least some executions.
  bool skewed = false;
  for (int t = 0; t < 20 && !skewed; ++t) {
    noisy adv(1.5);
    sim_world w(2, adv, 100 + t);
    reg_id r = w.alloc(0);
    for (int i = 0; i < 2; ++i)
      w.spawn([r](sim_env& e) { return reads(e, r, 1000); });
    w.run(60);
    auto a = w.ops_of(0), b = w.ops_of(1);
    skewed = (a > 2 * b) || (b > 2 * a);
  }
  EXPECT_TRUE(skewed);
}

TEST(RandomOblivious, IsIndependentOfProcessCoins) {
  // Same seed, same adversary decisions regardless of what processes do
  // with their local coins (they share no stream).
  auto pids_with = [](bool use_coins) {
    random_oblivious adv;
    world_options opts;
    opts.trace_enabled = true;
    sim_world w(3, adv, 9, opts);
    reg_id r = w.alloc(kBot);
    for (int i = 0; i < 3; ++i) {
      if (use_coins) {
        w.spawn([r](sim_env& e) -> proc<word> {
          struct helper {
            static proc<word> go(sim_env& env, reg_id reg) {
              for (int j = 0; j < 4; ++j)
                co_await env.prob_write(reg, 1, prob(1, 3));
              co_return 0;
            }
          };
          return helper::go(e, r);
        });
      } else {
        w.spawn([r](sim_env& e) { return reads(e, r, 4); });
      }
    }
    w.run(100);
    std::vector<process_id> pids;
    for (const auto& ev : w.execution_trace().events())
      pids.push_back(ev.pid);
    return pids;
  };
  EXPECT_EQ(pids_with(true), pids_with(false));
}

TEST(Scripted, FallbackAfterScriptEnds) {
  scripted adv({1});
  sim_world w(2, adv, 1);
  reg_id r = w.alloc(0);
  for (int i = 0; i < 2; ++i)
    w.spawn([r](sim_env& e) { return reads(e, r, 2); });
  auto res = w.run(100);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(adv.picks_past_script(), 3u);
}

TEST(Scripted, RejectsNonRunnablePick) {
  scripted adv({0, 0, 0});  // process 0 halts after 2 ops
  sim_world w(2, adv, 1);
  reg_id r = w.alloc(0);
  for (int i = 0; i < 2; ++i)
    w.spawn([r](sim_env& e) { return reads(e, r, 2); });
  EXPECT_THROW(w.run(100), invariant_error);
}

}  // namespace
}  // namespace modcon::sim
