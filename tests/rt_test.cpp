// Real-thread backend: the same coroutine algorithms on std::atomic
// registers with genuine parallelism.
#include "rt/runner.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "analysis/metrics.h"
#include "analysis/runner.h"
#include "core/modcon.h"
#include "rt/env.h"

namespace modcon::rt {
namespace {

proc<word> write_then_read(rt_env& env, reg_id r, word v) {
  co_await env.write(r, v);
  co_return co_await env.read(r);
}

TEST(Arena, AllocatesStableInitializedRegisters) {
  arena a;
  reg_id x = a.alloc(5);
  reg_id y = a.alloc_block(10, kBot);
  EXPECT_EQ(a.at(x).load(), 5u);
  for (reg_id i = 0; i < 10; ++i) EXPECT_EQ(a.at(y + i).load(), kBot);
  auto* before = &a.at(x);
  // Force several chunks worth of allocation; x must not move.
  for (int i = 0; i < 3; ++i) a.alloc_block(arena::kChunkSize, 0);
  EXPECT_EQ(&a.at(x), before);
  EXPECT_EQ(a.at(x).load(), 5u);
  EXPECT_EQ(a.allocated(), 11u + 3 * arena::kChunkSize);
}

TEST(Arena, RejectsUnallocatedAccess) {
  arena a;
  a.alloc(0);
  EXPECT_THROW(a.at(1), invariant_error);
}

TEST(RtRunner, SingleThreadRoundTrip) {
  arena mem;
  reg_id r = mem.alloc(kBot);
  auto res = run_threads(mem, 1, 1, [r](rt_env& env) {
    return write_then_read(env, r, 99);
  });
  EXPECT_EQ(res.outputs[0], 99u);
  EXPECT_EQ(res.total_ops, 2u);
}

TEST(RtRunner, OpCountsPerThread) {
  arena mem;
  reg_id r = mem.alloc(kBot);
  auto res = run_threads(mem, 4, 1, [r](rt_env& env) {
    return write_then_read(env, r, env.pid());
  });
  for (auto c : res.op_counts) EXPECT_EQ(c, 2u);
  EXPECT_EQ(res.total_ops, 8u);
  EXPECT_EQ(res.max_individual_ops, 2u);
}

// The unified builder vocabulary (analysis::object_builder<Env>) works
// for the real-thread backend exactly as for the simulator: the same
// factory expression, instantiated at rt_env.
analysis::rt_object_builder impatient_builder() {
  return [](address_space& mem, std::size_t) {
    return make_impatient_consensus<rt_env>(mem, make_binary_quorums());
  };
}

// Shared fixture logic: run a consensus stack on real threads and check
// agreement + validity.
void run_rt_consensus(std::size_t n, std::size_t trials) {
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    auto inputs = analysis::make_inputs(analysis::input_pattern::alternating,
                                        n, 2, seed);
    auto res = analysis::run_rt_object_trial(impatient_builder(), inputs,
                                             {.seed = seed});
    ASSERT_TRUE(res.completed());
    for (const decided& d : res.outputs) EXPECT_TRUE(d.decide);
    EXPECT_TRUE(res.agreement()) << "disagreement at seed " << seed;
    EXPECT_TRUE(res.valid(inputs));
    EXPECT_EQ(res.outputs.size(), n);
    EXPECT_EQ(res.steps, res.total_ops);
  }
}

TEST(RtConsensus, TwoThreadsAgree) { run_rt_consensus(2, 40); }
TEST(RtConsensus, FourThreadsAgree) { run_rt_consensus(4, 25); }
TEST(RtConsensus, EightThreadsAgree) { run_rt_consensus(8, 10); }

TEST(RtConsensus, MValuedOnRealThreads) {
  analysis::rt_object_builder build = [](address_space& mem, std::size_t) {
    return make_impatient_consensus<rt_env>(mem, make_bollobas_quorums(16));
  };
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    std::vector<value_t> inputs;
    for (std::size_t pid = 0; pid < 6; ++pid)
      inputs.push_back((pid * 3) % 16);
    auto res = analysis::run_rt_object_trial(build, inputs, {.seed = seed});
    for (const decided& d : res.outputs) EXPECT_TRUE(d.decide);
    EXPECT_TRUE(res.agreement());
    EXPECT_TRUE(res.valid(inputs));
  }
}

TEST(RtConsensus, BoundedStackOnRealThreads) {
  analysis::rt_object_builder build = [](address_space& mem, std::size_t n) {
    return make_bounded_impatient_consensus<rt_env>(mem,
                                                    make_binary_quorums(), n);
  };
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    auto inputs =
        analysis::make_inputs(analysis::input_pattern::alternating, 4, 2, seed);
    auto res = analysis::run_rt_object_trial(build, inputs, {.seed = seed});
    EXPECT_TRUE(res.agreement());
  }
}

TEST(RtConsensus, CilBaselineOnRealThreads) {
  analysis::rt_object_builder build = [](address_space& mem, std::size_t n)
      -> std::unique_ptr<deciding_object<rt_env>> {
    return std::make_unique<cil_consensus<rt_env>>(mem, n);
  };
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    auto inputs =
        analysis::make_inputs(analysis::input_pattern::alternating, 4, 2, seed);
    auto res = analysis::run_rt_object_trial(build, inputs, {.seed = seed});
    for (const decided& d : res.outputs) EXPECT_TRUE(d.decide);
    EXPECT_TRUE(res.agreement());
  }
}

TEST(RtConsensus, IndividualWorkStaysLogarithmicish) {
  // Not a tight bound on real hardware, but the conciliator's
  // deterministic 2 lg n + O(1) cap per invocation must hold; whole-stack
  // per-process work should stay far below the Θ(n) baseline shape.
  auto qs = make_binary_quorums();
  const std::size_t n = 8;
  arena mem;
  auto consensus = make_impatient_consensus<rt_env>(mem, qs);
  auto res = run_threads(mem, n, 7, [&](rt_env& env) {
    return invoke_encoded(*consensus, env, env.pid() % 2);
  });
  EXPECT_LT(res.max_individual_ops, 40 * (1 + lg_ceil(n)));
}

TEST(RtConsensus, ChaosModeStillAgrees) {
  // Yield-injection forces far more interleavings than free-running
  // threads on a small machine; agreement and validity must survive all
  // of them.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    auto inputs =
        analysis::make_inputs(analysis::input_pattern::alternating, 4, 2, seed);
    auto res = analysis::run_rt_object_trial(impatient_builder(), inputs,
                                             {.seed = seed, .chaos = 3});
    for (const decided& d : res.outputs) EXPECT_TRUE(d.decide);
    EXPECT_TRUE(res.agreement()) << "seed " << seed;
  }
}

TEST(RtConsensus, ChaosCollectRatifierStack) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    arena mem;
    const std::size_t n = 4;
    unbounded_consensus<rt_env> consensus(
        [&mem, n]() -> std::unique_ptr<deciding_object<rt_env>> {
          return std::make_unique<collect_ratifier<rt_env>>(mem, n);
        },
        detail::conciliator_factory<rt_env>(mem, stack_spec{}));
    auto res = run_threads(
        mem, n, seed,
        [&](rt_env& env) {
          return invoke_encoded(consensus, env, env.pid() % 3);
        },
        /*chaos=*/2);
    std::set<word> values;
    for (word w : res.outputs) values.insert(decode_decided(w).value);
    EXPECT_EQ(values.size(), 1u) << "seed " << seed;
    EXPECT_LE(*values.begin(), 2u);
  }
}

TEST(RtEnv, ProbWriteObeysProbabilityOnThreads) {
  arena mem;
  reg_id base = mem.alloc_block(2000, kBot);
  auto res = run_threads(mem, 2, 3, [base](rt_env& env) -> proc<word> {
    struct helper {
      static proc<word> go(rt_env& e, reg_id b) {
        word hits = 0;
        for (int i = 0; i < 1000; ++i) {
          reg_id r = b + 1000 * e.pid() + i;
          co_await e.prob_write(r, 1, prob(1, 4));
          if (co_await e.read(r) == 1) ++hits;
        }
        co_return hits;
      }
    };
    return helper::go(env, base);
  });
  for (word hits : res.outputs) {
    EXPECT_GT(hits, 180u);
    EXPECT_LT(hits, 330u);
  }
}

}  // namespace
}  // namespace modcon::rt
