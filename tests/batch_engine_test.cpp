// The lockstep batch engine (analysis/batch_engine.h): bit-identity with
// the scalar oracle, divergence handling, engine selection/gating, and
// the deterministic shard merge (analysis/shard.h).
#include "analysis/batch_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/json_writer.h"
#include "analysis/shard.h"
#include "core/conciliator/impatient.h"
#include "core/consensus/stack_spec.h"

namespace modcon::analysis {
namespace {

using sim::sim_env;

trial_grid conciliator_cell(impatience_schedule sched, bool detect) {
  return {
      .label = "conc",
      .build =
          [sched, detect](address_space& mem, std::size_t) {
            return std::make_unique<impatient_conciliator<sim_env>>(
                mem, sched, detect);
          },
      .n = 8,
      .trials = 37,
      .base_seed = 11,
      .keep_records = true,
      .batch_hint = batch_impatient(sched, detect),
  };
}

trial_grid consensus_cell(stack_spec spec) {
  return {
      .label = "cons",
      .build = stack_builder<sim_env>(spec),
      .n = 6,
      .trials = 40,
      .base_seed = 5,
      .keep_records = true,
      .batch_hint = batch_for(spec),
  };
}

// The full deterministic payload of both summaries must match: the JSON
// document (with the timing measurements zeroed — those are the only
// fields the bit-identity contract excludes) and every per-record field
// the JSON doesn't carry at full width.
void expect_identical(const trial_grid& cell, const experiment_options& a,
                      const experiment_options& b) {
  summary_stats sa = run_experiment(cell, a);
  summary_stats sb = run_experiment(cell, b);
  clear_timing_measurements(sa);
  clear_timing_measurements(sb);
  EXPECT_EQ(to_json(sa, true).dump(), to_json(sb, true).dump());
  ASSERT_EQ(sa.records.size(), sb.records.size());
  for (std::size_t i = 0; i < sa.records.size(); ++i) {
    const trial_record& ra = sa.records[i];
    const trial_record& rb = sb.records[i];
    EXPECT_EQ(ra.seed, rb.seed) << "trial " << i;
    EXPECT_EQ(ra.result.steps, rb.result.steps) << "trial " << i;
    EXPECT_EQ(ra.result.total_ops, rb.result.total_ops) << "trial " << i;
    EXPECT_EQ(ra.result.max_individual_ops, rb.result.max_individual_ops);
    EXPECT_EQ(ra.result.registers, rb.result.registers) << "trial " << i;
    EXPECT_EQ(static_cast<int>(ra.result.status),
              static_cast<int>(rb.result.status))
        << "trial " << i;
    EXPECT_EQ(ra.result.halted_pids, rb.result.halted_pids) << "trial " << i;
    ASSERT_EQ(ra.result.outputs.size(), rb.result.outputs.size());
    for (std::size_t k = 0; k < ra.result.outputs.size(); ++k)
      EXPECT_EQ(encode_decided(ra.result.outputs[k]),
                encode_decided(rb.result.outputs[k]))
          << "trial " << i << " pid slot " << k;
    EXPECT_EQ(ra.valid, rb.valid);
    EXPECT_EQ(ra.agreement, rb.agreement);
    EXPECT_EQ(ra.coherent, rb.coherent);
    EXPECT_EQ(ra.decided_all, rb.decided_all);
  }
}

experiment_options scalar_opts() {
  experiment_options o;
  o.threads = 1;
  return o;
}

experiment_options batch_opts(std::size_t batch, std::size_t threads) {
  experiment_options o;
  o.threads = threads;
  o.engine = engine_kind::batch;
  o.batch = batch;
  return o;
}

// --- bit-identity with the scalar oracle --------------------------------

TEST(BatchEngine, ConciliatorIdenticalAcrossBatchAndThreads) {
  const trial_grid cell =
      conciliator_cell(impatience_schedule{}, /*detect=*/false);
  for (std::size_t batch : {1u, 7u, 8u, 64u})
    for (std::size_t threads : {1u, 4u})
      expect_identical(cell, scalar_opts(), batch_opts(batch, threads));
}

TEST(BatchEngine, DetectingConciliatorCustomSchedule) {
  // detect_success returns at the write; schedule {3,2} drives the
  // impatience table through non-trivial renormalization.
  const trial_grid cell =
      conciliator_cell(impatience_schedule{3, 2}, /*detect=*/true);
  expect_identical(cell, scalar_opts(), batch_opts(7, 4));
  expect_identical(cell, scalar_opts(), batch_opts(1, 1));
}

TEST(BatchEngine, ConsensusStackIdentical) {
  expect_identical(consensus_cell(stack_for("impatient")), scalar_opts(),
                   batch_opts(8, 2));
}

TEST(BatchEngine, DetectingConsensusStack) {
  stack_spec spec = stack_for("impatient");
  spec.detect_success = true;
  expect_identical(consensus_cell(spec), scalar_opts(), batch_opts(8, 2));
}

TEST(BatchEngine, DivergentLanesAndStepLimit) {
  // A tiny budget makes lanes finish at different steps and mixes
  // all_halted with step_limit statuses: the divergence mask must retire
  // each lane at exactly its scalar step count.
  trial_grid cell = consensus_cell(stack_for("impatient"));
  cell.n = 8;
  cell.trials = 60;
  cell.base_seed = 3;
  cell.limits.max_steps = 70;
  expect_identical(cell, scalar_opts(), batch_opts(16, 4));
}

TEST(BatchEngine, ZeroStepBudget) {
  trial_grid cell = consensus_cell(stack_for("impatient"));
  cell.limits.max_steps = 0;
  expect_identical(cell, scalar_opts(), batch_opts(8, 1));
}

TEST(BatchEngine, SingleProcessUnanimous) {
  trial_grid cell = conciliator_cell(impatience_schedule{}, false);
  cell.n = 1;
  cell.trials = 9;
  cell.base_seed = 2;
  cell.pattern = input_pattern::unanimous;
  expect_identical(cell, scalar_opts(), batch_opts(4, 1));
}

// --- engine selection and gating ----------------------------------------

TEST(BatchEngine, EngineNames) {
  EXPECT_EQ(engine_from_string("scalar"), engine_kind::scalar);
  EXPECT_EQ(engine_from_string("batch"), engine_kind::batch);
  EXPECT_EQ(engine_from_string("auto"), engine_kind::auto_select);
  EXPECT_FALSE(engine_from_string("vector").has_value());
  EXPECT_FALSE(engine_from_string("").has_value());
  EXPECT_STREQ(to_string(engine_kind::scalar), "scalar");
  EXPECT_STREQ(to_string(engine_kind::batch), "batch");
  EXPECT_STREQ(to_string(engine_kind::auto_select), "auto");
}

TEST(BatchEngine, BatchForGating) {
  EXPECT_TRUE(batch_for(stack_for("impatient")).has_value());
  stack_spec wide = stack_for("impatient");
  wide.m = 8;  // binary quorum ratifiers hold {0, 1} only
  EXPECT_FALSE(batch_for(wide).has_value());
  stack_spec recoverable = stack_for("impatient");
  recoverable.recoverable = true;
  EXPECT_FALSE(batch_for(recoverable).has_value());
}

TEST(BatchEngine, SupportGating) {
  trial_grid cell = conciliator_cell(impatience_schedule{}, false);
  EXPECT_TRUE(batch_supported(cell));
  trial_grid no_hint = cell;
  no_hint.batch_hint.reset();
  EXPECT_FALSE(batch_supported(no_hint));
  trial_grid faulted = cell;
  faulted.faults = fault_plan{}.crash(1, 12);
  EXPECT_FALSE(batch_supported(faulted));
  trial_grid audited = cell;
  audited.audit.mode = audit_mode::all;
  EXPECT_FALSE(batch_supported(audited));
  trial_grid observed = cell;
  observed.observe = true;
  EXPECT_FALSE(batch_supported(observed));
}

TEST(BatchEngine, AutoFallsBackToScalarOnFaultedCells) {
  // An unsupported cell under auto/batch runs the scalar oracle: results
  // must equal a pure scalar run exactly.
  trial_grid cell = consensus_cell(stack_for("impatient"));
  cell.trials = 12;
  cell.faults = fault_plan{}.crash(1, 12).regular_registers(8);
  ASSERT_FALSE(batch_supported(cell));
  experiment_options auto_opts;
  auto_opts.threads = 2;
  auto_opts.engine = engine_kind::auto_select;
  expect_identical(cell, scalar_opts(), auto_opts);
}

// --- deterministic shard merge ------------------------------------------

json shard_doc(const std::vector<trial_grid>& cells, std::size_t index,
               std::size_t count) {
  json doc = make_report_skeleton("scratch");
  doc["shard"] = json::object();
  doc["shard"]["index"] = json(index);
  doc["shard"]["count"] = json(count);
  for (const trial_grid& cell : cells) {
    experiment_options o;
    o.threads = 2;
    o.engine = engine_kind::auto_select;
    o.batch = 8;
    o.shard_index = index;
    o.shard_count = count;
    summary_stats s = run_experiment(cell, o);
    clear_timing_measurements(s);
    doc["experiments"].push_back(shard_cell_to_json(s, meta_of(cell)));
  }
  return doc;
}

TEST(ShardMerge, MergedArtifactMatchesSingleProcessByteForByte) {
  // One batched cell plus one faulted (scalar-fallback) cell: the merge
  // must reassemble both kinds of record stream.
  std::vector<trial_grid> cells;
  cells.push_back(consensus_cell(stack_for("impatient")));
  cells[0].trials = 50;
  cells[0].base_seed = 9;
  trial_grid faulted = consensus_cell(stack_for("impatient"));
  faulted.label = "cons-faulted";
  faulted.trials = 30;
  faulted.base_seed = 13;
  faulted.faults = fault_plan{}.crash(1, 12).regular_registers(8);
  cells.push_back(faulted);

  const std::string reference = shard_doc(cells, 0, 1).dump(2);
  for (std::size_t ways : {2u, 4u, 8u}) {
    std::vector<json> shards;
    for (std::size_t i = 0; i < ways; ++i)
      shards.push_back(shard_doc(cells, i, ways));
    EXPECT_EQ(merge_shard_reports(shards).dump(2), reference)
        << ways << "-way merge";
  }
}

TEST(ShardMerge, RejectsMismatchedShardSets) {
  std::vector<trial_grid> cells = {consensus_cell(stack_for("impatient"))};
  cells[0].trials = 10;
  std::vector<json> shards;
  shards.push_back(shard_doc(cells, 0, 2));
  // Missing shard 1/2: counts disagree with the artifact count.
  EXPECT_THROW(merge_shard_reports(shards), json_error);
  // Duplicate index.
  shards.push_back(shard_doc(cells, 0, 2));
  EXPECT_THROW(merge_shard_reports(shards), json_error);
}

}  // namespace
}  // namespace modcon::analysis
