// Baselines: the Chor–Israeli–Li-style racing consensus (also Theorem 5's
// fallback K) and its cost shape versus the paper's stack.
#include "baseline/cil_consensus.h"

#include <gtest/gtest.h>

#include <memory>

#include "analysis/runner.h"
#include "core/consensus/builder.h"
#include "sim/adversaries/adversaries.h"
#include "util/stats.h"

namespace modcon {
namespace {

using analysis::input_pattern;
using analysis::make_inputs;
using analysis::run_object_trial;
using analysis::trial_options;
using sim::sim_env;

// gtest parameterized-test names must be alphanumeric.
std::string sanitize(std::string s) {
  for (char& ch : s)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return s;
}

analysis::sim_object_builder cil_builder() {
  return [](address_space& mem, std::size_t n) {
    return std::make_unique<cil_consensus<sim_env>>(mem, n);
  };
}

struct cil_case {
  std::size_t n;
  input_pattern pattern;
};

class CilProperty : public ::testing::TestWithParam<cil_case> {};

TEST_P(CilProperty, ConsensusPropertiesHold) {
  auto c = GetParam();
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    sim::random_oblivious adv;
    auto inputs = make_inputs(c.pattern, c.n, 2, seed);
    trial_options opts;
    opts.seed = seed;
    opts.limits.max_steps = 5'000'000;
    auto res = run_object_trial(cil_builder(), inputs, adv, opts);
    ASSERT_TRUE(res.completed()) << "n=" << c.n << " seed=" << seed;
    EXPECT_TRUE(analysis::all_decided(res.outputs));
    EXPECT_TRUE(res.agreement()) << "n=" << c.n << " seed=" << seed;
    EXPECT_TRUE(res.valid(inputs));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Races, CilProperty,
    ::testing::Values(cil_case{1, input_pattern::unanimous},
                      cil_case{2, input_pattern::half_half},
                      cil_case{3, input_pattern::alternating},
                      cil_case{6, input_pattern::half_half},
                      cil_case{6, input_pattern::unanimous},
                      cil_case{12, input_pattern::alternating}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_" +
             sanitize(to_string(info.param.pattern));
    });

TEST(CilConsensus, MValuedWorksToo) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::random_oblivious adv;
    auto inputs = make_inputs(input_pattern::random_m, 5, 40, seed);
    trial_options opts;
    opts.seed = seed;
    opts.limits.max_steps = 5'000'000;
    auto res = run_object_trial(cil_builder(), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(res.agreement());
    EXPECT_TRUE(res.valid(inputs));
  }
}

TEST(CilConsensus, BoundedSpace) {
  // n registers, regardless of how long the race runs.
  sim::random_oblivious adv;
  auto inputs = make_inputs(input_pattern::half_half, 6, 2, 1);
  auto res = run_object_trial(cil_builder(), inputs, adv);
  ASSERT_TRUE(res.completed());
  EXPECT_EQ(res.registers, 6u);
}

TEST(CilConsensus, SurvivesLockstepScheduling) {
  // Round-robin is the lockstep schedule; hidden coins must still break
  // the tie (this is the point of probabilistic writes in CIL).
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::round_robin adv;
    trial_options opts;
    opts.seed = seed;
    opts.limits.max_steps = 5'000'000;
    auto res = run_object_trial(cil_builder(), {0, 1}, adv, opts);
    ASSERT_TRUE(res.completed()) << "seed " << seed;
    EXPECT_TRUE(res.agreement());
  }
}

TEST(CilConsensus, WaitFreeUnderCrashes) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    opts.limits.max_steps = 5'000'000;
    opts.faults.crashes = {{0, 2}, {1, 5}};
    auto inputs = make_inputs(input_pattern::alternating, 5, 2, seed);
    auto res = run_object_trial(cil_builder(), inputs, adv, opts);
    EXPECT_EQ(res.status, sim::run_status::no_runnable);
    EXPECT_TRUE(res.coherent());
    EXPECT_TRUE(res.valid(inputs));
    for (const auto& d : res.outputs) EXPECT_TRUE(d.decide);
  }
}

TEST(CilConsensus, IndividualWorkIsSuperlogarithmic) {
  // The baseline's per-process cost grows like Θ(n) per round times the
  // race length; the paper's stack stays polylog.  Compare medians on a
  // contended workload (the E9 shape in miniature).
  auto qs = make_binary_quorums();
  for (std::size_t n : {8u, 24u}) {
    sample_set cil_work, stack_work;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      trial_options opts;
      opts.seed = seed;
      opts.limits.max_steps = 20'000'000;
      auto inputs = make_inputs(input_pattern::half_half, n, 2, seed);
      {
        sim::random_oblivious adv;
        auto res = run_object_trial(cil_builder(), inputs, adv, opts);
        ASSERT_TRUE(res.completed());
        cil_work.add(static_cast<double>(res.max_individual_ops));
      }
      {
        sim::random_oblivious adv;
        auto builder = [&qs](address_space& mem, std::size_t) {
          return make_impatient_consensus<sim_env>(mem, qs);
        };
        auto res = run_object_trial(builder, inputs, adv, opts);
        ASSERT_TRUE(res.completed());
        stack_work.add(static_cast<double>(res.max_individual_ops));
      }
    }
    EXPECT_GT(cil_work.quantile(0.5), stack_work.quantile(0.5))
        << "n=" << n;
  }
}

TEST(LeanConsensus, RatifierLadderWithBinaryQuorumsUnderNoise) {
  // §4.2: "R is essentially equivalent to the lean-consensus protocol of
  // [5]" — binary ratifier ladder + noisy scheduler.
  auto qs = make_binary_quorums();
  std::size_t done = 0;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    sim::noisy adv(1.0);
    auto build = [&](address_space& mem, std::size_t) {
      return make_ratifier_only_consensus<sim_env>(mem, qs, 50000);
    };
    auto inputs = make_inputs(input_pattern::half_half, 6, 2, seed);
    trial_options opts;
    opts.seed = seed;
    opts.limits.max_steps = 150'000;
    auto res = run_object_trial(build, inputs, adv, opts);
    if (!res.completed()) continue;
    ++done;
    EXPECT_TRUE(res.agreement());
    EXPECT_TRUE(res.valid(inputs));
  }
  EXPECT_GE(done, 22u);
}

}  // namespace
}  // namespace modcon
