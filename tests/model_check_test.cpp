// Model-checker guarantees that go beyond explorer_test's per-object
// exhaustion: DPOR agrees with the naive oracle while exploring
// strictly less, violations shrink to stable minimal witnesses that
// replay, and the fault/semantics choice dimensions catch the PR 7
// violation kinds when a bug is deliberately seeded.
#include "check/explorer.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/consensus/stack_spec.h"
#include "exec/address_space.h"
#include "sim/world.h"

namespace modcon::check {
namespace {

using sim::sim_env;

analysis::sim_object_builder registry_builder(const std::string& name) {
  return stack_builder<sim_env>(stack_for(name));
}

std::vector<value_t> default_inputs(std::size_t n) {
  std::vector<value_t> inputs(n);
  for (std::size_t i = 0; i < n; ++i)
    inputs[i] = static_cast<value_t>(i % 2);
  return inputs;
}

// One process writes, the other reads the same register: the smallest
// system with a genuine read/write overlap, used to exercise the
// regular-semantics choice dimension.
struct rw_probe final : deciding_object<sim_env> {
  reg_id r;
  explicit rw_probe(address_space& mem) : r(mem.alloc(0)) {}
  proc<decided> invoke(sim_env& env, value_t v) override {
    if (v == 0)
      co_await env.write(r, 1);
    else
      co_await env.read(r);
    co_return decided{false, v};
  }
  std::string name() const override { return "rw-probe"; }
};

// A volatile register that one process writes and the other reads twice:
// under an honest crash-recovery the wipe resets it, so any read that
// still sees the written value predates nothing — unless the recovery
// wipe was skipped.
struct vol_probe final : deciding_object<sim_env> {
  reg_id r;
  explicit vol_probe(address_space& mem) {
    durability_scope ds(mem, durability::volatile_mem);
    r = mem.alloc(0);
  }
  proc<decided> invoke(sim_env& env, value_t v) override {
    if (v == 0) {
      co_await env.write(r, 5);
    } else {
      co_await env.read(r);
      co_await env.read(r);
    }
    co_return decided{false, v};
  }
  std::string name() const override { return "vol-probe"; }
};

// Decides its own input unconditionally: breaks coherence on mixed
// inputs, giving the shrinker something to minimize.
struct broken final : deciding_object<sim_env> {
  reg_id r;
  explicit broken(address_space& mem) : r(mem.alloc(0)) {}
  proc<decided> invoke(sim_env& env, value_t v) override {
    co_await env.write(r, v);
    co_return decided{true, v};
  }
  std::string name() const override { return "broken"; }
};

template <typename Obj>
analysis::sim_object_builder make_builder() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<Obj>(mem);
  };
}

// --- DPOR vs naive -------------------------------------------------

TEST(ModelCheck, DporMatchesNaiveOnRegistryStacks) {
  // Both modes must exhaust, agree on the verdict, and DPOR must explore
  // at most as many executions (strictly fewer on anything non-trivial).
  for (const char* stack : {"ratifier-only", "bounded", "cil"}) {
    explore_options opts;
    opts.branch_coins = false;
    opts.max_choices = 14;
    auto build = registry_builder(stack);
    auto inputs = default_inputs(2);

    opts.mode = reduction::dpor;
    auto dpor = explore_all(build, inputs, consensus_checker(), opts);
    opts.mode = reduction::naive;
    auto naive = explore_all(build, inputs, consensus_checker(), opts);

    EXPECT_TRUE(dpor.exhausted) << stack;
    EXPECT_TRUE(naive.exhausted) << stack;
    EXPECT_TRUE(dpor.reduced) << stack;
    EXPECT_FALSE(naive.reduced) << stack;
    EXPECT_EQ(dpor.ok(), naive.ok()) << stack;
    EXPECT_LE(dpor.executions, naive.executions) << stack;
    EXPECT_GT(dpor.pruned, 0u) << stack;
    EXPECT_EQ(naive.pruned, 0u) << stack;
  }
}

TEST(ModelCheck, DporMatchesNaiveOnAViolatingObject) {
  auto build = make_builder<broken>();
  explore_options opts;
  opts.mode = reduction::dpor;
  auto dpor = explore_all(build, {0, 1}, weak_consensus_checker(), opts);
  opts.mode = reduction::naive;
  auto naive = explore_all(build, {0, 1}, weak_consensus_checker(), opts);
  EXPECT_GT(dpor.violations, 0u);
  EXPECT_GT(naive.violations, 0u);
  EXPECT_NE(dpor.first_violation.find("coherence"), std::string::npos);
  EXPECT_NE(naive.first_violation.find("coherence"), std::string::npos);
}

TEST(ModelCheck, DporReferenceConfigurationAtLeastTenfold) {
  // The acceptance reference: bounded stack, n = 3, atomic registers, no
  // faults.  DPOR exhausts the tree; naive, given a 10x larger execution
  // budget, must still hit its cap — so the reduction factor is > 10x.
  auto build = registry_builder("bounded");
  auto inputs = default_inputs(3);
  explore_options opts;
  opts.branch_coins = false;
  opts.max_choices = 24;

  opts.mode = reduction::dpor;
  auto dpor = explore_all(build, inputs, consensus_checker(), opts);
  ASSERT_TRUE(dpor.exhausted);
  ASSERT_TRUE(dpor.reduced);
  EXPECT_EQ(dpor.violations, 0u) << dpor.first_violation;
  ASSERT_GT(dpor.executions, 100u);

  opts.mode = reduction::naive;
  opts.max_executions = dpor.executions * 10;
  auto naive = explore_all(build, inputs, consensus_checker(), opts);
  EXPECT_EQ(naive.violations, 0u) << naive.first_violation;
  EXPECT_FALSE(naive.exhausted)
      << "naive exhausted within 10x the DPOR executions: "
      << naive.executions << " vs " << dpor.executions;
}

TEST(ModelCheck, ReductionGateDegradesUnderFaultsAndSemantics) {
  // Any option that makes scheduling observable through shared state
  // must fall back to full branching even when DPOR is requested.
  auto build = registry_builder("ratifier-only");
  auto inputs = default_inputs(2);
  explore_options opts;
  opts.branch_coins = false;
  opts.max_choices = 10;
  opts.mode = reduction::dpor;

  auto atomic = explore_all(build, inputs, consensus_checker(), opts);
  EXPECT_TRUE(atomic.reduced);

  explore_options crash = opts;
  crash.crash_budget = 1;
  EXPECT_FALSE(explore_all(build, inputs, consensus_checker(), crash)
                   .reduced);

  explore_options regular = opts;
  regular.semantics = sim::register_semantics::regular;
  EXPECT_FALSE(explore_all(build, inputs, consensus_checker(), regular)
                   .reduced);

  explore_options omit = opts;
  omit.omission_budget = 1;
  EXPECT_FALSE(
      explore_all(build, inputs, consensus_checker(), omit).reduced);
}

// --- fault and semantics dimensions --------------------------------

TEST(ModelCheck, CrashRestartDimensionStaysClean) {
  // The registry ratifier ladder under one injected crash-restart at
  // every possible point: still no property or audit violation.
  auto build = registry_builder("ratifier-only");
  explore_options opts;
  opts.branch_coins = false;
  opts.max_choices = 12;
  opts.crash_budget = 1;
  auto report = explore_all(build, default_inputs(2), consensus_checker(),
                            opts);
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.violations, 0u) << report.first_violation;
}

TEST(ModelCheck, RegularSemanticsDimensionStaysClean) {
  // Every legal overlap resolution of the read/write probe is fine on
  // its own — only the seeded illegal option below must trip the audit.
  auto build = make_builder<rw_probe>();
  explore_options opts;
  opts.semantics = sim::register_semantics::regular;
  auto report =
      explore_all(build, {0, 1}, weak_consensus_checker(), opts);
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.violations, 0u) << report.first_violation;
}

TEST(ModelCheck, SeededIllegalReadCaughtAsIllegalRegularRead) {
  auto build = make_builder<rw_probe>();
  explore_options opts;
  opts.semantics = sim::register_semantics::regular;
  opts.seed_bugs.illegal_read_option = true;
  auto report =
      explore_all(build, {0, 1}, weak_consensus_checker(), opts);
  EXPECT_FALSE(report.reduced);
  EXPECT_GT(report.violations, 0u);
  EXPECT_NE(report.first_violation.find("illegal_regular_read"),
            std::string::npos)
      << report.first_violation;
  EXPECT_FALSE(report.witness.empty());
}

TEST(ModelCheck, RecoveryDimensionStaysClean) {
  // Honest crash-recovery: the wipe really happens, so every read of the
  // volatile register is explainable and the audit stays clean.
  auto build = make_builder<vol_probe>();
  explore_options opts;
  opts.branch_coins = false;
  opts.max_choices = 16;
  opts.crash_budget = 1;
  auto report =
      explore_all(build, {0, 1}, weak_consensus_checker(), opts);
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.violations, 0u) << report.first_violation;
}

TEST(ModelCheck, SeededWipeSkipCaughtAsVolatileStateSurvival) {
  auto build = make_builder<vol_probe>();
  explore_options opts;
  opts.branch_coins = false;
  opts.max_choices = 16;
  opts.crash_budget = 1;
  opts.seed_bugs.skip_recovery_wipe = true;
  auto report =
      explore_all(build, {0, 1}, weak_consensus_checker(), opts);
  EXPECT_GT(report.violations, 0u);
  EXPECT_NE(report.first_violation.find("volatile_state_survival"),
            std::string::npos)
      << report.first_violation;
}

TEST(ModelCheck, OmissionDimensionFindsTheCoherenceBreak) {
  // The registry stacks tolerate crashes, not write omission: dropping
  // the right quorum-board write breaks coherence, and the explorer must
  // find that execution and hand back a replayable witness.
  auto build = registry_builder("ratifier-only");
  explore_options opts;
  opts.branch_coins = false;
  opts.max_choices = 16;
  opts.omission_budget = 1;
  auto report = explore_all(build, default_inputs(2), consensus_checker(),
                            opts);
  EXPECT_TRUE(report.exhausted);
  ASSERT_GT(report.violations, 0u);
  ASSERT_FALSE(report.witness.empty());
  auto replay = replay_witness(build, default_inputs(2),
                               consensus_checker(), opts, report.witness);
  EXPECT_TRUE(replay.replayed);
  EXPECT_TRUE(replay.violation);
}

// --- witness shrinking and replay ----------------------------------

TEST(ModelCheck, WitnessIsStableMinimalAndReplays) {
  auto build = make_builder<broken>();
  explore_options opts;
  auto first = explore_all(build, {0, 1}, weak_consensus_checker(), opts);
  auto second = explore_all(build, {0, 1}, weak_consensus_checker(), opts);
  ASSERT_GT(first.violations, 0u);
  ASSERT_FALSE(first.witness.empty());
  // Deterministic exploration + deterministic shrinking: byte-identical
  // witnesses across runs.
  EXPECT_EQ(first.witness, second.witness);
  // broken decides after one shared write + the invoke bookkeeping; the
  // minimal witness must stay in that ballpark rather than dragging the
  // whole original path along.
  EXPECT_LE(first.witness.size(), 8u);

  auto replay =
      replay_witness(build, {0, 1}, weak_consensus_checker(), opts,
                     first.witness);
  EXPECT_TRUE(replay.replayed);
  EXPECT_TRUE(replay.violation);
  EXPECT_NE(replay.description.find("coherence"), std::string::npos);
  EXPECT_EQ(replay.effective, first.witness);
}

TEST(ModelCheck, SeededViolationWitnessReplaysUnderSameConfig) {
  auto build = make_builder<rw_probe>();
  explore_options opts;
  opts.semantics = sim::register_semantics::regular;
  opts.seed_bugs.illegal_read_option = true;
  auto report =
      explore_all(build, {0, 1}, weak_consensus_checker(), opts);
  ASSERT_FALSE(report.witness.empty());
  auto replay = replay_witness(build, {0, 1}, weak_consensus_checker(),
                               opts, report.witness);
  EXPECT_TRUE(replay.replayed);
  EXPECT_TRUE(replay.violation);
  EXPECT_NE(replay.description.find("illegal_regular_read"),
            std::string::npos);
}

TEST(ModelCheck, WitnessReplayExportsPerfettoTrace) {
  auto build = make_builder<broken>();
  explore_options opts;
  auto report = explore_all(build, {0, 1}, weak_consensus_checker(), opts);
  ASSERT_FALSE(report.witness.empty());
  std::ostringstream trace;
  auto replay = replay_witness(build, {0, 1}, weak_consensus_checker(),
                               opts, report.witness, &trace,
                               "model-check-test");
  EXPECT_TRUE(replay.violation);
  EXPECT_NE(trace.str().find("traceEvents"), std::string::npos);
  EXPECT_NE(trace.str().find("model-check-test"), std::string::npos);
}

TEST(ModelCheck, InconsistentWitnessIsRejected) {
  auto build = make_builder<broken>();
  explore_options opts;
  // Pid 7 never exists in a 2-process world: the replay must refuse
  // rather than silently reinterpret the sequence.
  auto replay = replay_witness(build, {0, 1}, weak_consensus_checker(),
                               opts, {7});
  EXPECT_FALSE(replay.replayed);
  EXPECT_FALSE(replay.violation);
}

}  // namespace
}  // namespace modcon::check
