// Fuzzing the framework's load-bearing conditions.
//
// 1. Theorem 8, both directions: a RANDOM quorum family satisfying
//    W_v ∩ R_v' = ∅ ⇔ v = v' must yield a ratifier the exhaustive
//    explorer certifies; SABOTAGING one pair (making W_v invisible to
//    R_v') must yield a ratifier the explorer refutes — coherence breaks
//    on the double-proposal race.
// 2. Corollary 4: RANDOM compositions of weak consensus objects stay
//    weak consensus objects, over random schedules and seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "analysis/runner.h"
#include "check/explorer.h"
#include "core/modcon.h"
#include "quorum/verify.h"
#include "sim/adversaries/adversaries.h"
#include "util/rng.h"

namespace modcon {
namespace {

using analysis::input_pattern;
using analysis::make_inputs;
using analysis::run_object_trial;
using analysis::trial_options;
using sim::sim_env;

// --- random quorum families ---

std::vector<std::uint32_t> complement(std::uint32_t pool,
                                      const std::vector<std::uint32_t>& s) {
  std::vector<std::uint32_t> out;
  std::size_t j = 0;
  for (std::uint32_t i = 0; i < pool; ++i) {
    if (j < s.size() && s[j] == i)
      ++j;
    else
      out.push_back(i);
  }
  return out;
}

bool subset_of(const std::vector<std::uint32_t>& a,
               const std::vector<std::uint32_t>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

// Random antichain of m distinct subsets of [0, pool): with R_v taken as
// the complement of W_v, incomparability is exactly the Theorem 8
// condition.
std::vector<std::vector<std::uint32_t>> random_antichain(rng& r,
                                                         std::uint32_t pool,
                                                         std::size_t m) {
  std::vector<std::vector<std::uint32_t>> family;
  int attempts = 0;
  while (family.size() < m) {
    MODCON_CHECK_MSG(++attempts < 10000, "antichain sampling stuck");
    std::vector<std::uint32_t> s;
    for (std::uint32_t i = 0; i < pool; ++i)
      if (r.flip()) s.push_back(i);
    if (s.empty() || s.size() == pool) continue;
    bool comparable = false;
    for (const auto& t : family)
      comparable |= subset_of(s, t) || subset_of(t, s);
    if (!comparable) family.push_back(std::move(s));
  }
  return family;
}

analysis::sim_object_builder ratifier_builder(
    std::shared_ptr<const quorum_system> qs) {
  return [qs](address_space& mem, std::size_t) {
    return std::make_unique<quorum_ratifier<sim_env>>(mem, qs);
  };
}

TEST(QuorumFuzz, RandomCorrectFamiliesYieldCorrectRatifiers) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    rng r(seed * 31 + 7);
    const std::uint32_t pool = 5;
    const std::size_t m = 3;
    auto writes = random_antichain(r, pool, m);
    std::vector<std::vector<std::uint32_t>> reads;
    for (const auto& w : writes) reads.push_back(complement(pool, w));
    auto qs = make_table_quorums(pool, writes, reads);

    ASSERT_FALSE(check_ratifier_condition(*qs, m).has_value())
        << "seed " << seed;

    // Exhaustively verify the ratifier on every value pair, n = 2.
    for (value_t a = 0; a < m; ++a) {
      for (value_t b = 0; b < m; ++b) {
        auto report = check::explore_all(ratifier_builder(qs), {a, b},
                                         check::ratifier_checker());
        EXPECT_TRUE(report.ok())
            << "seed " << seed << " inputs {" << a << "," << b
            << "}: " << report.first_violation;
        EXPECT_TRUE(report.exhausted);
      }
    }
  }
}

TEST(QuorumFuzz, SabotagedFamiliesAreDetectedAndRefuted) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    rng r(seed * 77 + 3);
    const std::uint32_t pool = 5;
    const std::size_t m = 3;
    auto writes = random_antichain(r, pool, m);
    std::vector<std::vector<std::uint32_t>> reads;
    for (const auto& w : writes) reads.push_back(complement(pool, w));

    // Sabotage: make W_v invisible to R_{v'} for one pair v != v'.
    value_t v = r.below(m);
    value_t vp = (v + 1 + r.below(m - 1)) % m;
    std::vector<std::uint32_t> pruned;
    for (std::uint32_t e : reads[vp])
      if (!std::binary_search(writes[v].begin(), writes[v].end(), e))
        pruned.push_back(e);
    if (pruned.empty()) continue;  // cannot sabotage this family; skip
    reads[vp] = pruned;
    auto qs = make_table_quorums(pool, writes, reads);

    // The static checker flags it...
    auto violation = check_ratifier_condition(*qs, m);
    ASSERT_TRUE(violation.has_value()) << "seed " << seed;

    // ...and the explorer finds a real execution violating coherence
    // (the double-proposal race) with exactly that value pair.
    auto report = check::explore_all(ratifier_builder(qs), {v, vp},
                                     check::ratifier_checker());
    EXPECT_GT(report.violations, 0u)
        << "seed " << seed << " pair {" << v << "," << vp << "}";
    EXPECT_NE(report.first_violation.find("coherence"), std::string::npos)
        << report.first_violation;
  }
}

// --- composition fuzz (Corollary 4) ---

std::unique_ptr<deciding_object<sim_env>> random_part(rng& r,
                                                      address_space& mem,
                                                      std::uint64_t m) {
  switch (r.below(4)) {
    case 0:
      return std::make_unique<quorum_ratifier<sim_env>>(
          mem, make_bollobas_quorums(m));
    case 1:
      return std::make_unique<quorum_ratifier<sim_env>>(
          mem, make_bitvector_quorums(m));
    case 2:
      return std::make_unique<impatient_conciliator<sim_env>>(mem);
    default:
      return std::make_unique<fixed_probability_conciliator<sim_env>>(mem);
  }
}

TEST(CompositionFuzz, RandomSequencesRemainWeakConsensusObjects) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    rng r(seed * 1337 + 11);
    const std::uint64_t m = 4;
    const std::size_t parts = 1 + r.below(4);
    const std::size_t n = 2 + r.below(5);

    auto build = [&r, m, parts](address_space& mem, std::size_t)
        -> std::unique_ptr<deciding_object<sim_env>> {
      auto s = std::make_unique<sequence<sim_env>>();
      for (std::size_t i = 0; i < parts; ++i)
        s->append(random_part(r, mem, m));
      return s;
    };

    sim::random_oblivious adv;
    auto inputs = make_inputs(input_pattern::random_m, n, m, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(build, inputs, adv, opts);
    ASSERT_TRUE(res.completed()) << "seed " << seed;
    EXPECT_TRUE(res.valid(inputs)) << "seed " << seed;   // Lemma 1
    EXPECT_TRUE(res.coherent()) << "seed " << seed;      // Lemma 3
  }
}

TEST(CompositionFuzz, RandomSequencesExhaustivelyForTwoProcesses) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    rng r(seed * 513 + 29);
    const std::size_t parts = 1 + r.below(3);
    // Pre-draw the structure: the explorer rebuilds the object for every
    // replay, and every replay must see the identical object graph.
    std::vector<bool> is_ratifier;
    for (std::size_t i = 0; i < parts; ++i) is_ratifier.push_back(r.flip());
    auto build = [is_ratifier](address_space& mem, std::size_t)
        -> std::unique_ptr<deciding_object<sim_env>> {
      auto s = std::make_unique<sequence<sim_env>>();
      for (bool ratifier : is_ratifier) {
        // Small parts keep the tree enumerable: binary ratifier
        // (deterministic) or impatient conciliator (one coin/process).
        if (ratifier)
          s->append(std::make_unique<quorum_ratifier<sim_env>>(
              mem, make_binary_quorums()));
        else
          s->append(std::make_unique<impatient_conciliator<sim_env>>(mem));
      }
      return s;
    };
    check::explore_options opts;
    opts.max_choices = 48;
    opts.max_executions = 200000;
    opts.max_nodes = 600000;
    auto report = check::explore_all(build, {0, 1},
                                     check::weak_consensus_checker(), opts);
    EXPECT_EQ(report.violations, 0u)
        << "seed " << seed << ": " << report.first_violation;
  }
}

}  // namespace
}  // namespace modcon
