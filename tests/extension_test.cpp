// Extension modules: the announce-array (collect) ratifier, the
// priority-model one-register consensus, bitwise m-valued reduction, the
// first-mover coin, generalized impatience schedules, and the lockstep
// scheduler.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/runner.h"
#include "baseline/priority_consensus.h"
#include "check/explorer.h"
#include "coin/firstmover_coin.h"
#include "core/modcon.h"
#include "sim/adversaries/adversaries.h"
#include "util/stats.h"

namespace modcon {
namespace {

using analysis::input_pattern;
using analysis::make_inputs;
using analysis::run_object_trial;
using analysis::trial_options;
using sim::sim_env;

// --- impatience schedules ---

TEST(ImpatienceSchedule, DoublingMatchesPaperSchedule) {
  impatience_schedule s;  // g = 2
  EXPECT_TRUE(s.is_doubling());
  for (std::uint64_t n : {2ull, 8ull, 100ull, 4096ull}) {
    for (unsigned k = 0; k < 20; ++k) {
      EXPECT_EQ(s.probability(k, n), prob::pow2_over(k, n))
          << "k=" << k << " n=" << n;
    }
  }
}

TEST(ImpatienceSchedule, GrowthOneIsConstant) {
  impatience_schedule s{1, 1};
  for (unsigned k = 0; k < 50; ++k) EXPECT_EQ(s.probability(k, 64), prob(1, 64));
}

TEST(ImpatienceSchedule, FractionalGrowth) {
  impatience_schedule s{3, 2};  // g = 1.5
  EXPECT_EQ(s.probability(0, 16), prob(1, 16));
  EXPECT_EQ(s.probability(1, 16), prob(3, 32));
  EXPECT_EQ(s.probability(2, 16), prob(9, 64));
  // Eventually saturates at 1.
  bool saturated = false;
  for (unsigned k = 0; k < 64 && !saturated; ++k)
    saturated = s.probability(k, 16).certain();
  EXPECT_TRUE(saturated);
}

TEST(ImpatienceSchedule, MonotoneInK) {
  impatience_schedule s{5, 2};
  for (unsigned k = 0; k + 1 < 30; ++k) {
    auto a = s.probability(k, 1000);
    auto b = s.probability(k + 1, 1000);
    EXPECT_LE(a.value(), b.value() + 1e-12) << "k=" << k;
  }
}

TEST(ImpatienceSchedule, DeepKDoesNotOverflow) {
  impatience_schedule s{2, 1};
  EXPECT_TRUE(s.probability(200, 1ull << 62).certain());
  impatience_schedule slow{1, 1};
  EXPECT_EQ(slow.probability(500, 7), prob(1, 7));
}

TEST(ImpatienceSchedule, StepperMatchesProbability) {
  // The conciliator's retry loop uses the incremental stepper instead of
  // recomputing probability(k, n) from scratch each attempt; any drift
  // between the two would change sampled coin streams and break the
  // byte-identical determinism contract.
  struct {
    impatience_schedule s;
    std::uint64_t n;
  } cases[] = {
      {{2, 1}, 2},        {{2, 1}, 16},        {{2, 1}, 4096},
      {{1, 1}, 64},       {{3, 2}, 16},        {{3, 2}, 1000},
      {{5, 2}, 1000},     {{4, 1}, 7},         {{2, 1}, 1ull << 62},
      {{7, 3}, 1ull << 40},
  };
  for (const auto& c : cases) {
    impatience_schedule::stepper st(c.s, c.n);
    for (unsigned k = 0; k <= 50; ++k) {
      EXPECT_EQ(st.next(), c.s.probability(k, c.n))
          << "numer=" << c.s.numer << " denom=" << c.s.denom << " n=" << c.n
          << " k=" << k;
    }
  }
}

TEST(ImpatientConciliator, SlowerGrowthStillConciliates) {
  for (auto g : {impatience_schedule{3, 2}, impatience_schedule{4, 1}}) {
    std::size_t agreed = 0;
    constexpr std::size_t kTrials = 300;
    for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
      sim::random_oblivious adv;
      auto build = [g](address_space& mem, std::size_t) {
        return std::make_unique<impatient_conciliator<sim_env>>(mem, g);
      };
      trial_options opts;
      opts.seed = seed;
      auto res = run_object_trial(
          build, make_inputs(input_pattern::half_half, 16, 2, seed), adv,
          opts);
      ASSERT_TRUE(res.completed());
      agreed += res.agreement();
    }
    EXPECT_GT(wilson_interval(agreed, kTrials).lo, 0.0553);
  }
}

// --- success-detecting conciliator (footnote to Theorem 7) ---

analysis::sim_object_builder detecting_builder() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(
        mem, impatience_schedule{}, /*detect_success=*/true);
  };
}

TEST(DetectingConciliator, ValidityCoherenceAgreement) {
  std::size_t agreed = 0;
  constexpr std::size_t kTrials = 400;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    sim::random_oblivious adv;
    auto inputs = make_inputs(input_pattern::half_half, 12, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(detecting_builder(), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(res.valid(inputs));
    for (const decided& d : res.outputs) EXPECT_FALSE(d.decide);
    agreed += res.agreement();
  }
  EXPECT_GT(wilson_interval(agreed, kTrials).lo, 0.0553);
}

TEST(DetectingConciliator, SavesWorkOverThePlainVariant) {
  // The footnote: detection lets a successful writer return immediately,
  // trimming the trailing read (and often a write) — compare solo runs.
  running_stats plain, detecting;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    trial_options opts;
    opts.seed = seed;
    {
      sim::fixed_order adv(sim::fixed_order::mode::sequential);
      auto build = [](address_space& mem, std::size_t) {
        return std::make_unique<impatient_conciliator<sim_env>>(mem);
      };
      auto res = run_object_trial(
          build, make_inputs(input_pattern::unanimous, 16, 2, 0), adv, opts);
      plain.add(static_cast<double>(res.max_individual_ops));
    }
    {
      sim::fixed_order adv(sim::fixed_order::mode::sequential);
      auto res = run_object_trial(
          detecting_builder(),
          make_inputs(input_pattern::unanimous, 16, 2, 0), adv, opts);
      detecting.add(static_cast<double>(res.max_individual_ops));
    }
  }
  EXPECT_LT(detecting.mean() + 0.5, plain.mean());
}

TEST(DetectingConciliator, ExhaustiveSmall) {
  // All schedules × coin outcomes for n = 2, detection enabled.
  for (auto inputs : std::vector<std::vector<value_t>>{{0, 1}, {4, 4}}) {
    auto report = check::explore_all(detecting_builder(), inputs,
                                     check::weak_consensus_checker());
    EXPECT_TRUE(report.ok()) << report.first_violation;
    EXPECT_TRUE(report.exhausted);
  }
}

// --- collect ratifier ---

analysis::sim_object_builder collect_builder() {
  return [](address_space& mem, std::size_t n) {
    return std::make_unique<collect_ratifier<sim_env>>(mem, n);
  };
}

TEST(CollectRatifier, AcceptanceCoherenceValidity) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    sim::random_oblivious adv;
    trial_options opts;
    opts.seed = seed;
    {
      std::vector<value_t> inputs(6, 42);
      auto res = run_object_trial(collect_builder(), inputs, adv, opts);
      ASSERT_TRUE(res.completed());
      EXPECT_TRUE(analysis::check_acceptance(res.outputs, 42));
    }
    {
      auto inputs = make_inputs(input_pattern::random_m, 6, 1000, seed);
      auto res = run_object_trial(collect_builder(), inputs, adv, opts);
      ASSERT_TRUE(res.completed());
      EXPECT_TRUE(res.coherent());
      EXPECT_TRUE(res.valid(inputs));
    }
  }
}

TEST(CollectRatifier, WorkIsNPlusThreeAndSpaceNPlusOne) {
  sim::round_robin adv;
  const std::size_t n = 9;
  auto inputs = make_inputs(input_pattern::distinct, n, n, 1);
  auto res = run_object_trial(collect_builder(), inputs, adv);
  ASSERT_TRUE(res.completed());
  EXPECT_LE(res.max_individual_ops, n + 3);
  EXPECT_EQ(res.registers, n + 1);
}

TEST(CollectRatifier, ExhaustiveSmall) {
  for (auto inputs : std::vector<std::vector<value_t>>{{0, 1}, {7, 7}}) {
    auto report = check::explore_all(collect_builder(), inputs,
                                     check::ratifier_checker());
    EXPECT_TRUE(report.ok()) << report.first_violation;
    EXPECT_TRUE(report.exhausted);
  }
}

// --- priority-model consensus ---

analysis::sim_object_builder priority_builder() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<priority_consensus<sim_env>>(mem);
  };
}

TEST(PriorityConsensus, CorrectUnderPriorityScheduling) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::priority_sched adv;
    auto inputs = make_inputs(input_pattern::alternating, 6, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(priority_builder(), inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(analysis::all_decided(res.outputs));
    EXPECT_TRUE(res.agreement());
    EXPECT_TRUE(res.valid(inputs));
    EXPECT_LE(res.max_individual_ops, 2u);
  }
}

TEST(PriorityConsensus, CorrectUnderSequentialScheduling) {
  sim::fixed_order adv(sim::fixed_order::mode::sequential, {3, 1, 0, 2});
  auto res = run_object_trial(priority_builder(), {0, 1, 0, 1}, adv);
  ASSERT_TRUE(res.completed());
  EXPECT_TRUE(res.agreement());
  // Priority leader was pid 3 (input 1); everyone follows it.
  EXPECT_EQ(res.outputs[0].value, 1u);
}

TEST(PriorityConsensus, ExplorerFindsAgreementViolationUnderGeneralSchedules) {
  // The §4.2 restriction is necessary: outside the priority model this
  // object is not consensus, and exhaustive search proves it.
  auto report = check::explore_all(priority_builder(), {0, 1},
                                   check::consensus_checker());
  EXPECT_GT(report.violations, 0u);
  // Two processes decide different values: reported as a coherence
  // violation (checked before agreement, and implied by it here).
  EXPECT_NE(report.first_violation.find("coherence"), std::string::npos)
      << report.first_violation;
}

// --- bitwise m-valued reduction ---

analysis::sim_object_builder bitwise_builder(std::uint64_t m) {
  return [m](address_space& mem, std::size_t n) {
    return std::make_unique<bitwise_consensus<sim_env>>(
        mem, n, m, [&mem]() -> std::unique_ptr<deciding_object<sim_env>> {
          return make_impatient_consensus<sim_env>(mem,
                                                   make_binary_quorums());
        });
  };
}

TEST(BitwiseConsensus, AgreementValidityTermination) {
  for (std::uint64_t m : {2ull, 5ull, 16ull, 100ull}) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      sim::random_oblivious adv;
      auto inputs = make_inputs(input_pattern::random_m, 6, m, seed);
      trial_options opts;
      opts.seed = seed;
      auto res = run_object_trial(bitwise_builder(m), inputs, adv, opts);
      ASSERT_TRUE(res.completed()) << "m=" << m << " seed=" << seed;
      EXPECT_TRUE(analysis::all_decided(res.outputs));
      EXPECT_TRUE(res.agreement()) << "m=" << m << " seed=" << seed;
      EXPECT_TRUE(res.valid(inputs)) << "m=" << m << " seed=" << seed;
    }
  }
}

TEST(BitwiseConsensus, ExhaustiveSmall) {
  check::explore_options opts;
  opts.max_choices = 64;
  opts.max_executions = 100000;
  opts.max_nodes = 400000;
  auto report = check::explore_all(bitwise_builder(4), {1, 2},
                                   check::consensus_checker(), opts);
  EXPECT_EQ(report.violations, 0u) << report.first_violation;
  EXPECT_GT(report.executions, 50u);
}

TEST(BitwiseConsensus, CostsMoreThanNativeMValued) {
  // The reduction pays a repair scan per lost bit round; the native
  // Bollobás stack does not.  Compare mean individual work at m = 256.
  const std::uint64_t m = 256;
  const std::size_t n = 16;
  running_stats bitwise_work, native_work;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    trial_options opts;
    opts.seed = seed;
    auto inputs = make_inputs(input_pattern::random_m, n, m, seed);
    {
      sim::random_oblivious adv;
      auto res = run_object_trial(bitwise_builder(m), inputs, adv, opts);
      ASSERT_TRUE(res.completed());
      bitwise_work.add(static_cast<double>(res.max_individual_ops));
    }
    {
      sim::random_oblivious adv;
      auto build = [](address_space& mem, std::size_t) {
        return make_impatient_consensus<sim_env>(mem,
                                                 make_bollobas_quorums(256));
      };
      auto res = run_object_trial(build, inputs, adv, opts);
      ASSERT_TRUE(res.completed());
      native_work.add(static_cast<double>(res.max_individual_ops));
    }
  }
  EXPECT_GT(bitwise_work.mean(), native_work.mean());
}

// --- first-mover coin ---

analysis::sim_object_builder firstmover_conciliator_builder() {
  return [](address_space& mem, std::size_t) {
    return std::make_unique<coin_conciliator<sim_env>>(
        mem, std::make_unique<firstmover_coin<sim_env>>(mem));
  };
}

TEST(FirstmoverCoin, ConciliatesCheaply) {
  std::size_t agreed = 0;
  running_stats total;
  constexpr std::size_t kTrials = 400;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    sim::random_oblivious adv;
    auto inputs = make_inputs(input_pattern::half_half, 8, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(firstmover_conciliator_builder(), inputs,
                                adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(res.valid(inputs));
    agreed += res.agreement();
    total.add(static_cast<double>(res.total_ops));
  }
  EXPECT_GT(wilson_interval(agreed, kTrials).lo, 0.2);
  EXPECT_LT(total.mean(), 8 * 6.0);  // ~5 ops per process, vs the voting
                                     // coin's thousands
}

TEST(FirstmoverCoin, FullConsensusStackWorks) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::random_oblivious adv;
    auto build = [](address_space& mem, std::size_t) {
      return std::make_unique<unbounded_consensus<sim_env>>(
          detail::ratifier_factory<sim_env>(mem, make_binary_quorums()),
          [&mem]() -> std::unique_ptr<deciding_object<sim_env>> {
            return std::make_unique<coin_conciliator<sim_env>>(
                mem, std::make_unique<firstmover_coin<sim_env>>(mem));
          });
    };
    auto inputs = make_inputs(input_pattern::half_half, 6, 2, seed);
    trial_options opts;
    opts.seed = seed;
    auto res = run_object_trial(build, inputs, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(res.agreement());
    EXPECT_TRUE(res.valid(inputs));
  }
}

// --- lockstep scheduler ---

TEST(Lockstep, KeepsOpCountsBalanced) {
  sim::lockstep adv;
  sim::sim_world w(3, adv, 1);
  reg_id r = w.alloc(0);
  struct helper {
    static proc<word> reads(sim_env& env, reg_id reg, int count) {
      word last = 0;
      for (int i = 0; i < count; ++i) last = co_await env.read(reg);
      co_return last;
    }
  };
  for (int i = 0; i < 3; ++i)
    w.spawn([r](sim_env& e) { return helper::reads(e, r, 10); });
  w.run(15);
  // After 15 steps, counts must be {5,5,5}.
  for (process_id p = 0; p < 3; ++p) EXPECT_EQ(w.ops_of(p), 5u);
}

TEST(Lockstep, StallsRatifierOnlyButNotTheFullStack) {
  auto qs = make_binary_quorums();
  {
    sim::lockstep adv;
    auto build = [&](address_space& mem, std::size_t) {
      return make_ratifier_only_consensus<sim_env>(mem, qs, 1000000);
    };
    trial_options opts;
    opts.limits.max_steps = 20000;
    auto res = run_object_trial(build, {0, 1}, adv, opts);
    EXPECT_EQ(res.status, sim::run_status::step_limit);
  }
  {
    sim::lockstep adv;
    auto build = [&](address_space& mem, std::size_t) {
      return make_impatient_consensus<sim_env>(mem, qs);
    };
    trial_options opts;
    opts.limits.max_steps = 1'000'000;
    auto res = run_object_trial(build, {0, 1}, adv, opts);
    ASSERT_TRUE(res.completed());
    EXPECT_TRUE(res.agreement());
  }
}

TEST(Lockstep, CilStillTerminates) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    sim::lockstep adv;
    auto build = [](address_space& mem, std::size_t n) {
      return std::make_unique<cil_consensus<sim_env>>(mem, n);
    };
    trial_options opts;
    opts.seed = seed;
    opts.limits.max_steps = 5'000'000;
    auto res = run_object_trial(build, {0, 1, 0, 1}, adv, opts);
    ASSERT_TRUE(res.completed()) << "seed " << seed;
    EXPECT_TRUE(res.agreement());
  }
}

}  // namespace
}  // namespace modcon
