// Exhaustive checking of small systems: every interleaving (and coin
// outcome) of the paper's objects for n = 2, 3.
#include "check/explorer.h"

#include <gtest/gtest.h>

#include <memory>

#include "baseline/cil_consensus.h"
#include "core/compose.h"
#include "core/conciliator/impatient.h"
#include "core/consensus/builder.h"
#include "core/ratifier/cheap_collect_ratifier.h"
#include "core/ratifier/quorum_ratifier.h"
#include "sim/world.h"

namespace modcon::check {
namespace {

using sim::sim_env;

analysis::sim_object_builder ratifier_builder(
    std::shared_ptr<const quorum_system> qs) {
  return [qs](address_space& mem, std::size_t) {
    return std::make_unique<quorum_ratifier<sim_env>>(mem, qs);
  };
}

// Interleaving-count assertions run in naive mode: DPOR legitimately
// explores fewer executions (that is the point), so raw counts are only
// meaningful against the full tree.  Verdict-only tests keep the default
// (DPOR) mode and double as soundness coverage for the reduction.
explore_options naive_opts() {
  explore_options opts;
  opts.mode = reduction::naive;
  return opts;
}

TEST(Explorer, BinaryRatifierAllSchedulesTwoProcesses) {
  auto qs = make_binary_quorums();
  for (auto inputs : std::vector<std::vector<value_t>>{
           {0, 0}, {0, 1}, {1, 0}, {1, 1}}) {
    auto report = explore_all(ratifier_builder(qs), inputs,
                              ratifier_checker(), naive_opts());
    EXPECT_TRUE(report.ok()) << report.first_violation;
    EXPECT_TRUE(report.exhausted);
    EXPECT_EQ(report.truncated, 0u);
    // Each process does 3 or 4 ops; dozens of interleavings, all checked.
    EXPECT_GE(report.executions, 20u);
  }
}

TEST(Explorer, BinaryRatifierAllSchedulesThreeProcesses) {
  auto qs = make_binary_quorums();
  for (auto inputs : std::vector<std::vector<value_t>>{
           {0, 0, 1}, {0, 1, 0}, {1, 1, 1}, {1, 0, 1}}) {
    auto report = explore_all(ratifier_builder(qs), inputs,
                              ratifier_checker(), naive_opts());
    EXPECT_TRUE(report.ok()) << report.first_violation;
    EXPECT_TRUE(report.exhausted);
    EXPECT_GT(report.executions, 1000u);
  }
}

TEST(Explorer, BollobasRatifierAllSchedules) {
  auto qs = make_bollobas_quorums(4);
  auto report = explore_all(ratifier_builder(qs), {0, 3}, ratifier_checker());
  EXPECT_TRUE(report.ok()) << report.first_violation;
  EXPECT_TRUE(report.exhausted);
}

TEST(Explorer, CheapCollectRatifierAllSchedules) {
  auto build = [](address_space& mem, std::size_t n) {
    return std::make_unique<cheap_collect_ratifier<sim_env>>(mem, n);
  };
  for (auto inputs : std::vector<std::vector<value_t>>{{0, 1}, {2, 2}}) {
    auto report = explore_all(build, inputs, ratifier_checker());
    EXPECT_TRUE(report.ok()) << report.first_violation;
    EXPECT_TRUE(report.exhausted);
  }
}

TEST(Explorer, ImpatientConciliatorAllSchedulesAndCoins) {
  // n = 2: the only non-trivial coin is the k = 0 write (p = 1/2); the
  // k = 1 write has probability 1.  Fully enumerable.
  auto build = [](address_space& mem, std::size_t) {
    return std::make_unique<impatient_conciliator<sim_env>>(mem);
  };
  for (auto inputs : std::vector<std::vector<value_t>>{{0, 1}, {5, 5}}) {
    auto report =
        explore_all(build, inputs, weak_consensus_checker(), naive_opts());
    EXPECT_TRUE(report.ok()) << report.first_violation;
    EXPECT_TRUE(report.exhausted);
    EXPECT_EQ(report.truncated, 0u);
    EXPECT_GT(report.executions, 10u);
  }
}

TEST(Explorer, ConciliatorThenRatifierComposition) {
  // (C; R): every schedule and coin outcome must preserve validity and
  // coherence (Corollary 4 in executable form).
  auto qs = make_binary_quorums();
  auto build = [qs](address_space& mem, std::size_t)
      -> std::unique_ptr<deciding_object<sim_env>> {
    auto s = std::make_unique<sequence<sim_env>>();
    s->append(std::make_unique<impatient_conciliator<sim_env>>(mem));
    s->append(std::make_unique<quorum_ratifier<sim_env>>(mem, qs));
    return s;
  };
  auto report = explore_all(build, {0, 1}, weak_consensus_checker());
  EXPECT_TRUE(report.ok()) << report.first_violation;
  EXPECT_TRUE(report.exhausted);
}

TEST(Explorer, FullConsensusStackSmall) {
  // R₋₁; R₀; C₁; R₁; … for n = 2 with coin branching.  All complete
  // executions must satisfy full consensus; paths where every coin keeps
  // missing are truncated by the depth cap (they are measure-zero).
  auto qs = make_binary_quorums();
  auto build = [qs](address_space& mem, std::size_t) {
    return make_impatient_consensus<sim_env>(mem, qs);
  };
  explore_options opts = naive_opts();
  opts.max_choices = 60;
  opts.max_executions = 150000;
  opts.max_nodes = 600000;
  auto report = explore_all(build, {0, 1}, consensus_checker(), opts);
  EXPECT_EQ(report.violations, 0u) << report.first_violation;
  EXPECT_GT(report.executions, 100u);
}

TEST(Explorer, CilConsensusSmall) {
  auto build = [](address_space& mem, std::size_t n) {
    return std::make_unique<cil_consensus<sim_env>>(mem, n);
  };
  explore_options opts = naive_opts();
  opts.max_choices = 44;
  opts.max_executions = 150000;
  opts.max_nodes = 600000;
  auto report = explore_all(build, {0, 1}, consensus_checker(), opts);
  EXPECT_EQ(report.violations, 0u) << report.first_violation;
  EXPECT_GT(report.executions, 50u);
}

TEST(Explorer, DetectsABrokenObject) {
  // Sanity check that the explorer can actually find violations: an
  // object that decides its own input unconditionally breaks coherence.
  struct broken final : deciding_object<sim_env> {
    reg_id r;
    explicit broken(address_space& mem) : r(mem.alloc(0)) {}
    proc<decided> invoke(sim_env& env, value_t v) override {
      co_await env.write(r, v);  // one shared op so schedules interleave
      co_return decided{true, v};
    }
    std::string name() const override { return "broken"; }
  };
  auto build = [](address_space& mem, std::size_t) {
    return std::make_unique<broken>(mem);
  };
  auto report = explore_all(build, {0, 1}, weak_consensus_checker());
  EXPECT_GT(report.violations, 0u);
  EXPECT_NE(report.first_violation.find("coherence"), std::string::npos);
}

TEST(Explorer, DetectsValidityViolation) {
  struct invalid final : deciding_object<sim_env> {
    reg_id r;
    explicit invalid(address_space& mem) : r(mem.alloc(0)) {}
    proc<decided> invoke(sim_env& env, value_t v) override {
      co_await env.read(r);
      co_return decided{false, v + 100};
    }
    std::string name() const override { return "invalid"; }
  };
  auto build = [](address_space& mem, std::size_t) {
    return std::make_unique<invalid>(mem);
  };
  auto report = explore_all(build, {0, 1}, weak_consensus_checker());
  EXPECT_GT(report.violations, 0u);
  EXPECT_NE(report.first_violation.find("validity"), std::string::npos);
}

TEST(Explorer, ExecutionCountMatchesInterleavingFormula) {
  // Two processes doing exactly 2 deterministic ops each: C(4,2) = 6
  // interleavings.
  struct two_ops final : deciding_object<sim_env> {
    reg_id r;
    explicit two_ops(address_space& mem) : r(mem.alloc(0)) {}
    proc<decided> invoke(sim_env& env, value_t v) override {
      co_await env.write(r, v);
      co_await env.read(r);
      co_return decided{false, v};
    }
    std::string name() const override { return "two-ops"; }
  };
  auto build = [](address_space& mem, std::size_t) {
    return std::make_unique<two_ops>(mem);
  };
  auto report =
      explore_all(build, {0, 0}, weak_consensus_checker(), naive_opts());
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.executions, 6u);
}

}  // namespace
}  // namespace modcon::check
